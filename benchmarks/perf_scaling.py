"""Large-grid scaling benchmark: build/compile/simulate seconds vs n.

Walks a size ladder into the 10^5-10^6 node range on one topology and
writes ``BENCH_scaling.json`` (repo root by default).  Per size it
records:

* ``stencil_build_s`` — CSR adjacency via the vectorised stencil fast
  path (:meth:`~repro.topology.base.Topology.stencil_edges`);
* ``loop_build_s``    — the per-node reference builder
  (:func:`~repro.topology.graph.build_adjacency_loop`), skipped above
  ``--loop-cap`` where the python loop gets too slow to time politely;
  whenever both run, the two CSR matrices are asserted identical
  *before* any timing is reported;
* ``compile_s`` / ``simulate_s`` and the resulting broadcast metrics for
  a centre-source broadcast (skipped above ``--sim-cap``);
* ``diameter`` via the closed-form lattice metric (O(1) — the dense
  all-pairs matrix is never materialised; the gate is asserted);
* ``peak_rss_mb`` — ``ru_maxrss`` after the point completes.  The
  counter is monotone over the process lifetime, so per-point values are
  "peak so far" and only the growth between points is attributable to a
  size.

Run as a script::

    PYTHONPATH=src python benchmarks/perf_scaling.py
    PYTHONPATH=src python benchmarks/perf_scaling.py \
        --topology 2D-4 --sizes 10000 100000 500000 1000000

``benchmarks/test_perf_scaling.py`` smoke-tests this module on small
grids in tier-2 runs; ``tests/test_bench_artifact.py`` validates the
committed artefact's schema in tier 1.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.scaling import central_source, shape_for
from repro.analysis.sweep import effective_workers
from repro.core.registry import protocol_for
from repro.radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from repro.sim.metrics import compute_metrics
from repro.topology.builder import make_topology
from repro.topology.graph import (DENSE_PAIRS_GATE, DenseAllPairsError,
                                  all_pairs_distances, build_adjacency,
                                  build_adjacency_loop)

SCHEMA = "repro-wsn/bench-scaling/v1"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"
DEFAULT_SIZES = (10_000, 100_000, 500_000, 1_000_000)
DEFAULT_LOOP_CAP = 500_000
DEFAULT_SIM_CAP = 1_000_000


def _peak_rss_mb() -> float:
    """Peak resident set size of this process so far, in MiB.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS, where this would
    overreport — the artefact records the platform next to the numbers).
    """
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
                 1)


def _csr_equal(a, b) -> bool:
    return (a.shape == b.shape
            and np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.array_equal(a.data, b.data))


def measure_point(topology_label: str, target: int,
                  loop_cap: int, sim_cap: int) -> dict:
    """Time adjacency construction (both builders), compile and simulate
    at one ladder size; return the per-point record."""
    shape = shape_for(topology_label, target)
    topo = make_topology(topology_label, shape=shape)
    n = topo.num_nodes

    t0 = time.perf_counter()
    adj = build_adjacency(topo)
    stencil_s = time.perf_counter() - t0

    point = {
        "nodes": n,
        "shape": list(shape),
        "stencil_build_s": round(stencil_s, 4),
        "loop_build_s": None,
        "adjacency_equal": None,
        "compile_s": None,
        "simulate_s": None,
        "tx": None,
        "delay_slots": None,
        "reachability": None,
        "diameter": int(topo.diameter),  # closed form: O(1), no dense
    }

    if n <= loop_cap:
        t0 = time.perf_counter()
        loop_adj = build_adjacency_loop(topo)
        point["loop_build_s"] = round(time.perf_counter() - t0, 4)
        point["adjacency_equal"] = _csr_equal(adj, loop_adj)
        assert point["adjacency_equal"], (
            f"stencil CSR != loop CSR at {topology_label} {shape}")
        del loop_adj

    if n <= sim_cap:
        # seed the topology's cached adjacency so compile doesn't rebuild
        topo.__dict__["adjacency"] = adj
        src = central_source(shape)
        proto = protocol_for(topo)
        t0 = time.perf_counter()
        compiled = proto.compile(topo, src)
        point["compile_s"] = round(time.perf_counter() - t0, 4)
        t0 = time.perf_counter()
        m = compute_metrics(compiled.trace, topo, PAPER_RADIO_MODEL,
                            PAPER_PACKET_BITS)
        point["simulate_s"] = round(time.perf_counter() - t0, 4)
        point["tx"] = int(m.tx)
        point["delay_slots"] = int(m.delay_slots)
        point["reachability"] = float(m.reachability)

    point["peak_rss_mb"] = _peak_rss_mb()
    return point


def check_dense_gate(adjacency) -> bool:
    """True iff the dense all-pairs path refuses to materialise above the
    gate (the acceptance criterion: no O(n^2) allocation at scale)."""
    if adjacency.shape[0] <= DENSE_PAIRS_GATE:
        return True
    try:
        all_pairs_distances(adjacency)
    except DenseAllPairsError:
        return True
    return False


def run_benchmark(topology_label: str = "2D-4",
                  sizes: Sequence[int] = DEFAULT_SIZES,
                  loop_cap: int = DEFAULT_LOOP_CAP,
                  sim_cap: int = DEFAULT_SIM_CAP,
                  workers: Optional[int] = None) -> dict:
    """Measure every ladder size; return the BENCH_scaling.json payload."""
    points = [measure_point(topology_label, target, loop_cap, sim_cap)
              for target in sizes]

    # speedup at the largest size where both builders ran
    common = [p for p in points if p["loop_build_s"] is not None]
    largest = max(common, key=lambda p: p["nodes"]) if common else None

    # gate probe on the largest grid of the run
    biggest = max(points, key=lambda p: p["nodes"])
    probe = make_topology(topology_label,
                          shape=shape_for(topology_label, biggest["nodes"]))
    gate_ok = check_dense_gate(probe.adjacency)

    return {
        "schema": SCHEMA,
        "topology": topology_label,
        "sizes": [int(s) for s in sizes],
        "loop_cap": loop_cap,
        "sim_cap": sim_cap,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers_requested": workers,
        "workers_effective": effective_workers(workers),
        "dense_gate": DENSE_PAIRS_GATE,
        "dense_gate_respected": gate_ok,
        "largest_common_nodes": None if largest is None else
            largest["nodes"],
        "adjacency_speedup_at_largest_common": None if largest is None else
            round(largest["loop_build_s"] / largest["stencil_build_s"], 2),
        "adjacency_equal_everywhere": all(
            p["adjacency_equal"] for p in common),
        "points": points,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="2D-4")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--loop-cap", type=int, default=DEFAULT_LOOP_CAP,
                        help="skip the loop reference builder above this "
                             "many nodes")
    parser.add_argument("--sim-cap", type=int, default=DEFAULT_SIM_CAP,
                        help="skip compile+simulate above this many nodes")
    parser.add_argument("--workers", type=int, default=None,
                        help="recorded for provenance; points run serially "
                             "(each one saturates the machine)")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(
        topology_label=args.topology, sizes=args.sizes,
        loop_cap=args.loop_cap, sim_cap=args.sim_cap, workers=args.workers)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for p in payload["points"]:
        loop = ("skipped" if p["loop_build_s"] is None
                else f"{p['loop_build_s']:8.3f}s")
        comp = ("skipped" if p["compile_s"] is None
                else f"{p['compile_s']:7.3f}s")
        print(f"n={p['nodes']:>9}: stencil {p['stencil_build_s']:7.3f}s  "
              f"loop {loop}  compile {comp}  rss {p['peak_rss_mb']} MiB")
    print(f"adjacency speedup at n={payload['largest_common_nodes']}: "
          f"{payload['adjacency_speedup_at_largest_common']}x")
    print(f"dense gate respected: {payload['dense_gate_respected']}")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
