"""Ablation F — the paper's lattice structure vs LEACH-style gathering.

The paper's related work (LEACH [8], TEEN [10]) is about periodic data
*collection*; the paper contributes broadcast.  This ablation connects
the two: the delivery tree of the paper's broadcast, reversed, is a
convergecast structure — how does it compare with LEACH's rotating
clusters and the direct-uplink strawman on network lifetime?

Setup: the 32x16 lattice (16 m x 8 m floor), base station 100 m away
(so cluster-head uplinks pay the two-ray d^4 cost, as in the LEACH
evaluation), 2 J batteries, one collection round per unit time.
"""

import numpy as np
from conftest import emit

from repro.analysis import render_table
from repro.gather import DirectGathering, LeachGathering, TreeGathering
from repro.radio import TwoRayRadioModel
from repro.topology import make_topology

BS = np.array([8.0, -100.0])
BATTERY_J = 2.0


def test_ablation_gathering(benchmark):
    mesh = make_topology("2D-4")
    model = TwoRayRadioModel()
    gateways = [(16, 1), (1, 8), (32, 8), (16, 16), (8, 1), (24, 1)]
    protocols = [
        ("direct uplink", DirectGathering(model=model)),
        ("LEACH p=0.05", LeachGathering(p=0.05, seed=1, model=model)),
        ("lattice tree (fixed gateway)",
         TreeGathering(gateway=(16, 1), model=model)),
        ("lattice tree (rotating gateways)",
         TreeGathering(gateway=gateways, model=model)),
    ]
    rows = []
    results = {}
    for name, proto in protocols:
        lt = proto.lifetime(mesh, BS, battery_j=BATTERY_J,
                            max_rounds=200_000)
        results[name] = lt
        rows.append({
            "protocol": name,
            "rounds to first death": lt.rounds_completed,
            "mean J/round": lt.mean_round_energy_j,
            "max/mean load": round(lt.energy_imbalance, 2),
            "first death": str(lt.first_death_node),
        })
    emit("ablation_gathering_leach", render_table(
        rows, ["protocol", "rounds to first death", "mean J/round",
               "max/mean load", "first death"],
        title="Ablation F: data gathering — LEACH vs the paper's lattice "
              "tree (BS 100 m away, two-ray uplinks)"))

    # the classic LEACH result reproduces: clustering beats direct uplink
    assert results["LEACH p=0.05"].rounds_completed > \
        results["direct uplink"].rounds_completed
    # the lattice tree matches LEACH's per-round energy (short hops +
    # aggregation) ...
    assert results["lattice tree (rotating gateways)"].mean_round_energy_j \
        <= 1.1 * results["LEACH p=0.05"].mean_round_energy_j
    # ... and rotating gateways substantially extends the fixed-tree
    # lifetime (the paper's own source-rotation lever)
    assert results["lattice tree (rotating gateways)"].rounds_completed > \
        1.5 * results["lattice tree (fixed gateway)"].rounds_completed

    benchmark(lambda: LeachGathering(p=0.05, seed=2, model=model)
              .round_energy(mesh, BS, 0))
