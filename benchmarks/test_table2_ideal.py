"""Table 2 — ideal case: Tx, Rx and power on the 512-node networks.

Our analytic ideal model reproduces the paper's Table 2 exactly, cell for
cell (Tx, Rx and power at 3 significant digits).
"""

import pytest
from conftest import emit

from repro.analysis import (PAPER_TABLE2, render_paper_comparison,
                            table2_ideal)


def test_table2_regenerates(benchmark):
    rows = benchmark(table2_ideal)
    emit("table2_ideal", render_paper_comparison(
        rows, ["tx", "rx", "energy_J"],
        title="Table 2: ideal case (512 nodes, d=0.5 m, k=512 bit)"))
    by_label = {r["topology"]: r for r in rows}
    for label, expected in PAPER_TABLE2.items():
        got = by_label[label]
        assert got["tx"] == expected["tx"], label
        assert got["rx"] == expected["rx"], label
        assert got["energy_J"] == pytest.approx(
            expected["energy_J"], rel=5e-3), label
