"""Figure 9 — scattering across XY planes along the Z axis (3D-6).

Regenerates the z-relay structure for source (6, 8, k) on a 16x16-per-
plane mesh (the figure's plane size): the R5 lattice points, including the
paper's named examples (4,7), (5,10), (7,6), (8,9), plus the border nodes
the Lee tiling misses (the paper's gray two-slot-delayed border relays).
"""

from conftest import emit

from repro.core import protocol_for
from repro.topology import Mesh3D6
from repro.topology.lee import lee_cover_gaps, lee_points
from repro.viz import relay_map, summary_block

PAPER_ZRELAY_EXAMPLES = [(4, 7), (5, 10), (7, 6), (8, 9)]


def lattice_map(m, n, seed, gaps):
    pts = set(lee_points(m, n, seed))
    lines = [f"z-relay lattice (source column {seed}); "
             "Z=z-relay, g=border gap, .=covered"]
    for y in range(n, 0, -1):
        row = " ".join(
            "Z" if (x, y) in pts else ("g" if (x, y) in gaps else ".")
            for x in range(1, m + 1))
        lines.append(f"{y:3d} {row}")
    return "\n".join(lines)


def test_figure9_regenerates(benchmark):
    mesh = Mesh3D6(16, 16, 4)
    proto = protocol_for(mesh)
    compiled = benchmark(lambda: proto.compile(mesh, (6, 8, 2)))

    gaps = lee_cover_gaps(16, 16, (6, 8))
    text = "\n\n".join([
        summary_block(mesh, compiled),
        lattice_map(16, 16, (6, 8), gaps),
        relay_map(mesh, compiled),
    ])
    emit("figure9_zrelay", text)

    assert compiled.reached_all
    pts = set(lee_points(16, 16, (6, 8)))
    for xy in PAPER_ZRELAY_EXAMPLES:
        assert xy in pts
    assert (6, 8) in pts  # "let the source be a z-relay node"
    # density exactly one fifth in the large-grid limit
    assert abs(len(pts) - 16 * 16 / 5) <= 16
    # the tiling misses only border nodes; completion must cover them all
    for (x, y) in gaps:
        assert x in (1, 16) or y in (1, 16)
        for z in range(1, 5):
            assert compiled.trace.first_rx[mesh.index((x, y, z))] >= 0
