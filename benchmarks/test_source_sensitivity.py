"""Benchmark — source-position sensitivity (a Section 4 claim).

"The best case and worst case performances of 2D mesh with 3 neighbors
(or 2D mesh with 8 neighbors) are quite close to each other, because
[they are] not sensitive to the source node's location."

Measured over the shared source sweep: relative spread ((max-min)/mean)
of Tx, energy and delay per topology.  Also measures the related TEEN
claim (reference [10]) that threshold-driven reporting scales with how
eventful the field is, and the all-to-all composition cost.
"""

import numpy as np
from conftest import emit

from repro.analysis import render_table
from repro.analysis.sensitivity import sensitivity_table
from repro.core import all_to_all
from repro.gather import LeachGathering, TeenGathering
from repro.topology import Mesh2D4, make_topology


def test_source_sensitivity(sweep_cache, benchmark):
    rows = sensitivity_table(sweep_cache.sweeps,
                             metrics=("tx", "energy_J", "delay"))
    emit("source_sensitivity", render_table(
        rows, ["topology", "metric", "min", "max", "mean", "spread_%",
               "cv_%"],
        title="Extension: sensitivity of broadcast cost to the source "
              "position"))
    spread = {(r["topology"], r["metric"]): r["spread_%"] for r in rows}
    # the paper's comparison is relative: 2D-4's energy spread across
    # sources exceeds 2D-8's and 2D-3's (their best/worst rows are close)
    assert spread[("2D-3", "energy_J")] <= spread[("2D-4", "energy_J")] + 6
    # delay is the most source-sensitive metric everywhere (corner vs
    # centre roughly doubles the eccentricity)
    for label in ("2D-3", "2D-4", "2D-8", "3D-6"):
        assert spread[(label, "delay")] >= spread[(label, "tx")]

    sweep = sweep_cache.sweeps["2D-4"]
    benchmark(lambda: sensitivity_table({"2D-4": sweep}))


def test_teen_event_scaling(benchmark):
    mesh = make_topology("2D-4")
    bs = np.array([8.0, -10.0])
    rows = []
    leach = LeachGathering(p=0.05, seed=1)
    leach_total = sum(float(leach.round_energy(mesh, bs, r).sum())
                      for r in range(50))
    for vol, label in [(0.05, "quiet"), (0.3, "active"), (1.0, "stormy")]:
        teen = TeenGathering(p=0.05, seed=1, volatility=vol)
        total = sum(float(teen.round_energy(mesh, bs, r).sum())
                    for r in range(50))
        rows.append({"field": label, "volatility": vol,
                     "TEEN J/50 rounds": round(total, 4),
                     "vs LEACH": f"{total / leach_total:.0%}"})
    rows.append({"field": "(periodic)", "volatility": "-",
                 "TEEN J/50 rounds": round(leach_total, 4),
                 "vs LEACH": "100%"})
    emit("teen_event_scaling", render_table(
        rows, ["field", "volatility", "TEEN J/50 rounds", "vs LEACH"],
        title="Extension: TEEN threshold reporting — energy scales with "
              "events, not time"))
    assert rows[0]["TEEN J/50 rounds"] < rows[1]["TEEN J/50 rounds"] \
        < rows[2]["TEEN J/50 rounds"] < leach_total

    teen = TeenGathering(p=0.05, seed=2)
    benchmark(lambda: teen.round_energy(mesh, bs, 0))


def test_all_to_all_composition(benchmark):
    mesh = Mesh2D4(16, 8)
    result = all_to_all(mesh)
    single = all_to_all(mesh, sources=[(8, 4)])
    emit("all_to_all", render_table(
        [single.as_row(), result.as_row()],
        ["topology", "sources", "total_tx", "total_rx", "total_slots",
         "energy_J", "tx_imbalance"],
        title="Extension: all-to-all exchange by composed one-to-all "
              "broadcasts (16x8)"))
    assert result.all_reached
    assert result.tx_imbalance < single.tx_imbalance

    benchmark(lambda: all_to_all(mesh, sources=[(8, 4), (1, 1)]))
