"""Recovery-frontier benchmark: closed-loop repair vs blind hardening.

Runs the :func:`~repro.analysis.robustness.recovery_frontier` sweep on
the reference case of the recovery extension (2D-4 16x16, Bernoulli
``p=0.2``) with both trial engines and writes ``BENCH_recovery.json``
(repo root by default):

* ``serial``  — ``engine="serial"``: per-trial loop through the
  one-trial reactive engine with a :class:`RecoveryState` side-car.
* ``batched`` — ``engine="batch"``: all trials advance together through
  ``run_reactive_batch`` with the vectorised ``BatchRecoveryState``.

The batched frontier is asserted point-for-point equal to the serial
frontier before anything is written, and the acceptance comparison is
asserted before it is recorded: the default policy sweep must contain a
recovery point whose mean reachability meets or beats blind hardening
``harden_plan(r=2)`` at >= 25% lower mean energy.

The winning default policy (``timeout=2, max_retries=2, backoff=1,
suppression_k=2, election=False``) is not a lucky seed: with
``backoff=1`` its retry checks land on exactly the ``+2, +4`` slots that
``harden_plan(r=2)`` blindly repeats on, but a retry only fires when a
neighbour actually failed to ACK — so its transmissions are a
conditional subset of blind-r2's with identical first-time deliveries
(per-trial reach is identical, per-trial tx is everywhere <=).

Run as a script::

    PYTHONPATH=src python benchmarks/perf_recovery.py
    PYTHONPATH=src python benchmarks/perf_recovery.py \
        --shape 8 8 --trials 16 --out /tmp/bench.json

``benchmarks/test_perf_recovery.py`` smoke-tests this module on a small
grid in tier-2 runs; ``tests/test_bench_artifact.py`` validates the
committed artefact's schema in tier 1.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro import profiling
from repro.analysis.robustness import recovery_frontier
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-recovery/v1"
DEFAULT_OUT = (Path(__file__).resolve().parent.parent
               / "BENCH_recovery.json")
#: Minimum energy saving (fraction of blind-r2's mean energy) a recovery
#: point must deliver, at >= blind-r2 reachability, for acceptance.
ACCEPTANCE_SAVING = 0.25


def _timed_frontier(topology, source, **kwargs):
    t0 = time.perf_counter()
    points = recovery_frontier(topology, source, **kwargs)
    return points, time.perf_counter() - t0


def _acceptance(points) -> dict:
    """Compare the default recovery policies against blind-r2.

    Returns the acceptance record for the payload; raises AssertionError
    if no recovery point meets the bar (reach >= blind-r2 at >= 25%
    lower mean energy), so a regression can never be silently written.
    """
    by_label = {p.strategy: p for p in points}
    blind = by_label["blind-r2"]
    best = None
    for p in points:
        if p.strategy.startswith("blind"):
            continue
        if p.mean_reachability < blind.mean_reachability:
            continue
        saving = 1.0 - p.mean_energy_j / blind.mean_energy_j
        if best is None or saving > best[1]:
            best = (p, saving)
    assert best is not None and best[1] >= ACCEPTANCE_SAVING, (
        "no default recovery policy meets blind-r2 reachability at "
        f">= {ACCEPTANCE_SAVING:.0%} lower energy: best={best}")
    winner, saving = best
    return {
        "blind_r2": {"mean_reach": blind.mean_reachability,
                     "mean_tx": blind.mean_tx,
                     "mean_energy_j": blind.mean_energy_j},
        "recovery": {"strategy": winner.strategy,
                     "mean_reach": winner.mean_reachability,
                     "mean_tx": winner.mean_tx,
                     "mean_energy_j": winner.mean_energy_j},
        "energy_saving_vs_blind_r2": round(saving, 4),
        "reach_delta_vs_blind_r2": round(
            winner.mean_reachability - blind.mean_reachability, 6),
        "meets_bar": True,  # asserted above
    }


def run_benchmark(topology_label: str = "2D-4",
                  shape: Sequence[int] = (16, 16),
                  loss_rate: float = 0.2,
                  trials: int = 64,
                  seed: int = 0,
                  repeats: int = 1,
                  profile: bool = False) -> dict:
    """Time the frontier in both engines; return the payload.

    *repeats* > 1 re-times each engine and keeps the fastest run; the
    batched == serial equality check runs on the first pass.  With
    *profile* the batched engine is re-run once under
    :mod:`repro.profiling` (sharding disabled — the accumulator is
    per-process) and the per-phase seconds land under ``"profile"``.
    """
    topology = make_topology(topology_label, shape=tuple(shape))
    source = tuple(max(1, s // 2) for s in shape)
    sweep = dict(loss_rates=(loss_rate,), failure_counts=(0,),
                 trials=trials, seed=seed)

    entries = {}
    serial_points = None
    for label in ("serial", "batched"):
        engine = "serial" if label == "serial" else "batch"
        best = None
        for _ in range(max(1, repeats)):
            points, secs = _timed_frontier(topology, source,
                                           engine=engine, **sweep)
            if best is None or secs < best[1]:
                best = (points, secs)
        points, secs = best
        if label == "serial":
            serial_points = points
        else:
            assert points == serial_points, (
                "batched recovery frontier diverged from the serial one")
        n_sims = len(points) * trials
        entries[label] = {
            "seconds": round(secs, 4),
            "simulations_per_second": round(n_sims / secs, 1),
        }

    prof = None
    if profile:
        profiling.start()
        recovery_frontier(topology, source, engine="batch", workers=1,
                          **sweep)
        prof = {k: round(v, 4) for k, v in
                sorted(profiling.stop().items())}

    return {
        "schema": SCHEMA,
        "topology": topology_label,
        "shape": list(shape),
        "source": list(source),
        "profile": prof,
        "loss_rate": loss_rate,
        "trials": trials,
        "seed": seed,
        "strategies": [p.strategy for p in serial_points],
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "entries": entries,
        "batched_matches_serial": True,  # asserted above
        "batched_speedup_vs_serial": round(
            entries["serial"]["seconds"] / entries["batched"]["seconds"], 2),
        "acceptance": _acceptance(serial_points),
        "frontier": [p.as_row() for p in serial_points],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="2D-4")
    parser.add_argument("--shape", type=int, nargs="+", default=[16, 16])
    parser.add_argument("--loss-rate", type=float, default=0.2)
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--profile", action="store_true",
                        help="capture per-phase batched-engine timings "
                             "(gather, bincount, loss-rng, recovery-"
                             "update, commit) into the payload")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(
        topology_label=args.topology, shape=args.shape,
        loss_rate=args.loss_rate, trials=args.trials,
        seed=args.seed, repeats=args.repeats, profile=args.profile)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for label, entry in payload["entries"].items():
        print(f"{label:>9}: {entry['seconds']:8.3f}s "
              f"({entry['simulations_per_second']:9.1f} sims/s)")
    acc = payload["acceptance"]
    print(f"acceptance: {acc['recovery']['strategy']} reaches "
          f"{acc['recovery']['mean_reach']:.4f} "
          f"(blind-r2: {acc['blind_r2']['mean_reach']:.4f}) at "
          f"{acc['energy_saving_vs_blind_r2']:.1%} lower energy")
    print(f"batched speedup vs serial: "
          f"{payload['batched_speedup_vs_serial']}x")
    if payload["profile"]:
        print("profile[batched]: " + ", ".join(
            f"{k}={v:.3f}s" for k, v in payload["profile"].items()))
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
