"""Benchmark: symmetry-reduced source sweeps vs direct compilation.

Measures the compile-count reduction and wall-clock speedup of the
symmetry-reduced sweep path (:mod:`repro.core.symmetry`) against the
direct per-source path on full-grid sweeps of the paper topologies:

* ``no_symmetry`` — ``sweep_sources(symmetry=False)``: one
  ``compile_broadcast`` fixpoint per source (the PR 1 baseline
  semantics, exactly what ``benchmarks/perf_sweep.py`` times).
* ``symmetry``    — ``sweep_sources(symmetry=True)``: one fixpoint per
  source-equivalence class, members derived by the batched engine.

Before anything is written, the two modes' metrics lists are asserted
**equal element for element** — the symmetry path is only a performance
path, so a benchmark whose outputs diverged would be measuring the wrong
thing; ``metrics_equal`` records the assertion in the artefact.

Compile counts are observed, not inferred: the serial compiler keeps a
process-global invocation counter (:func:`repro.core.compiler.
compile_call_count`) that is diffed around each sweep.

Run as a script::

    PYTHONPATH=src python benchmarks/perf_symmetry.py
    PYTHONPATH=src python benchmarks/perf_symmetry.py \
        --grids 2D-4:32x16 2D-8:32x16 --out BENCH_symmetry.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.sweep import (available_cpus, effective_workers,
                                  sweep_sources)
from repro.core.compiler import compile_call_count
from repro.core.registry import protocol_for
from repro.core.symmetry import group_sources
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-symmetry/v1"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_symmetry.json"
DEFAULT_GRIDS = ("2D-4:32x16", "2D-8:32x16")


def _timed_sweep(topology, protocol, symmetry: bool):
    """One full-grid sweep; returns (result, seconds, compile_calls)."""
    calls0 = compile_call_count()
    t0 = time.perf_counter()
    result = sweep_sources(topology, protocol=protocol, symmetry=symmetry)
    return result, time.perf_counter() - t0, compile_call_count() - calls0


def bench_grid(topology_label: str, shape: Sequence[int],
               repeats: int = 1) -> dict:
    """Benchmark one full-grid sweep in both modes; assert equality."""
    topology = make_topology(topology_label, shape=tuple(shape))
    protocol = protocol_for(topology)
    sources = [topology.coord(i) for i in range(topology.num_nodes)]
    groups, direct = group_sources(topology, protocol, sources)

    entry = {
        "topology": topology_label,
        "shape": list(shape),
        "sources": len(sources),
        "classes": len(groups),
        "ungrouped_sources": len(direct),
    }
    for label, symmetry in (("no_symmetry", False), ("symmetry", True)):
        best = None
        for _ in range(max(1, repeats)):
            result, secs, calls = _timed_sweep(topology, protocol, symmetry)
            if best is None or secs < best[1]:
                best = (result, secs, calls)
        result, secs, calls = best
        entry[label] = {
            "seconds": round(secs, 4),
            "compile_calls": calls,
            "sources_per_second": round(len(sources) / secs, 1),
        }
        if symmetry:
            sym_metrics = result.metrics
        else:
            ref_metrics = result.metrics

    # Hard equality gate: the symmetry path must reproduce the direct
    # path's metrics exactly (order included) or the numbers are void.
    assert sym_metrics == ref_metrics, (
        f"symmetry sweep diverged from direct sweep on "
        f"{topology_label} {shape}")
    entry["metrics_equal"] = True
    entry["compile_call_reduction"] = round(
        entry["no_symmetry"]["compile_calls"]
        / max(1, entry["symmetry"]["compile_calls"]), 2)
    entry["speedup"] = round(
        entry["no_symmetry"]["seconds"] / entry["symmetry"]["seconds"], 2)
    return entry


def run_benchmark(grids: Sequence[str] = DEFAULT_GRIDS,
                  repeats: int = 1) -> dict:
    """Benchmark every ``LABEL:MxN[xL]`` grid; return the JSON payload."""
    entries: List[dict] = []
    for spec in grids:
        label, _, dims = spec.partition(":")
        shape = tuple(int(d) for d in dims.split("x"))
        entries.append(bench_grid(label, shape, repeats=repeats))
    return {
        "schema": SCHEMA,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cpus_available": available_cpus(),
        "workers_effective": effective_workers(None),
        "metrics_equal": all(e["metrics_equal"] for e in entries),
        "entries": entries,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grids", nargs="+", default=list(DEFAULT_GRIDS),
                        metavar="LABEL:MxN[xL]")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(grids=args.grids, repeats=args.repeats)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for e in payload["entries"]:
        print(f"{e['topology']} {e['shape']}: "
              f"{e['sources']} sources -> {e['classes']} classes, "
              f"{e['no_symmetry']['compile_calls']} -> "
              f"{e['symmetry']['compile_calls']} compile calls "
              f"({e['compile_call_reduction']}x), "
              f"{e['no_symmetry']['seconds']}s -> "
              f"{e['symmetry']['seconds']}s ({e['speedup']}x)")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
