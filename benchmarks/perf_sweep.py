"""Sweep-throughput benchmark: serial / cold-cache / warm-cache / parallel.

Times a full source sweep of one topology four ways and writes the
results to ``BENCH_sweep.json`` (repo root by default):

* ``serial``   — plain in-process sweep, no cache.  This is the number the
  vectorised engine is judged on against the seed implementation.
* ``cold``     — serial sweep through a *fresh* on-disk
  :class:`~repro.core.cache.ScheduleCache` (pays compilation + persist).
* ``warm``     — the same sweep again through a *fresh* cache instance on
  the same store directory, so every source is served from the sharded
  artifact store's precomputed counts (no compile, no replay).
* ``parallel`` — ``workers=N`` process-pool sweep, no cache.

The parallel sweep's metrics are asserted bit-for-bit equal to the serial
sweep's before anything is written — a benchmark that silently diverged
from the serial semantics would be measuring the wrong thing.

Run as a script::

    PYTHONPATH=src python benchmarks/perf_sweep.py
    PYTHONPATH=src python benchmarks/perf_sweep.py \
        --topology 2D-4 --shape 32 16 --workers 4 --out BENCH_sweep.json

``benchmarks/test_perf_sweep.py`` smoke-tests this module on a small grid
in tier-2 runs and validates the committed artefact's schema.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.sweep import (available_cpus, effective_workers,
                                  sweep_sources)
from repro.core.cache import ScheduleCache
from repro.core.registry import protocol_for
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-sweep/v2"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _timed_sweep(topology, **kwargs):
    # symmetry=False pins the direct per-source path: this benchmark is
    # the *baseline* the symmetry-reduced sweep (perf_symmetry.py) is
    # measured against, so its modes must keep compiling every source.
    t0 = time.perf_counter()
    result = sweep_sources(topology, symmetry=False, **kwargs)
    return result, time.perf_counter() - t0


def run_benchmark(topology_label: str = "2D-4",
                  shape: Sequence[int] = (32, 16),
                  workers: int = 2,
                  cache_dir: Optional[str] = None,
                  repeats: int = 1) -> dict:
    """Time the four sweep modes; return the BENCH_sweep.json payload.

    *repeats* > 1 re-times each mode and keeps the fastest run (warm-up
    noise suppression); the equality check runs on the first pass.
    """
    topology = make_topology(topology_label, shape=tuple(shape))
    protocol = protocol_for(topology)
    num_sources = topology.num_nodes

    own_tmp = cache_dir is None
    if own_tmp:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sched-cache-")
        cache_dir = tmp.name

    try:
        entries = {}
        serial_metrics = None
        for label in ("serial", "cold", "warm", "parallel"):
            best = None
            for rep in range(max(1, repeats)):
                if label == "serial":
                    result, secs = _timed_sweep(topology, protocol=protocol)
                elif label == "cold":
                    # Fresh disk dir every repeat: always pays compilation.
                    cold_dir = Path(cache_dir) / f"cold-{rep}"
                    result, secs = _timed_sweep(
                        topology, protocol=protocol,
                        cache=ScheduleCache(cold_dir))
                elif label == "warm":
                    warm_dir = Path(cache_dir) / "warm"
                    if rep == 0:
                        sweep_sources(topology, protocol=protocol,
                                      cache=ScheduleCache(warm_dir),
                                      symmetry=False)
                    # Fresh instance: empty memory tier, every source is a
                    # store hit served from persisted counts (no replay).
                    result, secs = _timed_sweep(
                        topology, protocol=protocol,
                        cache=ScheduleCache(warm_dir))
                else:
                    result, secs = _timed_sweep(
                        topology, protocol=protocol, workers=workers)
                if best is None or secs < best[1]:
                    best = (result, secs)
            result, secs = best
            if label == "serial":
                serial_metrics = result.metrics
            else:
                assert result.metrics == serial_metrics, (
                    f"{label} sweep diverged from the serial sweep")
            entries[label] = {
                "seconds": round(secs, 4),
                "sources_per_second": round(num_sources / secs, 1),
            }
    finally:
        if own_tmp:
            tmp.cleanup()

    return {
        "schema": SCHEMA,
        "topology": topology_label,
        "shape": list(shape),
        "sources": num_sources,
        "workers": workers,
        # single-CPU hosts degrade parallel requests to serial; the
        # "parallel" entry then times the serial path
        "workers_effective": effective_workers(workers),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cpus_available": available_cpus(),
        "entries": entries,
        "parallel_matches_serial": True,  # asserted above
        "warm_speedup_vs_cold": round(
            entries["cold"]["seconds"] / entries["warm"]["seconds"], 2),
        # v2: warm hits serve metrics from stored counts (no replay), so a
        # warm sweep must beat even the cache-less serial sweep — this is
        # the regression v1 artefacts exhibited (warm 0.87s vs serial
        # 0.65s) and the store layer exists to fix.
        "warm_speedup_vs_serial": round(
            entries["serial"]["seconds"] / entries["warm"]["seconds"], 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="2D-4")
    parser.add_argument("--shape", type=int, nargs="+", default=[32, 16])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(
        topology_label=args.topology, shape=args.shape,
        workers=args.workers, repeats=args.repeats)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for label, entry in payload["entries"].items():
        print(f"{label:>9}: {entry['seconds']:8.3f}s "
              f"({entry['sources_per_second']:9.1f} sources/s)")
    print(f"warm speedup vs cold: {payload['warm_speedup_vs_cold']}x")
    print(f"warm speedup vs serial: {payload['warm_speedup_vs_serial']}x")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
