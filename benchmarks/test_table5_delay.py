"""Table 5 — maximum delay times, ideal case vs our protocols.

The ideal column is the graph diameter (no schedule can inform a node
before its hop distance).  The protocol column is the worst completion
slot over the swept sources.  The paper reports protocol == ideal for all
four topologies; our compiled schedules match the ideal for 2D-4 and stay
within a bounded overhead elsewhere (EXPERIMENTS.md discusses why).
"""

from conftest import emit

from repro.analysis import render_table, table5_delay
from repro.topology import make_topology


def test_table5_regenerates(sweep_cache, benchmark):
    rows = table5_delay(sweep_cache)
    flat = [{
        "topology": r["topology"],
        "ideal": r["ideal_max_delay"],
        "protocol": r["protocol_max_delay"],
        "paper_ideal": r["paper"]["ideal"],
        "paper_protocol": r["paper"]["protocol"],
    } for r in rows]
    emit("table5_delay", render_table(
        flat, ["topology", "ideal", "protocol",
               "paper_ideal", "paper_protocol"],
        title="Table 5: maximum delay time (slots)"))

    by_label = {r["topology"]: r for r in flat}
    # ideal column: our diameters match the paper within one slot
    for label in by_label:
        assert abs(by_label[label]["ideal"]
                   - by_label[label]["paper_ideal"]) <= 1, label
        # no protocol can beat the ideal
        assert by_label[label]["protocol"] >= by_label[label]["ideal"]
    # 2D-4 achieves the ideal exactly
    assert by_label["2D-4"]["protocol"] == by_label["2D-4"]["ideal"]
    # shape: 3D-6 smallest, 2D-8 smallest among 2D (both columns)
    for col in ("ideal", "protocol"):
        assert by_label["3D-6"][col] == min(r[col] for r in flat)
        assert by_label["2D-8"][col] < by_label["2D-4"][col]
        assert by_label["2D-8"][col] < by_label["2D-3"][col]
    # bounded overhead everywhere
    for label in by_label:
        assert by_label[label]["protocol"] <= \
            1.5 * by_label[label]["ideal"]

    mesh = make_topology("3D-6")
    benchmark(lambda: mesh.eccentricity((1, 1, 1)))
