"""Ablation G — routing context: structured unicast on the lattices.

The paper's closing claim is that its protocols "also can be applied to
the infrastructure wireless networks" and it cites load-balanced routing
[9] and power-efficient lattice routing [12] as companion work.  This
ablation exercises that substrate:

* structured (dimension-ordered / diagonal / brick) routes are verified
  hop-optimal or near-optimal against BFS;
* broadcast-vs-unicast: delivering one packet to all 511 destinations by
  unicast costs an order of magnitude more than the paper's broadcast;
* Valiant waypoint routing flattens hotspot load at ~2x hop cost.
"""

from conftest import emit

from repro.analysis import render_table
from repro.core import protocol_for
from repro.routing import (bfs_route, evaluate_flows, hotspot_flows,
                           random_flows, route, valiant_router)
from repro.sim import compute_metrics
from repro.topology import make_topology, paper_topologies


def test_routing_vs_broadcast(benchmark):
    rows = []
    for label, mesh in paper_topologies().items():
        src = (16, 8) if label != "3D-6" else (4, 4, 4)
        # broadcast: one compiled schedule reaches all 511
        compiled = protocol_for(label).compile(mesh, src)
        bm = compute_metrics(compiled.trace, mesh)
        # unicast: route to every destination separately
        flows = [(src, mesh.coord(i)) for i in range(mesh.num_nodes)
                 if mesh.coord(i) != src]
        fr = evaluate_flows(mesh, flows)
        rows.append({
            "topology": label,
            "broadcast tx": bm.tx,
            "unicast tx": fr.total_hops,
            "ratio": round(fr.total_hops / bm.tx, 1),
            "broadcast E_J": bm.energy_j,
            "unicast E_J": fr.energy_j,
        })
    emit("ablation_routing_broadcast", render_table(
        rows, ["topology", "broadcast tx", "unicast tx", "ratio",
               "broadcast E_J", "unicast E_J"],
        title="Ablation G1: one-to-all by broadcast vs 511 unicasts"))
    for r in rows:
        assert r["broadcast tx"] * 5 < r["unicast tx"], r["topology"]

    mesh = paper_topologies()["2D-4"]
    benchmark(lambda: route(mesh, (1, 1), (32, 16)))


def test_routing_load_balance(benchmark):
    mesh = make_topology("2D-4")
    sink = (16, 8)
    flows = hotspot_flows(mesh, 128, sink, seed=7)
    direct = evaluate_flows(mesh, flows)
    balanced = evaluate_flows(mesh, flows, router=valiant_router(11))
    uniform = evaluate_flows(mesh, random_flows(mesh, 128, seed=7))
    rows = [
        {"traffic": "hotspot, shortest-path", **direct.as_row()},
        {"traffic": "hotspot, valiant waypoints", **balanced.as_row()},
        {"traffic": "uniform, shortest-path", **uniform.as_row()},
    ]
    emit("ablation_routing_load", render_table(
        rows, ["traffic", "flows", "total_hops", "max_hops", "energy_J",
               "max_load", "load_imbalance"],
        title="Ablation G2: load balance under hotspot traffic "
              "(2D-4, 128 flows)"))
    # the reference-[9] trade: flatter load for longer routes
    assert balanced.load_imbalance < direct.load_imbalance
    assert balanced.total_hops > direct.total_hops

    benchmark(lambda: evaluate_flows(mesh, flows[:16]))


def test_structured_routes_near_bfs(benchmark):
    """Hop-count audit of every structured router against BFS."""
    results = []
    for label, mesh in paper_topologies().items():
        pairs = random_flows(mesh, 40, seed=3)
        worst_gap = 0
        for src, dst in pairs:
            structured = len(route(mesh, src, dst)) - 1
            optimal = len(bfs_route(mesh, src, dst)) - 1
            worst_gap = max(worst_gap, structured - optimal)
        results.append({"topology": label, "worst hop gap": worst_gap})
    emit("ablation_routing_optimality", render_table(
        results, ["topology", "worst hop gap"],
        title="Ablation G3: structured route length vs BFS shortest path"))
    by = {r["topology"]: r["worst hop gap"] for r in results}
    assert by["2D-4"] == 0          # Manhattan-optimal
    assert by["2D-8"] == 0          # Chebyshev-optimal
    assert by["3D-6"] == 0          # dimension-ordered optimal
    assert by["2D-3"] <= 4          # parity sidesteps only

    mesh = paper_topologies()["2D-3"]
    benchmark(lambda: bfs_route(mesh, (1, 1), (32, 16)))
