"""Smoke + perf coverage of the symmetry-reduction benchmark.

The smoke test runs the benchmark end-to-end on small grids in every
tier-2 pass, which exercises the symmetry==direct equality assertion and
the JSON artefact schema; the paper-size run (the one that regenerates
the committed ``BENCH_symmetry.json``) is perf-marked.
"""

import json

import pytest

from perf_symmetry import SCHEMA, run_benchmark


def _validate_payload(payload: dict) -> None:
    assert payload["schema"] == SCHEMA
    assert payload["metrics_equal"] is True
    assert payload["cpus_available"] >= 1
    for entry in payload["entries"]:
        assert entry["metrics_equal"] is True
        assert 1 <= entry["classes"] <= entry["sources"]
        assert entry["no_symmetry"]["compile_calls"] == entry["sources"]
        assert entry["symmetry"]["compile_calls"] <= entry["classes"]
        for mode in ("no_symmetry", "symmetry"):
            assert entry[mode]["seconds"] > 0


def test_perf_symmetry_smoke():
    payload = run_benchmark(grids=["2D-4:9x7", "3D-6:4x3x3"], repeats=1)
    _validate_payload(payload)
    assert [e["topology"] for e in payload["entries"]] == ["2D-4", "3D-6"]
    assert json.loads(json.dumps(payload)) == payload


def test_perf_symmetry_cli_writes_artifact(tmp_path, capsys):
    from perf_symmetry import main
    out = tmp_path / "bench.json"
    rc = main(["--grids", "2D-4:8x6", "--repeats", "1", "--out", str(out)])
    assert rc == 0
    _validate_payload(json.loads(out.read_text()))
    assert "classes" in capsys.readouterr().out


@pytest.mark.perf
def test_perf_symmetry_full_size():
    """Paper-size sweeps: the committed-artefact floors must hold."""
    payload = run_benchmark(grids=["2D-4:32x16", "2D-8:32x16"], repeats=3)
    _validate_payload(payload)
    mesh2d4 = payload["entries"][0]
    assert mesh2d4["compile_call_reduction"] >= 5.0
    assert mesh2d4["speedup"] > 1.0
