"""Figure 6 — diagonal vs axis transmission ETR in the 2D-8 mesh.

The paper's argument for building the 2D-8 relay structure out of
diagonals: a relay that received along the diagonal reaches 5 new
neighbours (ETR 5/8), one that received along the X axis only 3 (3/8).
Derived from lattice geometry, and additionally verified on the paper's
concrete Fig. 6 coordinates ((2,3)->(3,2) vs (2,2)->(3,2) on a 4x4 grid).
"""

from fractions import Fraction

from conftest import emit

from repro.core import diagonal_vs_axis_etr
from repro.core.etr import transmission_etr
from repro.topology import Mesh2D8


def fig6_concrete():
    """The exact Fig. 6 scenario on the 4x4 grid of the figure."""
    mesh = Mesh2D8(4, 4)
    receiver = mesh.index((3, 2))
    out = {}
    for kind, prev in (("diagonal", (2, 3)), ("axis", (2, 2))):
        informed = {mesh.index(prev), receiver}
        informed |= {mesh.index(c) for c in mesh.neighbors(prev)}
        out[kind] = transmission_etr(mesh, receiver, informed)
    return out


def test_figure6_regenerates(benchmark):
    interior = benchmark(diagonal_vs_axis_etr)
    concrete = fig6_concrete()
    text = "\n".join([
        "Figure 6: ETR of the relayed hop in 2D-8",
        f"  interior lattice : diagonal {interior[0]}, axis {interior[1]}",
        f"  paper's 4x4 grid : diagonal {concrete['diagonal']}, "
        f"axis {concrete['axis']}",
        "  paper            : diagonal 5/8, axis 3/8",
    ])
    emit("figure6_diagonal_etr", text)

    assert interior == (Fraction(5, 8), Fraction(3, 8))
    assert concrete["diagonal"] == Fraction(5, 8)
    assert concrete["axis"] == Fraction(3, 8)
    # The figure's hop-count claim: diagonal routing (1,4)->(4,1) takes
    # 3 hops where axis routing takes 6.
    mesh = Mesh2D8(4, 4)
    assert mesh.hop_distances((1, 4))[mesh.index((4, 1))] == 3
    assert abs(4 - 1) + abs(1 - 4) == 6
