"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper.  Regenerated
content is printed *and* persisted under ``benchmarks/results/`` so that
EXPERIMENTS.md can quote it.

Environment knobs:

* ``REPRO_BENCH_STRIDE`` — source-position stride for the sweep-based
  tables (3, 4, 5).  Default 4; set to 1 for the exhaustive sweep used in
  EXPERIMENTS.md (adds ~20 s).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import SweepCache

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a regenerated artefact and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_stride() -> int:
    return int(os.environ.get("REPRO_BENCH_STRIDE", "4"))


@pytest.fixture(scope="session")
def sweep_cache(bench_stride) -> SweepCache:
    """One shared sweep over all four paper topologies."""
    return SweepCache.compute(stride=bench_stride)
