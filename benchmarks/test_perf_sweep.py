"""Smoke + perf coverage of the sweep-throughput benchmark.

The smoke test is deliberately *not* perf-marked: it runs the benchmark
end-to-end on a small grid in every tier-2 pass, which exercises the
parallel==serial equality assertion, the schedule-cache round trip and the
JSON artefact schema.  The full-size timing run is perf-marked.
"""

import json

import pytest

from perf_sweep import SCHEMA, run_benchmark


def _validate_payload(payload: dict) -> None:
    assert payload["schema"] == SCHEMA
    assert payload["parallel_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "cold", "warm", "parallel"}
    for entry in payload["entries"].values():
        assert entry["seconds"] > 0
        assert entry["sources_per_second"] > 0
    assert payload["sources"] > 0
    assert payload["workers"] >= 1


def test_perf_sweep_smoke(tmp_path):
    payload = run_benchmark(
        topology_label="2D-4", shape=(8, 6), workers=2,
        cache_dir=str(tmp_path), repeats=1)
    _validate_payload(payload)
    assert payload["topology"] == "2D-4"
    assert payload["sources"] == 48
    # The artefact must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(payload)) == payload


def test_perf_sweep_cli_writes_artifact(tmp_path, capsys):
    from perf_sweep import main
    out = tmp_path / "bench.json"
    rc = main(["--topology", "2D-4", "--shape", "6", "4",
               "--workers", "2", "--repeats", "1", "--out", str(out)])
    assert rc == 0
    _validate_payload(json.loads(out.read_text()))
    assert "parallel" in capsys.readouterr().out


@pytest.mark.perf
def test_perf_sweep_full_size(tmp_path):
    """Paper-size sweep: the vectorised serial path must stay well clear
    of the 3x-over-seed acceptance bar (seed serial: ~2.06 s)."""
    payload = run_benchmark(
        topology_label="2D-4", shape=(32, 16), workers=2,
        cache_dir=str(tmp_path), repeats=1)
    _validate_payload(payload)
    assert payload["entries"]["serial"]["seconds"] < 2.06 / 3
