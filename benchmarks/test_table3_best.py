"""Table 3 — our broadcasting protocols, best case.

Sweeps source positions on each 512-node network and reports the
minimum-power source, side by side with the paper's numbers.  Also
benchmarks a single central-source compile (the unit of work the sweep
repeats).
"""

from conftest import emit

from repro.analysis import render_paper_comparison, table3_best
from repro.core import protocol_for
from repro.topology import make_topology


def test_table3_regenerates(sweep_cache, benchmark):
    rows = table3_best(sweep_cache)
    emit("table3_best", render_paper_comparison(
        rows, ["tx", "rx", "energy_J"],
        title="Table 3: our protocols, best case (min-power source)"))
    by_label = {r["topology"]: r for r in rows}

    # Shape assertions: every broadcast complete; 2D-4 cheapest 2D power;
    # Tx within the paper's regime.
    for label, row in by_label.items():
        assert row["reachability"] == 1.0, label
    assert by_label["2D-4"]["energy_J"] == min(
        by_label[l]["energy_J"] for l in ("2D-3", "2D-4", "2D-8"))
    assert by_label["2D-4"]["tx"] == 208          # exact paper match
    assert abs(by_label["2D-8"]["tx"] - 143) <= 10
    assert abs(by_label["2D-3"]["tx"] - 301) <= 25
    assert abs(by_label["3D-6"]["tx"] - 167) <= 20

    mesh = make_topology("2D-4")
    proto = protocol_for(mesh)
    benchmark(lambda: proto.compile(mesh, (16, 8)))
