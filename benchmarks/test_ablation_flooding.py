"""Ablation C — the paper's protocols vs traditional flooding.

Section 3's motivation: "In traditional broadcasting protocols, almost all
the nodes need to forward the data and thus cause severe collisions."
This ablation quantifies that on all four 512-node topologies: blind
flooding (raw), collision-repaired flooding, staggered flooding and
gossip, against the paper's relay-selected schedules.
"""

from conftest import emit

from repro.analysis import render_table
from repro.core import protocol_for
from repro.core.baselines import (FloodingProtocol, GossipProtocol,
                                  StaggeredFloodingProtocol)
from repro.sim import compute_metrics
from repro.topology import paper_topologies

CENTRAL = {"2D-3": (16, 8), "2D-4": (16, 8), "2D-8": (16, 8),
           "3D-6": (4, 4, 4)}


def test_ablation_flooding(benchmark):
    rows = []
    paper_tx = {}
    flood_tx = {}
    for label, mesh in paper_topologies().items():
        src = CENTRAL[label]
        variants = [
            ("paper protocol", protocol_for(label), {}),
            ("flooding (raw)", FloodingProtocol(),
             {"completion": False, "repair": False}),
            ("flooding (repaired)", FloodingProtocol(), {}),
            ("staggered flooding", StaggeredFloodingProtocol(3),
             {"completion": False, "repair": False}),
            ("gossip p=0.7", GossipProtocol(0.7, seed=1),
             {"completion": False, "repair": False}),
        ]
        for name, proto, kw in variants:
            compiled = proto.compile(mesh, src, **kw)
            m = compute_metrics(compiled.trace, mesh)
            rows.append({
                "topology": label, "variant": name, "tx": m.tx,
                "rx": m.rx, "collisions": m.collisions,
                "delay": m.delay_slots, "energy_J": m.energy_j,
                "reach": round(m.reachability, 3),
            })
            if name == "paper protocol":
                paper_tx[label] = m.tx
            if name == "flooding (repaired)":
                flood_tx[label] = m.tx

    emit("ablation_flooding", render_table(
        rows, ["topology", "variant", "tx", "rx", "collisions",
               "delay", "energy_J", "reach"],
        title="Ablation C: paper protocols vs flooding/gossip "
              "(512 nodes, central source)"))

    for label in paper_tx:
        # relay selection saves a large fraction of transmissions vs a
        # flooding protocol that achieves the same 100% reachability
        assert paper_tx[label] < 0.8 * flood_tx[label], label

    by = {(r["topology"], r["variant"]): r for r in rows}
    for label in paper_tx:
        # raw flooding suffers collisions and (except on sparse 2D-3
        # lattices) fails full reachability
        raw = by[(label, "flooding (raw)")]
        assert raw["collisions"] > 0
        # the paper protocol always reaches everyone
        assert by[(label, "paper protocol")]["reach"] == 1.0

    mesh = paper_topologies()["2D-4"]
    benchmark(lambda: FloodingProtocol().compile(
        mesh, (16, 8), completion=False, repair=False))
