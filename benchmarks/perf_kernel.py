"""Engine-tier throughput benchmark: serial / batch / packed / compiled.

Times the slot-resolve tiers (:mod:`repro.sim.backend`) on two
workloads and writes ``BENCH_kernel.json`` (repo root by default):

* ``sweep`` — the BENCH_robustness reference workload (2D-4 32x16 loss
  degradation, 8 rates x 32 trials) run through every engine plus a
  trial-sharded pass, so the tier numbers are directly comparable to
  the committed robustness baseline.
* ``large_grid`` — one 256-trial Monte-Carlo cell on a 64x64 lattice,
  where the bit-packed word resolve (64 nodes per uint64 op), the
  pair-sparse loss draws, and the optional cffi/C kernel separate from
  the dense gather + full-matrix Bernoulli draws.  This is the cell
  the ``packed_speedup_vs_batch`` acceptance floor is measured on.
* ``recovery_grid`` — the same lattice with the closed-loop recovery
  layer enabled, on the protocol's compiled relay plan (the workload
  the analysis sweeps run).  The recovery update is tiered alongside
  the slot resolve (:mod:`repro.sim.recovery_packed`: word-packed known-edge
  bitsets + due-slot buckets on ``packed``, C inner loops on
  ``compiled``), so this cell carries its own enforced floors —
  ``packed`` >= 2.5x and ``compiled`` >= 5x vs batch — asserted here
  before the artefact is written.

v3 adds the intra-process thread pool of the compiled tier: the
``compiled`` entries pin ``threads=1`` (the single-thread baseline the
v2 floors were measured against), and hosts with >= 2 cores also time
``compiled-mt`` — the same kernel at the default thread width — and
record ``mt_speedup_vs_compiled``.  The multi-thread floors are
*conditional on core count*: they are asserted only when the benchmark
actually has :data:`MT_MIN_CORES` cores to scale across, and the
artefact records the effective ``threads`` / ``cores_available`` so the
tier-1 validator can distinguish "single-core host, floors not
measurable" from "floors silently dropped".

Every engine's results are asserted **bit-identical** to the batch
engine, and a forced multi-shard pass (``run_reactive_batch_sharded``
with explicit worker counts, so the check runs even on one CPU) is
asserted bit-identical to the unsharded run, before anything is
written — the speedups are only meaningful because the tiers are
exactly equivalent.

Run as a script::

    PYTHONPATH=src python benchmarks/perf_kernel.py
    PYTHONPATH=src python benchmarks/perf_kernel.py \
        --grid-shape 48 48 --grid-trials 64 --profile

``--profile`` additionally captures per-phase timings (CSR gather,
bincount, word resolve, loss RNG, commit, and the recovery phases
``recovery-pre`` / ``recovery-post`` / ``recovery-election``) for each
engine via :mod:`repro.profiling` and records them under
``"profile"``; profiles are captured with sharding disabled (the
accumulator is per-process).

``tests/test_bench_artifact.py`` validates the committed artefact's
schema in tier 1; ``tests/test_perf_smoke.py`` keeps a tiny-budget
engine-agreement run inside tier-1.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro import profiling
from repro.analysis.robustness import loss_degradation
from repro.core.registry import protocol_for
from repro.radio.impairments import BernoulliBatchLoss, trial_seeds
from repro.sim import (native_available, native_reason,
                       run_reactive_batch, run_reactive_batch_sharded)
from repro.sim.native import default_native_threads
from repro.sim.recovery import RecoveryPolicy
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-kernel/v3"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
DEFAULT_LOSS_RATES = (0.0, 0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3)

#: Enforced speedups vs batch on the recovery cell (64x64, loss 0.2,
#: t2r2b1k2); the compiled floor applies only when the native tier
#: builds on the host.
RECOVERY_FLOORS = {"packed": 2.5, "compiled": 5.0}

#: Enforced speedups of the multi-threaded compiled run over its own
#: single-thread baseline (``compiled-mt`` vs ``compiled``), per grid
#: section.  Asserted only when the host exposes at least
#: :data:`MT_MIN_CORES` cores — below that the pool has nothing to
#: scale across, so the floor is recorded in the artefact but the
#: assertion is skipped (and the tier-1 validator checks the same
#: condition instead of silently passing).
MT_FLOORS = {"large_grid": 2.0, "recovery_grid": 1.5}
MT_MIN_CORES = 4


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _engines() -> List[str]:
    tiers = ["batch", "packed"]
    if native_available():
        tiers.append("compiled")
    return tiers


def _summaries_equal(a, b) -> bool:
    return (np.array_equal(a.first_rx, b.first_rx)
            and np.array_equal(a.tx_count, b.tx_count)
            and np.array_equal(a.rx_count, b.rx_count)
            and np.array_equal(a.collisions, b.collisions))


def run_sweep(topology_label: str = "2D-4",
              shape: Sequence[int] = (32, 16),
              loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
              trials: int = 32,
              workers: int = 2,
              seed: int = 0,
              repeats: int = 1) -> dict:
    """BENCH_robustness reference workload through every engine tier."""
    topology = make_topology(topology_label, shape=tuple(shape))
    source = tuple(max(1, s // 2) for s in shape)
    n_sims = len(loss_rates) * trials

    entries = {}
    reference = None
    modes = [("serial", dict(engine="serial"))]
    modes += [(e, dict(engine=e)) for e in _engines()]
    modes.append(("sharded", dict(engine="packed", workers=workers)))
    for label, kwargs in modes:
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            points = loss_degradation(topology, source, loss_rates,
                                      trials=trials, seed=seed, **kwargs)
            secs = time.perf_counter() - t0
            if best is None or secs < best[1]:
                best = (points, secs)
        points, secs = best
        if reference is None:
            reference = points
        else:
            assert points == reference, (
                f"{label} degradation curve diverged from serial")
        entries[label] = {
            "seconds": round(secs, 4),
            "simulations_per_second": round(n_sims / secs, 1),
        }
    return {
        "topology": topology_label,
        "shape": list(shape),
        "loss_rates": list(loss_rates),
        "trials": trials,
        "simulations": n_sims,
        "workers": workers,
        "entries": entries,
    }


def run_large_grid(topology_label: str = "2D-4",
                   shape: Sequence[int] = (64, 64),
                   trials: int = 256,
                   loss_rate: float = 0.2,
                   recovery: bool = False,
                   workers: int = 2,
                   seed: int = 0,
                   repeats: int = 1,
                   profile: bool = False) -> dict:
    """One Monte-Carlo cell on a large lattice, per engine tier."""
    topology = make_topology(topology_label, shape=tuple(shape))
    source_coord = tuple(s // 2 for s in shape)
    source = topology.index(source_coord)
    if recovery:
        # The recovery floors protect the workload the analysis sweeps
        # actually run: the protocol's compiled relay plan with guardian
        # episodes on the relay set.  An all-relays flood would make
        # every node a guardian and swamp the resolve with dense
        # retransmission slots — a workload nothing in the repo issues.
        relay = protocol_for(topology_label).relay_plan(
            topology, source_coord).relay_mask
    else:
        relay = np.ones(topology.num_nodes, dtype=bool)
    policy = (RecoveryPolicy(timeout=2, max_retries=2, backoff=1,
                             suppression_k=2) if recovery else None)
    loss = BernoulliBatchLoss(loss_rate, trial_seeds(seed, loss_rate,
                                                     trials))
    common = dict(loss=loss, trials=trials, recovery=policy, summary=True)

    # The compiled tier pins threads=1 so its entry stays the
    # single-thread baseline the v2 floors were measured against;
    # compiled-mt re-runs the same kernel at the default thread width
    # (only worth timing when the host actually has >= 2 cores).
    mt_threads = default_native_threads()
    modes = []
    for engine in _engines():
        kwargs = dict(engine=engine)
        if engine == "compiled":
            kwargs["threads"] = 1
        modes.append((engine, kwargs))
    if native_available() and mt_threads >= 2:
        modes.append(("compiled-mt",
                      dict(engine="compiled", threads=mt_threads)))

    entries = {}
    profiles = {}
    reference = None
    for label, kwargs in modes:
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            summary = run_reactive_batch(topology, source, relay,
                                         **kwargs, **common)
            secs = time.perf_counter() - t0
            if best is None or secs < best[1]:
                best = (summary, secs)
        summary, secs = best
        if reference is None:
            reference = summary
        else:
            assert _summaries_equal(summary, reference), (
                f"{label} diverged from batch on the large grid")
        entries[label] = {
            "seconds": round(secs, 4),
            "simulations_per_second": round(trials / secs, 1),
        }
        if "threads" in kwargs:
            entries[label]["threads"] = kwargs["threads"]
        if profile:
            profiling.start()
            run_reactive_batch(topology, source, relay, **kwargs,
                               **common)
            profiles[label] = {k: round(v, 4) for k, v in
                               sorted(profiling.stop().items())}

    # Forced multi-shard equivalence: explicit worker counts spin up
    # real process pools regardless of visible CPU count.  With a
    # recovery policy this also proves the per-tier recovery state
    # rides trial shards without changing the merged summary.
    for shard_engine in [e for e in _engines() if e != "batch"]:
        for w in (2, workers):
            sharded = run_reactive_batch_sharded(
                topology, source, relay, engine=shard_engine, workers=w,
                **common)
            assert _summaries_equal(sharded, reference), (
                f"{shard_engine} workers={w} shard merge diverged from "
                f"the unsharded run")

    out = {
        "topology": topology_label,
        "shape": list(shape),
        "nodes": topology.num_nodes,
        "trials": trials,
        "loss_rate": loss_rate,
        "recovery": ({"timeout": 2, "max_retries": 2, "backoff": 1,
                      "suppression_k": 2} if recovery else None),
        "entries": entries,
        "packed_speedup_vs_batch": round(
            entries["batch"]["seconds"] / entries["packed"]["seconds"], 2),
    }
    if "compiled" in entries:
        out["compiled_speedup_vs_batch"] = round(
            entries["batch"]["seconds"] / entries["compiled"]["seconds"], 2)
    if "compiled-mt" in entries:
        out["mt_speedup_vs_compiled"] = round(
            entries["compiled"]["seconds"]
            / entries["compiled-mt"]["seconds"], 2)
    if profile:
        out["profile"] = profiles
    return out


def run_benchmark(sweep_shape: Sequence[int] = (32, 16),
                  grid_shape: Sequence[int] = (64, 64),
                  grid_trials: int = 256,
                  recovery_trials: int = 64,
                  trials: int = 32,
                  workers: int = 2,
                  seed: int = 0,
                  repeats: int = 1,
                  profile: bool = False) -> dict:
    sweep = run_sweep(shape=sweep_shape, trials=trials, workers=workers,
                      seed=seed, repeats=repeats)
    grid = run_large_grid(shape=grid_shape, trials=grid_trials,
                          workers=workers, seed=seed, repeats=repeats,
                          profile=profile)
    recovery_grid = run_large_grid(shape=grid_shape,
                                   trials=recovery_trials, recovery=True,
                                   workers=workers, seed=seed,
                                   repeats=repeats, profile=profile)
    # Recovery floors: the whole point of the tiered recovery state.
    # Enforced at the reference scale only — tiny --grid-shape /
    # --recovery-trials drives have too little work to amortize the
    # packed setup (the tier-1 artefact validator independently holds
    # any *committed* artefact to the floors regardless of scale).
    at_reference_scale = (recovery_grid["nodes"] >= 4096
                          and recovery_grid["trials"] >= 64)
    cores = _cores_available()
    if at_reference_scale and cores >= MT_MIN_CORES:
        # Multi-thread floors: only measurable when there are cores to
        # scale across; a 1-core run records no compiled-mt entry at
        # all, which the artefact validator checks explicitly.
        for section, section_grid in (("large_grid", grid),
                                      ("recovery_grid", recovery_grid)):
            mt = section_grid.get("mt_speedup_vs_compiled")
            if mt is not None:
                assert mt >= MT_FLOORS[section], (
                    f"{section} compiled-mt speedup {mt}x below the "
                    f"{MT_FLOORS[section]}x floor on {cores} cores")
    if at_reference_scale:
        assert (recovery_grid["packed_speedup_vs_batch"]
                >= RECOVERY_FLOORS["packed"]), (
            f"recovery cell packed speedup "
            f"{recovery_grid['packed_speedup_vs_batch']}x below the "
            f"{RECOVERY_FLOORS['packed']}x floor")
        if "compiled_speedup_vs_batch" in recovery_grid:
            assert (recovery_grid["compiled_speedup_vs_batch"]
                    >= RECOVERY_FLOORS["compiled"]), (
                f"recovery cell compiled speedup "
                f"{recovery_grid['compiled_speedup_vs_batch']}x below the "
                f"{RECOVERY_FLOORS['compiled']}x floor")
    recovery_grid["speedup_floors"] = dict(RECOVERY_FLOORS)
    return {
        "schema": SCHEMA,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cores_available": cores,
        "threads": default_native_threads(),
        "mt_speedup_floors": {**MT_FLOORS, "min_cores": MT_MIN_CORES},
        "native_available": native_available(),
        "native_reason": None if native_available() else native_reason(),
        "engines_equal": True,     # asserted in run_sweep/run_large_grid
        "shard_invariant": True,   # asserted in run_large_grid
        "sweep": sweep,
        "large_grid": grid,
        "recovery_grid": recovery_grid,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sweep-shape", type=int, nargs=2,
                        default=[32, 16])
    parser.add_argument("--grid-shape", type=int, nargs=2,
                        default=[64, 64])
    parser.add_argument("--grid-trials", type=int, default=256)
    parser.add_argument("--recovery-trials", type=int, default=64)
    parser.add_argument("--trials", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--profile", action="store_true",
                        help="capture per-phase timings (gather, "
                             "bincount, resolve, loss-rng, commit, "
                             "recovery-pre/-post/-election) for each "
                             "engine")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(
        sweep_shape=args.sweep_shape, grid_shape=args.grid_shape,
        grid_trials=args.grid_trials,
        recovery_trials=args.recovery_trials, trials=args.trials,
        workers=args.workers, seed=args.seed, repeats=args.repeats,
        profile=args.profile)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print("sweep (vs BENCH_robustness workload):")
    for label, entry in payload["sweep"]["entries"].items():
        print(f"{label:>9}: {entry['seconds']:8.3f}s "
              f"({entry['simulations_per_second']:9.1f} sims/s)")
    for section in ("large_grid", "recovery_grid"):
        grid = payload[section]
        rec = " + recovery" if grid["recovery"] else ""
        print(f"{section} ({grid['nodes']} nodes, {grid['trials']} "
              f"trials{rec}):")
        for label, entry in grid["entries"].items():
            print(f"{label:>9}: {entry['seconds']:8.3f}s "
                  f"({entry['simulations_per_second']:9.1f} sims/s)")
        print(f"  packed speedup vs batch: "
              f"{grid['packed_speedup_vs_batch']}x")
        if "compiled_speedup_vs_batch" in grid:
            print(f"  compiled speedup vs batch: "
                  f"{grid['compiled_speedup_vs_batch']}x")
        if "mt_speedup_vs_compiled" in grid:
            width = grid["entries"]["compiled-mt"]["threads"]
            print(f"  compiled-mt ({width} threads) speedup vs "
                  f"compiled: {grid['mt_speedup_vs_compiled']}x")
        for engine, phases in grid.get("profile", {}).items():
            print(f"  profile[{engine}]: " + ", ".join(
                f"{k}={v:.3f}s" for k, v in phases.items()))
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
