"""Extension benchmarks — robustness of the compiled schedules.

Not a paper table: the paper assumes a pristine channel and network.
These benchmarks measure how its schedules degrade under packet loss and
node failures, and what the two natural mitigations cost:

* blind ARQ hardening (every relay repeats r times) against loss,
* recompiling with failure knowledge (the compiler's completion/repair
  routes around corpses) against node deaths.
"""

from conftest import emit

from repro.analysis import (failure_degradation, loss_degradation,
                            render_table)
from repro.topology import make_topology

SOURCE = (16, 8)


def test_loss_degradation_and_hardening(benchmark):
    mesh = make_topology("2D-4")
    rows = []
    for harden in (0, 1, 2):
        points = loss_degradation(mesh, SOURCE, [0.0, 0.02, 0.05, 0.1],
                                  trials=5, harden=harden, seed=1)
        for p in points:
            rows.append({
                "relay repeats": harden,
                "loss rate": p.parameter,
                "mean reach": round(p.mean_reachability, 3),
                "min reach": round(p.min_reachability, 3),
                "mean tx": round(p.mean_tx, 1),
            })
    emit("robustness_loss", render_table(
        rows, ["relay repeats", "loss rate", "mean reach", "min reach",
               "mean tx"],
        title="Extension: reachability under Bernoulli packet loss "
              "(2D-4, 512 nodes)"))

    by = {(r["relay repeats"], r["loss rate"]): r for r in rows}
    # clean channel: always perfect
    for h in (0, 1, 2):
        assert by[(h, 0.0)]["mean reach"] == 1.0
    # hardening buys back reachability at 5% loss...
    assert by[(2, 0.05)]["mean reach"] >= by[(0, 0.05)]["mean reach"]
    # ...and costs transmissions
    assert by[(2, 0.05)]["mean tx"] > by[(0, 0.05)]["mean tx"]

    benchmark(lambda: loss_degradation(mesh, SOURCE, [0.05], trials=1))


def test_failure_degradation_and_recompile(benchmark):
    mesh = make_topology("2D-4")
    rows = []
    for recompile in (False, True):
        points = failure_degradation(mesh, SOURCE, [0, 5, 15, 30],
                                     trials=5, recompile=recompile, seed=1)
        for p in points:
            rows.append({
                "mode": "recompile" if recompile else "static replay",
                "failed nodes": int(p.parameter),
                "mean live reach": round(p.mean_reachability, 3),
                "min live reach": round(p.min_reachability, 3),
                "mean tx": round(p.mean_tx, 1),
            })
    emit("robustness_failures", render_table(
        rows, ["mode", "failed nodes", "mean live reach",
               "min live reach", "mean tx"],
        title="Extension: reachability of surviving nodes after random "
              "node failures (2D-4, 512 nodes)"))

    by = {(r["mode"], r["failed nodes"]): r for r in rows}
    assert by[("static replay", 0)]["mean live reach"] == 1.0
    # a static schedule degrades; recompiling routes around the corpses
    assert by[("recompile", 15)]["mean live reach"] > \
        by[("static replay", 15)]["mean live reach"]
    assert by[("recompile", 15)]["mean live reach"] >= 0.98

    benchmark(lambda: failure_degradation(mesh, SOURCE, [15], trials=1,
                                          recompile=True))
