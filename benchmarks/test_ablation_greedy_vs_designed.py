"""Ablation E — hand-crafted relay rules vs pure ETR-greedy selection.

The paper's protocols encode per-lattice structure (rows + columns,
diagonal spines, staircases, Lee z-relays).  Its *stated principle*,
though, is simply "choose the node which has a higher ETR as the relay
node".  This ablation asks how much the structure buys over applying the
principle greedily with no structure at all — and extends the comparison
to the hexagonal 2D-6 lattice of the paper's reference [12], which only
the greedy protocol can serve.
"""

from conftest import emit

from repro.analysis import render_table
from repro.core import ideal_case, protocol_for
from repro.core.baselines import GreedyETRProtocol
from repro.sim import compute_metrics
from repro.topology import Mesh2D6, paper_topologies

CENTRAL = {"2D-3": (16, 8), "2D-4": (16, 8), "2D-8": (16, 8),
           "3D-6": (4, 4, 4), "2D-6": (16, 8)}


def test_ablation_greedy_vs_designed(benchmark):
    topologies = dict(paper_topologies())
    topologies["2D-6"] = Mesh2D6(32, 16)

    rows = []
    overhead = {}
    for label, mesh in topologies.items():
        src = CENTRAL[label]
        ideal_tx = ideal_case(mesh).tx
        greedy = GreedyETRProtocol().compile(mesh, src)
        gm = compute_metrics(greedy.trace, mesh)
        entry = {
            "topology": label, "protocol": "greedy-etr",
            "tx": gm.tx, "ideal_tx": ideal_tx,
            "delay": gm.delay_slots, "energy_J": gm.energy_j,
            "reach": gm.reachability,
        }
        rows.append(entry)
        if label != "2D-6":  # the paper has no designed 2D-6 protocol
            designed = protocol_for(label).compile(mesh, src)
            dm = compute_metrics(designed.trace, mesh)
            rows.append({
                "topology": label, "protocol": "designed (paper)",
                "tx": dm.tx, "ideal_tx": ideal_tx,
                "delay": dm.delay_slots, "energy_J": dm.energy_j,
                "reach": dm.reachability,
            })
            overhead[label] = (dm.tx, gm.tx)

    emit("ablation_greedy_vs_designed", render_table(
        rows, ["topology", "protocol", "tx", "ideal_tx", "delay",
               "energy_J", "reach"],
        title="Ablation E: designed relay rules vs pure ETR-greedy "
              "(512 nodes, central source)"))

    # both reach everyone
    assert all(r["reach"] == 1.0 for r in rows)
    # the designed rules transmit less on every lattice they exist for
    for label, (designed_tx, greedy_tx) in overhead.items():
        assert designed_tx < greedy_tx, label
    # but greedy stays within 2x of ideal everywhere — the principle alone
    # is already far better than flooding
    for r in rows:
        if r["protocol"] == "greedy-etr":
            assert r["tx"] <= 2.0 * r["ideal_tx"], r["topology"]

    mesh = topologies["2D-6"]
    benchmark(lambda: GreedyETRProtocol().compile(mesh, (16, 8)))
