"""Ablation D — energy-accounting sensitivity.

The paper charges reception energy only for successfully decoded packets.
A stricter model also charges nodes for listening through collided slots.
This ablation quantifies how much that modelling choice moves the Table
3/4 numbers — i.e. whether the paper's conclusion is robust to it.
"""

from conftest import emit

from repro.analysis import render_table
from repro.core import protocol_for
from repro.sim import compute_metrics
from repro.topology import paper_topologies

CENTRAL = {"2D-3": (16, 8), "2D-4": (16, 8), "2D-8": (16, 8),
           "3D-6": (4, 4, 4)}


def test_ablation_energy_accounting(benchmark):
    rows = []
    cheapest = {}
    for label, mesh in paper_topologies().items():
        compiled = protocol_for(label).compile(mesh, CENTRAL[label])
        base = compute_metrics(compiled.trace, mesh)
        strict = compute_metrics(compiled.trace, mesh,
                                 count_collided_rx_energy=True)
        rows.append({
            "topology": label,
            "energy_J (paper accounting)": base.energy_j,
            "energy_J (charge collisions)": strict.energy_j,
            "overhead_%": 100 * (strict.energy_j / base.energy_j - 1),
            "collisions": base.collisions,
        })
        cheapest[label] = (base.energy_j, strict.energy_j)
    emit("ablation_energy_accounting", render_table(
        rows, ["topology", "energy_J (paper accounting)",
               "energy_J (charge collisions)", "overhead_%", "collisions"],
        title="Ablation D: charging reception energy for collided slots"))

    # the modelling choice moves totals by only a few percent and does
    # not change the winner
    for label, (base, strict) in cheapest.items():
        assert strict >= base
        assert strict <= 1.10 * base, label
    two_d = {l: cheapest[l][1] for l in ("2D-3", "2D-4", "2D-8")}
    assert min(two_d, key=two_d.__getitem__) == "2D-4"

    mesh = paper_topologies()["2D-4"]
    compiled = protocol_for("2D-4").compile(mesh, (16, 8))
    benchmark(lambda: compute_metrics(compiled.trace, mesh,
                                      count_collided_rx_energy=True))
