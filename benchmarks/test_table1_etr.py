"""Table 1 — optimal ETRs of the four topologies.

Regenerates the table from first principles (neighbourhood geometry), and
benchmarks the per-transmission ETR evaluation kernel.
"""

from fractions import Fraction

from conftest import emit

from repro.analysis import render_table
from repro.core import optimal_etr, protocol_for, trace_etrs
from repro.core.etr import OPTIMAL_ETR, transmission_etr
from repro.topology import Mesh2D4, make_topology

PAPER_TABLE1 = {
    "2D-3": Fraction(2, 3),
    "2D-4": Fraction(3, 4),
    "2D-8": Fraction(5, 8),
    "3D-6": Fraction(5, 6),
}


def derive_optimal_etr(label: str) -> Fraction:
    """Derive each optimum from an actual relay transmission on a concrete
    lattice instead of trusting the constant table."""
    topo = make_topology(label, shape=(7, 7) if label != "3D-6"
                         else (5, 5, 5))
    centre = (4, 4) if label != "3D-6" else (3, 3, 3)
    best = Fraction(0)
    for parent in topo.neighbors(centre):
        informed = {topo.index(parent), topo.index(centre)}
        informed |= {topo.index(c) for c in topo.neighbors(parent)}
        best = max(best, transmission_etr(topo, topo.index(centre),
                                          informed))
    return best


def test_table1_regenerates(benchmark):
    rows = []
    for label in PAPER_TABLE1:
        derived = derive_optimal_etr(label)
        rows.append({
            "topology": label,
            "derived_optimal_ETR": str(derived),
            "paper": str(PAPER_TABLE1[label]),
            "match": derived == PAPER_TABLE1[label] == optimal_etr(label),
        })
    emit("table1_etr", render_table(
        rows, ["topology", "derived_optimal_ETR", "paper", "match"],
        title="Table 1: optimal ETRs (derived from lattice geometry)"))
    assert all(r["match"] for r in rows)

    # benchmark the ETR kernel on a realistic trace
    mesh = Mesh2D4(16, 16)
    compiled = protocol_for("2D-4").compile(mesh, (6, 8))
    benchmark(lambda: trace_etrs(mesh, compiled.trace))
