"""Chaos benchmark: availability and answer fidelity under injected faults.

Runs the canonical fault schedule (:func:`repro.faults.canonical_plan`)
against a live ``BackgroundServer`` and writes ``BENCH_faults.json``:

* ``baseline`` — a fault-free engine answers every source in-process
  (the oracle: its metrics rows are the ground truth).
* ``chaos`` — the same query set over the wire while the plan drops
  connections, garbles responses, tears store writes and stalls
  compiles; the retrying :class:`~repro.service.client.ServiceClient`
  must keep **availability >= 0.99** and every answered query must
  equal the oracle row exactly.
* ``shard_retry`` — the canonical worker murder (shard 1, attempt 0)
  under the same armed plan; the retried sharded summary must be
  bit-identical to the unsharded run.
* ``demotion`` — a mid-run word-tier fault rides the circuit-breaker
  demotion ladder; the result must equal the dense batch tier.
* ``deadline`` — an already-expired query must shed *before* burning a
  compile (the structured-refusal fast path).

Every floor is asserted before the artefact is written, and
``tests/test_bench_artifact.py`` re-validates the committed file, so a
hand-edited artefact cannot claim resilience the run did not show.

Run as a script::

    PYTHONPATH=src python benchmarks/perf_faults.py
    PYTHONPATH=src python benchmarks/perf_faults.py \
        --topology 2D-4 --shape 8 8 --out BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro import faults
from repro.core.compiler import compile_call_count
from repro.radio.impairments import BernoulliBatchLoss, trial_seeds
from repro.service import (BackgroundServer, DeadlineExceeded, Query,
                           QueryEngine, RetryPolicy, ServiceClient)
from repro.sim import run_reactive_batch, run_reactive_batch_sharded
from repro.sim.backend import BREAKER
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-faults/v1"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: The committed artefact's floors (mirrored by the validator).
AVAILABILITY_FLOOR = 0.99


def _norm_row(row: dict) -> dict:
    return json.loads(json.dumps({**row, "source": list(row["source"])}))


def _summaries_equal(a, b) -> bool:
    return (np.array_equal(a.first_rx, b.first_rx)
            and np.array_equal(a.tx_count, b.tx_count)
            and np.array_equal(a.rx_count, b.rx_count)
            and np.array_equal(a.collisions, b.collisions)
            and a.dropped_forced == b.dropped_forced)


def run_benchmark(topology_label: str = "2D-4",
                  shape: Sequence[int] = (8, 8)) -> dict:
    """Run the chaos schedule; return the BENCH_faults.json payload."""
    topology = make_topology(topology_label, shape=tuple(shape))
    sources = [topology.coord(i) for i in range(topology.num_nodes)]
    queries = [Query(topology=topology_label, source=tuple(src),
                     shape=tuple(shape), timeout_ms=60_000.0)
               for src in sources]

    BREAKER.reset()

    # -- baseline: the fault-free oracle --------------------------------
    oracle = QueryEngine()
    t0 = time.perf_counter()
    expected = [_norm_row(oracle.query(q).metrics.as_row())
                for q in queries]
    baseline_secs = time.perf_counter() - t0

    plan = faults.canonical_plan()
    with tempfile.TemporaryDirectory(prefix="repro-faults-bench-") as tmp:
        chaos_engine = QueryEngine(Path(tmp) / "store")
        with plan.arm():
            # -- chaos leg: the full query set over a faulty wire -------
            with BackgroundServer(chaos_engine, port=0) as srv:
                client = ServiceClient(
                    port=srv.port,
                    retry=RetryPolicy(attempts=6, base_delay=0.01,
                                      seed=42))
                t0 = time.perf_counter()
                responses = [client.query(q) for q in queries]
                chaos_secs = time.perf_counter() - t0
                client_retries = client.retries
                client_reconnects = client.reconnects
                client.close()

            # -- shard leg: canonical worker murder, bit-identity -------
            mesh = make_topology(topology_label, shape=(5, 4))
            relay = np.ones(mesh.num_nodes, dtype=bool)
            kwargs = dict(trials=6, summary=True,
                          loss=BernoulliBatchLoss(
                              0.2, trial_seeds(0, 0.2, 6)))
            t0 = time.perf_counter()
            unsharded = run_reactive_batch(mesh, 0, relay, **kwargs)
            sharded = run_reactive_batch_sharded(mesh, 0, relay,
                                                 workers=3, **kwargs)
            shard_secs = time.perf_counter() - t0
            shard_identical = _summaries_equal(unsharded, sharded)

            # -- demotion leg: word-tier fault mid-run ------------------
            calm = run_reactive_batch(mesh, 0, relay, engine="batch",
                                      trials=4, summary=True)
            chaotic = run_reactive_batch(mesh, 0, relay, engine="auto",
                                         trials=4, summary=True)
            demotion_equal = _summaries_equal(calm, chaotic)

    # -- deadline leg: shed costs no compile ----------------------------
    shed_engine = QueryEngine()
    calls0 = compile_call_count()
    try:
        shed_engine.query(Query(topology=topology_label,
                                source=tuple(sources[0]),
                                shape=tuple(shape),
                                deadline=time.monotonic() - 1.0))
    except DeadlineExceeded:
        pass
    compiles_burned = compile_call_count() - calls0
    shed = shed_engine.stats()["shed"]

    breaker_state = BREAKER.state()
    BREAKER.reset()

    ok = [r for r in responses if r.get("ok")]
    availability = len(ok) / len(queries)
    answers_equal = all(
        response["metrics"] == want
        for response, want in zip(responses, expected)
        if response.get("ok"))
    stats = plan.stats()
    fired_total = sum(s["fired"] for s in stats.values())

    # The floors, asserted before anything is written.
    assert availability >= AVAILABILITY_FLOOR, (
        f"availability {availability:.3f} under the canonical plan")
    assert answers_equal, "an answered chaos query diverged from the oracle"
    assert shard_identical, "shard retry was not bit-identical"
    assert demotion_equal, "tier demotion changed the answers"
    assert fired_total > 0, "the chaos plan never fired — nothing measured"
    assert compiles_burned == 0 and shed == 1, (
        "an expired query reached the compiler")

    return {
        "schema": SCHEMA,
        "topology": topology_label,
        "shape": list(shape),
        "sources": len(sources),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "plan_seed": plan.seed,
        "entries": {
            "baseline": {
                "queries": len(queries),
                "seconds": round(baseline_secs, 4),
                "queries_per_second": round(
                    len(queries) / baseline_secs, 1),
            },
            "chaos": {
                "queries": len(queries),
                "seconds": round(chaos_secs, 4),
                "queries_per_second": round(len(queries) / chaos_secs, 1),
            },
        },
        "availability": round(availability, 4),
        "availability_floor": AVAILABILITY_FLOOR,
        "answers_equal": answers_equal,
        "client": {"retries": client_retries,
                   "reconnects": client_reconnects},
        "shard_retry": {"identical": shard_identical, "workers": 3,
                        "seconds": round(shard_secs, 4)},
        "demotion": {"answers_equal": demotion_equal},
        "deadline": {"shed": shed, "compiles_burned": compiles_burned},
        "store_errors": chaos_engine.cache.store_errors,
        "breaker": breaker_state,
        "faults": stats,
        "faults_fired_total": fired_total,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="2D-4")
    parser.add_argument("--shape", type=int, nargs="+", default=[8, 8])
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(topology_label=args.topology, shape=args.shape)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for label, entry in payload["entries"].items():
        print(f"{label:>8}: {entry['seconds']:8.3f}s "
              f"({entry['queries_per_second']:9.1f} queries/s)")
    print(f"availability under chaos: {payload['availability']:.4f} "
          f"(floor {payload['availability_floor']})")
    print(f"client retries/reconnects: {payload['client']['retries']}/"
          f"{payload['client']['reconnects']}")
    fired = {seam: s["fired"] for seam, s in payload["faults"].items()
             if s["fired"]}
    print(f"faults fired: {fired}")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
