"""Figure 8 — one-to-all broadcast for 2D mesh with 3 neighbours.

Regenerates the worked example: source (10, 7) on a 20x14 brick mesh (the
figure's proportions), with the region partition and the staircase value
sets R1-R4 select: S1 pairs {16,17}, {12,13}, {8,9}, {20,21}, {24,25} and
S2 pairs {3,4}, {-1,0}, {-5,-4}, {7,8}, {11,12}.
"""

from conftest import emit

from repro.core import partition, protocol_for
from repro.topology import Mesh2D3
from repro.viz import relay_map, summary_block, wave_map


def region_map(mesh, part):
    lines = ["region partition (1/2/3)"]
    for y in range(mesh.n, 0, -1):
        row = " ".join(str(part.region_of((x, y)))
                       for x in range(1, mesh.m + 1))
        lines.append(f"{y:3d} {row}")
    return "\n".join(lines)


def test_figure8_regenerates(benchmark):
    mesh = Mesh2D3(20, 14)
    proto = protocol_for(mesh)
    compiled = benchmark(lambda: proto.compile(mesh, (10, 7)))
    part = partition(mesh, (10, 7))

    text = "\n\n".join([
        summary_block(mesh, compiled),
        f"base nodes: a={part.base_a}, b={part.base_b} "
        "(paper: a=(10,5), b=(10,8))",
        region_map(mesh, part),
        relay_map(mesh, compiled),
        wave_map(mesh, compiled, what="rx"),
    ])
    emit("figure8_2d3_example", text)

    assert compiled.reached_all
    assert part.base_a == (10, 5) and part.base_b == (10, 8)
    # the paper's S1/S2 value pairs are all in the selected families
    notes = compiled.plan.notes
    for c in (16, 17, 12, 13, 8, 9, 20, 21, 24, 25):
        assert c in notes["b1_values"]
    for c in (3, 4, -1, 0, -5, -4, 7, 8, 11, 12):
        assert c in notes["b2_values"]
    # relay density stays in the optimal-ETR regime (~1 relay / 2 nodes)
    relays = len({v for _, v in compiled.trace.tx_events})
    assert relays <= 0.72 * mesh.num_nodes
