"""Smoke + perf coverage of the robustness-sweep benchmark.

The smoke test is deliberately *not* perf-marked: it runs the benchmark
end-to-end on a small grid in every tier-2 pass, which exercises the
batched == serial equality assertion and the JSON artefact schema.  The
full-size timing run (the ISSUE's >= 3x acceptance bar) is perf-marked.
"""

import json

import pytest

from perf_robustness import SCHEMA, run_benchmark


def _validate_payload(payload: dict) -> None:
    assert payload["schema"] == SCHEMA
    assert payload["batched_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "batched", "parallel"}
    for entry in payload["entries"].values():
        assert entry["seconds"] > 0
        assert entry["simulations_per_second"] > 0
    assert payload["simulations"] == \
        len(payload["loss_rates"]) * payload["trials"]
    assert payload["workers"] >= 1
    assert payload["batched_speedup_vs_serial"] > 0


def test_perf_robustness_smoke():
    payload = run_benchmark(
        topology_label="2D-4", shape=(8, 6),
        loss_rates=(0.0, 0.1, 0.2), trials=4, workers=2, repeats=1)
    _validate_payload(payload)
    assert payload["topology"] == "2D-4"
    # The artefact must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(payload)) == payload


def test_perf_robustness_cli_writes_artifact(tmp_path, capsys):
    from perf_robustness import main
    out = tmp_path / "bench.json"
    rc = main(["--topology", "2D-4", "--shape", "6", "4",
               "--loss-rates", "0", "0.1", "--trials", "2",
               "--workers", "2", "--repeats", "1", "--out", str(out)])
    assert rc == 0
    _validate_payload(json.loads(out.read_text()))
    assert "batched speedup" in capsys.readouterr().out


@pytest.mark.perf
def test_perf_robustness_full_size():
    """ISSUE acceptance bar: on the paper-size 2D-4 grid, 8 loss rates x
    32 trials, the batched engine must beat the serial trial loop >= 3x."""
    payload = run_benchmark(
        topology_label="2D-4", shape=(32, 16), trials=32,
        workers=2, repeats=1)
    _validate_payload(payload)
    assert payload["batched_speedup_vs_serial"] >= 3.0
