"""Figure 5 — one-to-all broadcast for 2D mesh with 4 neighbours.

Regenerates the worked example: 16x16 mesh, source (6, 8).  The paper's
figure shows the relay nodes (black), the retransmitters (gray) at
(2,8), (5,8), (7,8), (10,8), (13,8), (16,8), and the per-edge transmission
sequence; we render the same content as ASCII maps.
"""

from conftest import emit

from repro.core import protocol_for
from repro.topology import Mesh2D4
from repro.viz import relay_map, summary_block, wave_map

PAPER_GRAY_NODES = [(2, 8), (5, 8), (7, 8), (10, 8), (13, 8), (16, 8)]


def test_figure5_regenerates(benchmark):
    mesh = Mesh2D4(16, 16)
    proto = protocol_for(mesh)
    compiled = benchmark(lambda: proto.compile(mesh, (6, 8)))

    text = "\n\n".join([
        summary_block(mesh, compiled),
        relay_map(mesh, compiled),
        wave_map(mesh, compiled, what="rx"),
    ])
    emit("figure5_2d4_example", text)

    assert compiled.reached_all
    grays = sorted(mesh.coord(v)
                   for v in compiled.trace.retransmitting_nodes())
    assert grays == PAPER_GRAY_NODES
    # the paper's figure needs no completion/repair on its own grid
    assert compiled.completions == [] and compiled.repairs == []
