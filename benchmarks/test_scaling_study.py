"""Extension benchmark — scaling beyond the paper's single 512-node size.

Verifies the asymptotics the design implies: transmissions track the
ideal model (overhead *shrinks* as border effects amortise), delay tracks
the diameter, and 100 % reachability holds at every size.
"""

from conftest import emit

from repro.analysis import render_table
from repro.analysis.scaling import scaling_curve

SIZES_2D = (128, 512, 1152, 2048)
SIZES_3D = (64, 512, 1728)


def test_scaling_study(benchmark):
    rows = []
    curves = {}
    for label in ("2D-3", "2D-4", "2D-8", "3D-6"):
        sizes = SIZES_3D if label == "3D-6" else SIZES_2D
        pts = scaling_curve(label, sizes=sizes)
        curves[label] = pts
        rows.extend(p.as_row() for p in pts)
    emit("scaling_study", render_table(
        rows, ["topology", "nodes", "shape", "tx", "ideal_tx", "tx/ideal",
               "delay", "ideal_delay", "energy_J", "reach"],
        title="Extension: broadcast cost vs network size "
              "(central source)"))

    for label, pts in curves.items():
        # full reachability at every size
        assert all(p.reachability == 1.0 for p in pts), label
        # delay stays within 1.35x of the hop lower bound
        for p in pts:
            assert p.delay_slots <= 1.35 * p.ideal_delay + 2, (label, p)
        # transmission overhead over ideal does not grow with size
        overheads = [p.tx_overhead for p in pts]
        assert overheads[-1] <= overheads[0] + 0.05, label

    benchmark(lambda: scaling_curve("2D-4", sizes=(2048,)))
