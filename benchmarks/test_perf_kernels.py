"""Performance micro-benchmarks of the simulation substrate.

Not a paper table — these track the cost of the kernels every experiment
is built from, so regressions in the vectorised hot paths are caught.
"""

import numpy as np
import pytest

from repro.radio import PAPER_RADIO_MODEL, resolve_slot

pytestmark = pytest.mark.perf
from repro.sim import replay, run_reactive
from repro.core import protocol_for
from repro.topology import Mesh2D8, Mesh3D6, make_topology
from repro.topology.graph import bfs_distances


@pytest.fixture(scope="module")
def big_mesh():
    return Mesh2D8(64, 64)


def test_perf_adjacency_build(benchmark):
    benchmark(lambda: Mesh2D8(64, 64).adjacency)


def test_perf_bfs(benchmark, big_mesh):
    adj = big_mesh.adjacency
    result = benchmark(lambda: bfs_distances(adj, 0))
    assert result.max() == 63


def test_perf_resolve_slot(benchmark, big_mesh):
    rng = np.random.default_rng(0)
    tx = rng.random(big_mesh.num_nodes) < 0.1
    out = benchmark(lambda: resolve_slot(big_mesh.adjacency, tx))
    assert out.heard.shape == (big_mesh.num_nodes,)


def test_perf_reactive_wave_4096_nodes(benchmark, big_mesh):
    relay = np.ones(big_mesh.num_nodes, dtype=bool)
    trace = benchmark(lambda: run_reactive(
        big_mesh, 0, relay))
    assert trace.num_tx >= 1


def test_perf_full_compile_512(benchmark):
    mesh = make_topology("2D-4")
    proto = protocol_for(mesh)
    compiled = benchmark(lambda: proto.compile(mesh, (16, 8)))
    assert compiled.reached_all


def test_perf_compile_3d(benchmark):
    mesh = Mesh3D6(8, 8, 8)
    proto = protocol_for(mesh)
    compiled = benchmark(lambda: proto.compile(mesh, (4, 4, 4)))
    assert compiled.reached_all


def test_perf_replay_512(benchmark):
    mesh = make_topology("2D-4")
    compiled = protocol_for(mesh).compile(mesh, (16, 8))
    trace = benchmark(lambda: replay(mesh, compiled.schedule,
                                     compiled.source))
    assert trace.all_reached


def test_perf_energy_batch(benchmark):
    bits = np.full(100_000, 512.0)
    d = np.full(100_000, 0.5)
    out = benchmark(lambda: PAPER_RADIO_MODEL.tx_energy_batch(bits, d))
    assert out.shape == (100_000,)
