"""Robustness-sweep throughput benchmark: serial / batched / parallel.

Times one loss-degradation curve (Monte-Carlo over Bernoulli channels)
three ways and writes the results to ``BENCH_robustness.json`` (repo root
by default):

* ``serial``   — ``engine="serial"``: the per-trial loop through the
  one-trial reactive engine, the pre-batching execution model.
* ``batched``  — ``engine="batch"``: all trials of each loss rate advance
  together through :func:`~repro.sim.engine.run_reactive_batch` in
  summary mode (one CSR gather + 2D bincount per slot for the whole
  batch).
* ``parallel`` — the batched engine plus ``workers=N`` fanning the loss
  rates out over processes.

The batched curve is asserted point-for-point equal to the serial curve
before anything is written — the speedup is only meaningful because the
two engines are exactly equivalent (the per-trial counter-RNG seeds make
trial *b* of the batch bit-identical to serial trial *b*).

Run as a script::

    PYTHONPATH=src python benchmarks/perf_robustness.py
    PYTHONPATH=src python benchmarks/perf_robustness.py \
        --topology 2D-4 --shape 32 16 --trials 32 --workers 4

``benchmarks/test_perf_robustness.py`` smoke-tests this module on a small
grid in tier-2 runs; ``tests/test_bench_artifact.py`` validates the
committed artefact's schema in tier 1.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro import profiling
from repro.analysis.robustness import loss_degradation
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-robustness/v1"
DEFAULT_OUT = (Path(__file__).resolve().parent.parent
               / "BENCH_robustness.json")
DEFAULT_LOSS_RATES = (0.0, 0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3)


def _timed_curve(topology, source, loss_rates, **kwargs):
    t0 = time.perf_counter()
    points = loss_degradation(topology, source, loss_rates, **kwargs)
    return points, time.perf_counter() - t0


def run_benchmark(topology_label: str = "2D-4",
                  shape: Sequence[int] = (32, 16),
                  loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
                  trials: int = 32,
                  workers: int = 2,
                  seed: int = 0,
                  repeats: int = 1,
                  profile: bool = False) -> dict:
    """Time the three sweep modes; return the BENCH_robustness.json
    payload.

    *repeats* > 1 re-times each mode and keeps the fastest run; the
    batched == serial equality check runs on the first pass.  With
    *profile* the batched engine is re-run once under
    :mod:`repro.profiling` (sharding disabled — the accumulator is
    per-process) and the per-phase seconds land under ``"profile"``.
    """
    topology = make_topology(topology_label, shape=tuple(shape))
    source = tuple(max(1, s // 2) for s in shape)
    n_sims = len(loss_rates) * trials

    entries = {}
    serial_points = None
    for label in ("serial", "batched", "parallel"):
        kwargs = dict(trials=trials, seed=seed)
        if label == "serial":
            kwargs["engine"] = "serial"
        elif label == "batched":
            kwargs["engine"] = "batch"
        else:
            kwargs.update(engine="batch", workers=workers)
        best = None
        for _ in range(max(1, repeats)):
            points, secs = _timed_curve(topology, source, loss_rates,
                                        **kwargs)
            if best is None or secs < best[1]:
                best = (points, secs)
        points, secs = best
        if label == "serial":
            serial_points = points
        else:
            assert points == serial_points, (
                f"{label} robustness curve diverged from the serial curve")
        entries[label] = {
            "seconds": round(secs, 4),
            "simulations_per_second": round(n_sims / secs, 1),
        }

    prof = None
    if profile:
        profiling.start()
        loss_degradation(topology, source, loss_rates, trials=trials,
                         seed=seed, engine="batch", workers=1)
        prof = {k: round(v, 4) for k, v in
                sorted(profiling.stop().items())}

    return {
        "schema": SCHEMA,
        "profile": prof,
        "topology": topology_label,
        "shape": list(shape),
        "loss_rates": list(loss_rates),
        "trials": trials,
        "simulations": n_sims,
        "workers": workers,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "entries": entries,
        "batched_matches_serial": True,  # asserted above
        "batched_speedup_vs_serial": round(
            entries["serial"]["seconds"] / entries["batched"]["seconds"], 2),
        "parallel_speedup_vs_serial": round(
            entries["serial"]["seconds"] / entries["parallel"]["seconds"],
            2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="2D-4")
    parser.add_argument("--shape", type=int, nargs="+", default=[32, 16])
    parser.add_argument("--loss-rates", type=float, nargs="+",
                        default=list(DEFAULT_LOSS_RATES))
    parser.add_argument("--trials", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--profile", action="store_true",
                        help="capture per-phase batched-engine timings "
                             "(gather, bincount, loss-rng, commit) "
                             "into the payload")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(
        topology_label=args.topology, shape=args.shape,
        loss_rates=args.loss_rates, trials=args.trials,
        workers=args.workers, seed=args.seed, repeats=args.repeats,
        profile=args.profile)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for label, entry in payload["entries"].items():
        print(f"{label:>9}: {entry['seconds']:8.3f}s "
              f"({entry['simulations_per_second']:9.1f} sims/s)")
    print(f"batched speedup vs serial: "
          f"{payload['batched_speedup_vs_serial']}x")
    print(f"parallel speedup vs serial: "
          f"{payload['parallel_speedup_vs_serial']}x")
    if payload["profile"]:
        print("profile[batched]: " + ", ".join(
            f"{k}={v:.3f}s" for k, v in payload["profile"].items()))
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
