"""Ablation B — regular vs random topology (the intro's claim, refs [12, 14]).

"It is known that the WSN with regular topology can communicate more
efficiently than the WSN with random topology."  We measure it: 512 nodes
on the same floor area, either as the paper's 32x16 2D-4 lattice with its
compiled broadcast, or scattered uniformly at random with (repaired)
flooding — the standard broadcast available without structure.  The radio
range of the random deployment is set so its *average* degree matches the
lattice's, making the energy comparison fair.
"""

from conftest import emit

from repro.analysis import render_table
from repro.core import protocol_for
from repro.core.baselines import FloodingProtocol
from repro.sim import compute_metrics
from repro.topology import RandomDiskTopology, make_topology


def test_ablation_regular_vs_random(benchmark):
    mesh = make_topology("2D-4")  # 32x16, spacing 0.5 m
    compiled = protocol_for(mesh).compile(mesh, (16, 8))
    regular = compute_metrics(compiled.trace, mesh)

    width, height = 16.0, 8.0  # the same floor area in metres
    rows = [{
        "deployment": "regular 2D-4 + paper protocol",
        "tx": regular.tx, "rx": regular.rx,
        "delay": regular.delay_slots,
        "energy_J": regular.energy_j, "reach": regular.reachability,
    }]
    random_metrics = []
    for seed in (0, 1, 2):
        topo = RandomDiskTopology(512, width, height, radio_range=0.8,
                                  seed=seed)
        src = topo.coord(int(topo.degrees.argmax()))
        flooded = FloodingProtocol().compile(topo, src)
        m = compute_metrics(flooded.trace, topo)
        random_metrics.append(m)
        rows.append({
            "deployment": f"random disk + flooding (seed {seed})",
            "tx": m.tx, "rx": m.rx, "delay": m.delay_slots,
            "energy_J": m.energy_j, "reach": round(m.reachability, 3),
        })
    emit("ablation_regular_vs_random", render_table(
        rows, ["deployment", "tx", "rx", "delay", "energy_J", "reach"],
        title="Ablation B: regular lattice vs random deployment "
              "(512 nodes, same area)"))

    # the regular deployment transmits less and spends less energy than
    # every random trial (the intro's efficiency claim)
    for m in random_metrics:
        assert regular.tx < m.tx
        assert regular.energy_j < m.energy_j

    benchmark(lambda: RandomDiskTopology(512, width, height, 0.8,
                                         seed=9).adjacency)
