"""Ablation A — Section 3.1's design discussion, measured.

The paper *argues* (without numbers) that letting the 2D-4 wave/column
collision happen and retransmitting beats delaying transmissions to avoid
it: delaying costs "an extra time slot delay" and extra duplicated
receptions.  This ablation implements the rejected delay-based variant and
measures both sides of the trade-off.
"""

from conftest import emit

from repro.analysis import render_table
from repro.core import protocol_for
from repro.core.baselines import DelayedMesh2D4Protocol
from repro.sim import compute_metrics
from repro.topology import make_topology


def test_ablation_delay_vs_retransmit(benchmark):
    mesh = make_topology("2D-4")
    rows = []
    results = {}
    for name, proto in [("retransmit (paper)", protocol_for("2D-4")),
                        ("delay-to-avoid", DelayedMesh2D4Protocol())]:
        per_source = []
        for src in [(16, 8), (1, 1), (32, 16), (8, 4)]:
            compiled = proto.compile(mesh, src)
            per_source.append(compute_metrics(compiled.trace, mesh))
        results[name] = per_source
        rows.append({
            "variant": name,
            "tx": max(m.tx for m in per_source),
            "rx": max(m.rx for m in per_source),
            "delay": max(m.delay_slots for m in per_source),
            "energy_J": max(m.energy_j for m in per_source),
            "reach": min(m.reachability for m in per_source),
        })
    emit("ablation_delay_vs_retransmit", render_table(
        rows, ["variant", "tx", "rx", "delay", "energy_J", "reach"],
        title="Ablation A: collision handling in 2D-4 "
              "(worst over 4 sources)"))

    retransmit, delayed = rows
    assert retransmit["reach"] == delayed["reach"] == 1.0
    # the paper's claim: avoiding collisions by delaying does not pay —
    # the delay variant must not strictly dominate the retransmit one
    assert not (delayed["delay"] < retransmit["delay"]
                and delayed["energy_J"] < retransmit["energy_J"])

    benchmark(lambda: DelayedMesh2D4Protocol().compile(mesh, (16, 8)))
