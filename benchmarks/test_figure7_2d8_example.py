"""Figure 7 — one-to-all broadcast for 2D mesh with 8 neighbours.

Regenerates the worked example: 14x14 mesh (196 nodes), source (5, 9).
The paper selects relay diagonals S1(14) and S2(1), S2(6), S2(11), S2(-4),
S2(-9), names (6,8) as a retransmitter, and reports that only 3 of 196
nodes retransmit.
"""

from conftest import emit

from repro.core import protocol_for
from repro.core.mesh2d8 import relay_s2_values
from repro.topology import Mesh2D8
from repro.viz import relay_map, summary_block, wave_map


def test_figure7_regenerates(benchmark):
    mesh = Mesh2D8(14, 14)
    proto = protocol_for(mesh)
    compiled = benchmark(lambda: proto.compile(mesh, (5, 9)))

    text = "\n\n".join([
        summary_block(mesh, compiled),
        f"relay S2 diagonals: {relay_s2_values(mesh, 5, 9)} "
        "(paper: 1, 6, 11, -4, -9)",
        relay_map(mesh, compiled),
        wave_map(mesh, compiled, what="rx"),
    ])
    emit("figure7_2d8_example", text)

    assert compiled.reached_all
    # the paper's relay diagonals are all selected
    assert {-9, -4, 1, 6, 11} <= set(relay_s2_values(mesh, 5, 9))
    # the paper's named retransmitter (i+1, j-1) = (6, 8) retransmits
    grays = {mesh.coord(v)
             for v in compiled.trace.retransmitting_nodes()}
    assert (6, 8) in grays
    # total extra effort stays small (paper: 3 retransmitters / 196 nodes;
    # ours adds a few border completions the figure omits)
    extras = (len(grays) + len(compiled.completions)
              + len(compiled.repairs))
    assert extras <= 0.1 * mesh.num_nodes
    # most relays at the optimal 5/8 ETR
    from repro.core import optimal_etr_fraction
    assert optimal_etr_fraction(mesh, compiled.trace) >= 0.5
