"""Smoke + perf coverage of the large-grid scaling benchmark.

The smoke tests are deliberately *not* perf-marked: they run the
benchmark end-to-end on small ladders in every tier-2 pass, exercising
the stencil == loop adjacency-equality assertion, the dense-gate probe
and the JSON artefact schema.  The full 10^4..10^6 ladder (the ISSUE's
>= 5x / >= 500k acceptance bars) is perf-marked.
"""

import json

import pytest

from perf_scaling import (SCHEMA, check_dense_gate, measure_point,
                          run_benchmark)
from repro.topology.graph import DENSE_PAIRS_GATE
from repro.topology.builder import make_topology


def _validate_payload(payload: dict) -> None:
    assert payload["schema"] == SCHEMA
    assert payload["dense_gate"] == DENSE_PAIRS_GATE
    assert payload["dense_gate_respected"] is True
    assert payload["adjacency_equal_everywhere"] is True
    assert payload["workers_effective"] >= 1
    assert len(payload["points"]) == len(payload["sizes"])
    for p in payload["points"]:
        assert p["nodes"] > 0
        assert p["stencil_build_s"] > 0
        assert p["diameter"] > 0
        assert p["peak_rss_mb"] > 0
        if p["loop_build_s"] is not None:
            assert p["adjacency_equal"] is True
        if p["compile_s"] is not None:
            assert p["reachability"] == 1.0


def test_perf_scaling_smoke():
    payload = run_benchmark(topology_label="2D-4", sizes=(512, 2048))
    _validate_payload(payload)
    assert payload["largest_common_nodes"] == 2048
    assert payload["adjacency_speedup_at_largest_common"] > 0
    # The artefact must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(payload)) == payload


def test_perf_scaling_caps_respected():
    payload = run_benchmark(topology_label="2D-4", sizes=(512, 5000),
                            loop_cap=1000, sim_cap=1000)
    big = payload["points"][1]
    assert big["loop_build_s"] is None
    assert big["compile_s"] is None
    assert big["simulate_s"] is None
    assert payload["largest_common_nodes"] == 512


def test_perf_scaling_cli_writes_artifact(tmp_path, capsys):
    from perf_scaling import main
    out = tmp_path / "bench.json"
    rc = main(["--topology", "2D-8", "--sizes", "512", "1152",
               "--out", str(out)])
    assert rc == 0
    _validate_payload(json.loads(out.read_text()))
    assert "adjacency speedup" in capsys.readouterr().out


def test_dense_gate_probe():
    """The probe must report False only when a dense all-pairs matrix is
    actually materialised above the gate."""
    small = make_topology("2D-4", shape=(8, 8))
    assert check_dense_gate(small.adjacency) is True
    big = make_topology("2D-4", shape=(150, 40))  # 6000 > gate
    assert check_dense_gate(big.adjacency) is True


def test_measure_point_3d():
    point = measure_point("3D-6", 512, loop_cap=10_000, sim_cap=10_000)
    assert point["shape"] == [8, 8, 8]
    assert point["adjacency_equal"] is True
    assert point["diameter"] == 21
    assert point["reachability"] == 1.0


@pytest.mark.perf
def test_perf_scaling_full_ladder():
    """ISSUE acceptance bars: >= 5x stencil-vs-loop adjacency speedup at
    the largest common size, a completed compile+simulate point at
    >= 500k nodes on 2D-4, and no dense all-pairs allocation above the
    gate."""
    payload = run_benchmark(topology_label="2D-4",
                            sizes=(10_000, 100_000, 500_000))
    _validate_payload(payload)
    assert payload["largest_common_nodes"] >= 500_000
    assert payload["adjacency_speedup_at_largest_common"] >= 5.0
    big = max(payload["points"], key=lambda p: p["nodes"])
    assert big["nodes"] >= 500_000
    assert big["compile_s"] is not None and big["simulate_s"] is not None
    assert big["reachability"] == 1.0
    assert payload["dense_gate_respected"] is True
