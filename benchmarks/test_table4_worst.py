"""Table 4 — our broadcasting protocols, worst case.

The maximum-power source of the same sweep (corner-ish sources).  The
benchmark times a corner-source compile — the protocols' hardest case
(border rules plus completion/repair all engage).
"""

from conftest import emit

from repro.analysis import render_paper_comparison, table4_worst
from repro.core import protocol_for
from repro.topology import make_topology


def test_table4_regenerates(sweep_cache, benchmark):
    rows = table4_worst(sweep_cache)
    emit("table4_worst", render_paper_comparison(
        rows, ["tx", "rx", "energy_J"],
        title="Table 4: our protocols, worst case (max-power source)"))
    by_label = {r["topology"]: r for r in rows}

    for label, row in by_label.items():
        assert row["reachability"] == 1.0, label
    # 2D-4 stays the cheapest topology even in the worst case
    assert by_label["2D-4"]["energy_J"] == min(
        r["energy_J"] for r in rows)
    assert by_label["2D-4"]["tx"] == 223          # exact paper match
    # best case <= worst case for every topology
    from repro.analysis import table3_best
    best = {r["topology"]: r for r in table3_best(sweep_cache)}
    for label in by_label:
        assert best[label]["energy_J"] <= by_label[label]["energy_J"]

    mesh = make_topology("2D-3")
    proto = protocol_for(mesh)
    benchmark(lambda: proto.compile(mesh, (1, 1)))
