"""Query-service benchmark: cold vs warm throughput, coalescing, fidelity.

Measures the :class:`~repro.service.engine.QueryEngine` on the fleet
shape of the sweep benchmark (2D-4, 32x16 = 512 sources) and writes
``BENCH_service.json``:

* ``cold`` — a fresh engine with an empty store answers every source as
  a single query: each pays a fixpoint compile.
* ``warm`` — the store is bulk-precomputed (``engine.warm``), then a
  *fresh* engine instance (empty memory tier) answers the same queries
  from persisted counts: no compile, no schedule replay.
* ``coalescing`` — >= 64 concurrent same-symmetry-class queries go
  through one ``query_batch`` against an empty store; the
  ``compile_call_count`` delta is asserted to be exactly 1 (one
  representative compile serves the whole class).
* fidelity — warm-hit metrics are equality-asserted against direct
  compilation, and the stored schedule is replayed through the normal
  cache path to cross-check the persisted counts (the differential
  verification path).

Run as a script::

    PYTHONPATH=src python benchmarks/perf_service.py
    PYTHONPATH=src python benchmarks/perf_service.py \
        --topology 2D-4 --shape 32 16 --out BENCH_service.json

``tests/test_bench_artifact.py`` validates the committed artefact's
schema and floors (warm >= 10x cold, coalescing compiles == 1).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.cache import ScheduleCache
from repro.core.compiler import compile_call_count
from repro.core.registry import protocol_for
from repro.core.symmetry import group_sources
from repro.radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from repro.service import Query, QueryEngine
from repro.sim.metrics import compute_metrics
from repro.topology.builder import make_topology

SCHEMA = "repro-wsn/bench-service/v1"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The coalescing section must exercise at least this many same-class
#: concurrent queries (the acceptance floor mirrors it).
COALESCE_QUERIES = 64


def _queries(label: str, shape, sources) -> List[Query]:
    return [Query(topology=label, source=tuple(src), shape=tuple(shape))
            for src in sources]


def _largest_class(topology, protocol) -> List[tuple]:
    sources = [topology.coord(i) for i in range(topology.num_nodes)]
    groups, _ = group_sources(topology, protocol, sources)
    if not groups:
        raise SystemExit(
            "topology/protocol pair has no symmetry classes — the "
            "coalescing section needs a class-capable protocol")
    members = max(groups.values(), key=len)
    return [sources[pos] for pos in members]


def run_benchmark(topology_label: str = "2D-4",
                  shape: Sequence[int] = (32, 16),
                  repeats: int = 1) -> dict:
    """Benchmark the service engine; return the BENCH_service.json payload."""
    topology = make_topology(topology_label, shape=tuple(shape))
    protocol = protocol_for(topology)
    sources = [topology.coord(i) for i in range(topology.num_nodes)]
    queries = _queries(topology_label, shape, sources)

    entries = {}
    with tempfile.TemporaryDirectory(prefix="repro-svc-bench-") as tmp:
        # -- cold: every single query pays a compile --------------------
        best = None
        for rep in range(max(1, repeats)):
            engine = QueryEngine(Path(tmp) / f"cold-{rep}")
            t0 = time.perf_counter()
            cold_results = [engine.query(q) for q in queries]
            secs = time.perf_counter() - t0
            if best is None or secs < best[1]:
                best = (cold_results, secs)
        cold_results, secs = best
        assert all(r.via == "compile" for r in cold_results)
        entries["cold"] = {
            "queries": len(queries),
            "seconds": round(secs, 4),
            "queries_per_second": round(len(queries) / secs, 1),
        }

        # -- warm: bulk precompute, then serve from stored counts -------
        store_dir = Path(tmp) / "warm"
        warmer = QueryEngine(store_dir)
        warm_summary = warmer.warm([(topology_label, tuple(shape))])
        best = None
        for _ in range(max(1, repeats)):
            engine = QueryEngine(store_dir)  # fresh memory tier
            t0 = time.perf_counter()
            warm_results = [engine.query(q) for q in queries]
            secs = time.perf_counter() - t0
            if best is None or secs < best[1]:
                best = (warm_results, secs)
        warm_results, secs = best
        assert all(r.via == "store" for r in warm_results), (
            "warm queries must all be served by the artifact store")
        entries["warm"] = {
            "queries": len(queries),
            "seconds": round(secs, 4),
            "queries_per_second": round(len(queries) / secs, 1),
        }

        # Fidelity: the warm answers are the cold answers.
        metrics_equal = all(
            w.metrics == c.metrics
            for w, c in zip(warm_results, cold_results))
        assert metrics_equal, "warm metrics diverged from direct compiles"

        # Replay verification: recompiling through the store replays the
        # persisted schedule; its trace metrics must match the
        # counts-derived warm metrics.
        replay_cache = ScheduleCache(store_dir)
        replay_verified = True
        for src, warm in zip(sources[:32], warm_results[:32]):
            compiled = protocol.compile(topology, src, cache=replay_cache)
            replayed = compute_metrics(compiled.trace, topology,
                                       PAPER_RADIO_MODEL, PAPER_PACKET_BITS)
            if replayed != warm.metrics:
                replay_verified = False
                break
        assert replay_verified, "stored counts diverged from schedule replay"

        # -- coalescing: one class, one compile -------------------------
        members = _largest_class(topology, protocol)
        n = max(COALESCE_QUERIES, min(len(members), 2 * COALESCE_QUERIES))
        class_sources = [members[i % len(members)] for i in range(n)]
        engine = QueryEngine(Path(tmp) / "coalesce")
        calls0 = compile_call_count()
        t0 = time.perf_counter()
        class_results = engine.query_batch(
            _queries(topology_label, shape, class_sources))
        secs = time.perf_counter() - t0
        compile_calls = compile_call_count() - calls0
        assert compile_calls == 1, (
            f"{len(class_sources)} same-class queries took "
            f"{compile_calls} compiles (expected 1)")
        assert all(r.via.startswith("class:") for r in class_results)
        coalescing = {
            "queries": len(class_sources),
            "class_size": len(members),
            "seconds": round(secs, 4),
            "compile_calls": compile_calls,
            "coalesced": engine.coalesced,
        }

    warm_speedup = (entries["cold"]["seconds"]
                    / entries["warm"]["seconds"])
    return {
        "schema": SCHEMA,
        "topology": topology_label,
        "shape": list(shape),
        "sources": len(sources),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "entries": entries,
        "warm_summary": warm_summary,
        "warm_speedup_vs_cold": round(warm_speedup, 2),
        "coalescing": coalescing,
        "metrics_equal": metrics_equal,       # asserted above
        "replay_verified": replay_verified,   # asserted above
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="2D-4")
    parser.add_argument("--shape", type=int, nargs="+", default=[32, 16])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    payload = run_benchmark(topology_label=args.topology, shape=args.shape,
                            repeats=args.repeats)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    for label, entry in payload["entries"].items():
        print(f"{label:>5}: {entry['seconds']:8.3f}s "
              f"({entry['queries_per_second']:9.1f} queries/s)")
    print(f"warm speedup vs cold: {payload['warm_speedup_vs_cold']}x")
    co = payload["coalescing"]
    print(f"coalescing: {co['queries']} same-class queries -> "
          f"{co['compile_calls']} compile ({co['seconds']}s)")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
