"""Figures 1-4 — the four regular topologies.

The figures are lattice diagrams; their reproducible content is the
structural census: node/edge counts, degree distribution, diameter.
Benchmarks adjacency construction (the substrate every experiment uses).
"""

from conftest import emit

from repro.analysis import render_table
from repro.topology import analyze, make_topology, paper_topologies


def test_figures_1_to_4_census(benchmark):
    rows = []
    for label, topo in paper_topologies().items():
        report = analyze(topo)
        rows.append({
            "topology": label,
            "nodes": report.num_nodes,
            "edges": report.num_edges,
            "degree": report.nominal_degree,
            "border": report.num_border_nodes,
            "diameter": report.diameter,
            "connected": report.connected,
        })
    emit("figures_1_4_topologies", render_table(
        rows, ["topology", "nodes", "edges", "degree", "border",
               "diameter", "connected"],
        title="Figures 1-4: structural census of the four lattices"))

    by_label = {r["topology"]: r for r in rows}
    assert all(r["nodes"] == 512 and r["connected"] for r in rows)
    # interior degree ordering drives the ETR trade-off of the paper
    assert by_label["2D-3"]["edges"] < by_label["2D-4"]["edges"] \
        < by_label["2D-8"]["edges"]

    def build():
        topo = make_topology("2D-8")
        return topo.adjacency

    benchmark(build)
