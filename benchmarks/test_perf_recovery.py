"""Smoke + perf coverage of the recovery-frontier benchmark.

The smoke test is deliberately *not* perf-marked: it runs the benchmark
end-to-end on a small grid in every tier-2 pass, which exercises the
batched == serial frontier equality assertion and the acceptance
comparison.  The full-size reference-case run (the ISSUE's >= 25%
energy-saving acceptance bar at blind-r2 reachability) is perf-marked.
"""

import json

import pytest

from perf_recovery import SCHEMA, run_benchmark


def _validate_payload(payload: dict) -> None:
    assert payload["schema"] == SCHEMA
    assert payload["batched_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "batched"}
    for entry in payload["entries"].values():
        assert entry["seconds"] > 0
        assert entry["simulations_per_second"] > 0
    assert len(payload["frontier"]) == len(payload["strategies"])
    acc = payload["acceptance"]
    assert acc["meets_bar"] is True
    assert acc["recovery"]["mean_reach"] >= acc["blind_r2"]["mean_reach"]
    assert acc["energy_saving_vs_blind_r2"] >= 0.25


def test_perf_recovery_smoke():
    payload = run_benchmark(
        topology_label="2D-4", shape=(8, 8), loss_rate=0.2,
        trials=16, seed=42, repeats=1)
    _validate_payload(payload)
    assert payload["topology"] == "2D-4"
    # The artefact must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(payload)) == payload


def test_perf_recovery_cli_writes_artifact(tmp_path, capsys):
    from perf_recovery import main
    out = tmp_path / "bench.json"
    rc = main(["--shape", "8", "8", "--trials", "8", "--seed", "42",
               "--repeats", "1", "--out", str(out)])
    assert rc == 0
    _validate_payload(json.loads(out.read_text()))
    assert "acceptance" in capsys.readouterr().out


@pytest.mark.perf
def test_perf_recovery_full_size():
    """ISSUE acceptance bar: on the 2D-4 16x16 / p=0.2 reference case a
    default recovery policy must meet blind-r2's reachability at >= 25%
    lower mean energy, with the batched frontier equal to the serial."""
    payload = run_benchmark(
        topology_label="2D-4", shape=(16, 16), loss_rate=0.2,
        trials=64, seed=0, repeats=1)
    _validate_payload(payload)
    assert payload["shape"] == [16, 16]
    assert payload["trials"] == 64
