"""Chaos suite: the serving stack under the seeded fault adversary.

PR 1–9 gave the *radios* an adversary (seeded loss, dead nodes) and
proved the protocols survive it; this suite does the same for the
*machine*.  A :class:`repro.faults.FaultPlan` arms the seams compiled
into the stack — worker murder in the shard pool, torn store writes,
native/backend failures mid-run, slow compiles, dropped and garbled
server responses — and every test asserts the two properties the
resilience layer promises:

* **availability**: the service keeps answering (clients retry through
  transport chaos, deadlines shed instead of hanging, the breaker
  demotes instead of erroring);
* **answer equality**: everything answered equals the fault-free
  result bit for bit — shard retries are bit-identical because the
  counter RNG keys on trial seeds, tier demotion is bit-identical
  because the engine tiers are, and store faults cost warmth, never
  answers.

The ``faults`` marker selects the suite (``-m faults``); everything
here is fast enough for tier-1.
"""

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.core.cache import ScheduleCache
from repro.core.registry import protocol_for
from repro.faults import FaultPlan, FaultSpec, InjectedFault
from repro.radio import bitpack
from repro.radio.impairments import BernoulliBatchLoss, trial_seeds
from repro.service import (BackgroundServer, DeadlineExceeded, Overloaded,
                           Query, QueryEngine, RetriesExhausted,
                           RetryPolicy, ServiceClient, query_from_dict,
                           query_to_dict)
from repro.service.runtime import AsyncRuntime
from repro.service.server import _error_payload
from repro.service.wire import MAX_WIRE_BATCH, request_from_dict
from repro.sim import (native_available, resolve_engine,
                       run_reactive_batch, run_reactive_batch_sharded,
                       replay_batch, replay_batch_sharded)
from repro.sim.backend import BREAKER
from repro.sim.shard import MAX_SHARD_ATTEMPTS, ShardFailure
from repro.topology import Mesh2D4

needs_packing = pytest.mark.skipif(not bitpack.packing_supported(),
                                   reason="big-endian host")

SHAPE = (5, 4)


def relay_all(mesh):
    return np.ones(mesh.num_nodes, dtype=bool)


def assert_summaries_equal(a, b, tag=""):
    assert np.array_equal(a.first_rx, b.first_rx), tag
    assert np.array_equal(a.tx_count, b.tx_count), tag
    assert np.array_equal(a.rx_count, b.rx_count), tag
    assert np.array_equal(a.collisions, b.collisions), tag
    assert a.dropped_forced == b.dropped_forced, tag


def norm_row(row):
    """Metrics row -> JSON-normalised dict (tuples become lists)."""
    return json.loads(json.dumps({**row, "source": list(row["source"])}))


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    """Every test starts (and must end) with a closed breaker and no
    armed plan — chaos must not leak across tests."""
    BREAKER.reset()
    yield
    assert faults.active() is None, "a FaultPlan leaked past its test"
    BREAKER.reset()


# ---------------------------------------------------------------------------
# The harness itself


class TestFaultPlan:
    def test_unarmed_seams_are_noops(self):
        assert faults.active() is None
        assert not faults.fires(faults.SHARD_KILL, key=(0, 0))
        faults.check(faults.STORE_TORN)  # must not raise
        faults.sleep_if(faults.COMPILE_SLOW)

    def test_occurrence_trigger(self):
        plan = FaultPlan([FaultSpec("seam", at=(1, 3))])
        with plan.arm():
            hits = [faults.fires("seam") for _ in range(5)]
        assert hits == [False, True, False, True, False]
        assert plan.stats()["seam"] == {"consulted": 5, "fired": 2}

    def test_key_trigger_with_limit(self):
        plan = FaultPlan([FaultSpec("seam", keys=frozenset({(1, 0)}),
                                    limit=1)])
        with plan.arm():
            assert not faults.fires("seam", key=(0, 0))
            assert faults.fires("seam", key=(1, 0))
            assert not faults.fires("seam", key=(1, 0))  # limit spent

    def test_rate_trigger_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan([FaultSpec("seam", rate=0.5)], seed=seed)
            with plan.arm():
                return [faults.fires("seam") for _ in range(64)]

        a, b = pattern(7), pattern(7)
        assert a == b
        assert any(a) and not all(a)  # a real mixture at rate 0.5
        assert pattern(8) != a  # and the seed matters

    def test_check_raises_injected_fault(self):
        plan = FaultPlan([FaultSpec("seam", at=(0,))])
        with plan.arm():
            with pytest.raises(InjectedFault, match="seam"):
                faults.check("seam")

    def test_nested_arming_rejected(self):
        plan = FaultPlan([])
        with plan.arm():
            with pytest.raises(RuntimeError, match="already armed"):
                FaultPlan([]).arm().__enter__()

    def test_duplicate_seam_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultSpec("s"), FaultSpec("s")])


# ---------------------------------------------------------------------------
# Store: torn writes cost warmth, never answers


class TestTornStoreWrites:
    def test_torn_write_degrades_to_recompile(self, tmp_path):
        mesh = Mesh2D4(*SHAPE)
        protocol = protocol_for(mesh)
        clean = ScheduleCache()
        want = clean.get_or_compile(protocol, mesh, (1, 1))

        cache = ScheduleCache(tmp_path / "store")
        plan = FaultPlan([FaultSpec(faults.STORE_TORN, at=(0,))])
        with plan.arm():
            got = cache.get_or_compile(protocol, mesh, (1, 1))
        # The query survived the torn publish...
        assert got.trace.tx_events == want.trace.tx_events
        assert cache.store_errors == 1
        assert cache.stats()["store_errors"] == 1
        # ...and the store simply never saw the entry: a fresh cache on
        # the same directory misses and recompiles to the same answer.
        cold = ScheduleCache(store=cache.store)
        assert cold.cached_metrics(protocol, mesh, (1, 1)) is None
        again = cold.get_or_compile(protocol, mesh, (1, 1))
        assert again.trace.tx_events == want.trace.tx_events
        assert cold.store_errors == 0  # healthy store now: publish lands
        warm = ScheduleCache(store=cache.store)
        assert warm.cached_metrics(protocol, mesh, (1, 1)) is not None

    def test_orphan_bytes_are_reclaimed_by_gc(self, tmp_path):
        mesh = Mesh2D4(*SHAPE)
        protocol = protocol_for(mesh)
        cache = ScheduleCache(tmp_path / "store")
        plan = FaultPlan([FaultSpec(faults.STORE_TORN, at=(0,))])
        with plan.arm():
            cache.get_or_compile(protocol, mesh, (1, 1))
        cache.get_or_compile(protocol, mesh, (2, 1))  # healthy publish
        stats = cache.store.gc()
        assert stats["bytes_after"] <= stats["bytes_before"]
        # The healthy entry survives compaction.
        assert ScheduleCache(store=cache.store).cached_metrics(
            protocol, mesh, (2, 1)) is not None


# ---------------------------------------------------------------------------
# Shard pool: worker murder, retry, bit-identity


@pytest.mark.faults
class TestShardWorkerMurder:
    def _kwargs(self, mesh, trials=6):
        return dict(loss=BernoulliBatchLoss(0.2,
                                            trial_seeds(0, 0.2, trials)),
                    trials=trials, summary=True)

    def test_killed_reactive_shard_is_retried_bit_identically(self):
        mesh = Mesh2D4(*SHAPE)
        want = run_reactive_batch(mesh, 0, relay_all(mesh),
                                  **self._kwargs(mesh))
        plan = FaultPlan([FaultSpec(faults.SHARD_KILL,
                                    keys=frozenset({(1, 0)}))])
        with plan.arm():
            got = run_reactive_batch_sharded(mesh, 0, relay_all(mesh),
                                             workers=3,
                                             **self._kwargs(mesh))
        assert plan.fired(faults.SHARD_KILL) == 1  # the murder happened
        assert_summaries_equal(want, got, "killed+retried shard")

    def test_killed_replay_shard_is_retried_bit_identically(self):
        mesh = Mesh2D4(*SHAPE)
        compiled = protocol_for(mesh).compile(mesh, (1, 1))
        kwargs = self._kwargs(mesh)
        want = replay_batch(mesh, compiled.schedule, compiled.source,
                            **kwargs)
        plan = FaultPlan([FaultSpec(faults.SHARD_KILL,
                                    keys=frozenset({(0, 0)}))])
        with plan.arm():
            got = replay_batch_sharded(mesh, compiled.schedule,
                                       compiled.source, workers=2,
                                       **kwargs)
        assert plan.fired(faults.SHARD_KILL) == 1
        assert_summaries_equal(want, got, "killed+retried replay shard")

    def test_persistent_murder_exhausts_retries(self):
        mesh = Mesh2D4(*SHAPE)
        keys = frozenset((0, attempt)
                         for attempt in range(MAX_SHARD_ATTEMPTS))
        plan = FaultPlan([FaultSpec(faults.SHARD_KILL, keys=keys)])
        with plan.arm():
            with pytest.raises(ShardFailure, match="consecutive"):
                run_reactive_batch_sharded(mesh, 0, relay_all(mesh),
                                           workers=2,
                                           **self._kwargs(mesh, trials=4))


# ---------------------------------------------------------------------------
# Backend faults: demotion ladder + circuit breaker


@needs_packing
class TestTierDemotion:
    def test_packed_fault_demotes_to_batch_bit_identically(self):
        mesh = Mesh2D4(*SHAPE)
        kwargs = dict(trials=4, summary=True,
                      loss=BernoulliBatchLoss(0.2, trial_seeds(0, 0.2, 4)))
        want = run_reactive_batch(mesh, 0, relay_all(mesh),
                                  engine="batch", **kwargs)
        plan = FaultPlan([FaultSpec(faults.BACKEND_RESOLVE,
                                    keys=frozenset({("packed",)}),
                                    limit=1)])
        with plan.arm():
            got = run_reactive_batch(mesh, 0, relay_all(mesh),
                                     engine="packed", **kwargs)
        assert plan.fired(faults.BACKEND_RESOLVE) == 1
        assert_summaries_equal(want, got, "packed->batch demotion")
        assert BREAKER.state()["packed"]["failures"] == 1
        assert not BREAKER.state()["packed"]["open"]

    @pytest.mark.skipif(not native_available(),
                        reason="compiled tier unavailable")
    def test_compiled_fault_demotes_bit_identically(self):
        mesh = Mesh2D4(*SHAPE)
        kwargs = dict(trials=4, summary=True)
        want = run_reactive_batch(mesh, 0, relay_all(mesh),
                                  engine="batch", **kwargs)
        plan = FaultPlan([FaultSpec(faults.BACKEND_RESOLVE,
                                    keys=frozenset({("compiled",)}),
                                    limit=1)])
        with plan.arm():
            got = run_reactive_batch(mesh, 0, relay_all(mesh),
                                     engine="compiled", **kwargs)
        assert plan.fired(faults.BACKEND_RESOLVE) == 1
        assert_summaries_equal(want, got, "compiled demotion")
        assert BREAKER.state()["compiled"]["failures"] == 1

    @pytest.mark.skipif(not native_available(),
                        reason="compiled tier unavailable")
    def test_native_build_fault_falls_back_at_construction(self):
        mesh = Mesh2D4(*SHAPE)
        kwargs = dict(trials=4, summary=True)
        want = run_reactive_batch(mesh, 0, relay_all(mesh),
                                  engine="batch", **kwargs)
        plan = FaultPlan([FaultSpec(faults.NATIVE_BUILD, at=(0,))])
        with plan.arm():
            got = run_reactive_batch(mesh, 0, relay_all(mesh),
                                     engine="compiled", **kwargs)
        assert plan.fired(faults.NATIVE_BUILD) == 1
        assert_summaries_equal(want, got, "dlopen-failure fallback")
        assert BREAKER.state()["compiled"]["failures"] == 1

    def test_repeated_faults_open_the_breaker(self):
        mesh = Mesh2D4(*SHAPE)
        kwargs = dict(trials=2, summary=True)
        plan = FaultPlan([FaultSpec(faults.BACKEND_RESOLVE,
                                    keys=frozenset({("packed",)}))])
        with plan.arm():
            for _ in range(BREAKER.threshold):
                run_reactive_batch(mesh, 0, relay_all(mesh),
                                   engine="packed", **kwargs)
        state = BREAKER.state()["packed"]
        assert state["open"] and state["failures"] >= BREAKER.threshold
        # The open breaker now skips the tier up front, visibly.
        tier, reason = resolve_engine("packed", mesh.num_nodes,
                                      explain=True)
        assert tier == "batch"
        assert "circuit breaker open" in reason
        # A cooled-down breaker admits a probe and a success heals it.
        BREAKER._open_until["packed"] = -1.0  # fast-forward the cooldown
        assert BREAKER.allowed("packed")
        BREAKER.record_success("packed")
        assert resolve_engine("packed", mesh.num_nodes) == "packed"

    def test_forced_open_breakers_pin_the_dense_floor(self):
        BREAKER.force_open("compiled", "ops override")
        BREAKER.force_open("packed", "ops override")
        tier, reason = resolve_engine("auto", 20, explain=True)
        assert tier == "batch"
        assert "circuit breaker open: packed" in reason


# ---------------------------------------------------------------------------
# Deadlines: shed before the compile, everywhere


class TestDeadlines:
    def test_expired_query_sheds_before_compiling(self):
        from repro.core.compiler import compile_call_count
        engine = QueryEngine()
        c0 = compile_call_count()
        expired = Query("2D-4", (1, 1), shape=SHAPE,
                        deadline=time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded):
            engine.query(expired)
        assert compile_call_count() == c0  # no compile was burned
        assert engine.stats()["shed"] == 1

    def test_batch_sheds_only_the_expired_members(self):
        engine = QueryEngine()
        past = time.monotonic() - 1.0
        results = engine.query_batch([
            Query("2D-4", (1, 1), shape=SHAPE),
            Query("2D-4", (2, 1), shape=SHAPE, deadline=past),
            Query("2D-4", (1, 2), shape=SHAPE),
        ])
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error_type == "deadline_exceeded"
        assert results[1].metrics is None
        assert engine.stats()["shed"] == 1

    def test_runtime_sheds_queries_that_expired_while_queued(self):
        async def main():
            engine = QueryEngine()
            async with AsyncRuntime(engine) as runtime:
                stale = Query("2D-4", (1, 1), shape=SHAPE,
                              deadline=time.monotonic() - 1.0)
                with pytest.raises(DeadlineExceeded):
                    await runtime.query(stale)
                return runtime.shed_expired

        assert asyncio.run(main()) == 1

    def test_wire_round_trips_timeout_but_never_deadline(self):
        query = Query("2D-4", (1, 1), shape=SHAPE, timeout_ms=1500.0)
        payload = query_to_dict(query)
        assert payload["timeout_ms"] == 1500.0
        assert "deadline" not in payload
        assert query_from_dict(payload) == query


# ---------------------------------------------------------------------------
# Overload: bounded queue, reject / shed-oldest


class _GatedEngine(QueryEngine):
    """Engine whose batch path blocks until the test opens the gate."""

    def __init__(self, gate):
        super().__init__()
        self._gate = gate

    def query_batch(self, queries):
        self._gate.wait(timeout=30)
        return super().query_batch(queries)


class TestOverload:
    def _flood(self, overflow):
        async def main():
            gate = threading.Event()
            engine = _GatedEngine(gate)
            outcomes = {}
            async with AsyncRuntime(engine, max_queue=1,
                                    overflow=overflow) as runtime:
                q = Query("2D-4", (1, 1), shape=SHAPE)
                first = asyncio.create_task(runtime.query(q))
                await asyncio.sleep(0.1)  # dispatcher picks it up, blocks
                second = asyncio.create_task(runtime.query(q))
                await asyncio.sleep(0.05)  # second now waits in the queue
                try:
                    third = asyncio.create_task(runtime.query(q))
                    await asyncio.sleep(0.05)
                except Overloaded:
                    third = None
                gate.set()
                for name, task in (("first", first), ("second", second),
                                   ("third", third)):
                    if task is None:
                        continue
                    try:
                        result = await task
                        outcomes[name] = result.via
                    except Overloaded:
                        outcomes[name] = "overloaded"
                return runtime, outcomes

        return asyncio.run(main())

    def test_reject_policy_refuses_the_newcomer(self):
        runtime, outcomes = self._flood("reject")
        assert outcomes["first"] != "overloaded"
        assert outcomes["second"] != "overloaded"
        assert outcomes["third"] == "overloaded"
        assert runtime.rejected == 1 and runtime.shed_queued == 0

    def test_shed_oldest_policy_displaces_the_queued_query(self):
        runtime, outcomes = self._flood("shed-oldest")
        assert outcomes["first"] != "overloaded"
        assert outcomes["second"] == "overloaded"  # displaced while queued
        assert outcomes["third"] != "overloaded"
        assert runtime.shed_queued == 1 and runtime.rejected == 0

    def test_policy_is_validated(self):
        with pytest.raises(ValueError, match="overflow"):
            AsyncRuntime(QueryEngine(), overflow="drop-everything")
        with pytest.raises(ValueError, match="max_queue"):
            AsyncRuntime(QueryEngine(), max_queue=0)


# ---------------------------------------------------------------------------
# Wire validation: structured refusals, no traceback leakage


class TestWireValidation:
    @pytest.mark.parametrize("bad", [-1, 0, float("nan"), float("inf"),
                                     "2000", True, 1e12])
    def test_bad_timeout_rejected(self, bad):
        with pytest.raises(ValueError, match="timeout_ms"):
            query_from_dict({"topology": "2D-4", "source": [1, 1],
                             "timeout_ms": bad})

    @pytest.mark.parametrize("bad", [[], list(range(1, 10)), [1, "a"],
                                     [1, 1.5], [1, True], [1, 10 ** 10]])
    def test_bad_source_rejected(self, bad):
        with pytest.raises(ValueError, match="source"):
            query_from_dict({"topology": "2D-4", "source": bad})

    def test_unknown_request_type_rejected(self):
        with pytest.raises(ValueError, match="unknown request type"):
            request_from_dict({"type": "gimme"})

    def test_oversized_batch_rejected(self):
        entry = {"topology": "2D-4", "source": [1, 1]}
        with pytest.raises(ValueError, match="exceeds the cap"):
            request_from_dict({"type": "batch",
                               "queries": [entry] * (MAX_WIRE_BATCH + 1)})

    def test_batch_member_errors_are_positioned(self):
        with pytest.raises(ValueError, match=r"queries\[1\]"):
            request_from_dict({"type": "batch", "queries": [
                {"topology": "2D-4", "source": [1, 1]},
                {"topology": "2D-4"}]})

    def test_health_request_parses(self):
        assert request_from_dict({"type": "health"}) == ("health", None)
        assert request_from_dict({"type": "stats"}) == ("health", None)
        with pytest.raises(ValueError, match="unknown request fields"):
            request_from_dict({"type": "health", "verbose": True})

    def test_error_payloads_are_typed_and_traceback_free(self):
        for exc, expect in [(DeadlineExceeded("late"), "deadline_exceeded"),
                            (Overloaded("full"), "overloaded"),
                            (ValueError("bad"), "bad_request"),
                            (RuntimeError("boom"), "internal")]:
            payload = _error_payload(exc)
            assert payload["ok"] is False
            assert payload["error_type"] == expect
            blob = json.dumps(payload)
            assert "Traceback" not in blob and "\n" not in payload["error"]


# ---------------------------------------------------------------------------
# Live server: drops, garbles, shutdown, health


@pytest.mark.faults
class TestServerResilience:
    def test_client_retries_through_dropped_and_garbled_responses(self):
        engine = QueryEngine()
        plan = FaultPlan([
            FaultSpec(faults.SERVER_DROP, at=(0,)),
            FaultSpec(faults.SERVER_GARBLE, at=(1,)),
        ])
        query = Query("2D-4", (1, 1), shape=SHAPE, timeout_ms=30000)
        with plan.arm(), BackgroundServer(engine, port=0) as srv:
            with ServiceClient(port=srv.port,
                               retry=RetryPolicy(attempts=6,
                                                 base_delay=0.01,
                                                 seed=1)) as client:
                first = client.query(query)   # response 0: dropped
                second = client.query(query)  # response 1 (retry): garbled
                assert first["ok"] and second["ok"]
                assert client.retries >= 2
                assert client.reconnects >= 3  # fresh socket per failure
        assert plan.fired(faults.SERVER_DROP) == 1
        assert plan.fired(faults.SERVER_GARBLE) == 1

    def test_exhausted_retries_raise_with_the_last_failure(self):
        engine = QueryEngine()
        plan = FaultPlan([FaultSpec(faults.SERVER_DROP, rate=1.0)])
        with plan.arm(), BackgroundServer(engine, port=0) as srv:
            client = ServiceClient(port=srv.port,
                                   retry=RetryPolicy(attempts=2,
                                                     base_delay=0.01))
            with pytest.raises(RetriesExhausted, match="2 attempts"):
                client.query(Query("2D-4", (1, 1), shape=SHAPE))
            client.close()

    def test_health_probe_is_cheap_and_structured(self):
        from repro.core.compiler import compile_call_count
        engine = QueryEngine()
        c0 = compile_call_count()
        with BackgroundServer(engine, port=0) as srv:
            with ServiceClient(port=srv.port) as client:
                health = client.health()
        assert health["ok"] and health["type"] == "health"
        assert health["status"] == "ok"
        assert set(health["breaker"]) == {"compiled", "packed"}
        assert "available" in health["native"]
        assert health["engine"]["queries"] == 0
        assert health["engine"]["max_queue"] > 0
        assert compile_call_count() == c0  # probing compiled nothing

    def test_graceful_shutdown_answers_then_closes(self):
        engine = QueryEngine()
        srv = BackgroundServer(engine, port=0).start()
        with ServiceClient(port=srv.port) as client:
            assert client.query(Query("2D-4", (1, 1), shape=SHAPE))["ok"]
        srv.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", srv.port), timeout=0.5)

    def test_deadline_and_overload_errors_cross_the_wire(self):
        engine = QueryEngine()
        with BackgroundServer(engine, port=0) as srv:
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=10) as sock:
                rfile = sock.makefile("rb")
                # timeout_ms so small the queue wait alone exceeds it.
                sock.sendall(json.dumps(
                    {"topology": "2D-4", "source": [3, 2],
                     "shape": list(SHAPE),
                     "timeout_ms": 1e-6}).encode() + b"\n")
                reply = json.loads(rfile.readline())
        assert reply["ok"] is False
        assert reply["error_type"] == "deadline_exceeded"
        assert engine.stats()["shed"] >= 0  # shed server-side, not hung


# ---------------------------------------------------------------------------
# The canonical chaos run: availability + answer equality


@pytest.mark.faults
class TestCanonicalChaos:
    def test_chaos_run_meets_availability_and_equality_floors(self,
                                                              tmp_path):
        shape = (6, 6)
        sources = [(x, y) for x in range(1, shape[0] + 1)
                   for y in range(1, shape[1] + 1)]
        # Fault-free oracle: a separate memory-only engine.
        oracle = QueryEngine()
        expected = {
            src: norm_row(oracle.query(
                Query("2D-4", src, shape=shape)).metrics.as_row())
            for src in sources}

        plan = faults.canonical_plan()
        chaos = QueryEngine(tmp_path / "store")  # store: torn writes bite
        answered = {}
        with plan.arm():
            with BackgroundServer(chaos, port=0) as srv:
                client = ServiceClient(
                    port=srv.port,
                    retry=RetryPolicy(attempts=6, base_delay=0.01,
                                      seed=42))
                for src in sources:
                    response = client.query(Query(
                        "2D-4", src, shape=shape, timeout_ms=30000))
                    answered[src] = response
                client.close()
            # Sharded leg of the canonical schedule: worker murder.
            mesh = Mesh2D4(*SHAPE)
            kwargs = dict(trials=6, summary=True,
                          loss=BernoulliBatchLoss(
                              0.2, trial_seeds(0, 0.2, 6)))
            unsharded = run_reactive_batch(mesh, 0, relay_all(mesh),
                                           **kwargs)
            sharded = run_reactive_batch_sharded(
                mesh, 0, relay_all(mesh), workers=3, **kwargs)
            # Backend leg: mid-run faults ride the demotion ladder.
            if bitpack.packing_supported():
                chaotic = run_reactive_batch(mesh, 0, relay_all(mesh),
                                             engine="auto", trials=4,
                                             summary=True)
                calm = run_reactive_batch(mesh, 0, relay_all(mesh),
                                          engine="batch", trials=4,
                                          summary=True)
                assert_summaries_equal(calm, chaotic, "demotion leg")

        # Availability floor: >= 99% of in-deadline queries answered ok.
        ok = sum(1 for r in answered.values() if r.get("ok"))
        availability = ok / len(sources)
        assert availability >= 0.99, f"availability {availability:.3f}"
        # Answer equality: everything answered equals the oracle.
        for src, response in answered.items():
            if response.get("ok"):
                assert response["metrics"] == expected[src], src
        # Bit identity under worker murder.
        assert_summaries_equal(unsharded, sharded, "chaos shard leg")
        # The chaos actually happened.
        stats = plan.stats()
        assert stats[faults.SHARD_KILL]["fired"] == 1
        assert stats[faults.STORE_TORN]["fired"] >= 1
        assert stats[faults.SERVER_DROP]["fired"] >= 1
        assert chaos.cache.store_errors >= 1
        # The server stayed consistent throughout.
        assert chaos.stats()["queries"] >= len(sources)


# ---------------------------------------------------------------------------
# Degraded-tier matrix: REPRO_NO_NATIVE and breaker-forced demotion


class TestDegradedTierMatrix:
    def test_service_query_identical_without_native(self):
        """A warm service query answers identically when the compiled
        tier cannot exist (REPRO_NO_NATIVE in a fresh interpreter)."""
        engine = QueryEngine()
        want = norm_row(engine.query(
            Query("2D-4", (2, 2), shape=SHAPE)).metrics.as_row())
        code = (
            "import json\n"
            "from repro.service import Query, QueryEngine\n"
            "from repro.sim import native, resolve_engine\n"
            "assert not native.native_available()\n"
            "assert resolve_engine('auto', 20) != 'compiled'\n"
            "engine = QueryEngine()\n"
            "row = engine.query(Query('2D-4', (2, 2), "
            f"shape={SHAPE!r})).metrics.as_row()\n"
            "row['source'] = list(row['source'])\n"
            "print(json.dumps(row))\n"
        )
        env = dict(os.environ, REPRO_NO_NATIVE="1",
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(os.path.dirname(__file__), os.pardir,
                                     "src")]
                       + os.environ.get("PYTHONPATH", "").split(
                           os.pathsep)))
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        got = json.loads(out.stdout)
        assert got == want

    @needs_packing
    def test_forced_demotion_keeps_answers_identical(self):
        mesh = Mesh2D4(*SHAPE)
        kwargs = dict(trials=4, summary=True)
        want = run_reactive_batch(mesh, 0, relay_all(mesh),
                                  engine="batch", **kwargs)
        engine = QueryEngine()
        service_want = norm_row(engine.query(
            Query("2D-4", (1, 1), shape=SHAPE)).metrics.as_row())

        BREAKER.force_open("compiled", "forced for the degraded matrix")
        BREAKER.force_open("packed", "forced for the degraded matrix")
        tier, reason = resolve_engine("auto", mesh.num_nodes,
                                      explain=True)
        assert tier == "batch" and "circuit breaker" in reason
        got = run_reactive_batch(mesh, 0, relay_all(mesh),
                                 engine="auto", **kwargs)
        assert_summaries_equal(want, got, "forced packed->batch")
        # The service path answers the same warm query, breaker open.
        service_got = norm_row(engine.query(
            Query("2D-4", (1, 1), shape=SHAPE)).metrics.as_row())
        assert service_got == service_want
