"""Tests for the 2D-8 broadcasting protocol (Section 3.2, Fig. 7)."""

import pytest

from repro.core import validate_broadcast
from repro.core.mesh2d8 import (Mesh2D8Protocol, border_continuation,
                                relay_s2_values)
from repro.topology import Mesh2D4, Mesh2D8


class TestRelayRules:
    def test_fig7_relay_diagonals(self):
        """Fig. 7 (14x14, source (5,9)): relay diagonals S2(1), S2(6),
        S2(11), S2(-4), S2(-9) — plus the clipped border values."""
        mesh = Mesh2D8(14, 14)
        values = relay_s2_values(mesh, 5, 9)
        for c in (-9, -4, 1, 6, 11):
            assert c in values
        # every value is congruent to i - j (mod 5)
        assert all((c - (5 - 9)) % 5 == 0 for c in values)

    def test_s2_values_span_grid(self):
        """Every S2 diagonal of the grid is within coverage distance 2 of
        a relay diagonal (that is why the paper chose spacing 5) — except
        possibly the extreme corner diagonals, whose residues may not
        align with ``i - j (mod 5)``; those are the compiler's completion
        cases."""
        mesh = Mesh2D8(32, 16)
        values = set(relay_s2_values(mesh, 16, 8))
        for c in range(1 - 16 + 2, 32 - 2):
            assert any(abs(c - v) <= 2 for v in values)
        # spacing is exactly 5
        ordered = sorted(values)
        assert all(b - a == 5 for a, b in zip(ordered, ordered[1:]))

    def test_relay_plan_marks_s1_and_s2(self):
        mesh = Mesh2D8(14, 14)
        plan = Mesh2D8Protocol().relay_plan(mesh, (5, 9))
        # the anti-diagonal through the source
        for x in range(1, 14):
            y = 14 - x
            if 1 <= y <= 14:
                assert plan.relay_mask[mesh.index((x, y))]
        # the main diagonal through the source (S2(-4))
        assert plan.relay_mask[mesh.index((5, 9))]
        assert plan.relay_mask[mesh.index((6, 10))]
        assert plan.relay_mask[mesh.index((4, 8))]
        # a node on a non-relay diagonal
        assert not plan.relay_mask[mesh.index((7, 9))]

    def test_designated_retransmitters(self):
        """Paper: '(i+1, j-1) retransmits'; by symmetry (i-1, j+1)."""
        mesh = Mesh2D8(14, 14)
        plan = Mesh2D8Protocol().relay_plan(mesh, (5, 9))
        coords = sorted(mesh.coord(v) for v in plan.repeat_offsets)
        assert coords == [(4, 10), (6, 8)]

    def test_retransmitters_clipped_at_border(self):
        mesh = Mesh2D8(14, 14)
        plan = Mesh2D8Protocol().relay_plan(mesh, (1, 1))
        coords = sorted(mesh.coord(v) for v in plan.repeat_offsets)
        assert coords == []  # both designated nodes fall outside

    def test_wrong_topology_type(self):
        with pytest.raises(TypeError):
            Mesh2D8Protocol().relay_plan(Mesh2D4(4, 4), (2, 2))


class TestBorderContinuation:
    def test_no_continuation_when_s1_spans_corners(self):
        """When the S1 diagonal runs corner to corner, no continuation is
        needed."""
        mesh = Mesh2D8(10, 10)
        assert border_continuation(mesh, 5, 6) == []

    def test_central_source_on_wide_grid(self):
        """On the paper's 32x16 mesh the S1 diagonal is clipped by the
        top/bottom rows; the sweep continues along both."""
        mesh = Mesh2D8(32, 16)
        cont = border_continuation(mesh, 16, 8)
        assert cont  # non-empty
        ys = {y for _, y in cont}
        assert ys <= {1, 16}
        # bottom segment extends right of the S1 end (x = 23)
        assert (24, 1) in cont and (32, 1) in cont
        # top segment extends left of the S1 end (x = 8)
        assert (7, 16) in cont and (1, 16) in cont

    def test_corner_source(self):
        mesh = Mesh2D8(32, 16)
        cont = border_continuation(mesh, 1, 1)
        # S1(2) is the corner itself: continuation runs along both borders
        assert (2, 1) in cont or (1, 2) in cont


class TestFig7Example:
    """The worked example of Fig. 7: 14x14 mesh, source (5, 9)."""

    @pytest.fixture(scope="class")
    def compiled(self):
        mesh = Mesh2D8(14, 14)
        return mesh, Mesh2D8Protocol().compile(mesh, (5, 9))

    def test_full_reachability(self, compiled):
        _, result = compiled
        assert result.reached_all

    def test_few_retransmissions(self, compiled):
        """Paper: 'among 196 nodes, only 3 nodes need to retransmit'.
        Our compiled broadcast needs a few more patches (the paper's
        figure omits its border handling), but the total extra effort
        stays below 10% of the node count."""
        _, result = compiled
        retransmitters = result.trace.retransmitting_nodes()
        extra = len(result.repairs) + len(result.completions)
        assert len(retransmitters) + extra <= 0.1 * 196

    def test_paper_retransmitter_among_grays(self, compiled):
        """(6,8) = (i+1, j-1) is the retransmitter the paper names."""
        mesh, result = compiled
        grays = {mesh.coord(v)
                 for v in result.trace.retransmitting_nodes()}
        assert (6, 8) in grays

    def test_audits_clean(self, compiled):
        mesh, result = compiled
        report = validate_broadcast(mesh, result.schedule, result.source)
        assert report.ok, report.issues

    def test_transmission_count_near_optimal(self, compiled):
        """196 nodes at ETR 5/8: ideal is ~39 transmissions; the protocol
        uses the S1 spine as well, so allow overhead — but far below
        flooding's 196."""
        _, result = compiled
        assert result.trace.num_tx <= 90


class TestPaperMesh:
    def test_central_source_reaches_all(self, compiled_central):
        assert compiled_central["2D-8"].reached_all

    def test_corner_source_reaches_all(self, compiled_corner):
        assert compiled_corner["2D-8"].reached_all

    def test_delay_close_to_chebyshev_eccentricity(self, paper_meshes,
                                                   compiled_central):
        mesh = paper_meshes["2D-8"]
        result = compiled_central["2D-8"]
        ecc = mesh.eccentricity((16, 8))
        assert ecc <= result.trace.delay_slots <= ecc + 4

    def test_tx_between_ideal_and_paper_plus_margin(self, paper_meshes,
                                                    compiled_central):
        from repro.core import ideal_case
        result = compiled_central["2D-8"]
        ideal = ideal_case(paper_meshes["2D-8"])
        assert ideal.tx <= result.trace.num_tx <= 170


class TestManySources:
    @pytest.mark.parametrize("src", [(1, 1), (14, 14), (7, 7), (1, 14),
                                     (14, 1), (2, 13), (13, 3)])
    def test_reachability(self, src):
        mesh = Mesh2D8(14, 14)
        result = Mesh2D8Protocol().compile(mesh, src)
        assert result.reached_all
