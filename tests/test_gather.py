"""Tests for the data-gathering substrate (direct / LEACH / tree)."""

import numpy as np
import pytest

from repro.gather import (DirectGathering, GatherLifetime, LeachGathering,
                          TreeGathering)
from repro.radio import PAPER_RADIO_MODEL, TwoRayRadioModel
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(10, 6)


BS_NEAR = np.array([2.5, -2.0])
BS_FAR = np.array([2.5, -100.0])


class TestTwoRayModel:
    def test_crossover(self):
        m = TwoRayRadioModel()
        assert 80 < m.crossover_m < 95

    def test_continuous_at_crossover(self):
        m = TwoRayRadioModel()
        d0 = m.crossover_m
        below = m.tx_energy(512, d0 * 0.999999)
        above = m.tx_energy(512, d0 * 1.000001)
        assert below == pytest.approx(above, rel=1e-4)

    def test_quartic_beyond_crossover(self):
        m = TwoRayRadioModel(e_elec=0.0)
        d0 = m.crossover_m
        assert m.tx_energy(1, 2 * d0) == pytest.approx(
            16 * m.e_mp * d0 ** 4 / 1, rel=1e-9)

    def test_batch_matches_scalar(self):
        m = TwoRayRadioModel()
        d = np.array([1.0, 50.0, 90.0, 200.0])
        batch = m.tx_energy_batch(512.0, d)
        for i, di in enumerate(d):
            assert batch[i] == pytest.approx(m.tx_energy(512, di))

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoRayRadioModel(e_fs=0.0)


class TestDirect:
    def test_energy_is_pure_uplink(self, mesh):
        proto = DirectGathering()
        cost = proto.round_energy(mesh, BS_NEAR, 0)
        d = np.linalg.norm(mesh.positions() - BS_NEAR, axis=1)
        expected = PAPER_RADIO_MODEL.tx_energy_batch(512.0, d)
        assert np.allclose(cost, expected)

    def test_far_nodes_pay_more(self, mesh):
        proto = DirectGathering()
        cost = proto.round_energy(mesh, BS_NEAR, 0)
        near = mesh.index((3, 1))
        far = mesh.index((10, 6))
        assert cost[far] > cost[near]

    def test_dimension_mismatch(self, mesh):
        with pytest.raises(ValueError):
            DirectGathering().round_energy(mesh, np.array([1.0, 2, 3]), 0)


class TestLeach:
    def test_everyone_pays_something(self, mesh):
        proto = LeachGathering(p=0.1, seed=0)
        cost = proto.round_energy(mesh, BS_NEAR, 0)
        assert (cost > 0).all()

    def test_deterministic_given_seed(self, mesh):
        a = LeachGathering(p=0.1, seed=5).round_energy(mesh, BS_NEAR, 3)
        b = LeachGathering(p=0.1, seed=5).round_energy(mesh, BS_NEAR, 3)
        # note: election state depends on history; replay rounds 0..3
        pa = LeachGathering(p=0.1, seed=5)
        pb = LeachGathering(p=0.1, seed=5)
        for r in range(4):
            a = pa.round_energy(mesh, BS_NEAR, r)
            b = pb.round_energy(mesh, BS_NEAR, r)
        assert np.allclose(a, b)

    def test_everyone_serves_once_per_epoch(self, mesh):
        proto = LeachGathering(p=0.2, seed=2)
        served = np.zeros(mesh.num_nodes, dtype=bool)
        for r in range(proto._epoch):
            before = proto._served.copy() if proto._served is not None \
                else np.zeros(mesh.num_nodes, dtype=bool)
            proto.round_energy(mesh, BS_NEAR, r)
            served |= proto._served
        # the threshold guarantees coverage *in expectation*; at least a
        # large fraction must have served within one epoch
        assert served.mean() > 0.5

    def test_p_validated(self):
        with pytest.raises(ValueError):
            LeachGathering(p=0.0)

    def test_beats_direct_with_far_bs(self):
        """The classic LEACH result, with the two-ray uplink model."""
        mesh = Mesh2D4(16, 8)
        model = TwoRayRadioModel()
        direct = DirectGathering(model=model).lifetime(
            mesh, BS_FAR, battery_j=0.5)
        leach = LeachGathering(p=0.05, seed=1, model=model).lifetime(
            mesh, BS_FAR, battery_j=0.5)
        assert leach.rounds_completed > direct.rounds_completed


class TestTree:
    def test_round_energy_cheap_hops(self, mesh):
        proto = TreeGathering(gateway=(5, 1))
        cost = proto.round_energy(mesh, BS_NEAR, 0)
        # every node pays at least aggregation of its own signal
        assert (cost > 0).all()
        # leaf nodes pay one short tx + fusion, well under a long uplink
        leaf = mesh.index((10, 6))
        assert cost[leaf] < DirectGathering().round_energy(
            mesh, BS_FAR, 0)[leaf]

    def test_gateway_pays_uplink(self, mesh):
        proto = TreeGathering(gateway=(5, 1))
        cost = proto.round_energy(mesh, BS_FAR, 0)
        assert cost[mesh.index((5, 1))] == cost.max()

    def test_tree_depth_bounded_by_diameter(self, mesh):
        proto = TreeGathering(gateway=(5, 1))
        assert proto.max_tree_depth(mesh) <= mesh.diameter + 2

    def test_rotation_reduces_imbalance(self):
        mesh = Mesh2D4(12, 6)
        fixed = TreeGathering(gateway=(6, 1)).lifetime(
            mesh, BS_FAR, battery_j=0.2)
        rotating = TreeGathering(
            gateway=[(6, 1), (1, 3), (12, 3), (6, 6)]).lifetime(
            mesh, BS_FAR, battery_j=0.2)
        assert rotating.rounds_completed >= fixed.rounds_completed
        assert rotating.energy_imbalance <= fixed.energy_imbalance + 0.1

    def test_lifetime_result_type(self, mesh):
        lt = TreeGathering(gateway=(5, 1)).lifetime(
            mesh, BS_NEAR, battery_j=0.01)
        assert isinstance(lt, GatherLifetime)
        assert lt.rounds_completed > 0
        assert lt.first_death_node is not None

    def test_battery_validation(self, mesh):
        with pytest.raises(ValueError):
            TreeGathering(gateway=(5, 1)).lifetime(mesh, BS_NEAR,
                                                   battery_j=0.0)
