"""Unit tests for the vectorised graph utilities (BFS, diameter, kernels).

BFS and diameter are differentially tested against networkx.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6
from repro.topology import graph as G


def to_networkx(topology):
    g = nx.Graph()
    g.add_nodes_from(range(topology.num_nodes))
    adj = topology.adjacency.tocoo()
    g.add_edges_from(zip(adj.row.tolist(), adj.col.tolist()))
    return g


class TestBFS:
    @pytest.mark.parametrize("cls,dims", [
        (Mesh2D4, (6, 5)), (Mesh2D8, (6, 5)), (Mesh2D3, (6, 5)),
        (Mesh3D6, (3, 3, 3)),
    ])
    def test_matches_networkx(self, cls, dims):
        mesh = cls(*dims)
        g = to_networkx(mesh)
        for src in (0, mesh.num_nodes // 2, mesh.num_nodes - 1):
            ours = G.bfs_distances(mesh.adjacency, src)
            theirs = nx.single_source_shortest_path_length(g, src)
            for v in range(mesh.num_nodes):
                expected = theirs.get(v, -1)
                assert ours[v] == expected

    def test_unreachable_marked_minus_one(self):
        mesh = Mesh2D3(1, 4)  # disconnected brick column
        d = G.bfs_distances(mesh.adjacency, 0)
        assert (d == -1).any()

    def test_source_distance_zero(self):
        mesh = Mesh2D4(4, 4)
        assert G.bfs_distances(mesh.adjacency, 5)[5] == 0

    def test_2d4_distances_are_manhattan(self):
        mesh = Mesh2D4(7, 6)
        src = mesh.index((3, 2))
        d = G.bfs_distances(mesh.adjacency, src)
        for idx in range(mesh.num_nodes):
            x, y = mesh.coord(idx)
            assert d[idx] == abs(x - 3) + abs(y - 2)

    def test_2d8_distances_are_chebyshev(self):
        mesh = Mesh2D8(7, 6)
        src = mesh.index((3, 2))
        d = G.bfs_distances(mesh.adjacency, src)
        for idx in range(mesh.num_nodes):
            x, y = mesh.coord(idx)
            assert d[idx] == max(abs(x - 3), abs(y - 2))


class TestDiameter:
    @pytest.mark.parametrize("cls,dims,expected", [
        (Mesh2D4, (32, 16), 46),
        (Mesh2D8, (32, 16), 31),
        (Mesh2D3, (32, 16), 46),
        (Mesh3D6, (8, 8, 8), 21),
    ])
    def test_paper_shapes(self, cls, dims, expected):
        """Diameters of the paper's evaluation meshes: these are the ideal
        max-delay lower bounds of Table 5 (the paper reports 46/45/31/20;
        see EXPERIMENTS.md for the off-by-one discussion)."""
        assert cls(*dims).diameter == expected

    @given(st.integers(2, 7), st.integers(2, 7))
    @settings(max_examples=10, deadline=None)
    def test_matches_networkx(self, m, n):
        mesh = Mesh2D3(m, n)
        expected = nx.diameter(to_networkx(mesh))
        assert mesh.diameter == expected

    def test_eccentricities(self):
        mesh = Mesh2D4(5, 3)
        ecc = G.eccentricities(mesh.adjacency)
        g = to_networkx(mesh)
        expected = nx.eccentricity(g)
        for v in range(mesh.num_nodes):
            assert ecc[v] == expected[v]


class TestLazyNeighborSets:
    def test_equals_eager_sets(self):
        mesh = Mesh2D3(6, 5)
        lazy = G.LazyNeighborSets(mesh.adjacency)
        assert len(lazy) == mesh.num_nodes
        for v in range(mesh.num_nodes):
            assert lazy[v] == frozenset(mesh.neighbor_indices(v).tolist())

    def test_materialises_on_demand(self):
        mesh = Mesh2D4(8, 8)
        lazy = G.LazyNeighborSets(mesh.adjacency)
        assert lazy._cache.count(None) == 64
        s = lazy[10]
        assert isinstance(s, frozenset)
        assert lazy._cache.count(None) == 63
        assert lazy[10] is s  # memoised

    def test_sequence_protocol(self):
        mesh = Mesh2D4(3, 3)
        lazy = G.LazyNeighborSets(mesh.adjacency)
        assert lazy[-1] == lazy[8]
        assert lazy[2:5] == [lazy[2], lazy[3], lazy[4]]
        assert list(lazy) == [lazy[v] for v in range(9)]
        assert lazy[0] in lazy  # collections.abc.Sequence __contains__
        with pytest.raises(IndexError):
            lazy[9]

    def test_topology_accessor_is_lazy_and_cached(self):
        mesh = Mesh2D8(4, 4)
        sets = mesh.neighbor_sets
        assert isinstance(sets, G.LazyNeighborSets)
        assert mesh.neighbor_sets is sets


class TestKernels:
    def test_neighbor_counts_is_collision_kernel(self):
        mesh = Mesh2D4(4, 4)
        mask = np.zeros(16, dtype=bool)
        mask[mesh.index((2, 2))] = True
        mask[mesh.index((2, 4))] = True
        counts = G.neighbor_counts(mesh.adjacency, mask)
        # (2,3) hears both transmitters
        assert counts[mesh.index((2, 3))] == 2
        # (1,2) hears only (2,2)
        assert counts[mesh.index((1, 2))] == 1
        # (4,1) hears nobody
        assert counts[mesh.index((4, 1))] == 0

    def test_connected_components(self):
        mesh = Mesh2D3(1, 6)
        ncomp, labels = G.connected_components(mesh.adjacency)
        assert ncomp == 3
        assert len(labels) == 6

    def test_all_pairs_shape(self):
        mesh = Mesh2D4(3, 3)
        d = G.all_pairs_distances(mesh.adjacency)
        assert d.shape == (9, 9)
        assert d[0, 0] == 0
        assert d[0, 8] == 4

    def test_build_adjacency_sorted_and_symmetric(self):
        mesh = Mesh2D8(5, 4)
        adj = mesh.adjacency
        assert (adj != adj.T).nnz == 0
        assert adj.has_sorted_indices
        assert adj.diagonal().sum() == 0
