"""Second-pass coverage: cross-module consistency and edge cases that the
per-module suites do not reach."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import sweep_sources
from repro.core import all_to_all, protocol_for
from repro.gather import DirectGathering, TreeGathering
from repro.radio import PAPER_RADIO_MODEL
from repro.routing import bfs_route, random_flows, route
from repro.sim import BroadcastSchedule, replay, run_reactive
from repro.topology import (Mesh2D3, Mesh2D4, Mesh2D6, Mesh2D8, Mesh3D6,
                            analyze)


class TestGatherLifetimeFastPath:
    """The closed-form periodic lifetime must agree with brute-force
    iteration — a differential test of the analytic fast path."""

    @pytest.mark.parametrize("battery", [0.003, 0.01, 0.05])
    def test_direct_fast_path_matches_iterative(self, battery):
        mesh = Mesh2D4(6, 4)
        bs = np.array([1.0, -3.0])
        proto = DirectGathering()
        fast = proto.lifetime(mesh, bs, battery_j=battery)
        slow = proto._lifetime_iterative(mesh, bs, battery, 100_000)
        assert fast.rounds_completed == slow.rounds_completed
        assert fast.first_death_node == slow.first_death_node
        assert fast.mean_round_energy_j == pytest.approx(
            slow.mean_round_energy_j)

    def test_rotating_tree_fast_path_matches_iterative(self):
        mesh = Mesh2D4(8, 4)
        bs = np.array([2.0, -5.0])
        gws = [(4, 1), (1, 2), (8, 4)]
        fast = TreeGathering(gateway=gws).lifetime(mesh, bs, 0.02)
        slow_proto = TreeGathering(gateway=gws)
        slow = slow_proto._lifetime_iterative(mesh, bs, 0.02, 100_000)
        assert fast.rounds_completed == slow.rounds_completed
        # the reported victim may differ among equally-starved nodes
        # (float tie-breaking); the round count is the contract
        assert fast.mean_round_energy_j == pytest.approx(
            slow.mean_round_energy_j)

    def test_max_rounds_respected_by_fast_path(self):
        mesh = Mesh2D4(4, 4)
        proto = DirectGathering()
        lt = proto.lifetime(mesh, np.array([1.0, -1.0]),
                            battery_j=100.0, max_rounds=7)
        assert lt.rounds_completed == 7
        assert lt.first_death_node is None


class TestEngineBoundaries:
    def test_max_slots_truncates(self):
        mesh = Mesh2D4(20, 1)
        relay = np.ones(20, dtype=bool)
        trace = run_reactive(mesh, 0, relay, max_slots=5)
        assert trace.last_activity_slot <= 5
        assert not trace.all_reached

    def test_forced_beyond_activity_extends_run(self):
        mesh = Mesh2D4(5, 1)
        relay = np.zeros(5, dtype=bool)
        trace = run_reactive(mesh, 0, relay, forced_tx={40: [1]})
        assert (40, 1) in trace.tx_events

    def test_replay_ignores_empty_slots(self):
        mesh = Mesh2D4(4, 1)
        sched = BroadcastSchedule.from_events([(1, 0), (9, 1)])
        trace = replay(mesh, sched, 0)
        assert trace.num_tx == 2

    def test_schedule_from_trace_is_idempotent(self):
        mesh = Mesh2D4(9, 5)
        compiled = protocol_for("2D-4").compile(mesh, (5, 3))
        replayed = replay(mesh, compiled.schedule, compiled.source)
        assert replayed.as_schedule() == compiled.schedule


class TestTopologyGeometry:
    def test_link_distance_2d8_diagonal(self):
        mesh = Mesh2D8(5, 5, spacing=2.0)
        assert mesh.link_distance((2, 2), (3, 3)) == pytest.approx(
            2.0 * np.sqrt(2))

    def test_link_distance_3d(self):
        mesh = Mesh3D6(3, 3, 3, spacing=0.5)
        assert mesh.link_distance((1, 1, 1), (1, 1, 2)) == \
            pytest.approx(0.5)

    def test_analyze_hex(self):
        report = analyze(Mesh2D6(8, 6))
        assert report.nominal_degree == 6
        assert report.connected
        assert 6 in report.degree_histogram

    def test_analyze_3d(self):
        report = analyze(Mesh3D6(4, 4, 4))
        assert report.diameter == 9
        assert report.degree_histogram[6] == 8  # interior 2^3

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_3d_iter_coords_round_trips(self, m, n, l):
        mesh = Mesh3D6(m, n, l)
        coords = list(mesh.iter_coords())
        assert len(set(coords)) == mesh.num_nodes
        for c in coords[:: max(1, len(coords) // 7)]:
            assert mesh.coord(mesh.index(c)) == c


class TestRoutingCrossChecks:
    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_3d_route_length_matches_bfs(self, seed):
        mesh = Mesh3D6(4, 4, 4)
        (flow,) = random_flows(mesh, 1, seed=seed)
        src, dst = flow
        assert len(route(mesh, src, dst)) == len(bfs_route(mesh, src, dst))

    def test_hex_route_uses_bfs_fallback(self):
        mesh = Mesh2D6(8, 6)
        path = route(mesh, (1, 1), (8, 6))
        # BFS is exact on the hex lattice
        assert len(path) == len(bfs_route(mesh, (1, 1), (8, 6)))

    def test_route_endpoints_preserved_everywhere(self):
        for mesh in (Mesh2D3(7, 5), Mesh2D4(7, 5), Mesh2D8(7, 5),
                     Mesh3D6(3, 3, 3)):
            for src, dst in random_flows(mesh, 5, seed=1):
                path = route(mesh, src, dst)
                assert path[0] == src and path[-1] == dst


class TestCrossModuleConsistency:
    def test_sweep_metrics_match_direct_compile(self):
        mesh = Mesh2D4(8, 5)
        sweep = sweep_sources(mesh, sources=[(4, 3)])
        from repro.sim import compute_metrics
        compiled = protocol_for(mesh).compile(mesh, (4, 3))
        direct = compute_metrics(compiled.trace, mesh)
        assert sweep.metrics[0].tx == direct.tx
        assert sweep.metrics[0].energy_j == pytest.approx(direct.energy_j)

    def test_all_to_all_slots_are_sum_of_broadcasts(self):
        mesh = Mesh2D4(6, 4)
        srcs = [(1, 1), (6, 4), (3, 2)]
        composed = all_to_all(mesh, sources=srcs)
        total = 0
        proto = protocol_for(mesh)
        for s in srcs:
            total += proto.compile(mesh, s).trace.last_activity_slot
        assert composed.total_slots == total

    def test_energy_model_consistency_broadcast_vs_manual(self):
        mesh = Mesh2D4(10, 5)
        compiled = protocol_for(mesh).compile(mesh, (5, 3))
        from repro.sim import compute_metrics
        m = compute_metrics(compiled.trace, mesh)
        manual = PAPER_RADIO_MODEL.broadcast_energy(
            m.tx, m.rx, 512, mesh.tx_range())
        assert m.energy_j == pytest.approx(manual)

    def test_delivery_tree_spans_reached_nodes(self):
        for label, mesh in (("2D-3", Mesh2D3(9, 7)),
                            ("2D-8", Mesh2D8(9, 7))):
            compiled = protocol_for(label).compile(mesh, (5, 4))
            tree = compiled.trace.delivery_tree()
            assert len(tree) == mesh.num_nodes - 1
            # walking up from any node terminates at the source
            for start in range(0, mesh.num_nodes, 11):
                cur, steps = start, 0
                while cur in tree and steps <= mesh.num_nodes:
                    cur = tree[cur]
                    steps += 1
                assert cur == compiled.source


class TestProtocolEdgeShapes:
    """Degenerate shapes the figures never show."""

    @pytest.mark.parametrize("label,cls", [
        ("2D-4", Mesh2D4), ("2D-8", Mesh2D8)])
    def test_single_row_mesh(self, label, cls):
        mesh = cls(9, 1)
        result = protocol_for(label).compile(mesh, (5, 1))
        assert result.reached_all

    @pytest.mark.parametrize("label,cls", [
        ("2D-4", Mesh2D4), ("2D-8", Mesh2D8), ("2D-3", Mesh2D3)])
    def test_single_node_column(self, label, cls):
        mesh = cls(2, 2)
        result = protocol_for(label).compile(mesh, (1, 1))
        assert result.reached_all

    def test_flat_3d_is_2d4_like(self):
        mesh = Mesh3D6(6, 4, 1)
        result = protocol_for("3D-6").compile(mesh, (3, 2, 1))
        assert result.reached_all

    def test_tall_thin_3d(self):
        mesh = Mesh3D6(2, 2, 8)
        result = protocol_for("3D-6").compile(mesh, (1, 1, 4))
        assert result.reached_all
