"""Tiny-budget engine-tier benchmark that stays inside tier-1 runs.

The real benchmarks (``benchmarks/perf_*.py``) are ``perf``-marked and
excluded from default pytest runs; this smoke keeps a miniature version
of ``benchmarks/perf_kernel.py`` in every tier-1 run (the ``perf_smoke``
marker is informational, not excluded by the default ``-m "not perf"``
addopts), so an engine tier that silently diverges or collapses in
throughput is caught without waiting for a benchmark pass.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.analysis.robustness import loss_degradation
from repro.radio import bitpack
from repro.sim import RecoveryPolicy, native_available
from repro.topology import Mesh2D4

pytestmark = pytest.mark.perf_smoke


def _tier_list():
    engines = ["batch"]
    if bitpack.packing_supported():
        engines.append("packed")
        if native_available():
            engines.append("compiled")
    return engines


def test_engine_tiers_agree_on_smoke_budget():
    mesh = Mesh2D4(12, 10)
    loss_rates = (0.0, 0.1, 0.2)
    engines = _tier_list()
    curves = {}
    rates = {}
    sims = len(loss_rates) * 8
    for engine in engines:
        t0 = time.perf_counter()
        curves[engine] = loss_degradation(mesh, (6, 5), loss_rates,
                                          trials=8, seed=3, engine=engine)
        rates[engine] = sims / (time.perf_counter() - t0)
    for engine in engines[1:]:
        assert curves[engine] == curves["batch"], engine
    # throughput sanity only — a real floor lives in BENCH_kernel.json
    for engine, rate in rates.items():
        assert rate > 0, engine
    assert all(np.isfinite(r) for r in rates.values())


def test_recovery_tiers_agree_on_smoke_budget():
    """Miniature of BENCH_kernel's recovery cell: the packed/native
    recovery states must match the batch oracle through the analysis
    entry point, every tier-1 run."""
    mesh = Mesh2D4(12, 10)
    policy = RecoveryPolicy(timeout=2, max_retries=2, backoff=1,
                            suppression_k=2, election=True)
    curves = {}
    for engine in _tier_list():
        t0 = time.perf_counter()
        curves[engine] = loss_degradation(mesh, (6, 5), (0.1, 0.25),
                                          trials=6, seed=4, engine=engine,
                                          recovery=policy)
        assert np.isfinite(time.perf_counter() - t0)
    for engine, curve in curves.items():
        assert curve == curves["batch"], engine


def test_threaded_resolve_under_thread_sanitizer():
    """One threaded resolve through the REPRO_NATIVE_DEBUG=1 build
    (-fsanitize=thread): any data race in the kernel's pool,
    span partitioning or compaction aborts the subprocess with a tsan
    report.  Skips where the sanitized build cannot load (no libtsan,
    or dlopen of a tsan DSO into a non-tsan interpreter fails) —
    probed inside the subprocess itself, so the skip reason is the
    build's own."""
    if not native_available():
        pytest.skip("native kernel unavailable")
    code = """
import numpy as np
from repro.sim import native
if not native.native_available():
    print("tsan-unavailable:", native.native_reason())
    raise SystemExit(0)
from repro.radio.impairments import BernoulliBatchLoss, trial_seeds
from repro.sim import RecoveryPolicy, run_reactive_batch
from repro.topology import Mesh2D4

mesh = Mesh2D4(8, 6)
trials = 6
loss = BernoulliBatchLoss(0.2, trial_seeds(1, 0.2, trials))
policy = RecoveryPolicy(timeout=2, max_retries=2, backoff=1,
                        suppression_k=1, election=True)
relay = np.ones(mesh.num_nodes, dtype=bool)
a = run_reactive_batch(mesh, 0, relay, loss=loss, trials=trials,
                       summary=True, recovery=policy,
                       engine="compiled", threads=1)
b = run_reactive_batch(mesh, 0, relay, loss=loss, trials=trials,
                       summary=True, recovery=policy,
                       engine="compiled", threads=4)
assert np.array_equal(a.first_rx, b.first_rx)
assert np.array_equal(a.tx_count, b.tx_count)
print("tsan-ok")
"""
    env = dict(os.environ, REPRO_NATIVE_DEBUG="1")
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, timeout=600)
    if "tsan-unavailable" in out.stdout:
        pytest.skip(f"sanitized build unavailable: {out.stdout.strip()}")
    assert out.returncode == 0, out.stderr + out.stdout
    assert "tsan-ok" in out.stdout
    assert "WARNING: ThreadSanitizer" not in out.stderr
