"""Unit tests for ETR computations (paper Table 1 and Fig. 6)."""

from fractions import Fraction

import pytest

from repro.core import (diagonal_vs_axis_etr, optimal_etr,
                        optimal_etr_fraction, protocol_for, trace_etrs,
                        transmission_etr)
from repro.core.etr import OPTIMAL_ETR, OPTIMAL_NEW_PER_TX
from repro.topology import Mesh2D4, Mesh2D8


class TestTable1:
    """Paper Table 1: optimal ETRs of the four topologies."""

    def test_values(self):
        assert optimal_etr("2D-3") == Fraction(2, 3)
        assert optimal_etr("2D-4") == Fraction(3, 4)
        assert optimal_etr("2D-8") == Fraction(5, 8)
        assert optimal_etr("3D-6") == Fraction(5, 6)

    def test_new_per_tx(self):
        assert OPTIMAL_NEW_PER_TX == {"2D-3": 2, "2D-4": 3, "2D-6": 3,
                                      "2D-8": 5, "3D-6": 5}

    def test_hex_extension_row(self):
        """Our 2D-6 extension: adjacent hex nodes share 2 neighbours, so
        the optimum is 3/6 = 1/2."""
        assert optimal_etr("2D-6") == Fraction(1, 2)

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            optimal_etr("ring")

    def test_all_optima_below_one(self):
        for frac in OPTIMAL_ETR.values():
            assert 0 < frac < 1


class TestTransmissionEtr:
    def test_source_reaches_full_etr(self):
        mesh = Mesh2D4(5, 5)
        src = mesh.index((3, 3))
        assert transmission_etr(mesh, src, {src}) == Fraction(1, 1)

    def test_relay_optimal_case(self):
        """A 2D-4 relay whose only informed neighbour is its parent
        achieves the optimal 3/4."""
        mesh = Mesh2D4(5, 5)
        relay = mesh.index((3, 3))
        parent = mesh.index((2, 3))
        assert transmission_etr(
            mesh, relay, {relay, parent}) == Fraction(3, 4)

    def test_all_informed_gives_zero(self):
        mesh = Mesh2D4(3, 3)
        informed = set(range(9))
        assert transmission_etr(mesh, 4, informed) == Fraction(0, 1)

    def test_fig6_derivation(self):
        """Fig. 6: diagonal relay hop 5/8, axis relay hop 3/8 in 2D-8."""
        diag, axis = diagonal_vs_axis_etr()
        assert diag == Fraction(5, 8)
        assert axis == Fraction(3, 8)

    def test_fig6_only_2d8(self):
        with pytest.raises(ValueError):
            diagonal_vs_axis_etr("2D-4")


class TestTraceEtrs:
    def test_first_transmission_is_source(self):
        mesh = Mesh2D4(8, 6)
        compiled = protocol_for("2D-4").compile(mesh, (4, 3))
        history = trace_etrs(mesh, compiled.trace)
        slot, node, etr = history[0]
        assert node == mesh.index((4, 3))
        assert etr == Fraction(1, 1)

    def test_etrs_bounded_by_one(self):
        mesh = Mesh2D8(7, 7)
        compiled = protocol_for("2D-8").compile(mesh, (4, 4))
        for _, _, etr in trace_etrs(mesh, compiled.trace):
            assert 0 <= etr <= 1

    def test_most_relays_achieve_optimum_2d4(self):
        """The paper's core efficiency claim, checked quantitatively."""
        mesh = Mesh2D4(32, 16)
        compiled = protocol_for("2D-4").compile(mesh, (16, 8))
        frac = optimal_etr_fraction(mesh, compiled.trace)
        assert frac >= 0.6

    def test_most_relays_achieve_optimum_2d8(self):
        mesh = Mesh2D8(14, 14)
        compiled = protocol_for("2D-8").compile(mesh, (5, 9))
        frac = optimal_etr_fraction(mesh, compiled.trace)
        assert frac >= 0.5

    def test_empty_trace_fraction(self):
        mesh = Mesh2D4(4, 4)
        compiled = protocol_for("2D-4").compile(mesh, (2, 2))
        # denominator only counts interior non-source relays; tiny mesh
        # may have none, in which case the fraction is defined as 0
        frac = optimal_etr_fraction(mesh, compiled.trace)
        assert 0.0 <= frac <= 1.0
