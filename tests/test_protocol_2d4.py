"""Tests for the 2D-4 broadcasting protocol (Section 3.1, Fig. 5)."""

import pytest

from repro.core import protocol_for, validate_broadcast
from repro.core.mesh2d4 import (Mesh2D4Protocol, relay_columns,
                                retransmitter_columns)
from repro.sim import compute_metrics
from repro.topology import Mesh2D4, Mesh2D8


class TestRelayRules:
    def test_relay_columns_every_three(self):
        # columns x = 6 + 3k clipped to [1, 16], plus border column 1
        # (column 2 is not a relay, so column 1 becomes one)
        assert relay_columns(16, 6) == [1, 3, 6, 9, 12, 15]

    def test_border_rule_left(self):
        """Column 1 is added iff neither 1 nor 2 is a relay column —
        exactly the paper's '(1, y) checks (2, y)' rule."""
        assert 1 in relay_columns(10, 3)       # columns 3,6,9 -> add 1
        assert 1 in relay_columns(10, 4)       # 1 = 4 - 3 is natural
        assert relay_columns(10, 5)[0] == 2    # 2 covers 1, no extra

    def test_border_rule_right(self):
        assert 10 in relay_columns(10, 4)      # columns ...,7 -> add 10
        cols = relay_columns(10, 3)            # ..., 9 covers 10
        assert 10 not in cols

    def test_retransmitter_columns_pattern(self):
        """Fig. 5 (source (6,8) on 16x16): the gray nodes are at
        x = 2, 5, 7, 10, 13, 16."""
        assert retransmitter_columns(16, 6) == [2, 5, 7, 10, 13, 16]

    def test_relay_plan_marks_row_and_columns(self):
        mesh = Mesh2D4(16, 16)
        plan = Mesh2D4Protocol().relay_plan(mesh, (6, 8))
        for x in range(1, 17):
            assert plan.relay_mask[mesh.index((x, 8))]
        for x in (1, 3, 6, 9, 12, 15):
            for y in range(1, 17):
                assert plan.relay_mask[mesh.index((x, y))]
        # a non-column, non-row node is not a relay
        assert not plan.relay_mask[mesh.index((4, 4))]

    def test_repeat_offsets_are_row_nodes(self):
        mesh = Mesh2D4(16, 16)
        plan = Mesh2D4Protocol().relay_plan(mesh, (6, 8))
        coords = sorted(mesh.coord(v) for v in plan.repeat_offsets)
        assert coords == [(2, 8), (5, 8), (7, 8), (10, 8), (13, 8), (16, 8)]
        assert all(offs == (1,) for offs in plan.repeat_offsets.values())

    def test_wrong_topology_type(self):
        with pytest.raises(TypeError):
            Mesh2D4Protocol().relay_plan(Mesh2D8(4, 4), (2, 2))

    def test_source_outside_raises(self):
        with pytest.raises(ValueError):
            Mesh2D4Protocol().relay_plan(Mesh2D4(4, 4), (5, 5))


class TestFig5Example:
    """The worked example of Fig. 5: 16x16 mesh, source (6, 8)."""

    @pytest.fixture(scope="class")
    def compiled(self):
        mesh = Mesh2D4(16, 16)
        return mesh, Mesh2D4Protocol().compile(mesh, (6, 8))

    def test_full_reachability(self, compiled):
        mesh, result = compiled
        assert result.reached_all

    def test_retransmitters_match_figure(self, compiled):
        """The nodes that transmit twice are exactly the paper's gray
        nodes (2,8), (5,8), (7,8), (10,8), (13,8), (16,8)."""
        mesh, result = compiled
        grays = sorted(mesh.coord(v)
                       for v in result.trace.retransmitting_nodes())
        assert grays == [(2, 8), (5, 8), (7, 8), (10, 8), (13, 8), (16, 8)]

    def test_rules_alone_suffice(self, compiled):
        """On the figure's own grid the literal Section 3.1 rules achieve
        100% reachability with no compiler patches."""
        mesh, result = compiled
        assert result.completions == []
        assert result.repairs == []

    def test_audits_clean(self, compiled):
        mesh, result = compiled
        report = validate_broadcast(mesh, result.schedule, result.source)
        assert report.ok, report.issues


class TestPaperMeshBehaviour:
    def test_best_case_matches_paper_tx(self, paper_meshes,
                                        compiled_central):
        """A central source on the 32x16 mesh gives exactly the paper's
        best-case transmission count: 208."""
        result = compiled_central["2D-4"]
        assert result.trace.num_tx == 208

    def test_central_delay_is_eccentricity(self, paper_meshes,
                                           compiled_central):
        mesh = paper_meshes["2D-4"]
        result = compiled_central["2D-4"]
        assert result.trace.delay_slots == mesh.eccentricity((16, 8))

    def test_corner_delay_is_diameter(self, paper_meshes, compiled_corner):
        mesh = paper_meshes["2D-4"]
        result = compiled_corner["2D-4"]
        assert result.trace.delay_slots == mesh.diameter == 46

    def test_corner_reaches_all(self, compiled_corner):
        assert compiled_corner["2D-4"].reached_all

    def test_energy_close_to_ideal(self, paper_meshes, compiled_central):
        from repro.core import ideal_case
        mesh = paper_meshes["2D-4"]
        m = compute_metrics(compiled_central["2D-4"].trace, mesh)
        ideal = ideal_case(mesh)
        assert m.energy_j <= 1.15 * ideal.energy_j


class TestManySources:
    @pytest.mark.parametrize("src", [(1, 1), (16, 1), (1, 8), (9, 5),
                                     (2, 2), (15, 7)])
    def test_reachability_small_grid(self, src):
        mesh = Mesh2D4(16, 8)
        result = Mesh2D4Protocol().compile(mesh, src)
        assert result.reached_all
        report = validate_broadcast(mesh, result.schedule, result.source)
        assert report.ok
