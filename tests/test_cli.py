"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_topology_report(self, capsys):
        assert main(["topology", "2D-4"]) == 0
        out = capsys.readouterr().out
        assert "512" in out
        assert "2D-4" in out

    def test_custom_shape(self, capsys):
        assert main(["topology", "2D-8", "--shape", "5", "5"]) == 0
        assert "25" in capsys.readouterr().out


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "2/3" in out and "3/4" in out and "5/8" in out \
            and "5/6" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        for v in ("255", "170", "102", "124"):
            assert v in out

    def test_table3_strided(self, capsys):
        assert main(["table", "3", "--stride", "101"]) == 0
        out = capsys.readouterr().out
        assert "best case" in out

    def test_table5_strided(self, capsys):
        assert main(["table", "5", "--stride", "101"]) == 0
        out = capsys.readouterr().out
        assert "maximum delay" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2


class TestFigureCommand:
    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "source (6, 8)" in out
        assert "S" in out

    def test_figure6(self, capsys):
        assert main(["figure", "6"]) == 0
        out = capsys.readouterr().out
        assert "5/8" in out and "3/8" in out

    def test_figure9(self, capsys):
        assert main(["figure", "9"]) == 0
        assert "plane z=" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "1"]) == 2


class TestBroadcastCommand:
    def test_broadcast(self, capsys):
        assert main(["broadcast", "2D-4", "--source", "3", "3",
                     "--shape", "8", "6"]) == 0
        out = capsys.readouterr().out
        assert "schedule audit: OK" in out
        assert "100.0%" in out

    def test_broadcast_timeline(self, capsys):
        assert main(["broadcast", "2D-4", "--source", "2", "2",
                     "--shape", "6", "4", "--timeline"]) == 0
        assert "slot timeline" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep(self, capsys):
        assert main(["sweep", "2D-4", "--shape", "8", "6",
                     "--stride", "5"]) == 0
        out = capsys.readouterr().out
        assert "all reached" in out
        assert "True" in out


class TestSelfcheck:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "PASS" in capsys.readouterr().out
