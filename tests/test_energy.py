"""Unit tests for the First Order Radio Model (paper Eqs. 1-2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio import (E_AMP_J_PER_BIT_M2, E_ELEC_J_PER_BIT,
                         PAPER_RADIO_MODEL, FirstOrderRadioModel)


class TestPaperConstants:
    def test_constants(self):
        assert E_ELEC_J_PER_BIT == pytest.approx(50e-9)
        assert E_AMP_J_PER_BIT_M2 == pytest.approx(100e-12)

    def test_rx_512_bits(self):
        """E_Rx(512) = 50 nJ/bit * 512 bit = 25.6 uJ."""
        assert PAPER_RADIO_MODEL.rx_energy(512) == pytest.approx(2.56e-5)

    def test_tx_512_bits_half_metre(self):
        """E_Tx(512, 0.5) = 25.6 uJ + 100 pJ * 512 * 0.25 = 25.6128 uJ."""
        got = PAPER_RADIO_MODEL.tx_energy(512, 0.5)
        assert got == pytest.approx(2.56e-5 + 1.28e-8)

    def test_table2_2d4_power(self):
        """The paper's Table 2 2D-4 row: 170 Tx + 680 Rx = 2.18e-2 J."""
        total = PAPER_RADIO_MODEL.broadcast_energy(170, 680, 512, 0.5)
        assert total == pytest.approx(2.18e-2, rel=2e-3)

    def test_table2_2d3_power(self):
        total = PAPER_RADIO_MODEL.broadcast_energy(255, 765, 512, 0.5)
        assert total == pytest.approx(2.61e-2, rel=2e-3)


class TestFormulas:
    def test_tx_zero_distance_equals_rx(self):
        m = FirstOrderRadioModel()
        assert m.tx_energy(100, 0.0) == pytest.approx(m.rx_energy(100))

    def test_amplifier_quadratic_in_distance(self):
        m = FirstOrderRadioModel(e_elec=0.0, e_amp=1.0)
        assert m.tx_energy(1, 2.0) == pytest.approx(4.0)
        assert m.tx_energy(1, 3.0) == pytest.approx(9.0)

    def test_linear_in_bits(self):
        m = PAPER_RADIO_MODEL
        assert m.tx_energy(1024, 0.5) == pytest.approx(
            2 * m.tx_energy(512, 0.5))
        assert m.rx_energy(1024) == pytest.approx(2 * m.rx_energy(512))

    @given(st.floats(0, 1e5), st.floats(0, 1e3))
    def test_non_negative(self, bits, d):
        m = PAPER_RADIO_MODEL
        assert m.tx_energy(bits, d) >= 0
        assert m.rx_energy(bits) >= 0

    @given(st.floats(1, 1e4), st.floats(0, 100), st.floats(0, 100))
    def test_monotone_in_distance(self, bits, d1, d2):
        m = PAPER_RADIO_MODEL
        lo, hi = sorted((d1, d2))
        assert m.tx_energy(bits, lo) <= m.tx_energy(bits, hi)

    def test_tx_always_geq_rx(self):
        m = PAPER_RADIO_MODEL
        assert m.tx_energy(512, 0.5) >= m.rx_energy(512)

    def test_input_validation(self):
        m = PAPER_RADIO_MODEL
        with pytest.raises(ValueError):
            m.tx_energy(-1, 0.5)
        with pytest.raises(ValueError):
            m.tx_energy(1, -0.5)
        with pytest.raises(ValueError):
            m.rx_energy(-1)
        with pytest.raises(ValueError):
            m.broadcast_energy(-1, 0, 512, 0.5)
        with pytest.raises(ValueError):
            FirstOrderRadioModel(e_elec=-1.0)


class TestVectorised:
    def test_batch_matches_scalar(self):
        m = PAPER_RADIO_MODEL
        bits = np.array([64.0, 512.0, 1024.0])
        d = np.array([0.5, 1.0, 2.0])
        batch = m.tx_energy_batch(bits, d)
        for k in range(3):
            assert batch[k] == pytest.approx(m.tx_energy(bits[k], d[k]))

    def test_batch_broadcasts(self):
        m = PAPER_RADIO_MODEL
        out = m.tx_energy_batch(512.0, np.array([0.5, 1.0]))
        assert out.shape == (2,)

    def test_rx_batch(self):
        m = PAPER_RADIO_MODEL
        out = m.rx_energy_batch(np.array([1.0, 2.0]))
        assert out[1] == pytest.approx(2 * out[0])

    def test_batch_validation(self):
        m = PAPER_RADIO_MODEL
        with pytest.raises(ValueError):
            m.tx_energy_batch(np.array([-1.0]), 0.5)
        with pytest.raises(ValueError):
            m.rx_energy_batch(np.array([-1.0]))
