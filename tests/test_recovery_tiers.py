"""Differential testing: the packed/native recovery tiers vs the batch
recovery oracle.

PR 6 proved every slot-resolve tier bit-identical to the dense batch
kernel; this suite extends the contract to the recovery layer.  With a
:class:`RecoveryPolicy` active, ``engine="packed"`` runs
:class:`~repro.sim.recovery_packed.PackedRecoveryState` (word-packed
known-edge bitset, due-slot buckets) and ``engine="compiled"`` runs
:class:`~repro.sim.recovery_packed.NativeRecoveryState` (C inner
loops) — both must stay trace-for-trace identical to the
:class:`~repro.sim.recovery.BatchRecoveryState` oracle on
hypothesis-generated scenarios over all four paper topologies, random
policies (elections included — meaningful on 2D-8, whose triangles make
repair possible), loss processes, dead-node masks, and every shard
count.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import protocol_for
from repro.radio.impairments import (BernoulliBatchLoss, BurstBatchLoss,
                                     trial_seeds)
from repro.sim import (PackedRecoveryState, RecoveryPolicy, native_available,
                       replay_batch, replay_batch_sharded,
                       run_reactive_batch, run_reactive_batch_sharded)
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6

MESHES = [
    (Mesh2D4, (5, 4)),
    (Mesh2D8, (4, 4)),
    (Mesh2D3, (5, 4)),
    (Mesh3D6, (3, 3, 3)),
]

#: The word-space tiers under test ("compiled" silently degrades to
#: packed on hosts without a native build — still a valid run of the
#: packed recovery state, never a skipped assertion).
TIERS = ["packed", "compiled"]


def assert_traces_equal(oracle, tier_traces, tag):
    assert len(oracle) == len(tier_traces)
    for b, (a, c) in enumerate(zip(oracle, tier_traces)):
        assert a.tx_events == c.tx_events, f"{tag} trial {b} tx"
        assert a.rx_events == c.rx_events, f"{tag} trial {b} rx"
        assert a.collision_events == c.collision_events, \
            f"{tag} trial {b} collisions"
        assert (a.first_rx == c.first_rx).all(), f"{tag} trial {b} first_rx"


def assert_summaries_equal(oracle, summary, tag):
    for field in ("first_rx", "tx_count", "rx_count", "collisions"):
        assert np.array_equal(getattr(oracle, field),
                              getattr(summary, field)), f"{tag} {field}"


@st.composite
def recovery_policy(draw):
    return RecoveryPolicy(
        timeout=draw(st.integers(1, 3)),
        max_retries=draw(st.integers(0, 3)),
        backoff=draw(st.integers(1, 2)),
        suppression_k=draw(st.integers(0, 3)),
        election=draw(st.booleans()))


@st.composite
def channel(draw, num_nodes, trials, source):
    """Per-trial dead masks (never the source) and a word-space loss."""
    dead_masks = None
    if draw(st.booleans()):
        dead_masks = np.zeros((trials, num_nodes), dtype=bool)
        for b in range(trials):
            for v in draw(st.lists(st.integers(0, num_nodes - 1),
                                   max_size=3, unique=True)):
                if v != source:
                    dead_masks[b, v] = True
    kind = draw(st.sampled_from(["none", "bernoulli", "burst"]))
    seeds = trial_seeds(draw(st.integers(0, 5)), 0.3, trials)
    if kind == "bernoulli":
        loss = BernoulliBatchLoss(draw(st.sampled_from([0.15, 0.35])), seeds)
    elif kind == "burst":
        loss = BurstBatchLoss(draw(st.sampled_from([0.2, 0.4])), seeds,
                              length=draw(st.integers(1, 3)))
    else:
        loss = None
    return dead_masks, loss


class TestReactiveRecoveryTiers:
    """run_reactive_batch: packed/compiled recovery == batch oracle."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_paper_plans(self, cls, shape):
        mesh = cls(*shape)
        src = tuple(max(1, s // 2) for s in shape)
        plan = protocol_for(mesh.name).relay_plan(mesh, src)
        src_idx = mesh.index(src)

        @given(data=st.data())
        @settings(max_examples=15, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            trials = data.draw(st.integers(1, 4))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, src_idx))
            kwargs = dict(extra_delay=plan.extra_delay,
                          repeat_offsets=plan.repeat_offsets,
                          dead_masks=dead_masks, loss=loss,
                          trials=trials, recovery=policy)
            oracle = run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                        engine="batch", **kwargs)
            for tier in TIERS:
                assert_traces_equal(
                    oracle,
                    run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                       engine=tier, **kwargs),
                    tier)

        check()

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_random_relay_masks(self, cls, shape):
        """Arbitrary relay sets: guardians with partially-covered
        neighbourhoods, elections with non-plan relay-like sets."""
        mesh = cls(*shape)

        @given(data=st.data())
        @settings(max_examples=12, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            source = data.draw(st.integers(0, mesh.num_nodes - 1))
            relay_mask = np.array(
                [data.draw(st.booleans()) for _ in range(mesh.num_nodes)],
                dtype=bool)
            trials = data.draw(st.integers(1, 3))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, source))
            kwargs = dict(dead_masks=dead_masks, loss=loss,
                          trials=trials, recovery=policy)
            oracle = run_reactive_batch(mesh, source, relay_mask,
                                        engine="batch", **kwargs)
            for tier in TIERS:
                assert_traces_equal(
                    oracle,
                    run_reactive_batch(mesh, source, relay_mask,
                                       engine=tier, **kwargs),
                    tier)

        check()

    def test_elections_fire_on_2d8_dead_relay(self):
        """A dead relay on 2D-8 (triangles => repair possible) must
        drive the election path identically in every tier."""
        mesh = Mesh2D8(5, 5)
        src = (2, 2)
        plan = protocol_for("2D-8").relay_plan(mesh, src)
        src_idx = mesh.index(src)
        relays = plan.relay_mask.nonzero()[0]
        victim = int(relays[relays != src_idx][0])
        trials = 4
        dead_masks = np.zeros((trials, mesh.num_nodes), dtype=bool)
        dead_masks[:, victim] = True
        policy = RecoveryPolicy(timeout=1, max_retries=1, backoff=1,
                                suppression_k=0, election=True)
        kwargs = dict(dead_masks=dead_masks, trials=trials,
                      recovery=policy)
        oracle = run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                    engine="batch", **kwargs)
        # The scenario must actually exercise an election: some node
        # transmits past the ordinary retry window.
        last_tx = max(t for t, _ in oracle[0].tx_events)
        assert last_tx >= policy.election_delay
        for tier in TIERS:
            assert_traces_equal(
                oracle,
                run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                   engine=tier, **kwargs),
                tier)


class TestReplayRecoveryTiers:
    """replay_batch: packed/compiled recovery == batch oracle."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_compiled_schedules(self, cls, shape):
        mesh = cls(*shape)
        src = tuple(max(1, s // 2) for s in shape)
        compiled = protocol_for(mesh.name).compile(mesh, src)
        src_idx = mesh.index(src)

        @given(data=st.data())
        @settings(max_examples=12, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            trials = data.draw(st.integers(1, 3))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, src_idx))
            kwargs = dict(dead_masks=dead_masks, loss=loss,
                          trials=trials, recovery=policy)
            oracle = replay_batch(mesh, compiled.schedule, src_idx,
                                  engine="batch", **kwargs)
            for tier in TIERS:
                assert_traces_equal(
                    oracle,
                    replay_batch(mesh, compiled.schedule, src_idx,
                                 engine=tier, **kwargs),
                    tier)

        check()


class TestShardInvarianceWithRecovery:
    """Recovery state rides trial shards: every worker count and tier
    must reproduce the unsharded batch summary bit for bit (the
    counter RNG keys loss draws by trial, not by shard)."""

    @pytest.mark.parametrize("cls,shape", [(Mesh2D4, (6, 5)),
                                           (Mesh2D8, (4, 4))])
    def test_reactive_sharded(self, cls, shape):
        mesh = cls(*shape)
        src = tuple(max(1, s // 2) for s in shape)
        plan = protocol_for(mesh.name).relay_plan(mesh, src)
        src_idx = mesh.index(src)
        trials = 7
        policy = RecoveryPolicy(timeout=2, max_retries=2, backoff=2,
                                suppression_k=2, election=True)
        loss = BernoulliBatchLoss(0.3, trial_seeds(11, 0.3, trials))
        dead_masks = np.zeros((trials, mesh.num_nodes), dtype=bool)
        dead_masks[2, (src_idx + 3) % mesh.num_nodes] = True
        kwargs = dict(loss=loss, trials=trials, dead_masks=dead_masks,
                      recovery=policy, summary=True)
        oracle = run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                    engine="batch", **kwargs)
        for tier in TIERS + ["batch"]:
            for workers in (1, 2, 3):
                sharded = run_reactive_batch_sharded(
                    mesh, src_idx, plan.relay_mask, engine=tier,
                    workers=workers, **kwargs)
                assert_summaries_equal(oracle, sharded,
                                       f"{tier} workers={workers}")

    def test_replay_sharded(self, cls=Mesh2D4, shape=(6, 5)):
        mesh = cls(*shape)
        src = tuple(max(1, s // 2) for s in shape)
        compiled = protocol_for(mesh.name).compile(mesh, src)
        src_idx = mesh.index(src)
        trials = 6
        policy = RecoveryPolicy(timeout=1, max_retries=2, backoff=2,
                                suppression_k=1, election=False)
        loss = BernoulliBatchLoss(0.25, trial_seeds(5, 0.25, trials))
        kwargs = dict(loss=loss, trials=trials, recovery=policy,
                      summary=True)
        oracle = replay_batch(mesh, compiled.schedule, src_idx,
                              engine="batch", **kwargs)
        for tier in TIERS:
            for workers in (1, 2, 3):
                sharded = replay_batch_sharded(
                    mesh, compiled.schedule, src_idx, engine=tier,
                    workers=workers, **kwargs)
                assert_summaries_equal(oracle, sharded,
                                       f"{tier} workers={workers}")


@pytest.mark.skipif(not native_available(),
                    reason="native kernel unavailable")
class TestRecoveryThreadInvariance:
    """The threaded C recovery update (post-slot decode attribution and
    the timeout/suppression/election checks) is bit-identical to its
    single-thread run at every pool width."""

    WIDTHS = sorted({2, 3, os.cpu_count() or 1, 64} - {1})

    @pytest.mark.parametrize("cls,shape", [(Mesh2D4, (5, 4)),
                                           (Mesh2D8, (4, 4))])
    def test_random_policies(self, cls, shape):
        mesh = cls(*shape)

        @given(data=st.data())
        @settings(max_examples=10, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            source = data.draw(st.integers(0, mesh.num_nodes - 1))
            relay_mask = np.array(
                [data.draw(st.booleans()) for _ in range(mesh.num_nodes)],
                dtype=bool)
            trials = data.draw(st.integers(1, 3))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, source))
            kwargs = dict(dead_masks=dead_masks, loss=loss,
                          trials=trials, recovery=policy,
                          engine="compiled")
            base = run_reactive_batch(mesh, source, relay_mask,
                                      threads=1, **kwargs)
            for threads in self.WIDTHS:
                assert_traces_equal(
                    base,
                    run_reactive_batch(mesh, source, relay_mask,
                                       threads=threads, **kwargs),
                    f"threads={threads}")

        check()

    def test_election_path_across_widths(self):
        """The election bookkeeping (the serial tail of the threaded
        checks pass) stays deterministic at every width on the dead-relay
        scenario that actually fires it."""
        mesh = Mesh2D8(5, 5)
        src = (2, 2)
        plan = protocol_for("2D-8").relay_plan(mesh, src)
        src_idx = mesh.index(src)
        relays = plan.relay_mask.nonzero()[0]
        victim = int(relays[relays != src_idx][0])
        trials = 4
        dead_masks = np.zeros((trials, mesh.num_nodes), dtype=bool)
        dead_masks[:, victim] = True
        policy = RecoveryPolicy(timeout=1, max_retries=1, backoff=1,
                                suppression_k=0, election=True)
        kwargs = dict(dead_masks=dead_masks, trials=trials,
                      recovery=policy, engine="compiled")
        base = run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                  threads=1, **kwargs)
        for threads in self.WIDTHS:
            assert_traces_equal(
                base,
                run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                   threads=threads, **kwargs),
                f"threads={threads}")


class TestPackedStateInternals:
    """Directed checks of PackedRecoveryState plumbing the engine-level
    differentials cannot isolate."""

    def test_epos_fallback_matches_explicit(self):
        """post_slot(epos=None) must recompute the exact CSR positions
        the backends would have attributed."""
        mesh = Mesh2D4(4, 4)
        n = mesh.num_nodes
        policy = RecoveryPolicy()
        relay = np.ones(n, dtype=bool)
        with_epos = PackedRecoveryState(mesh, policy, relay, 2)
        without = PackedRecoveryState(mesh, policy, relay, 2)
        # Two of node 0's neighbours decode its transmission, twice.
        nb = mesh.neighbor_indices(0)[:2].astype(np.int64)
        rt = np.array([0, 0, 1, 1], dtype=np.int64)
        rn = np.concatenate([nb, nb])
        sv = np.zeros(4, dtype=np.int64)
        tr = np.array([0, 1], dtype=np.int64)
        nd = np.zeros(2, dtype=np.int64)
        epos = with_epos._epos_of(rn, sv)
        indptr, indices = mesh.slot_kernel.indptr, mesh.slot_kernel.indices
        for p, r, s in zip(epos, rn, sv):
            assert indices[p] == s
            assert indptr[r] <= p < indptr[r + 1]
        with_epos.post_slot(1, tr, nd, rt, rn, sv, rt, rn, epos=epos)
        without.post_slot(1, tr, nd, rt, rn, sv, rt, rn)
        assert np.array_equal(with_epos.known, without.known)
        assert np.array_equal(with_epos.heard_total, without.heard_total)

    def test_reverse_edge_table_is_involution(self):
        for cls, shape in MESHES:
            mesh = cls(*shape)
            state = PackedRecoveryState(mesh, RecoveryPolicy(),
                                        np.ones(mesh.num_nodes, bool), 1)
            rev = state.rev_edge
            assert np.array_equal(rev[rev], np.arange(len(rev)))
            indptr, indices = (mesh.slot_kernel.indptr,
                               mesh.slot_kernel.indices)
            rows = np.repeat(np.arange(mesh.num_nodes),
                             np.diff(indptr))
            # rev maps edge (u -> v) to (v -> u)
            assert np.array_equal(rows[rev], indices)
            assert np.array_equal(indices[rev], rows)

    def test_coverage_masks_cover_each_row_exactly(self):
        mesh = Mesh2D8(4, 4)
        state = PackedRecoveryState(mesh, RecoveryPolicy(),
                                    np.ones(mesh.num_nodes, bool), 1)
        indptr = mesh.slot_kernel.indptr
        for v in range(mesh.num_nodes):
            bits = set()
            for w, m in zip(state._cov_w[v], state._cov_m[v]):
                for j in range(64):
                    if int(m) >> j & 1:
                        bits.add(int(w) * 64 + j)
            assert bits == set(range(int(indptr[v]), int(indptr[v + 1])))
