"""Unit tests for the simulation engine (reactive waves and replay)."""

import numpy as np
import pytest

from repro.sim import BroadcastSchedule, replay, run_reactive
from repro.topology import Mesh2D4


def line_mesh(length):
    """A 1 x length 2D-4 mesh is a simple path graph — ideal for
    hand-checkable wave tests."""
    return Mesh2D4(length, 1)


class TestReactiveWave:
    def test_line_relay_wave(self):
        mesh = line_mesh(6)
        relay = np.ones(6, dtype=bool)
        trace = run_reactive(mesh, 0, relay)
        # node k receives at slot k, source transmits at slot 1
        for k in range(1, 6):
            assert trace.first_rx[k] == k
        assert trace.all_reached
        assert trace.delay_slots == 5
        # everyone but the last node relays usefully; all 6 transmit once
        assert trace.num_tx == 6

    def test_non_relay_does_not_forward(self):
        mesh = line_mesh(5)
        relay = np.ones(5, dtype=bool)
        relay[2] = False
        trace = run_reactive(mesh, 0, relay)
        assert trace.first_rx[2] == 2
        assert trace.first_rx[3] == -1  # wave stops at the silent node
        assert not trace.all_reached

    def test_source_always_transmits(self):
        mesh = line_mesh(3)
        relay = np.zeros(3, dtype=bool)
        trace = run_reactive(mesh, 1, relay)
        assert trace.tx_events == [(1, 1)]
        assert trace.first_rx[0] == 1
        assert trace.first_rx[2] == 1

    def test_extra_delay_shifts_transmission(self):
        mesh = line_mesh(5)
        relay = np.ones(5, dtype=bool)
        delay = np.zeros(5, dtype=np.int64)
        delay[1] = 2
        trace = run_reactive(mesh, 0, relay, extra_delay=delay)
        # node 1 receives at 1, transmits at 1+1+2 = 4
        assert (4, 1) in trace.tx_events
        assert trace.first_rx[2] == 4

    def test_repeat_offsets_cause_retransmission(self):
        mesh = line_mesh(4)
        relay = np.ones(4, dtype=bool)
        trace = run_reactive(mesh, 0, relay, repeat_offsets={1: (1,)})
        slots = sorted(s for s, v in trace.tx_events if v == 1)
        assert slots == [2, 3]

    def test_invalid_repeat_offset(self):
        mesh = line_mesh(3)
        with pytest.raises(ValueError):
            run_reactive(mesh, 0, np.ones(3, dtype=bool),
                         repeat_offsets={0: (0,)})

    def test_forced_tx_executes_when_informed(self):
        mesh = line_mesh(5)
        relay = np.zeros(5, dtype=bool)
        relay[1] = True
        # wave dies after node 1; force node 2 at slot 5 (informed at 2)
        trace = run_reactive(mesh, 0, relay, forced_tx={5: [2]})
        assert (5, 2) in trace.tx_events
        assert trace.first_rx[3] == 5
        assert trace.dropped_forced == []

    def test_forced_tx_dropped_when_uninformed(self):
        mesh = line_mesh(5)
        relay = np.zeros(5, dtype=bool)
        trace = run_reactive(mesh, 0, relay, forced_tx={3: [4]})
        assert (3, 4) in trace.dropped_forced
        assert all(v != 4 for _, v in trace.tx_events)

    def test_collision_starves_middle_node(self):
        """Two simultaneous neighbours garble the slot; the node between
        them never decodes and the trace records the collision."""
        mesh = Mesh2D4(3, 1)
        relay = np.zeros(3, dtype=bool)
        trace = run_reactive(mesh, 1, relay, forced_tx={2: [0, 2]})
        # both forced at slot 2 (informed at slot 1 by the source)
        assert trace.first_rx[0] == 1 and trace.first_rx[2] == 1
        # node 1 is idle at slot 2 and hears both -> a collision event is
        # recorded even though node 1 already holds the message
        assert (2, 1) in trace.collision_events
        # the middle node cannot "lose" anything; make a clean case:
        mesh2 = Mesh2D4(5, 1)
        relay2 = np.zeros(5, dtype=bool)
        relay2[1] = True
        relay2[3] = False
        tr = run_reactive(mesh2, 2, relay2, forced_tx={2: [3]})
        # slot 2: node 1 (relay, informed at 1) and node 3 (forced) both
        # transmit -> node 2 is transmitter-silent; nodes 0,4 receive fine
        assert tr.first_rx[0] == 2 and tr.first_rx[4] == 2

    def test_bad_source_raises(self):
        mesh = line_mesh(3)
        with pytest.raises(ValueError):
            run_reactive(mesh, 9, np.ones(3, dtype=bool))

    def test_bad_mask_shape_raises(self):
        mesh = line_mesh(3)
        with pytest.raises(ValueError):
            run_reactive(mesh, 0, np.ones(4, dtype=bool))

    def test_negative_extra_delay_raises(self):
        mesh = line_mesh(3)
        with pytest.raises(ValueError):
            run_reactive(mesh, 0, np.ones(3, dtype=bool),
                         extra_delay=np.array([0, -1, 0]))

    def test_terminates_on_silent_network(self):
        mesh = line_mesh(4)
        trace = run_reactive(mesh, 0, np.zeros(4, dtype=bool))
        assert trace.num_tx == 1
        assert trace.last_activity_slot == 1


class TestReplay:
    def test_replay_matches_reactive_trace(self):
        """Replaying the schedule extracted from a reactive run must give
        the identical trace (determinism of the collision model)."""
        mesh = Mesh2D4(6, 4)
        relay = np.ones(mesh.num_nodes, dtype=bool)
        relay[mesh.index((3, 2))] = False
        reactive = run_reactive(mesh, 0, relay)
        replayed = replay(mesh, reactive.as_schedule(), 0)
        assert replayed.tx_events == reactive.tx_events
        assert replayed.rx_events == reactive.rx_events
        assert replayed.collision_events == reactive.collision_events
        assert (replayed.first_rx == reactive.first_rx).all()

    def test_replay_empty_schedule(self):
        mesh = line_mesh(3)
        trace = replay(mesh, BroadcastSchedule(), 0)
        assert trace.num_tx == 0
        assert trace.first_rx[0] == 0
        assert not trace.all_reached

    def test_replay_source_bounds(self):
        mesh = line_mesh(3)
        with pytest.raises(ValueError):
            replay(mesh, BroadcastSchedule(), 5)
