"""Unit tests for the 2D-3 region partition (Section 3.3, Fig. 8)."""

import pytest

from repro.core.regions import base_nodes, partition
from repro.topology import Mesh2D3


class TestBaseNodes:
    def test_paper_fig8_source(self):
        """Source (10,7): (10,6) is its vertical neighbour (10+7 odd), so
        the 'if (i, j-1) is neighbour' branch applies:
        a = (10, 5), b = (10, 8)."""
        mesh = Mesh2D3(20, 14)
        assert (10, 6) in mesh.neighbors((10, 7))
        a, b = base_nodes(mesh, (10, 7))
        assert a == (10, 5)
        assert b == (10, 8)

    def test_other_parity(self):
        """Source (10,8): vertical neighbour is (10,9), so (10,7) is not a
        neighbour -> a = (10, 7), b = (10, 10)."""
        mesh = Mesh2D3(20, 14)
        assert (10, 7) not in mesh.neighbors((10, 8))
        a, b = base_nodes(mesh, (10, 8))
        assert a == (10, 7)
        assert b == (10, 10)

    def test_border_source_still_defined(self):
        mesh = Mesh2D3(8, 8)
        a, b = base_nodes(mesh, (1, 1))
        assert a[0] == 1 and b[0] == 1


class TestRegionOf:
    @pytest.fixture
    def part(self):
        mesh = Mesh2D3(20, 14)
        return partition(mesh, (10, 7))

    def test_base_nodes_in_their_cones(self, part):
        assert part.region_of(part.base_a) == 2
        assert part.region_of(part.base_b) == 3

    def test_source_in_region_1(self, part):
        assert part.region_of((10, 7)) == 1

    def test_downward_cone(self, part):
        # straight below a
        assert part.region_of((10, 3)) == 2
        assert part.region_of((10, 1)) == 2
        # inside the widening cone
        assert part.region_of((9, 2)) == 2
        assert part.region_of((11, 2)) == 2

    def test_upward_cone(self, part):
        assert part.region_of((10, 12)) == 3
        assert part.region_of((9, 12)) == 3
        assert part.region_of((11, 12)) == 3

    def test_sides_are_region_1(self, part):
        assert part.region_of((1, 7)) == 1
        assert part.region_of((20, 7)) == 1
        assert part.region_of((2, 13)) == 1
        assert part.region_of((19, 1)) == 1

    def test_cone_boundaries(self, part):
        # region 2: x+y <= 15 and x-y >= 5 (a = (10,5))
        assert part.region_of((11, 4)) == 2      # 15 <= 15, 7 >= 5
        assert part.region_of((12, 4)) == 1      # 16 > 15
        # region 3: x+y >= 18 and x-y <= 2 (b = (10,8))
        assert part.region_of((9, 9)) == 3       # 18 >= 18, 0 <= 2
        assert part.region_of((8, 9)) == 1       # 17 < 18

    def test_every_node_classified(self):
        mesh = Mesh2D3(20, 14)
        part = partition(mesh, (10, 7))
        counts = {1: 0, 2: 0, 3: 0}
        for c in mesh.iter_coords():
            counts[part.region_of(c)] += 1
        assert sum(counts.values()) == mesh.num_nodes
        assert all(v > 0 for v in counts.values())

    def test_invalid_source_raises(self):
        mesh = Mesh2D3(6, 6)
        with pytest.raises(ValueError):
            partition(mesh, (7, 1))
