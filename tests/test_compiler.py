"""Unit tests for the rule/completion/repair schedule compiler."""

import numpy as np
import pytest

from repro.core import RelayPlan, compile_broadcast, protocol_for
from repro.core.compiler import CompilationError
from repro.topology import Mesh2D3, Mesh2D4


class TestPhases:
    def test_complete_plan_needs_no_fixes(self):
        """A relay plan that already covers everything compiles in one
        round with no completions or repairs."""
        mesh = Mesh2D4(6, 1)  # a line: full relaying is collision-free
        plan = RelayPlan(relay_mask=np.ones(6, dtype=bool),
                         extra_delay=np.zeros(6, dtype=np.int64))
        result = compile_broadcast(mesh, 0, plan)
        assert result.reached_all
        assert result.completions == []
        assert result.repairs == []
        assert result.rounds == 1

    def test_completion_promotes_relays(self):
        """An empty plan must be completed into a working broadcast by
        promoting relays greedily."""
        mesh = Mesh2D4(5, 1)
        plan = RelayPlan.empty(5)
        result = compile_broadcast(mesh, 0, plan)
        assert result.reached_all
        assert len(result.completions) >= 3

    def test_phases_disabled_returns_partial(self):
        mesh = Mesh2D4(5, 1)
        plan = RelayPlan.empty(5)
        result = compile_broadcast(mesh, 0, plan,
                                   completion=False, repair=False)
        assert not result.reached_all
        assert result.trace.num_tx == 1  # only the source fired

    def test_repair_only_cannot_create_new_relays(self):
        """With completion off, only nodes that already transmit may add
        slots; an empty plan stays stuck at the source."""
        mesh = Mesh2D4(5, 1)
        plan = RelayPlan.empty(5)
        result = compile_broadcast(mesh, 0, plan,
                                   completion=False, repair=True)
        assert not result.reached_all
        # the source may retransmit, but the wave cannot advance
        assert all(v == 0 for _, v in result.trace.tx_events)

    def test_repair_fixes_collision_starvation(self):
        """Two symmetric relays starve the node between them; the repair
        phase must schedule a retransmission for it."""
        mesh = Mesh2D4(5, 3)
        plan = RelayPlan.empty(15)
        # relays: the source row sweeps outwards; columns 2 and 4 fire
        # simultaneously at slot 3, colliding at (3, 1) and (3, 3)
        for x in range(1, 6):
            plan.relay_mask[mesh.index((x, 2))] = True
        for x in (2, 4):
            for y in (1, 3):
                plan.relay_mask[mesh.index((x, y))] = True
        result = compile_broadcast(mesh, mesh.index((3, 2)), plan)
        assert result.reached_all

    def test_disconnected_graph_partial_result(self):
        mesh = Mesh2D3(1, 6)  # disconnected brick column
        plan = RelayPlan.empty(6)
        plan.relay_mask[:] = True
        result = compile_broadcast(mesh, 0, plan)
        assert not result.reached_all
        assert result.trace.reachability < 1.0

    def test_round_cap_raises(self):
        mesh = Mesh2D4(6, 1)
        plan = RelayPlan.empty(6)
        with pytest.raises(CompilationError):
            compile_broadcast(mesh, 0, plan, max_rounds=1)


class TestDeterminism:
    def test_compile_is_deterministic(self):
        mesh = Mesh2D4(12, 9)
        proto = protocol_for("2D-4")
        a = proto.compile(mesh, (5, 4))
        b = proto.compile(mesh, (5, 4))
        assert a.schedule == b.schedule
        assert a.completions == b.completions
        assert a.repairs == b.repairs

    def test_trace_schedule_consistency(self):
        mesh = Mesh2D3(12, 9)
        result = protocol_for("2D-3").compile(mesh, (5, 4))
        assert result.schedule.num_transmissions == result.trace.num_tx
        assert set(result.schedule) == {
            (s, v) for s, v in result.trace.tx_events}


class TestInvariants:
    @pytest.mark.parametrize("label,shape,src", [
        ("2D-4", (9, 7), (4, 4)),
        ("2D-8", (9, 7), (4, 4)),
        ("2D-3", (9, 7), (4, 4)),
    ])
    def test_no_dropped_forced_in_final_schedule(self, label, shape, src):
        mesh = {"2D-4": Mesh2D4, "2D-8": __import__(
            "repro.topology", fromlist=["Mesh2D8"]).Mesh2D8,
            "2D-3": Mesh2D3}[label](*shape)
        result = protocol_for(label).compile(mesh, src)
        assert result.trace.dropped_forced == []

    def test_causality_always_holds(self):
        mesh = Mesh2D4(10, 10)
        result = protocol_for("2D-4").compile(mesh, (7, 2))
        for slot, node in result.trace.tx_events:
            if node == result.source:
                continue
            assert 0 <= result.trace.first_rx[node] < slot


class TestPruneDropped:
    """Regression: _prune_dropped must remove *every* occurrence of a
    dropped (node, slot) entry, not just the first (list.remove did)."""

    def _trace_with_drops(self, drops):
        from repro.sim.trace import BroadcastTrace
        return BroadcastTrace(
            num_nodes=4, source=0,
            first_rx=np.array([0, -1, -1, -1]),
            dropped_forced=list(drops))

    def test_duplicates_fully_removed(self):
        from repro.core.compiler import _prune_dropped
        trace = self._trace_with_drops([(5, 2)])          # (slot, node)
        forced = {5: {2}, 7: {3}}
        completions = [(2, 5), (3, 7), (2, 5)]            # (node, slot) dup
        repairs = [(2, 5), (2, 5)]
        _prune_dropped(trace, forced, completions, repairs)
        assert completions == [(3, 7)]
        assert repairs == []
        assert forced == {7: {3}}

    def test_noop_without_drops(self):
        from repro.core.compiler import _prune_dropped
        trace = self._trace_with_drops([])
        forced = {3: {1}}
        completions = [(1, 3)]
        repairs = []
        _prune_dropped(trace, forced, completions, repairs)
        assert forced == {3: {1}} and completions == [(1, 3)]

    def test_slot_entry_survives_other_nodes(self):
        from repro.core.compiler import _prune_dropped
        trace = self._trace_with_drops([(4, 1)])
        forced = {4: {1, 2}}
        completions = [(1, 4)]
        repairs = [(2, 4)]
        _prune_dropped(trace, forced, completions, repairs)
        assert forced == {4: {2}}
        assert completions == []
        assert repairs == [(2, 4)]
