"""The query service: engine tiers, coalescing, runtimes, wire, server.

These are tier-1 tests: everything except the socket round-trip runs
in-process through :class:`~repro.service.runtime.SimulationRuntime`
(deterministic, no wall clock); the server test binds an ephemeral
localhost port through asyncio and exercises the full NDJSON path.
The ``perf_smoke``-marked test keeps a miniature of
``benchmarks/perf_service.py``'s warm-vs-cold contract in every tier-1
run.
"""

import asyncio
import json

import pytest

from repro.core.compiler import compile_call_count
from repro.core.registry import protocol_for
from repro.core.symmetry import group_sources
from repro.radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from repro.service import (AsyncRuntime, Query, QueryEngine,
                           SimulationRuntime, SyncRuntime, serve,
                           query_from_dict, query_to_dict, result_to_dict)
from repro.sim.metrics import compute_metrics
from repro.topology import Mesh2D4
from repro.topology.builder import make_topology

SHAPE = (8, 8)


def _query(source, **kwargs):
    return Query(topology="2D-4", source=tuple(source), shape=SHAPE,
                 **kwargs)


def _direct_metrics(source):
    topology = make_topology("2D-4", shape=SHAPE)
    compiled = protocol_for(topology).compile(topology, tuple(source))
    return compute_metrics(compiled.trace, topology, PAPER_RADIO_MODEL,
                           PAPER_PACKET_BITS)


def _same_class_sources(n, shape=SHAPE):
    topology = Mesh2D4(*shape)
    protocol = protocol_for(topology)
    sources = [topology.coord(i) for i in range(topology.num_nodes)]
    groups, _ = group_sources(topology, protocol, sources)
    members = max(groups.values(), key=len)
    return [sources[members[i % len(members)]] for i in range(n)]


# -- SimulationRuntime: the deterministic in-process path -----------------

@pytest.mark.perf_smoke
def test_simulation_runtime_round_trip_matches_direct_compile(tmp_path):
    engine = QueryEngine(tmp_path / "store")
    runtime = SimulationRuntime(engine)
    result = runtime.query(_query((3, 4)))
    assert result.via == "compile"
    assert result.metrics == _direct_metrics((3, 4))
    runtime.advance(1.5)
    # fresh engine on the same store: warm, served without compiling
    warm = SimulationRuntime(QueryEngine(tmp_path / "store"))
    calls0 = compile_call_count()
    again = warm.query(_query((3, 4)))
    assert compile_call_count() == calls0
    assert again.via == "store"
    assert again.metrics == result.metrics
    assert runtime.timeline == [(0.0, "compile")]
    assert warm.timeline == [(0.0, "store")]


def test_simulation_clock_never_goes_backwards(tmp_path):
    runtime = SimulationRuntime(QueryEngine(tmp_path / "store"))
    runtime.advance(2.0)
    assert runtime.now() == 2.0
    with pytest.raises(ValueError):
        runtime.advance(-0.5)


def test_memory_tier_serves_repeat_queries(tmp_path):
    engine = QueryEngine(tmp_path / "store")
    first = engine.query(_query((5, 5)))
    second = engine.query(_query((5, 5)))
    assert first.via == "compile"
    assert second.via == "memory"
    assert second.metrics == first.metrics


def test_include_schedule_returns_slot_node_pairs(tmp_path):
    engine = QueryEngine(tmp_path / "store")
    result = engine.query(_query((2, 2), include_schedule=True))
    assert result.schedule, "schedule requested but not returned"
    slots = [s for s, _ in result.schedule]
    assert slots == sorted(slots)
    assert len(result.schedule) == result.metrics.tx


# -- coalescing -----------------------------------------------------------

def test_batch_coalesces_same_class_queries_into_one_compile(tmp_path):
    sources = _same_class_sources(16)
    engine = QueryEngine(tmp_path / "store")
    calls0 = compile_call_count()
    results = engine.query_batch([_query(s) for s in sources])
    assert compile_call_count() - calls0 == 1
    assert engine.coalesced == len(sources) - 1
    assert all(r.via.startswith("class:") for r in results)
    # every member's metrics equal its direct compilation
    assert results[0].metrics == _direct_metrics(sources[0])
    assert results[-1].metrics == _direct_metrics(sources[-1])


def test_single_flight_across_batches_via_class_profile(tmp_path):
    sources = _same_class_sources(8)
    store_dir = tmp_path / "store"
    calls0 = compile_call_count()
    QueryEngine(store_dir).query_batch([_query(s) for s in sources[:4]])
    assert compile_call_count() - calls0 == 1
    # a later engine on the same store reuses the persisted profile:
    # zero further compiles even for unseen members of the class
    calls1 = compile_call_count()
    QueryEngine(store_dir).query_batch([_query(s) for s in sources[4:]])
    assert compile_call_count() == calls1


def test_batch_honors_non_default_compile_options(tmp_path):
    """Regression: coalesced cold queries used to compile with default
    completion/repair regardless of the query's flags and persist the
    results under the default-options shard — wrong metrics, and warm
    lookups keyed on the real options never hit."""
    topology = make_topology("2D-8", shape=SHAPE)
    protocol = protocol_for(topology)
    sources = [topology.coord(i) for i in range(topology.num_nodes)]
    groups, _ = group_sources(topology, protocol, sources)
    # a multi-member class whose default compile needs fix phases, so
    # rule-only metrics are genuinely distinguishable
    coords = next(
        [sources[p] for p in positions]
        for positions in groups.values()
        if len(positions) >= 2 and (lambda c: c.completions or c.repairs)(
            protocol.compile(topology, sources[positions[0]])))

    def _rule_only_query(coord):
        return Query(topology="2D-8", source=tuple(coord), shape=SHAPE,
                     completion=False, repair=False)

    results = QueryEngine(tmp_path / "store").query_batch(
        [_rule_only_query(c) for c in coords])
    for coord, result in zip(coords, results):
        compiled = protocol.compile(topology, tuple(coord),
                                    completion=False, repair=False)
        assert result.metrics == compute_metrics(
            compiled.trace, topology, PAPER_RADIO_MODEL, PAPER_PACKET_BITS)
    default = protocol.compile(topology, tuple(coords[0]))
    assert results[0].metrics != compute_metrics(
        default.trace, topology, PAPER_RADIO_MODEL, PAPER_PACKET_BITS)

    # the entries landed in the options-keyed shard: a fresh engine
    # answers the same queries warm, without compiling
    warm = QueryEngine(tmp_path / "store")
    calls0 = compile_call_count()
    again = warm.query_batch([_rule_only_query(c) for c in coords])
    assert compile_call_count() == calls0
    for cold, hit in zip(results, again):
        assert hit.via == "store"
        assert hit.metrics == cold.metrics


def test_async_runtime_gathers_concurrent_queries_into_one_compile(
        tmp_path):
    sources = _same_class_sources(12)
    engine = QueryEngine(tmp_path / "store")

    async def run():
        async with AsyncRuntime(engine) as runtime:
            return await asyncio.gather(
                *(runtime.query(_query(s)) for s in sources))

    calls0 = compile_call_count()
    results = asyncio.run(run())
    assert compile_call_count() - calls0 == 1
    assert len(results) == len(sources)
    assert results[0].metrics == _direct_metrics(sources[0])


def test_async_tick_batches_mixed_shapes_without_extra_compiles(tmp_path):
    """One tick mixing query classes (two shapes here) splits into
    per-class groups served concurrently on the executor — and the
    split costs zero extra compiles: k cold classes in one mixed tick
    compile exactly k representatives, the same as k pure single-class
    ticks would."""
    shapes = [(8, 8), (6, 6)]
    per_shape = {shape: _same_class_sources(6, shape) for shape in shapes}
    engine = QueryEngine(tmp_path / "store")

    async def run():
        async with AsyncRuntime(engine) as runtime:
            queries = [Query(topology="2D-4", source=tuple(s), shape=shape)
                       for shape, sources in per_shape.items()
                       for s in sources]
            return await asyncio.gather(
                *(runtime.query(q) for q in queries))

    calls0 = compile_call_count()
    results = asyncio.run(run())
    assert compile_call_count() - calls0 == len(shapes)
    assert len(results) == sum(len(s) for s in per_shape.values())
    # per-group query_batch calls, not one monolithic batch per tick
    assert engine.batches >= len(shapes)
    # fidelity per shape against a direct compile
    pos = 0
    for shape, sources in per_shape.items():
        topology = make_topology("2D-4", shape=shape)
        compiled = protocol_for(topology).compile(topology,
                                                  tuple(sources[0]))
        expect = compute_metrics(compiled.trace, topology,
                                 PAPER_RADIO_MODEL, PAPER_PACKET_BITS)
        assert results[pos].metrics == expect
        pos += len(sources)


def test_async_tick_error_is_scoped_to_its_group(tmp_path):
    """A failing class in a mixed tick rejects only its own waiters;
    queries of other classes in the same tick still get answers."""
    engine = QueryEngine(tmp_path / "store")

    async def run():
        async with AsyncRuntime(engine) as runtime:
            return await asyncio.gather(
                runtime.query(Query(topology="no-such", source=(1,))),
                runtime.query(_query((4, 4))),
                return_exceptions=True)

    bad, good = asyncio.run(run())
    assert isinstance(bad, Exception)
    assert good.metrics == _direct_metrics((4, 4))


def test_async_runtime_propagates_errors_without_dying(tmp_path):
    engine = QueryEngine(tmp_path / "store")

    async def run():
        async with AsyncRuntime(engine) as runtime:
            with pytest.raises(Exception):
                await runtime.query(Query(topology="no-such", source=(1,)))
            return await runtime.query(_query((4, 4)))

    result = asyncio.run(run())
    assert result.metrics == _direct_metrics((4, 4))


# -- LRU bound ------------------------------------------------------------

def test_engine_lru_eviction_is_counted_and_bounded(tmp_path):
    engine = QueryEngine(tmp_path / "store", max_entries=2)
    for source in ((1, 1), (2, 2), (3, 3), (4, 4)):
        engine.query(_query(source))
    stats = engine.stats()
    assert stats["memory_entries"] == 2
    assert stats["evictions"] == 2
    assert stats["max_entries"] == 2
    # evicted entries come back from the store, not a recompile
    calls0 = compile_call_count()
    result = engine.query(_query((1, 1)))
    assert compile_call_count() == calls0
    assert result.via == "store"


# -- wire format ----------------------------------------------------------

def test_wire_round_trip():
    query = _query((3, 7), include_schedule=True)
    assert query_from_dict(query_to_dict(query)) == query


@pytest.mark.parametrize("payload", [
    [],                                      # not an object
    {"source": [1, 1]},                      # missing topology
    {"topology": "2D-4"},                    # missing source
    {"topology": 7, "source": [1, 1]},       # topology not a string
    {"topology": "2D-4", "source": "x"},     # source not a list
    {"topology": "2D-4", "source": [1, 1], "bogus": True},  # unknown field
])
def test_wire_rejects_malformed_requests(payload):
    with pytest.raises(ValueError):
        query_from_dict(payload)


def test_result_to_dict_carries_metrics_and_schedule(tmp_path):
    engine = QueryEngine(tmp_path / "store")
    result = engine.query(_query((2, 5), include_schedule=True))
    payload = result_to_dict(result)
    assert payload["ok"] is True
    assert payload["via"] == "compile"
    assert payload["metrics"]["tx"] == result.metrics.tx
    assert len(payload["schedule"]) == result.metrics.tx


# -- NDJSON server --------------------------------------------------------

def test_ndjson_server_round_trip(tmp_path):
    engine = QueryEngine(tmp_path / "store")

    async def run():
        ready = asyncio.Event()
        server = asyncio.create_task(
            serve(engine, "127.0.0.1", 0, ready=ready))
        await ready.wait()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", ready.bound_port)
        requests = [
            {"topology": "2D-4", "shape": list(SHAPE), "source": [3, 4]},
            {"topology": "2D-4", "shape": list(SHAPE), "source": [3, 4],
             "include_schedule": True},
            {"oops": True},
        ]
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        lines = [await asyncio.wait_for(reader.readline(), timeout=30)
                 for _ in requests]
        writer.close()
        await writer.wait_closed()
        server.cancel()
        try:
            await server
        except asyncio.CancelledError:
            pass
        return [json.loads(line) for line in lines]

    responses = asyncio.run(run())
    oks = [r for r in responses if r["ok"]]
    errors = [r for r in responses if not r["ok"]]
    assert len(oks) == 2 and len(errors) == 1
    assert "unknown request fields" in errors[0]["error"]
    direct = _direct_metrics((3, 4))
    for response in oks:
        assert response["metrics"]["tx"] == direct.tx
        assert response["metrics"]["energy_J"] == direct.energy_j
    with_schedule = [r for r in oks if "schedule" in r]
    assert len(with_schedule) == 1
    assert len(with_schedule[0]["schedule"]) == direct.tx


def test_ndjson_server_rejects_oversized_request_line(tmp_path):
    """A line longer than MAX_LINE_BYTES gets an error response and a
    clean close, not a torn-down connection with a logged traceback
    (StreamReader.readline surfaces the overrun as ValueError)."""
    from repro.service.server import MAX_LINE_BYTES
    engine = QueryEngine(tmp_path / "store")

    async def run():
        ready = asyncio.Event()
        server = asyncio.create_task(
            serve(engine, "127.0.0.1", 0, ready=ready))
        await ready.wait()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", ready.bound_port)
        writer.write(b"x" * (MAX_LINE_BYTES + 16))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        tail = await asyncio.wait_for(reader.read(), timeout=30)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
        server.cancel()
        try:
            await server
        except asyncio.CancelledError:
            pass
        return json.loads(line), tail

    response, tail = asyncio.run(run())
    assert response["ok"] is False
    assert "exceeds" in response["error"]
    assert tail == b""  # server closed the connection after replying


# -- CLI ------------------------------------------------------------------

def test_cli_query_and_cache_stats(tmp_path, capsys):
    from repro.cli import main
    store = str(tmp_path / "store")
    args = ["query", "2D-4", "--shape", "8", "8", "--source", "3", "4",
            "--store", store, "--cache-stats"]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "via            : compile" in cold
    assert "cache-stats:" in cold and "misses=1" in cold
    calls0 = compile_call_count()
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "via            : store" in warm
    assert "disk_hits=1" in warm
    assert compile_call_count() == calls0


def test_cli_sweep_cache_stats_line(tmp_path, capsys):
    from repro.cli import main
    assert main(["sweep", "2D-4", "--shape", "8", "8", "--stride", "4",
                 "--cache", str(tmp_path / "c"), "--cache-stats",
                 "--cache-max-entries", "4"]) == 0
    out = capsys.readouterr().out
    assert "cache-stats:" in out
    assert "evictions=" in out


# -- warm bulk precompute (miniature of benchmarks/perf_service.py) -------

@pytest.mark.perf_smoke
def test_warm_precompute_serves_every_source_without_compiling(tmp_path):
    store_dir = tmp_path / "store"
    warmer = QueryEngine(store_dir)
    summary = warmer.warm([("2D-4", SHAPE)])
    assert summary["entries"] == SHAPE[0] * SHAPE[1]
    assert summary["compiles"] <= summary["classes"]

    engine = QueryEngine(store_dir)  # fresh memory tier
    topology = Mesh2D4(*SHAPE)
    calls0 = compile_call_count()
    sample = [topology.coord(i) for i in range(0, topology.num_nodes, 7)]
    for source in sample:
        result = engine.query(_query(source))
        assert result.via == "store", source
    assert compile_call_count() == calls0
    # spot-check fidelity against a direct compile
    assert engine.query(_query(sample[3])).metrics \
        == _direct_metrics(sample[3])
