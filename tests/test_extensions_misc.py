"""Tests for sensitivity analysis, TEEN gathering and all-to-all."""

import numpy as np
import pytest

from repro.analysis import sensitivity, sensitivity_table, sweep_sources
from repro.core import all_to_all, protocol_for
from repro.gather import LeachGathering, TeenGathering
from repro.topology import Mesh2D4, make_topology


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_sources(Mesh2D4(10, 6))

    def test_report_fields(self, sweep):
        rep = sensitivity(sweep, "tx")
        assert rep.minimum <= rep.mean <= rep.maximum
        assert rep.relative_spread >= 0
        assert rep.coefficient_of_variation >= 0
        assert rep.topology == "2D-4"

    def test_all_metrics(self, sweep):
        for metric in ("tx", "rx", "energy_J", "delay"):
            rep = sensitivity(sweep, metric)
            assert rep.metric == metric

    def test_unknown_metric(self, sweep):
        with pytest.raises(ValueError):
            sensitivity(sweep, "latency")

    def test_table(self, sweep):
        rows = sensitivity_table({"2D-4": sweep})
        assert len(rows) == 3
        assert all(r["topology"] == "2D-4" for r in rows)

    def test_spread_consistency(self, sweep):
        rep = sensitivity(sweep, "energy_J")
        expected = (rep.maximum - rep.minimum) / rep.mean
        assert rep.relative_spread == pytest.approx(expected)

    def test_cv_below_spread(self, sweep):
        """The std-based CV never exceeds the range-based spread."""
        for metric in ("tx", "delay"):
            rep = sensitivity(sweep, metric)
            assert rep.coefficient_of_variation <= \
                rep.relative_spread + 1e-12


class TestTeen:
    BS = np.array([5.0, -10.0])

    def test_reporting_is_threshold_gated(self):
        teen = TeenGathering(seed=3, hard_threshold=1e9)
        mask = teen.reporters(100, 0)
        assert not mask.any()  # nothing ever crosses an absurd threshold

    def test_zero_threshold_reports_everything_first_round(self):
        teen = TeenGathering(seed=3, hard_threshold=0.0,
                             soft_threshold=0.0)
        assert teen.reporters(50, 0).all()

    def test_soft_threshold_suppresses_repeats(self):
        teen = TeenGathering(seed=3, hard_threshold=0.0,
                             soft_threshold=1e6, volatility=0.01)
        first = teen.reporters(50, 0)
        second = teen.reporters(50, 1)
        assert first.all()
        assert not second.any()  # nothing moved by 1e6

    def test_energy_scales_with_volatility(self):
        mesh = Mesh2D4(16, 8)
        totals = []
        for vol in (0.05, 1.0):
            teen = TeenGathering(p=0.05, seed=1, volatility=vol)
            totals.append(sum(
                float(teen.round_energy(mesh, self.BS, r).sum())
                for r in range(30)))
        assert totals[0] < totals[1]

    def test_quiet_field_cheaper_than_leach(self):
        """TEEN's core claim: reactive reporting beats periodic reporting
        when the environment is quiet."""
        mesh = Mesh2D4(16, 8)
        teen = TeenGathering(p=0.05, seed=1, volatility=0.05)
        leach = LeachGathering(p=0.05, seed=1)
        te = sum(float(teen.round_energy(mesh, self.BS, r).sum())
                 for r in range(30))
        le = sum(float(leach.round_energy(mesh, self.BS, r).sum())
                 for r in range(30))
        assert te < 0.5 * le

    def test_validation(self):
        with pytest.raises(ValueError):
            TeenGathering(soft_threshold=-1.0)
        with pytest.raises(ValueError):
            TeenGathering(volatility=-0.1)

    def test_deterministic(self):
        mesh = Mesh2D4(8, 8)
        a = TeenGathering(seed=9)
        b = TeenGathering(seed=9)
        for r in range(5):
            ea = a.round_energy(mesh, self.BS, r)
            eb = b.round_energy(mesh, self.BS, r)
            assert np.allclose(ea, eb)


class TestAllToAll:
    def test_full_exchange_small_mesh(self):
        mesh = Mesh2D4(6, 4)
        result = all_to_all(mesh)
        assert result.all_reached
        assert result.num_sources == 24
        # each broadcast transmits at least the ideal count
        assert result.total_tx >= 24 * 8

    def test_subset_of_sources(self):
        mesh = Mesh2D4(6, 4)
        result = all_to_all(mesh, sources=[(1, 1), (6, 4)])
        assert result.num_sources == 2
        assert result.all_reached

    def test_energy_is_sum_of_parts(self):
        from repro.sim import compute_metrics
        mesh = Mesh2D4(6, 4)
        srcs = [(2, 2), (5, 3)]
        result = all_to_all(mesh, sources=srcs)
        expected = 0.0
        proto = protocol_for(mesh)
        for s in srcs:
            compiled = proto.compile(mesh, s)
            expected += compute_metrics(compiled.trace, mesh).energy_j
        assert result.energy_j == pytest.approx(expected)

    def test_rotation_balances_load(self):
        """Every node taking a turn as source flattens the per-node
        transmission distribution compared with one fixed source."""
        mesh = Mesh2D4(8, 6)
        full = all_to_all(mesh)
        single = all_to_all(mesh, sources=[(4, 3)])
        assert full.tx_imbalance < single.tx_imbalance

    def test_row(self):
        mesh = Mesh2D4(4, 4)
        row = all_to_all(mesh, sources=[(2, 2)]).as_row()
        assert row["sources"] == 1
        assert row["total_slots"] > 0
