"""Tests for the robustness analysis (loss/failure degradation curves)."""

import pytest

from repro.analysis import (failure_degradation, harden_plan,
                            loss_degradation)
from repro.core import protocol_for
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(12, 8)


class TestHardenPlan:
    def test_zero_repeats_is_copy(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 0)
        assert hardened.repeat_offsets == plan.repeat_offsets
        assert hardened is not plan

    def test_adds_offsets_to_every_relay(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 2)
        import numpy as np
        for v in np.nonzero(plan.relay_mask)[0]:
            offs = hardened.repeat_offsets[int(v)]
            assert 2 in offs and 4 in offs  # wave-phase-aligned spacing

    def test_merges_existing_offsets(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        # designated retransmitters already have offset (1,); hardening
        # merges its own even offsets with it
        some = next(iter(plan.repeat_offsets))
        hardened = harden_plan(plan, 1)
        assert hardened.repeat_offsets[some] == (1, 2)

    def test_negative_rejected(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        with pytest.raises(ValueError):
            harden_plan(plan, -1)


class TestLossDegradation:
    def test_zero_loss_full_reach(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.0], trials=2)
        assert point.mean_reachability == 1.0

    def test_hardened_plan_keeps_clean_channel_perfect(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.0], trials=2,
                                    harden=2)
        assert point.mean_reachability == 1.0

    def test_monotone_in_loss(self, mesh):
        points = loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.4],
                                  trials=4, seed=5)
        reaches = [p.mean_reachability for p in points]
        assert reaches[0] >= reaches[1] >= reaches[2] - 0.05

    def test_hardening_helps(self, mesh):
        base = loss_degradation(mesh, (6, 4), [0.15], trials=4, seed=2)
        hard = loss_degradation(mesh, (6, 4), [0.15], trials=4, seed=2,
                                harden=2)
        assert hard[0].mean_reachability >= base[0].mean_reachability
        assert hard[0].mean_tx > base[0].mean_tx  # hardening costs energy

    def test_rows(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.1], trials=2)
        row = point.as_row()
        assert row["parameter"] == 0.1
        assert 0 <= row["min_reach"] <= row["mean_reach"] <= 1


class TestFailureDegradation:
    def test_zero_failures_full_reach(self, mesh):
        (point,) = failure_degradation(mesh, (6, 4), [0], trials=2)
        assert point.mean_reachability == 1.0

    def test_static_schedule_degrades(self, mesh):
        points = failure_degradation(mesh, (6, 4), [0, 8], trials=4,
                                     recompile=False, seed=1)
        assert points[1].mean_reachability < 1.0

    def test_recompile_beats_static(self, mesh):
        static = failure_degradation(mesh, (6, 4), [8], trials=4,
                                     recompile=False, seed=1)
        adaptive = failure_degradation(mesh, (6, 4), [8], trials=4,
                                       recompile=True, seed=1)
        assert adaptive[0].mean_reachability > \
            static[0].mean_reachability

    def test_recompile_reaches_connected_survivors(self, mesh):
        """With few failures the surviving lattice stays connected and the
        recompiled broadcast must reach every live node."""
        points = failure_degradation(mesh, (6, 4), [3], trials=5,
                                     recompile=True, seed=3)
        assert points[0].min_reachability >= 0.97
