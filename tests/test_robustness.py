"""Tests for the robustness analysis (loss/failure degradation curves)."""

import numpy as np
import pytest

from repro.analysis import (failure_degradation, harden_plan,
                            loss_degradation, recovery_frontier)
from repro.analysis.robustness import RobustnessPoint, _chunk, _fan_out
from repro.core import protocol_for
from repro.radio import CounterBernoulliLoss, trial_seeds
from repro.sim import RecoveryPolicy
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(12, 8)


class TestHardenPlan:
    def test_zero_repeats_is_copy(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 0)
        assert hardened.repeat_offsets == plan.repeat_offsets
        assert hardened is not plan

    def test_adds_offsets_to_every_relay(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 2)
        import numpy as np
        for v in np.nonzero(plan.relay_mask)[0]:
            offs = hardened.repeat_offsets[int(v)]
            assert 2 in offs and 4 in offs  # wave-phase-aligned spacing

    def test_merges_existing_offsets(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        # designated retransmitters already have offset (1,); hardening
        # merges its own even offsets with it
        some = next(iter(plan.repeat_offsets))
        hardened = harden_plan(plan, 1)
        assert hardened.repeat_offsets[some] == (1, 2)

    def test_negative_rejected(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        with pytest.raises(ValueError):
            harden_plan(plan, -1)

    def test_zero_repeats_copy_is_mutation_independent(self, mesh):
        """repeats=0 must hand back an independent copy: mutating it may
        not leak into the original plan."""
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        before_offsets = dict(plan.repeat_offsets)
        before_mask = plan.relay_mask.copy()
        hardened = harden_plan(plan, 0)
        hardened.repeat_offsets[0] = (2, 4)
        hardened.relay_mask[:] = False
        assert plan.repeat_offsets == before_offsets
        assert (plan.relay_mask == before_mask).all()

    def test_offsets_all_even_and_sorted(self, mesh):
        """Hardening offsets must be even (phase-aligned with the wave)
        and each relay's merged tuple sorted ascending."""
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        pre_existing = {v: offs for v, offs in plan.repeat_offsets.items()}
        hardened = harden_plan(plan, 3)
        for v in np.nonzero(plan.relay_mask)[0]:
            offs = hardened.repeat_offsets[int(v)]
            assert list(offs) == sorted(offs)
            added = set(offs) - set(pre_existing.get(int(v), ()))
            assert added == {2, 4, 6}
            assert all(o % 2 == 0 for o in added)

    def test_non_relays_untouched(self, mesh):
        """Nodes outside the relay mask keep exactly their pre-existing
        repeats — hardening only amplifies actual relays."""
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 2)
        for v, offs in plan.repeat_offsets.items():
            if not plan.relay_mask[v]:
                assert hardened.repeat_offsets[v] == offs


class TestSeedMixing:
    def test_parameters_draw_distinct_randomness(self, mesh):
        """Regression for the correlated-stream bug: the old seeding
        (``seed * 1000 + trial``) gave every sweep parameter the same
        per-trial channels, so curves were paired sample-for-sample.
        The per-trial losses for two parameters must now differ."""
        rx = np.ones(mesh.num_nodes, dtype=bool)
        for trial in range(4):
            s_a = int(trial_seeds(0, 0.1, 4)[trial])
            s_b = int(trial_seeds(0, 0.2, 4)[trial])
            assert s_a != s_b
            a = CounterBernoulliLoss(0.5, s_a).apply(1, rx)
            b = CounterBernoulliLoss(0.5, s_b).apply(1, rx)
            assert (a != b).any()

    def test_failure_masks_decorrelated_across_counts(self, mesh):
        """Different failure counts must kill different node sets (beyond
        the forced subset relation a shared stream would produce)."""
        from repro.analysis.robustness import _failure_dead_masks
        src = mesh.index((6, 4))
        m4 = _failure_dead_masks(mesh, 4, 6, seed=0, src=src)
        m8 = _failure_dead_masks(mesh, 8, 6, seed=0, src=src)
        subset_rows = sum((m4[b] & ~m8[b]).sum() == 0 for b in range(6))
        assert subset_rows < 6


class TestEngineEquivalence:
    """engine="batch" and engine="serial" must produce identical curves."""

    def assert_points_equal(self, a, b):
        assert len(a) == len(b)
        for pa, pb in zip(a, b):
            assert pa == pb

    def test_loss_points_identical(self, mesh):
        kw = dict(trials=6, seed=4, harden=1)
        self.assert_points_equal(
            loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.3],
                             engine="batch", **kw),
            loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.3],
                             engine="serial", **kw))

    def test_failure_points_identical(self, mesh):
        kw = dict(trials=5, seed=2)
        self.assert_points_equal(
            failure_degradation(mesh, (6, 4), [0, 4, 9],
                                engine="batch", **kw),
            failure_degradation(mesh, (6, 4), [0, 4, 9],
                                engine="serial", **kw))

    def test_workers_do_not_change_points(self, mesh):
        kw = dict(trials=4, seed=7)
        self.assert_points_equal(
            loss_degradation(mesh, (6, 4), [0.05, 0.1, 0.2, 0.3], **kw),
            loss_degradation(mesh, (6, 4), [0.05, 0.1, 0.2, 0.3],
                             workers=2, **kw))
        self.assert_points_equal(
            failure_degradation(mesh, (6, 4), [2, 5, 8], **kw),
            failure_degradation(mesh, (6, 4), [2, 5, 8], workers=2, **kw))

    def test_unknown_engine_rejected(self, mesh):
        with pytest.raises(ValueError, match="unknown engine"):
            loss_degradation(mesh, (6, 4), [0.1], engine="vector")
        with pytest.raises(ValueError, match="unknown engine"):
            failure_degradation(mesh, (6, 4), [1], engine="vector")


class TestLossDegradation:
    def test_zero_loss_full_reach(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.0], trials=2)
        assert point.mean_reachability == 1.0

    def test_hardened_plan_keeps_clean_channel_perfect(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.0], trials=2,
                                    harden=2)
        assert point.mean_reachability == 1.0

    def test_monotone_in_loss(self, mesh):
        points = loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.4],
                                  trials=4, seed=5)
        reaches = [p.mean_reachability for p in points]
        assert reaches[0] >= reaches[1] >= reaches[2] - 0.05

    def test_hardening_helps(self, mesh):
        base = loss_degradation(mesh, (6, 4), [0.15], trials=4, seed=2)
        hard = loss_degradation(mesh, (6, 4), [0.15], trials=4, seed=2,
                                harden=2)
        assert hard[0].mean_reachability >= base[0].mean_reachability
        assert hard[0].mean_tx > base[0].mean_tx  # hardening costs energy

    def test_rows(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.1], trials=2)
        row = point.as_row()
        assert row["parameter"] == 0.1
        assert 0 <= row["min_reach"] <= row["mean_reach"] <= 1

    def test_distribution_fields(self, mesh):
        """std/p5/p50 must describe the per-trial reach distribution."""
        (point,) = loss_degradation(mesh, (6, 4), [0.2], trials=8, seed=1)
        assert point.min_reachability <= point.p5_reach \
            <= point.p50_reach <= 1.0
        assert point.std_reach > 0  # lossy trials genuinely vary
        row = point.as_row()
        assert {"std_reach", "p5_reach", "p50_reach"} <= set(row)

    def test_point_backward_compatible_positional(self):
        """Pre-existing positional constructions (without the new
        distribution fields) must keep working."""
        p = RobustnessPoint(0.1, 4, 0.9, 0.8, 30.0)
        assert p.std_reach == 0.0
        assert p.p5_reach == 0.0
        assert p.p50_reach == 0.0


class TestFailureDegradation:
    def test_zero_failures_full_reach(self, mesh):
        (point,) = failure_degradation(mesh, (6, 4), [0], trials=2)
        assert point.mean_reachability == 1.0

    def test_static_schedule_degrades(self, mesh):
        points = failure_degradation(mesh, (6, 4), [0, 8], trials=4,
                                     recompile=False, seed=1)
        assert points[1].mean_reachability < 1.0

    def test_recompile_beats_static(self, mesh):
        static = failure_degradation(mesh, (6, 4), [8], trials=4,
                                     recompile=False, seed=1)
        adaptive = failure_degradation(mesh, (6, 4), [8], trials=4,
                                       recompile=True, seed=1)
        assert adaptive[0].mean_reachability > \
            static[0].mean_reachability

    def test_recompile_reaches_connected_survivors(self, mesh):
        """With few failures the surviving lattice stays connected and the
        recompiled broadcast must reach every live node."""
        points = failure_degradation(mesh, (6, 4), [3], trials=5,
                                     recompile=True, seed=3)
        assert points[0].min_reachability >= 0.97


class TestFanOut:
    """Process fan-out sizing (regression: idle workers for short sweeps)."""

    def test_chunk_empty_items(self):
        assert _chunk([], 4) == []

    def test_chunk_fewer_items_than_workers(self):
        chunks = _chunk([1, 2], 8)
        assert all(chunks)  # no empty chunks to spawn processes for
        assert sorted(x for c in chunks for x in c) == [1, 2]

    def test_pool_capped_at_chunk_count(self, monkeypatch):
        """Asking for more workers than sweep points must not size the
        pool beyond the actual chunk count."""
        import repro.analysis.robustness as rob
        seen = {}

        class FakePool:
            def __init__(self, max_workers):
                seen["max_workers"] = max_workers

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, jobs):
                return [fn(job) for job in jobs]

        monkeypatch.setattr(rob, "ProcessPoolExecutor", FakePool)
        out = _fan_out(lambda p: p, [10, 20], workers=8,
                       job_builder=lambda chunk: chunk,
                       worker_fn=lambda chunk: chunk)
        assert sorted(out) == [10, 20]
        assert seen["max_workers"] <= 2


class TestRecoveryThreading:
    """RecoveryPolicy flows through the degradation sweeps and engines."""

    POLICY = RecoveryPolicy(timeout=2, max_retries=2, backoff=1,
                            suppression_k=2, election=False)

    def test_recovery_improves_loss_curve(self, mesh):
        kw = dict(trials=4, seed=6)
        bare = loss_degradation(mesh, (6, 4), [0.25], **kw)
        rec = loss_degradation(mesh, (6, 4), [0.25],
                               recovery=self.POLICY, **kw)
        assert rec[0].mean_reachability > bare[0].mean_reachability

    def test_recovery_engines_agree(self, mesh):
        kw = dict(trials=4, seed=6, recovery=self.POLICY)
        assert loss_degradation(mesh, (6, 4), [0.1, 0.3],
                                engine="batch", **kw) == \
            loss_degradation(mesh, (6, 4), [0.1, 0.3],
                             engine="serial", **kw)
        assert failure_degradation(mesh, (6, 4), [0, 5],
                                   engine="batch", **kw) == \
            failure_degradation(mesh, (6, 4), [0, 5],
                                engine="serial", **kw)

    def test_recovery_improves_static_failure_curve(self, mesh):
        kw = dict(trials=4, seed=1, recompile=False)
        bare = failure_degradation(mesh, (6, 4), [8], **kw)
        rec = failure_degradation(mesh, (6, 4), [8],
                                  recovery=self.POLICY, **kw)
        assert rec[0].mean_reachability >= bare[0].mean_reachability


class TestRecoveryFrontier:
    def frontier(self, mesh, **kw):
        defaults = dict(loss_rates=[0.2], failure_counts=[0], trials=6,
                        seed=3)
        defaults.update(kw)
        return recovery_frontier(mesh, (6, 4), **defaults)

    def test_strategy_roster(self, mesh):
        points = self.frontier(mesh, hardening=[0, 2],
                               policies=[self.policy()])
        assert [p.strategy for p in points] == \
            ["blind-r0", "blind-r2", self.policy().label()]

    def policy(self):
        return RecoveryPolicy(timeout=2, max_retries=2, backoff=1,
                              suppression_k=2, election=False)

    def test_engines_agree(self, mesh):
        kw = dict(hardening=[0, 2], policies=[self.policy()], trials=4)
        assert self.frontier(mesh, engine="batch", **kw) == \
            self.frontier(mesh, engine="serial", **kw)

    def test_workers_do_not_change_points(self, mesh):
        kw = dict(loss_rates=[0.1, 0.2], hardening=[0, 1],
                  policies=[self.policy()], trials=4)
        assert self.frontier(mesh, **kw) == \
            self.frontier(mesh, workers=2, **kw)

    def test_pareto_marks_within_cell(self, mesh):
        points = self.frontier(mesh)
        assert any(p.pareto for p in points)
        # no pareto point may be dominated inside its cell
        for a in points:
            if not a.pareto:
                continue
            for b in points:
                if b is a:
                    continue
                dominates = (
                    b.mean_reachability >= a.mean_reachability
                    and b.mean_energy_j <= a.mean_energy_j
                    and (b.mean_reachability > a.mean_reachability
                         or b.mean_energy_j < a.mean_energy_j))
                assert not dominates

    def test_blind_r0_is_baseline_cost(self, mesh):
        """blind-r0 must be the cheapest strategy of each cell — every
        other strategy adds transmissions."""
        points = self.frontier(mesh)
        base = next(p for p in points if p.strategy == "blind-r0")
        for p in points:
            assert p.mean_energy_j >= base.mean_energy_j

    def test_rows_roundtrip(self, mesh):
        (point,) = self.frontier(mesh, hardening=[1], policies=[],
                                 loss_rates=[0.1])
        row = point.as_row()
        assert row["strategy"] == "blind-r1"
        assert row["loss_rate"] == 0.1
        assert isinstance(row["pareto"], bool)
