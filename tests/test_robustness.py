"""Tests for the robustness analysis (loss/failure degradation curves)."""

import numpy as np
import pytest

from repro.analysis import (failure_degradation, harden_plan,
                            loss_degradation)
from repro.core import protocol_for
from repro.radio import CounterBernoulliLoss, trial_seeds
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(12, 8)


class TestHardenPlan:
    def test_zero_repeats_is_copy(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 0)
        assert hardened.repeat_offsets == plan.repeat_offsets
        assert hardened is not plan

    def test_adds_offsets_to_every_relay(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 2)
        import numpy as np
        for v in np.nonzero(plan.relay_mask)[0]:
            offs = hardened.repeat_offsets[int(v)]
            assert 2 in offs and 4 in offs  # wave-phase-aligned spacing

    def test_merges_existing_offsets(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        # designated retransmitters already have offset (1,); hardening
        # merges its own even offsets with it
        some = next(iter(plan.repeat_offsets))
        hardened = harden_plan(plan, 1)
        assert hardened.repeat_offsets[some] == (1, 2)

    def test_negative_rejected(self, mesh):
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        with pytest.raises(ValueError):
            harden_plan(plan, -1)

    def test_zero_repeats_copy_is_mutation_independent(self, mesh):
        """repeats=0 must hand back an independent copy: mutating it may
        not leak into the original plan."""
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        before_offsets = dict(plan.repeat_offsets)
        before_mask = plan.relay_mask.copy()
        hardened = harden_plan(plan, 0)
        hardened.repeat_offsets[0] = (2, 4)
        hardened.relay_mask[:] = False
        assert plan.repeat_offsets == before_offsets
        assert (plan.relay_mask == before_mask).all()

    def test_offsets_all_even_and_sorted(self, mesh):
        """Hardening offsets must be even (phase-aligned with the wave)
        and each relay's merged tuple sorted ascending."""
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        pre_existing = {v: offs for v, offs in plan.repeat_offsets.items()}
        hardened = harden_plan(plan, 3)
        for v in np.nonzero(plan.relay_mask)[0]:
            offs = hardened.repeat_offsets[int(v)]
            assert list(offs) == sorted(offs)
            added = set(offs) - set(pre_existing.get(int(v), ()))
            assert added == {2, 4, 6}
            assert all(o % 2 == 0 for o in added)

    def test_non_relays_untouched(self, mesh):
        """Nodes outside the relay mask keep exactly their pre-existing
        repeats — hardening only amplifies actual relays."""
        plan = protocol_for("2D-4").relay_plan(mesh, (6, 4))
        hardened = harden_plan(plan, 2)
        for v, offs in plan.repeat_offsets.items():
            if not plan.relay_mask[v]:
                assert hardened.repeat_offsets[v] == offs


class TestSeedMixing:
    def test_parameters_draw_distinct_randomness(self, mesh):
        """Regression for the correlated-stream bug: the old seeding
        (``seed * 1000 + trial``) gave every sweep parameter the same
        per-trial channels, so curves were paired sample-for-sample.
        The per-trial losses for two parameters must now differ."""
        rx = np.ones(mesh.num_nodes, dtype=bool)
        for trial in range(4):
            s_a = int(trial_seeds(0, 0.1, 4)[trial])
            s_b = int(trial_seeds(0, 0.2, 4)[trial])
            assert s_a != s_b
            a = CounterBernoulliLoss(0.5, s_a).apply(1, rx)
            b = CounterBernoulliLoss(0.5, s_b).apply(1, rx)
            assert (a != b).any()

    def test_failure_masks_decorrelated_across_counts(self, mesh):
        """Different failure counts must kill different node sets (beyond
        the forced subset relation a shared stream would produce)."""
        from repro.analysis.robustness import _failure_dead_masks
        src = mesh.index((6, 4))
        m4 = _failure_dead_masks(mesh, 4, 6, seed=0, src=src)
        m8 = _failure_dead_masks(mesh, 8, 6, seed=0, src=src)
        subset_rows = sum((m4[b] & ~m8[b]).sum() == 0 for b in range(6))
        assert subset_rows < 6


class TestEngineEquivalence:
    """engine="batch" and engine="serial" must produce identical curves."""

    def assert_points_equal(self, a, b):
        assert len(a) == len(b)
        for pa, pb in zip(a, b):
            assert pa == pb

    def test_loss_points_identical(self, mesh):
        kw = dict(trials=6, seed=4, harden=1)
        self.assert_points_equal(
            loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.3],
                             engine="batch", **kw),
            loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.3],
                             engine="serial", **kw))

    def test_failure_points_identical(self, mesh):
        kw = dict(trials=5, seed=2)
        self.assert_points_equal(
            failure_degradation(mesh, (6, 4), [0, 4, 9],
                                engine="batch", **kw),
            failure_degradation(mesh, (6, 4), [0, 4, 9],
                                engine="serial", **kw))

    def test_workers_do_not_change_points(self, mesh):
        kw = dict(trials=4, seed=7)
        self.assert_points_equal(
            loss_degradation(mesh, (6, 4), [0.05, 0.1, 0.2, 0.3], **kw),
            loss_degradation(mesh, (6, 4), [0.05, 0.1, 0.2, 0.3],
                             workers=2, **kw))
        self.assert_points_equal(
            failure_degradation(mesh, (6, 4), [2, 5, 8], **kw),
            failure_degradation(mesh, (6, 4), [2, 5, 8], workers=2, **kw))

    def test_unknown_engine_rejected(self, mesh):
        with pytest.raises(ValueError, match="unknown engine"):
            loss_degradation(mesh, (6, 4), [0.1], engine="vector")
        with pytest.raises(ValueError, match="unknown engine"):
            failure_degradation(mesh, (6, 4), [1], engine="vector")


class TestLossDegradation:
    def test_zero_loss_full_reach(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.0], trials=2)
        assert point.mean_reachability == 1.0

    def test_hardened_plan_keeps_clean_channel_perfect(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.0], trials=2,
                                    harden=2)
        assert point.mean_reachability == 1.0

    def test_monotone_in_loss(self, mesh):
        points = loss_degradation(mesh, (6, 4), [0.0, 0.1, 0.4],
                                  trials=4, seed=5)
        reaches = [p.mean_reachability for p in points]
        assert reaches[0] >= reaches[1] >= reaches[2] - 0.05

    def test_hardening_helps(self, mesh):
        base = loss_degradation(mesh, (6, 4), [0.15], trials=4, seed=2)
        hard = loss_degradation(mesh, (6, 4), [0.15], trials=4, seed=2,
                                harden=2)
        assert hard[0].mean_reachability >= base[0].mean_reachability
        assert hard[0].mean_tx > base[0].mean_tx  # hardening costs energy

    def test_rows(self, mesh):
        (point,) = loss_degradation(mesh, (6, 4), [0.1], trials=2)
        row = point.as_row()
        assert row["parameter"] == 0.1
        assert 0 <= row["min_reach"] <= row["mean_reach"] <= 1


class TestFailureDegradation:
    def test_zero_failures_full_reach(self, mesh):
        (point,) = failure_degradation(mesh, (6, 4), [0], trials=2)
        assert point.mean_reachability == 1.0

    def test_static_schedule_degrades(self, mesh):
        points = failure_degradation(mesh, (6, 4), [0, 8], trials=4,
                                     recompile=False, seed=1)
        assert points[1].mean_reachability < 1.0

    def test_recompile_beats_static(self, mesh):
        static = failure_degradation(mesh, (6, 4), [8], trials=4,
                                     recompile=False, seed=1)
        adaptive = failure_degradation(mesh, (6, 4), [8], trials=4,
                                       recompile=True, seed=1)
        assert adaptive[0].mean_reachability > \
            static[0].mean_reachability

    def test_recompile_reaches_connected_survivors(self, mesh):
        """With few failures the surviving lattice stays connected and the
        recompiled broadcast must reach every live node."""
        points = failure_degradation(mesh, (6, 4), [3], trials=5,
                                     recompile=True, seed=3)
        assert points[0].min_reachability >= 0.97
