"""Tests for the topology factory, census reports and the random baseline."""

import numpy as np
import pytest

from repro.topology import (PAPER_SHAPES, RandomDiskTopology, TopologyReport,
                            analyze, make_topology, paper_topologies)


class TestBuilder:
    def test_paper_shapes_have_512_nodes(self):
        for label, topo in paper_topologies().items():
            assert topo.num_nodes == 512, label

    def test_labels(self):
        for label in ("2D-3", "2D-4", "2D-8", "3D-6"):
            assert make_topology(label).name == label

    def test_custom_shape(self):
        topo = make_topology("2D-4", shape=(5, 7))
        assert topo.shape == (5, 7)

    def test_custom_spacing(self):
        topo = make_topology("2D-4", spacing=2.0)
        assert topo.spacing == 2.0

    def test_unknown_label(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("4D-2")

    def test_wrong_shape_arity(self):
        with pytest.raises(ValueError):
            make_topology("2D-4", shape=(5, 7, 2))
        with pytest.raises(ValueError):
            make_topology("3D-6", shape=(5, 7))

    def test_paper_shapes_table(self):
        assert PAPER_SHAPES["3D-6"] == (8, 8, 8)
        assert PAPER_SHAPES["2D-4"] == (32, 16)


class TestAnalyze:
    def test_2d4_report(self):
        report = analyze(make_topology("2D-4", shape=(6, 4)))
        assert isinstance(report, TopologyReport)
        assert report.num_nodes == 24
        assert report.num_edges == 5 * 4 + 6 * 3
        assert report.nominal_degree == 4
        assert report.num_border_nodes == 16
        assert report.connected

    def test_report_rows_render(self):
        report = analyze(make_topology("2D-8", shape=(4, 4)))
        rows = dict(report.as_rows())
        assert rows["topology"] == "2D-8"
        assert "degree histogram" in rows


class TestRandomDisk:
    def test_deterministic_given_seed(self):
        a = RandomDiskTopology(30, 10, 10, 3.0, seed=7)
        b = RandomDiskTopology(30, 10, 10, 3.0, seed=7)
        assert np.allclose(a.positions(), b.positions())
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_different_seeds_differ(self):
        a = RandomDiskTopology(30, 10, 10, 3.0, seed=1)
        b = RandomDiskTopology(30, 10, 10, 3.0, seed=2)
        assert not np.allclose(a.positions(), b.positions())

    def test_links_respect_radius(self):
        topo = RandomDiskTopology(40, 10, 10, 2.5, seed=3)
        pos = topo.positions()
        adj = topo.adjacency.tocoo()
        for i, j in zip(adj.row, adj.col):
            assert np.linalg.norm(pos[i] - pos[j]) <= 2.5 + 1e-9

    def test_non_links_beyond_radius(self):
        topo = RandomDiskTopology(25, 10, 10, 2.0, seed=5)
        pos = topo.positions()
        dense = topo.adjacency.toarray()
        for i in range(25):
            for j in range(i + 1, 25):
                d = np.linalg.norm(pos[i] - pos[j])
                if d > 2.0:
                    assert dense[i, j] == 0

    def test_validate(self):
        RandomDiskTopology(20, 5, 5, 2.0, seed=0).validate()

    def test_coordinates_are_one_based(self):
        topo = RandomDiskTopology(5, 5, 5, 2.0)
        assert topo.coord(0) == (1,)
        assert topo.index((5,)) == 4
        with pytest.raises(ValueError):
            topo.index((6,))

    def test_positions_inside_box(self):
        topo = RandomDiskTopology(50, 8, 3, 1.0, seed=11)
        pos = topo.positions()
        assert (pos[:, 0] >= 0).all() and (pos[:, 0] <= 8).all()
        assert (pos[:, 1] >= 0).all() and (pos[:, 1] <= 3).all()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomDiskTopology(0, 5, 5, 1.0)
        with pytest.raises(ValueError):
            RandomDiskTopology(5, -1, 5, 1.0)
        with pytest.raises(ValueError):
            RandomDiskTopology(5, 5, 5, 0.0)


class TestTopologyMemoisation:
    def test_neighbor_sets_match_adjacency(self):
        from repro.topology import Mesh2D4
        mesh = Mesh2D4(5, 4)
        sets = mesh.neighbor_sets
        adj = mesh.adjacency
        for v in range(mesh.num_nodes):
            expected = frozenset(
                int(u) for u in adj.indices[adj.indptr[v]:adj.indptr[v + 1]])
            assert sets[v] == expected
        # cached_property: the same object comes back.
        assert mesh.neighbor_sets is sets

    def test_slot_kernel_cached(self):
        from repro.topology import Mesh2D4
        mesh = Mesh2D4(4, 4)
        assert mesh.slot_kernel is mesh.slot_kernel

    def test_fingerprint_stable_and_discriminating(self):
        from repro.topology import Mesh2D4, Mesh2D8
        a1, a2 = Mesh2D4(6, 4), Mesh2D4(6, 4)
        assert a1.fingerprint == a2.fingerprint          # same structure
        assert a1.fingerprint != Mesh2D4(4, 6).fingerprint   # shape
        assert a1.fingerprint != Mesh2D8(6, 4).fingerprint   # degree rule
        assert len(a1.fingerprint) == 64                 # sha256 hex
