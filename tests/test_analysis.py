"""Tests for the analysis package: sweeps, table assembly, ranking."""

import pytest

from repro.analysis import (PAPER_TABLE2, SweepCache, power_ranking,
                            strided_sources, sweep_sources, table2_ideal,
                            table3_best, table4_worst, table5_delay)
from repro.core.baselines import FloodingProtocol
from repro.topology import Mesh2D4, make_topology


class TestSweep:
    def test_sweep_small_mesh(self):
        mesh = Mesh2D4(6, 4)
        sweep = sweep_sources(mesh)
        assert len(sweep) == 24
        assert sweep.all_reached()
        best = sweep.best_by_energy()
        worst = sweep.worst_by_energy()
        assert best.energy_j <= worst.energy_j
        assert sweep.min_delay() <= sweep.max_delay()

    def test_center_beats_corner(self):
        """The paper: 'If the source is in the center of the network, it
        performs better.'"""
        mesh = Mesh2D4(9, 9)
        sweep = sweep_sources(mesh, sources=[(5, 5), (1, 1)])
        center, corner = sweep.metrics
        assert center.delay_slots < corner.delay_slots

    def test_explicit_sources(self):
        mesh = Mesh2D4(6, 4)
        sweep = sweep_sources(mesh, sources=[(1, 1), (3, 2)])
        assert len(sweep) == 2
        assert sweep.metrics[0].source == (1, 1)

    def test_custom_protocol(self):
        mesh = Mesh2D4(5, 4)
        sweep = sweep_sources(mesh, protocol=FloodingProtocol(),
                              sources=[(2, 2)])
        assert sweep.metrics[0].tx >= mesh.num_nodes - 2

    def test_progress_callback(self):
        mesh = Mesh2D4(4, 3)
        calls = []
        sweep_sources(mesh, sources=[(1, 1), (2, 2)],
                      progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 2), (2, 2)]

    def test_mean_aggregates(self):
        mesh = Mesh2D4(5, 4)
        sweep = sweep_sources(mesh, sources=[(1, 1), (3, 2), (5, 4)])
        assert sweep.mean_tx() > 0
        assert sweep.mean_rx() > sweep.mean_tx()
        assert sweep.mean_energy() > 0


class TestStridedSources:
    def test_includes_corners(self):
        mesh = Mesh2D4(8, 8)
        coords = strided_sources(mesh, 7)
        assert (1, 1) in coords
        assert (8, 8) in coords

    def test_stride_one_is_everything(self):
        mesh = Mesh2D4(4, 4)
        assert len(strided_sources(mesh, 1)) == 16

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            strided_sources(Mesh2D4(4, 4), 0)


class TestTables:
    def test_table2_is_exact(self):
        rows = {r["topology"]: r for r in table2_ideal()}
        for label, expected in PAPER_TABLE2.items():
            assert rows[label]["tx"] == expected["tx"]
            assert rows[label]["rx"] == expected["rx"]
            assert rows[label]["energy_J"] == pytest.approx(
                expected["energy_J"], rel=5e-3)

    @pytest.fixture(scope="class")
    def cache(self):
        # heavily strided so the test stays fast; corners included
        return SweepCache.compute(stride=97)

    def test_tables_3_4_5_assemble(self, cache):
        best = {r["topology"]: r for r in table3_best(cache)}
        worst = {r["topology"]: r for r in table4_worst(cache)}
        delays = {r["topology"]: r for r in table5_delay(cache)}
        for label in ("2D-3", "2D-4", "2D-8", "3D-6"):
            assert best[label]["tx"] <= worst[label]["tx"]
            assert best[label]["energy_J"] <= worst[label]["energy_J"]
            assert delays[label]["protocol_max_delay"] >= \
                delays[label]["ideal_max_delay"]

    def test_paper_power_ordering_holds(self, cache):
        """Headline finding: '2D mesh with 4 neighbors possesses the
        minimum power consumption'; on average the full paper ordering
        2D-4 < 3D-6 < 2D-8 < 2D-3 holds (the worst-case 2D-3/2D-8 pair is
        nearly tied in our reproduction — see EXPERIMENTS.md)."""
        assert power_ranking(cache, case="worst")[0] == "2D-4"
        assert power_ranking(cache, case="mean") == \
            ["2D-4", "3D-6", "2D-8", "2D-3"]

    def test_power_ranking_cases(self, cache):
        for case in ("best", "worst", "mean"):
            ranking = power_ranking(cache, case=case)
            assert sorted(ranking) == ["2D-3", "2D-4", "2D-8", "3D-6"]
        with pytest.raises(ValueError):
            power_ranking(cache, case="median")

    def test_3d6_smallest_max_delay(self, cache):
        """Table 5's second finding: 3D-6 has the smallest maximum delay,
        and 2D-8 the smallest among the 2D topologies."""
        delays = {r["topology"]: r["protocol_max_delay"]
                  for r in table5_delay(cache)}
        assert delays["3D-6"] == min(delays.values())
        assert delays["2D-8"] < delays["2D-4"]
        assert delays["2D-8"] < delays["2D-3"]


class TestCornerSources:
    def test_2d_has_four(self):
        from repro.analysis import corner_sources
        assert corner_sources(Mesh2D4(8, 6)) == [
            (1, 1), (1, 6), (8, 1), (8, 6)]

    def test_3d_has_eight(self):
        from repro.analysis import corner_sources
        topo = make_topology("3D-6", (4, 4, 3))
        corners = corner_sources(topo)
        assert len(corners) == 8
        assert (1, 1, 1) in corners and (4, 4, 3) in corners

    def test_strided_includes_all_corners(self):
        from repro.analysis import corner_sources
        mesh = Mesh2D4(8, 6)
        coords = strided_sources(mesh, 7)
        for corner in corner_sources(mesh):
            assert corner in coords
        assert len(coords) == len(set(coords))


class TestParallelSweep:
    def test_workers_bit_identical(self):
        from repro.analysis import sweep_sources
        mesh = Mesh2D4(6, 5)
        serial = sweep_sources(mesh)
        for workers in (2, 3):
            par = sweep_sources(mesh, workers=workers)
            assert par.metrics == serial.metrics

    def test_workers_one_is_serial(self):
        from repro.analysis import sweep_sources
        mesh = Mesh2D4(4, 4)
        assert (sweep_sources(mesh, workers=1).metrics
                == sweep_sources(mesh).metrics)

    def test_progress_reports_total(self):
        from repro.analysis import sweep_sources
        mesh = Mesh2D4(4, 4)
        calls = []
        sweep_sources(mesh, workers=2,
                      progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (16, 16)
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)


class TestScheduleCacheSweep:
    def test_cache_reuse_identical_metrics(self, tmp_path):
        from repro.analysis import sweep_sources
        from repro.core import ScheduleCache
        mesh = Mesh2D4(6, 5)
        plain = sweep_sources(mesh)
        cache = ScheduleCache(tmp_path / "sched")
        # symmetry=False pins the direct path, whose cache accounting is
        # exactly one get_or_compile per source (the symmetry path only
        # compiles class representatives); `plain` and `disk_only` keep
        # the default auto mode, so the equality below also cross-checks
        # the two paths against each other.
        cold = sweep_sources(mesh, cache=cache, symmetry=False)
        assert cache.misses == mesh.num_nodes and cache.hits == 0
        warm = sweep_sources(mesh, cache=cache, symmetry=False)
        assert cache.hits == mesh.num_nodes
        disk_only = sweep_sources(mesh, cache=ScheduleCache(tmp_path / "sched"))
        assert plain.metrics == cold.metrics == warm.metrics
        assert plain.metrics == disk_only.metrics

    def test_parallel_with_shared_disk_cache(self, tmp_path):
        from repro.analysis import sweep_sources
        from repro.core import ScheduleCache
        mesh = Mesh2D4(5, 4)
        cache = ScheduleCache(tmp_path / "sched")
        par = sweep_sources(mesh, workers=2, cache=cache)
        assert par.metrics == sweep_sources(mesh).metrics
        # workers persisted their compilations for later runs
        assert len(list((tmp_path / "sched").glob("*.json"))) > 0


class TestLossSensitivity:
    def test_report_shape(self):
        from repro.analysis import loss_sensitivity
        mesh = Mesh2D4(8, 6)
        rep = loss_sensitivity(mesh, loss_rate=0.1, trials=4, stride=4)
        assert rep.metric == "reach@p=0.1"
        assert 0.0 < rep.minimum <= rep.maximum <= 1.0
        assert rep.minimum <= rep.mean <= rep.maximum

    def test_zero_loss_no_spread(self):
        from repro.analysis import loss_sensitivity
        mesh = Mesh2D4(8, 6)
        rep = loss_sensitivity(mesh, loss_rate=0.0, trials=2, stride=4)
        assert rep.minimum == rep.maximum == 1.0
        assert rep.relative_spread == 0.0

    def test_workers_match_serial(self):
        from repro.analysis import loss_sensitivity
        mesh = Mesh2D4(8, 6)
        serial = loss_sensitivity(mesh, loss_rate=0.15, trials=4, stride=4)
        parallel = loss_sensitivity(mesh, loss_rate=0.15, trials=4,
                                    stride=4, workers=2)
        assert parallel == serial

    def test_empty_sources_rejected(self):
        from repro.analysis import loss_sensitivity
        mesh = Mesh2D4(8, 6)
        with pytest.raises(ValueError):
            loss_sensitivity(mesh, sources=[])
