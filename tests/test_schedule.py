"""Unit tests for BroadcastSchedule."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import BroadcastSchedule

events = st.lists(
    st.tuples(st.integers(1, 40), st.integers(0, 99)), max_size=60)


class TestBasics:
    def test_empty(self):
        s = BroadcastSchedule()
        assert s.num_transmissions == 0
        assert s.max_slot == 0
        assert s.transmitters(3) == set()
        assert list(s) == []

    def test_add_and_query(self):
        s = BroadcastSchedule()
        s.add(2, 5)
        s.add(2, 7)
        s.add(4, 5)
        assert s.transmitters(2) == {5, 7}
        assert s.slots_of(5) == [2, 4]
        assert s.first_slot_of(5) == 2
        assert s.first_slot_of(99) == -1
        assert s.num_transmissions == 3
        assert s.max_slot == 4
        assert s.transmitting_nodes() == {5, 7}

    def test_add_idempotent(self):
        s = BroadcastSchedule()
        s.add(1, 1)
        s.add(1, 1)
        assert s.num_transmissions == 1

    def test_slot_validation(self):
        s = BroadcastSchedule()
        with pytest.raises(ValueError):
            s.add(0, 1)
        with pytest.raises(ValueError):
            s.add(1, -1)

    def test_remove(self):
        s = BroadcastSchedule.from_events([(1, 1), (1, 2)])
        s.remove(1, 1)
        assert s.transmitters(1) == {2}
        s.remove(1, 2)
        assert s.max_slot == 0
        with pytest.raises(KeyError):
            s.remove(1, 2)

    def test_iteration_deterministic(self):
        s = BroadcastSchedule.from_events([(3, 9), (1, 4), (3, 2), (1, 1)])
        assert list(s) == [(1, 1), (1, 4), (3, 2), (3, 9)]

    def test_equality(self):
        a = BroadcastSchedule.from_events([(1, 2), (3, 4)])
        b = BroadcastSchedule.from_events([(3, 4), (1, 2)])
        assert a == b
        b.add(5, 5)
        assert a != b

    def test_copy_is_deep(self):
        a = BroadcastSchedule.from_events([(1, 2)])
        b = a.copy()
        b.add(1, 3)
        assert a.transmitters(1) == {2}

    def test_merge(self):
        a = BroadcastSchedule.from_events([(1, 1)])
        b = BroadcastSchedule.from_events([(1, 2), (2, 1)])
        c = a.merge(b)
        assert c.num_transmissions == 3
        assert a.num_transmissions == 1  # merge does not mutate

    def test_transmitter_mask(self):
        s = BroadcastSchedule.from_events([(2, 0), (2, 3)])
        mask = s.transmitter_mask(2, 5)
        assert mask.tolist() == [True, False, False, True, False]
        assert s.transmitter_mask(9, 5).sum() == 0

    def test_to_arrays(self):
        s = BroadcastSchedule.from_events([(2, 7), (1, 3)])
        slots, nodes = s.to_arrays()
        assert slots.tolist() == [1, 2]
        assert nodes.tolist() == [3, 7]

    def test_to_arrays_empty(self):
        slots, nodes = BroadcastSchedule().to_arrays()
        assert len(slots) == 0 and len(nodes) == 0


class TestProperties:
    @given(events)
    def test_from_events_roundtrip(self, evs):
        s = BroadcastSchedule.from_events(evs)
        assert set(s) == set(evs)
        assert len(s) == len(set(evs))

    @given(events, events)
    def test_merge_is_union(self, a, b):
        sa = BroadcastSchedule.from_events(a)
        sb = BroadcastSchedule.from_events(b)
        merged = sa.merge(sb)
        assert set(merged) == set(a) | set(b)

    @given(events)
    def test_active_slots_sorted_nonempty(self, evs):
        s = BroadcastSchedule.from_events(evs)
        slots = s.active_slots()
        assert slots == sorted(slots)
        for t in slots:
            assert s.transmitters(t)
