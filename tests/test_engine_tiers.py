"""Differential testing across the full engine-tier chain.

The three-tier speed stack (dense "batch", bit-packed "packed", C
"compiled" — see :mod:`repro.sim.backend`) plus trial-dimension
sharding (:mod:`repro.sim.shard`) all promise **bit identity** with the
serial engine and the pure-python reference.  This suite runs the whole
chain on hypothesis-generated scenarios::

    reference == serial == batch == packed == compiled

and pins the shard-invariance property (``workers=1`` equals
``workers=k`` exactly, for summaries and traces).  When the compiled
tier cannot build, its leg is skipped with the reason
:func:`~repro.sim.native.native_reason` reports — visibly, so a CI log
shows *why* the C path went untested — while a separate test proves the
``engine="compiled"`` request still runs correctly through the fallback
(``REPRO_NO_NATIVE=1``).
"""

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import bitpack
from repro.radio.impairments import (BernoulliBatchLoss, BurstBatchLoss,
                                     trial_seeds)
from repro.sim import (ReferenceSimulator, native_available, native_reason,
                       replay_batch, replay_batch_sharded, resolve_engine,
                       run_reactive, run_reactive_batch,
                       run_reactive_batch_sharded)
from repro.sim.recovery import RecoveryPolicy
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6

MESHES = [
    (Mesh2D4, (5, 4)),
    (Mesh2D8, (4, 4)),
    (Mesh2D3, (5, 4)),
    (Mesh3D6, (3, 3, 3)),
]

#: Word-space tiers under test; the compiled leg is skipped (visibly)
#: where the native kernel cannot build on this host.
TIERS = ["packed"] + (["compiled"] if native_available() else [])

needs_packing = pytest.mark.skipif(not bitpack.packing_supported(),
                                   reason="big-endian host")


def _warn_if_no_native():
    if not native_available():  # pragma: no cover - env-dependent
        import warnings
        warnings.warn(f"compiled tier not tested: {native_reason()}")


_warn_if_no_native()


def assert_traces_equal(a, b, tag=""):
    assert len(a) == len(b), tag
    for x, y in zip(a, b):
        assert x.tx_events == y.tx_events, tag
        assert x.rx_events == y.rx_events, tag
        assert x.collision_events == y.collision_events, tag
        assert (x.first_rx == y.first_rx).all(), tag
        assert x.dropped_forced == y.dropped_forced, tag


def assert_summaries_equal(a, b, tag=""):
    assert np.array_equal(a.first_rx, b.first_rx), tag
    assert np.array_equal(a.tx_count, b.tx_count), tag
    assert np.array_equal(a.rx_count, b.rx_count), tag
    assert np.array_equal(a.collisions, b.collisions), tag
    assert a.dropped_forced == b.dropped_forced, tag


@st.composite
def tier_scenario(draw, num_nodes):
    """Random batched-wave inputs restricted to the loss kinds the
    word-space tiers serve natively (Bernoulli / burst / none)."""
    trials = draw(st.integers(1, 4))
    source = draw(st.integers(0, num_nodes - 1))
    relay_mask = np.array(
        [draw(st.booleans()) for _ in range(num_nodes)], dtype=bool)
    extra_delay = (np.array([draw(st.integers(0, 2))
                             for _ in range(num_nodes)], dtype=np.int64)
                   if draw(st.booleans()) else None)
    forced = {}
    for slot in draw(st.lists(st.integers(1, 8), max_size=2, unique=True)):
        forced[slot] = draw(st.lists(st.integers(0, num_nodes - 1),
                                     min_size=1, max_size=3, unique=True))
    dead_masks = None
    if draw(st.booleans()):
        dead_masks = np.zeros((trials, num_nodes), dtype=bool)
        for b in range(trials):
            for v in draw(st.lists(st.integers(0, num_nodes - 1),
                                   max_size=3, unique=True)):
                if v != source:
                    dead_masks[b, v] = True
    seeds = trial_seeds(draw(st.integers(0, 5)), 0.25, trials)
    kind = draw(st.sampled_from(["none", "bernoulli", "burst"]))
    if kind == "bernoulli":
        loss = BernoulliBatchLoss(draw(st.sampled_from([0.1, 0.3])), seeds)
    elif kind == "burst":
        loss = BurstBatchLoss(draw(st.sampled_from([0.2, 0.5])), seeds,
                              draw(st.sampled_from([1, 2])))
    else:
        loss = None
    recovery = (RecoveryPolicy(timeout=2, max_retries=2, backoff=2,
                               suppression_k=1)
                if draw(st.booleans()) else None)
    return dict(source=source, trials=trials, relay_mask=relay_mask,
                extra_delay=extra_delay, forced_tx=forced,
                dead_masks=dead_masks, loss=loss, recovery=recovery)


@needs_packing
class TestTierChain:
    """reference == serial == batch == packed == compiled, per trial."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_random_scenarios(self, cls, shape):
        mesh = cls(*shape)
        ref = ReferenceSimulator(mesh)

        @given(data=st.data())
        @settings(max_examples=12, deadline=None)
        def check(data):
            kw = data.draw(tier_scenario(mesh.num_nodes))
            source = kw.pop("source")
            recovery = kw.pop("recovery")
            dead_masks, loss = kw["dead_masks"], kw["loss"]
            batch = run_reactive_batch(mesh, source, kw["relay_mask"],
                                       extra_delay=kw["extra_delay"],
                                       forced_tx=kw["forced_tx"],
                                       dead_masks=dead_masks, loss=loss,
                                       trials=kw["trials"],
                                       recovery=recovery)
            for engine in TIERS:
                tiered = run_reactive_batch(mesh, source, kw["relay_mask"],
                                            extra_delay=kw["extra_delay"],
                                            forced_tx=kw["forced_tx"],
                                            dead_masks=dead_masks,
                                            loss=loss, trials=kw["trials"],
                                            recovery=recovery,
                                            engine=engine)
                assert_traces_equal(batch, tiered, engine)
            # The serial and pure-python legs of the chain (recovery is
            # a batched-engine feature; the serial/reference legs run
            # the recovery-free configuration).
            if recovery is None:
                for b, batch_trace in enumerate(batch):
                    dm = None if dead_masks is None else dead_masks[b]
                    sl = None if loss is None else loss.trial_loss(b)
                    serial = run_reactive(mesh, source, kw["relay_mask"],
                                          extra_delay=kw["extra_delay"],
                                          forced_tx=kw["forced_tx"],
                                          dead_mask=dm, loss=sl)
                    assert_traces_equal([batch_trace], [serial], "serial")
                    reference = ref.run_reactive(
                        source, kw["relay_mask"],
                        extra_delay=kw["extra_delay"],
                        forced_tx=kw["forced_tx"], dead_mask=dm, loss=sl)
                    assert_traces_equal([batch_trace], [reference],
                                        "reference")

        check()

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_summary_mode(self, cls, shape):
        mesh = cls(*shape)
        n = mesh.num_nodes
        trials = 6
        seeds = trial_seeds(3, 0.2, trials)
        rng = np.random.default_rng(5)
        relay = rng.random(n) > 0.3
        loss = BernoulliBatchLoss(0.2, seeds)
        pol = RecoveryPolicy(timeout=3, max_retries=2)
        ref = run_reactive_batch(mesh, 0, relay, loss=loss, trials=trials,
                                 summary=True, recovery=pol)
        for engine in TIERS:
            assert_summaries_equal(
                ref,
                run_reactive_batch(mesh, 0, relay, loss=loss,
                                   trials=trials, summary=True,
                                   recovery=pol, engine=engine),
                engine)


@needs_packing
class TestShardInvariance:
    """workers=1 and workers=k produce bit-identical results."""

    @pytest.mark.parametrize("engine", ["batch"] + TIERS)
    def test_reactive_summary_and_traces(self, engine):
        mesh = Mesh2D4(8, 6)
        n = mesh.num_nodes
        trials = 10
        rng = np.random.default_rng(11)
        relay = rng.random(n) > 0.3
        dead = rng.random((trials, n)) < 0.08
        dead[:, 0] = False
        loss = BernoulliBatchLoss(0.2, trial_seeds(1, 0.2, trials))
        pol = RecoveryPolicy(timeout=3, max_retries=2)
        kw = dict(dead_masks=dead, loss=loss, trials=trials, recovery=pol,
                  engine=engine)
        base = run_reactive_batch_sharded(mesh, 0, relay, workers=1,
                                          summary=True, **kw)
        base_t = run_reactive_batch_sharded(mesh, 0, relay, workers=1, **kw)
        for workers in (3, 4):
            assert_summaries_equal(
                base,
                run_reactive_batch_sharded(mesh, 0, relay, workers=workers,
                                           summary=True, **kw),
                f"{engine}/w{workers}")
            assert_traces_equal(
                base_t,
                run_reactive_batch_sharded(mesh, 0, relay,
                                           workers=workers, **kw),
                f"{engine}/w{workers}")

    def test_replay_summary(self):
        from repro.core import protocol_for
        mesh = Mesh2D4(8, 6)
        sched = protocol_for("2D-4").compile(mesh, (4, 3)).schedule
        src = mesh.index((4, 3))
        trials = 9
        loss = BurstBatchLoss(0.25, trial_seeds(2, 0.25, trials), 2)
        base = replay_batch(mesh, sched, src, loss=loss, trials=trials,
                            summary=True)
        sharded = replay_batch_sharded(mesh, sched, src, loss=loss,
                                       trials=trials, summary=True,
                                       workers=3)
        assert_summaries_equal(base, sharded)

    def test_uneven_shards(self):
        """Trial counts that do not divide evenly still merge exactly."""
        mesh = Mesh2D4(5, 4)
        trials = 7
        loss = BernoulliBatchLoss(0.3, trial_seeds(4, 0.3, trials))
        base = run_reactive_batch(mesh, 0,
                                  np.ones(mesh.num_nodes, dtype=bool),
                                  loss=loss, trials=trials, summary=True)
        sharded = run_reactive_batch_sharded(
            mesh, 0, np.ones(mesh.num_nodes, dtype=bool), loss=loss,
            trials=trials, summary=True, workers=3)
        assert_summaries_equal(base, sharded)
        assert sharded.trials == trials


@needs_packing
@pytest.mark.skipif(not native_available(),
                    reason="native kernel unavailable")
class TestThreadInvariance:
    """The compiled tier's intra-process thread pool is bit-invariant:
    threads=1 and threads=k produce identical traces and summaries at
    every width, including widths far beyond the work (spans degenerate
    to empty) and the clamp ceiling."""

    WIDTHS = sorted({2, 3, os.cpu_count() or 1, 64} - {1})

    def test_reactive_random_scenarios(self):
        mesh = Mesh2D4(6, 5)

        @given(data=st.data())
        @settings(max_examples=10, deadline=None)
        def check(data):
            kw = data.draw(tier_scenario(mesh.num_nodes))
            source = kw.pop("source")
            recovery = kw.pop("recovery")
            common = dict(extra_delay=kw["extra_delay"],
                          forced_tx=kw["forced_tx"],
                          dead_masks=kw["dead_masks"], loss=kw["loss"],
                          trials=kw["trials"], recovery=recovery,
                          engine="compiled")
            base = run_reactive_batch(mesh, source, kw["relay_mask"],
                                      threads=1, **common)
            for threads in self.WIDTHS:
                assert_traces_equal(
                    base,
                    run_reactive_batch(mesh, source, kw["relay_mask"],
                                       threads=threads, **common),
                    f"threads={threads}")

        check()

    def test_summary_and_replay_widths(self):
        from repro.core import protocol_for
        mesh = Mesh2D4(8, 6)
        trials = 9
        rng = np.random.default_rng(7)
        relay = rng.random(mesh.num_nodes) > 0.3
        loss = BernoulliBatchLoss(0.25, trial_seeds(2, 0.25, trials))
        pol = RecoveryPolicy(timeout=2, max_retries=2, backoff=2,
                             suppression_k=1)
        kw = dict(loss=loss, trials=trials, recovery=pol, summary=True,
                  engine="compiled")
        base = run_reactive_batch(mesh, 0, relay, threads=1, **kw)
        sched = protocol_for("2D-4").compile(mesh, (4, 3)).schedule
        src = mesh.index((4, 3))
        base_replay = replay_batch(mesh, sched, src, threads=1, **kw)
        for threads in self.WIDTHS:
            assert_summaries_equal(
                base,
                run_reactive_batch(mesh, 0, relay, threads=threads, **kw),
                f"reactive threads={threads}")
            assert_summaries_equal(
                base_replay,
                replay_batch(mesh, sched, src, threads=threads, **kw),
                f"replay threads={threads}")

    def test_threads_compose_with_shards(self):
        """Explicit threads=k inside process shards still merges to the
        unsharded threads=1 result (shards default to threads=1; an
        explicit width must pass through unchanged)."""
        mesh = Mesh2D4(8, 6)
        trials = 8
        loss = BernoulliBatchLoss(0.2, trial_seeds(9, 0.2, trials))
        relay = np.ones(mesh.num_nodes, dtype=bool)
        kw = dict(loss=loss, trials=trials, summary=True,
                  engine="compiled")
        base = run_reactive_batch(mesh, 0, relay, threads=1, **kw)
        sharded = run_reactive_batch_sharded(mesh, 0, relay, workers=3,
                                             threads=2, **kw)
        assert_summaries_equal(base, sharded, "workers=3 threads=2")


class TestFallbacks:
    def test_resolve_engine_rules(self):
        trials = 3
        seeds = trial_seeds(0, 0.1, trials)
        assert resolve_engine("batch", 20) == "batch"
        if bitpack.packing_supported():
            assert resolve_engine("packed", 20) == "packed"
            # Unsupported loss kinds and oversized lattices fall back.
            from repro.radio.impairments import (CounterBernoulliLoss,
                                                 PerTrialBatchLoss)
            per_trial = PerTrialBatchLoss(
                [CounterBernoulliLoss(0.1, int(s)) for s in seeds])
            assert resolve_engine("packed", 20, per_trial) == "batch"
            assert resolve_engine(
                "compiled", bitpack.MAX_PACKED_NODES + 1) == "batch"
        with pytest.raises(ValueError):
            resolve_engine("warp", 20)

    def test_resolve_engine_explain(self):
        tier, reason = resolve_engine("batch", 20, explain=True)
        assert tier == "batch" and "requested" in reason
        if bitpack.packing_supported():
            tier, reason = resolve_engine(
                "packed", bitpack.MAX_PACKED_NODES + 1, explain=True)
            assert tier == "batch"
            assert "REPRO_PACKED_MAX_NODES" in reason
            tier, reason = resolve_engine("packed", 20, explain=True)
            assert tier == "packed" and "requested" in reason
            # explain=False stays the bare-string contract.
            assert resolve_engine("packed", 20) == "packed"

    def test_packed_cutoff_env_override(self, monkeypatch):
        if not bitpack.packing_supported():
            pytest.skip("packing unsupported on this host")
        from repro.sim.backend import packed_max_nodes
        assert packed_max_nodes() == bitpack.MAX_PACKED_NODES
        monkeypatch.setenv("REPRO_PACKED_MAX_NODES", "100")
        assert packed_max_nodes() == 100
        assert resolve_engine("packed", 101) == "batch"
        tier, reason = resolve_engine("packed", 101, explain=True)
        assert tier == "batch" and "cutoff 100" in reason
        assert resolve_engine("packed", 100) == "packed"
        # Raising the cutoff opens the packed tier past the default.
        monkeypatch.setenv("REPRO_PACKED_MAX_NODES", "1000000")
        assert resolve_engine(
            "packed", bitpack.MAX_PACKED_NODES + 1) == "packed"
        # Garbage values fall back to the baked-in default.
        monkeypatch.setenv("REPRO_PACKED_MAX_NODES", "not-a-number")
        assert packed_max_nodes() == bitpack.MAX_PACKED_NODES

    def test_compiled_request_without_native_dependency(self):
        """engine="compiled" must stay correct when the C tier cannot
        build: REPRO_NO_NATIVE forces the dependency-absent path in a
        fresh interpreter (the availability probe is process-cached)."""
        code = """
import numpy as np
from repro.radio.impairments import BernoulliBatchLoss, trial_seeds
from repro.sim import native, resolve_engine, run_reactive_batch
from repro.topology import Mesh2D4

assert not native.native_available()
assert "REPRO_NO_NATIVE" in native.native_reason()
assert resolve_engine("compiled", 20) == "packed"
mesh = Mesh2D4(5, 4)
trials = 3
loss = BernoulliBatchLoss(0.2, trial_seeds(0, 0.2, trials))
a = run_reactive_batch(mesh, 0, np.ones(mesh.num_nodes, dtype=bool),
                       loss=loss, trials=trials, summary=True)
b = run_reactive_batch(mesh, 0, np.ones(mesh.num_nodes, dtype=bool),
                       loss=loss, trials=trials, summary=True,
                       engine="compiled")
assert np.array_equal(a.first_rx, b.first_rx)
assert np.array_equal(a.tx_count, b.tx_count)
print("fallback-ok")
"""
        env = dict(os.environ, REPRO_NO_NATIVE="1")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True)
        assert out.returncode == 0, out.stderr
        assert "fallback-ok" in out.stdout

    @pytest.mark.skipif(not native_available(),
                        reason="native kernel unavailable")
    def test_native_threads_env_override(self):
        """REPRO_NATIVE_THREADS pins the default pool width in a fresh
        interpreter, the width is clamped to the kernel's ceiling, and
        the env-widened run stays bit-identical to threads=1."""
        code = """
import numpy as np
from repro.radio.impairments import BernoulliBatchLoss, trial_seeds
from repro.sim import native, resolve_engine, run_reactive_batch
from repro.topology import Mesh2D4

assert native.default_native_threads() == 3
assert native.resolve_native_threads(None) == 3
assert native.resolve_native_threads(0) == 1
assert native.resolve_native_threads(10**6) == native.MAX_NATIVE_THREADS
tier, reason = resolve_engine("compiled", 20, explain=True)
assert tier == "compiled" and "3 threads" in reason, (tier, reason)
mesh = Mesh2D4(6, 5)
trials = 4
loss = BernoulliBatchLoss(0.2, trial_seeds(0, 0.2, trials))
relay = np.ones(mesh.num_nodes, dtype=bool)
a = run_reactive_batch(mesh, 0, relay, loss=loss, trials=trials,
                       summary=True, engine="compiled", threads=1)
b = run_reactive_batch(mesh, 0, relay, loss=loss, trials=trials,
                       summary=True, engine="compiled")  # env default: 3
assert np.array_equal(a.first_rx, b.first_rx)
assert np.array_equal(a.tx_count, b.tx_count)
assert np.array_equal(a.collisions, b.collisions)
print("threads-ok")
"""
        env = dict(os.environ, REPRO_NATIVE_THREADS="3")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True)
        assert out.returncode == 0, out.stderr
        assert "threads-ok" in out.stdout
