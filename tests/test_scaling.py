"""Tests for the scaling-study analysis module."""

import pytest

from repro.analysis.scaling import (DEFAULT_SIZES_3D, LARGE_SIZES_2D,
                                    LARGE_SIZES_3D, ScalingPoint,
                                    central_source, icbrt, scaling_curve,
                                    shape_for, sizes_for)
from repro.analysis.sweep import effective_workers


class TestShapes:
    def test_2d_aspect_ratio(self):
        assert shape_for("2D-4", 512) == (32, 16)
        assert shape_for("2D-8", 128) == (16, 8)
        assert shape_for("2D-3", 2048) == (64, 32)

    def test_3d_cubic(self):
        assert shape_for("3D-6", 512) == (8, 8, 8)
        assert shape_for("3D-6", 64) == (4, 4, 4)

    def test_central_source(self):
        assert central_source((32, 16)) == (16, 8)
        assert central_source((8, 8, 8)) == (4, 4, 4)
        assert central_source((1, 1)) == (1, 1)


class TestIntegerCubeRoot:
    def test_exact_cubes(self):
        # 216 ** (1/3) == 5.999... in float; round() alone can misround
        for k in (1, 2, 5, 6, 10, 22, 37, 47, 79, 100, 10**6, 10**7):
            assert icbrt(k ** 3) == k, k

    def test_nearest_cube(self):
        assert icbrt(0) == 0
        assert icbrt(7) == 2       # |8-7| < |1-7|
        assert icbrt(9) == 2
        assert icbrt(1000_000_001) == 1000
        with pytest.raises(ValueError):
            icbrt(-8)

    def test_default_3d_ladder_regression(self):
        """Every entry of the default (and large) 3D ladders is an exact
        cube and must map to exactly that cube's edge."""
        for target in DEFAULT_SIZES_3D + LARGE_SIZES_3D:
            k = icbrt(target)
            assert k ** 3 == target, target
            assert shape_for("3D-6", target) == (k, k, k)


class TestLadders:
    def test_sizes_for(self):
        assert sizes_for("2D-4") == (128, 288, 512, 800, 1152)
        assert sizes_for("2D-4", "large") == LARGE_SIZES_2D
        assert sizes_for("3D-6", "large") == LARGE_SIZES_3D
        with pytest.raises(ValueError):
            sizes_for("2D-4", "huge")

    def test_large_ladder_reaches_a_million(self):
        assert max(LARGE_SIZES_2D) == 1_000_000
        assert max(LARGE_SIZES_3D) == 1_000_000


class TestEffectiveWorkers:
    def test_serial_requests_stay_serial(self):
        assert effective_workers(None) == 1
        assert effective_workers(0) == 1
        assert effective_workers(1) == 1

    def test_multi_cpu_honours_request(self, monkeypatch):
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: set(range(8)),
                            raising=False)
        assert effective_workers(4) == 4

    def test_single_cpu_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: {0},
                            raising=False)
        assert effective_workers(4) == 1

    def test_affinity_respected_over_cpu_count(self, monkeypatch):
        # A process pinned to one CPU of an 8-CPU host must stay serial:
        # os.cpu_count sees the host, sched_getaffinity sees the pin.
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setattr("os.sched_getaffinity", lambda pid: {3},
                            raising=False)
        assert effective_workers(4) == 1

    def test_cpu_count_fallback_without_affinity(self, monkeypatch):
        monkeypatch.delattr("os.sched_getaffinity", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert effective_workers(4) == 1
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert effective_workers(4) == 1
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert effective_workers(4) == 4


class TestCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return scaling_curve("2D-4", sizes=[128, 512])

    def test_points_structure(self, curve):
        assert len(curve) == 2
        assert all(isinstance(p, ScalingPoint) for p in curve)
        assert curve[0].num_nodes == 128
        assert curve[1].num_nodes == 512

    def test_reachability_everywhere(self, curve):
        assert all(p.reachability == 1.0 for p in curve)

    def test_paper_point_reproduced(self, curve):
        p512 = curve[1]
        assert p512.tx == 208           # Table 3 best case
        assert p512.ideal_tx == 170     # Table 2

    def test_overhead_shrinks(self, curve):
        assert curve[1].tx_overhead < curve[0].tx_overhead

    def test_delay_tracks_eccentricity(self, curve):
        for p in curve:
            assert p.ideal_delay <= p.delay_slots <= p.ideal_delay + 3

    def test_rows_render(self, curve):
        row = curve[0].as_row()
        assert row["shape"] == "16x8"
        assert row["tx/ideal"] == pytest.approx(
            curve[0].tx / curve[0].ideal_tx, abs=1e-3)

    def test_custom_protocol(self):
        from repro.core.baselines import GreedyETRProtocol
        pts = scaling_curve("2D-4", sizes=[128],
                            protocol=GreedyETRProtocol())
        assert pts[0].reachability == 1.0
        assert pts[0].tx >= 42

    def test_3d_curve(self):
        pts = scaling_curve("3D-6", sizes=[64])
        assert pts[0].shape == (4, 4, 4)
        assert pts[0].reachability == 1.0
