"""Tests for the scaling-study analysis module."""

import pytest

from repro.analysis.scaling import (ScalingPoint, central_source,
                                    scaling_curve, shape_for)


class TestShapes:
    def test_2d_aspect_ratio(self):
        assert shape_for("2D-4", 512) == (32, 16)
        assert shape_for("2D-8", 128) == (16, 8)
        assert shape_for("2D-3", 2048) == (64, 32)

    def test_3d_cubic(self):
        assert shape_for("3D-6", 512) == (8, 8, 8)
        assert shape_for("3D-6", 64) == (4, 4, 4)

    def test_central_source(self):
        assert central_source((32, 16)) == (16, 8)
        assert central_source((8, 8, 8)) == (4, 4, 4)
        assert central_source((1, 1)) == (1, 1)


class TestCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return scaling_curve("2D-4", sizes=[128, 512])

    def test_points_structure(self, curve):
        assert len(curve) == 2
        assert all(isinstance(p, ScalingPoint) for p in curve)
        assert curve[0].num_nodes == 128
        assert curve[1].num_nodes == 512

    def test_reachability_everywhere(self, curve):
        assert all(p.reachability == 1.0 for p in curve)

    def test_paper_point_reproduced(self, curve):
        p512 = curve[1]
        assert p512.tx == 208           # Table 3 best case
        assert p512.ideal_tx == 170     # Table 2

    def test_overhead_shrinks(self, curve):
        assert curve[1].tx_overhead < curve[0].tx_overhead

    def test_delay_tracks_eccentricity(self, curve):
        for p in curve:
            assert p.ideal_delay <= p.delay_slots <= p.ideal_delay + 3

    def test_rows_render(self, curve):
        row = curve[0].as_row()
        assert row["shape"] == "16x8"
        assert row["tx/ideal"] == pytest.approx(
            curve[0].tx / curve[0].ideal_tx, abs=1e-3)

    def test_custom_protocol(self):
        from repro.core.baselines import GreedyETRProtocol
        pts = scaling_curve("2D-4", sizes=[128],
                            protocol=GreedyETRProtocol())
        assert pts[0].reachability == 1.0
        assert pts[0].tx >= 42

    def test_3d_curve(self):
        pts = scaling_curve("3D-6", sizes=[64])
        assert pts[0].shape == (4, 4, 4)
        assert pts[0].reachability == 1.0
