"""Tests for the 3D-6 broadcasting protocol (Section 3.4, Fig. 9)."""

import pytest

from repro.core import validate_broadcast
from repro.core.mesh3d6 import Mesh3D6Protocol
from repro.topology import Mesh2D4, Mesh3D6
from repro.topology.lee import is_lee_lattice_point


class TestRelayRules:
    @pytest.fixture
    def plan(self):
        mesh = Mesh3D6(8, 8, 8)
        return mesh, Mesh3D6Protocol().relay_plan(mesh, (4, 4, 4))

    def test_source_plane_runs_2d4_rules(self, plan):
        mesh, p = plan
        # source row of the plane
        for x in range(1, 9):
            assert p.relay_mask[mesh.index((x, 4, 4))]
        # relay columns every 3 from x=4: 1, 4, 7
        for x in (1, 4, 7):
            for y in range(1, 9):
                assert p.relay_mask[mesh.index((x, y, 4))]

    def test_zrelay_columns_span_all_planes(self, plan):
        mesh, p = plan
        for (x, y) in p.notes["zrelay_columns"]:
            assert is_lee_lattice_point(x - 4, y - 4)
            for z in range(1, 9):
                assert p.relay_mask[mesh.index((x, y, z))]

    def test_paper_r5_offsets_are_zrelays(self):
        """R5: from source (6,8,k), nodes (4,7,w), (5,10,w), (7,6,w),
        (8,9,w) are z-relays."""
        mesh = Mesh3D6(16, 16, 4)
        p = Mesh3D6Protocol().relay_plan(mesh, (6, 8, 2))
        cols = set(p.notes["zrelay_columns"])
        for xy in [(4, 7), (5, 10), (7, 6), (8, 9), (6, 8)]:
            assert xy in cols

    def test_source_plane_zrelays_delayed(self, plan):
        mesh, p = plan
        for (x, y) in p.notes["zrelay_columns"]:
            idx = mesh.index((x, y, 4))
            if (x, y) == (4, 4):
                assert p.extra_delay[idx] == 0  # the source itself
            else:
                assert p.extra_delay[idx] == 1
            # other planes keep normal timing
            assert p.extra_delay[mesh.index((x, y, 2))] == 0

    def test_z_neighbours_retransmit_two_slots_later(self, plan):
        mesh, p = plan
        assert p.repeat_offsets[mesh.index((4, 4, 3))] == (2,)
        assert p.repeat_offsets[mesh.index((4, 4, 5))] == (2,)

    def test_plane_retransmitters_inherited_from_2d4(self, plan):
        mesh, p = plan
        # x = i+-1 (+3k) on the source row of the source plane
        assert p.repeat_offsets[mesh.index((5, 4, 4))] == (1,)
        assert p.repeat_offsets[mesh.index((3, 4, 4))] == (1,)

    def test_zrelay_count_matches_lee_density(self, plan):
        mesh, p = plan
        assert p.notes["zrelay_count_per_plane"] in (12, 13)

    def test_wrong_topology_type(self):
        with pytest.raises(TypeError):
            Mesh3D6Protocol().relay_plan(Mesh2D4(4, 4), (2, 2))


class TestBroadcast:
    def test_central_reaches_all(self, compiled_central):
        assert compiled_central["3D-6"].reached_all

    def test_corner_reaches_all(self, compiled_corner):
        assert compiled_corner["3D-6"].reached_all

    def test_audits_clean(self, paper_meshes, compiled_central):
        mesh = paper_meshes["3D-6"]
        result = compiled_central["3D-6"]
        report = validate_broadcast(mesh, result.schedule, result.source)
        assert report.ok, report.issues

    def test_best_case_tx_matches_paper(self, compiled_central):
        """A central source reproduces the paper's best-case Tx: 167."""
        assert compiled_central["3D-6"].trace.num_tx == 167

    def test_every_plane_fully_covered(self, paper_meshes,
                                       compiled_central):
        mesh = paper_meshes["3D-6"]
        trace = compiled_central["3D-6"].trace
        for z in range(1, 9):
            plane = mesh.plane_indices(z)
            assert (trace.first_rx[plane] >= 0).all(), f"plane {z}"

    def test_z_forwarding_is_pipelined(self, paper_meshes,
                                       compiled_central):
        """Planes farther from the source plane are informed later, one
        extra slot per plane at least (and not absurdly more)."""
        mesh = paper_meshes["3D-6"]
        trace = compiled_central["3D-6"].trace
        src_z = 4
        first_by_plane = {
            z: int(trace.first_rx[mesh.plane_indices(z)].min())
            for z in range(1, 9)}
        for z in range(1, 9):
            if z != src_z:
                assert first_by_plane[z] >= abs(z - src_z)

    def test_delay_close_to_eccentricity(self, paper_meshes,
                                         compiled_central):
        mesh = paper_meshes["3D-6"]
        trace = compiled_central["3D-6"].trace
        ecc = mesh.eccentricity((4, 4, 4))
        assert ecc <= trace.delay_slots <= ecc + 6

    def test_lee_gap_nodes_get_covered(self, paper_meshes,
                                       compiled_central):
        """The border nodes missed by the Lee tiling (the paper's gray
        border relays in Fig. 9) are covered by completion."""
        from repro.topology.lee import lee_cover_gaps
        mesh = paper_meshes["3D-6"]
        trace = compiled_central["3D-6"].trace
        gaps = lee_cover_gaps(8, 8, (4, 4))
        assert gaps  # the 8x8 tiling does leave border gaps
        for (x, y) in gaps:
            for z in range(1, 9):
                assert trace.first_rx[mesh.index((x, y, z))] >= 0


class TestManySources:
    @pytest.mark.parametrize("src", [(1, 1, 1), (5, 5, 4), (1, 5, 2),
                                     (5, 1, 1), (3, 2, 4)])
    def test_reachability(self, src):
        mesh = Mesh3D6(5, 5, 4)
        result = Mesh3D6Protocol().compile(mesh, src)
        assert result.reached_all
