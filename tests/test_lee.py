"""Unit tests for the R5 z-relay lattice (Lee-sphere tiling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import lee


class TestMembership:
    def test_origin_is_member(self):
        assert lee.is_lee_lattice_point(0, 0)

    def test_r5_generators(self):
        """Rule R5's offsets from a z-relay are themselves z-relays."""
        for u, v in [(-2, -1), (-1, 2), (1, -2), (2, 1)]:
            assert lee.is_lee_lattice_point(u, v)

    def test_unit_neighbours_are_not_members(self):
        for u, v in [(1, 0), (-1, 0), (0, 1), (0, -1)]:
            assert not lee.is_lee_lattice_point(u, v)

    def test_lattice_closed_under_addition(self):
        pts = [(2, 1), (-1, 2), (4, 2), (1, 3)]
        for (a, b) in pts:
            for (c, d) in pts:
                if lee.is_lee_lattice_point(a, b) and \
                        lee.is_lee_lattice_point(c, d):
                    assert lee.is_lee_lattice_point(a + c, b + d)

    def test_paper_example_points(self):
        """Section 3.4: from source (6,8), nodes (4,7), (5,10), (7,6),
        (8,9) are z-relays."""
        for x, y in [(4, 7), (5, 10), (7, 6), (8, 9)]:
            assert lee.is_lee_lattice_point(x - 6, y - 8)


class TestCounts:
    def test_density_is_one_fifth(self):
        count = lee.lee_count(50, 50, (1, 1))
        assert count == 2500 // 5

    def test_8x8_counts_are_12_or_13(self):
        counts = {lee.lee_count(8, 8, (x, y))
                  for x in range(1, 6) for y in range(1, 6)}
        assert counts == {12, 13}

    def test_mask_matches_points(self):
        mask = lee.lee_mask(7, 5, (3, 2))
        pts = lee.lee_points(7, 5, (3, 2))
        assert int(mask.sum()) == len(pts)
        for (x, y) in pts:
            assert mask[y - 1, x - 1]

    def test_seed_always_in_points(self):
        assert (3, 2) in lee.lee_points(7, 5, (3, 2))


class TestTiling:
    @given(st.integers(1, 12), st.integers(1, 12),
           st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_interior_perfectly_tiled(self, m, n, sx, sy):
        """Away from the border, every node is covered by exactly one
        Lee sphere — the property that gives 3D-6 its 5/6 optimal ETR."""
        m, n = m + 4, n + 4
        mask = lee.lee_mask(m, n, (sx, sy)).astype(int)
        cover = mask.copy()
        cover[1:, :] += mask[:-1, :]
        cover[:-1, :] += mask[1:, :]
        cover[:, 1:] += mask[:, :-1]
        cover[:, :-1] += mask[:, 1:]
        interior = cover[1:-1, 1:-1]
        assert (interior == 1).all()

    def test_gaps_only_on_border(self):
        gaps = lee.lee_cover_gaps(8, 8, (4, 4))
        for (x, y) in gaps:
            assert x in (1, 8) or y in (1, 8)

    def test_gap_nodes_really_uncovered(self):
        seed = (4, 4)
        gaps = lee.lee_cover_gaps(8, 8, seed)
        pts = set(lee.lee_points(8, 8, seed))
        for (x, y) in gaps:
            sphere = [(x, y), (x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)]
            assert not any(p in pts for p in sphere)

    def test_no_gaps_in_unbounded_sense(self):
        """On a torus-sized sample the tiling covers everything: gap count
        is a border effect, bounded by the perimeter."""
        gaps = lee.lee_cover_gaps(20, 20, (7, 9))
        assert len(gaps) <= 2 * (20 + 20)
