"""Unit tests for the 3D mesh with 6 neighbours (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh3D6


class TestNeighbourhood:
    def test_interior_has_six(self):
        mesh = Mesh3D6(4, 4, 4)
        nbrs = mesh.neighbors((2, 2, 2))
        assert len(nbrs) == 6
        assert set(nbrs) == {(1, 2, 2), (3, 2, 2), (2, 1, 2),
                             (2, 3, 2), (2, 2, 1), (2, 2, 3)}

    def test_corner_has_three(self):
        mesh = Mesh3D6(4, 4, 4)
        assert mesh.neighbors((1, 1, 1)) == [(1, 1, 2), (1, 2, 1), (2, 1, 1)]

    def test_no_diagonal_edges(self):
        mesh = Mesh3D6(3, 3, 3)
        assert (2, 2, 2) not in mesh.neighbors((1, 1, 1))
        assert (2, 2, 1) not in mesh.neighbors((1, 1, 1))

    def test_degree_census_paper_shape(self):
        mesh = Mesh3D6(8, 8, 8)
        degs = mesh.degrees
        assert (degs == 3).sum() == 8                 # corners
        assert (degs == 4).sum() == 12 * 6            # edges
        assert (degs == 5).sum() == 6 * 36            # faces
        assert (degs == 6).sum() == 6 ** 3            # interior
        assert mesh.num_nodes == 512


class TestStructure:
    def test_shape_and_dims(self):
        mesh = Mesh3D6(5, 4, 3)
        assert mesh.shape == (5, 4, 3)
        assert mesh.num_nodes == 60
        assert mesh.dims == 3

    def test_plane_indices(self):
        mesh = Mesh3D6(3, 2, 4)
        plane = mesh.plane_indices(2)
        assert len(plane) == 6
        assert all(mesh.coord(int(i))[2] == 2 for i in plane)
        with pytest.raises(ValueError):
            mesh.plane_indices(0)
        with pytest.raises(ValueError):
            mesh.plane_indices(5)

    def test_positions(self):
        mesh = Mesh3D6(2, 2, 2, spacing=0.5)
        pos = mesh.positions()
        assert pos.shape == (8, 3)
        a = pos[mesh.index((1, 1, 1))]
        b = pos[mesh.index((1, 1, 2))]
        assert np.linalg.norm(a - b) == pytest.approx(0.5)

    def test_index_bounds(self):
        mesh = Mesh3D6(2, 2, 2)
        with pytest.raises(ValueError):
            mesh.index((3, 1, 1))
        with pytest.raises(ValueError):
            mesh.index((1, 1, 0))
        with pytest.raises(ValueError):
            mesh.coord(8)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Mesh3D6(0, 2, 2)

    def test_diameter_is_sum_of_extents(self):
        mesh = Mesh3D6(4, 3, 2)
        assert mesh.diameter == 3 + 2 + 1

    def test_paper_mesh_diameter(self):
        assert Mesh3D6(8, 8, 8).diameter == 21

    @given(st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)))
    @settings(max_examples=15, deadline=None)
    def test_validate_any_shape(self, dims):
        Mesh3D6(*dims).validate()

    @given(st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)))
    @settings(max_examples=10, deadline=None)
    def test_always_connected(self, dims):
        assert Mesh3D6(*dims).is_connected()
