"""Differential testing: stencil-built CSR vs the loop reference builder.

``graph.build_adjacency`` consumes each regular lattice's vectorised
``stencil_edges`` arrays; ``graph.build_adjacency_loop`` stays as the
per-node reference (and the only builder for irregular topologies).  The
fast path's contract is exact CSR equality — same ``indptr``, same sorted
``indices``, same all-ones ``data`` — which this suite pins down with
hypothesis-randomised shapes on all regular topologies, including the
1 x n / m x 1 degenerate grids where boundary masks do the most work.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (Mesh2D3, Mesh2D4, Mesh2D6, Mesh2D8, Mesh3D6,
                            RandomDiskTopology)
from repro.topology.graph import build_adjacency, build_adjacency_loop

MESH2D_CLASSES = [Mesh2D4, Mesh2D8, Mesh2D3, Mesh2D6]


def assert_csr_equal(stencil, loop, label):
    assert stencil.shape == loop.shape, label
    assert np.array_equal(stencil.indptr, loop.indptr), label
    assert np.array_equal(stencil.indices, loop.indices), label
    assert np.array_equal(stencil.data, loop.data), label
    assert stencil.data.dtype == loop.data.dtype, label
    assert (stencil.data == 1).all(), label


@pytest.mark.parametrize("cls", MESH2D_CLASSES)
@given(m=st.integers(1, 12), n=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_stencil_matches_loop_2d(cls, m, n):
    topo = cls(m, n)
    assert_csr_equal(build_adjacency(topo), build_adjacency_loop(topo),
                     f"{cls.__name__} {m}x{n}")


@given(m=st.integers(1, 6), n=st.integers(1, 6), l=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_stencil_matches_loop_3d(m, n, l):
    topo = Mesh3D6(m, n, l)
    assert_csr_equal(build_adjacency(topo), build_adjacency_loop(topo),
                     f"3D-6 {m}x{n}x{l}")


@pytest.mark.parametrize("cls", MESH2D_CLASSES)
@pytest.mark.parametrize("shape", [(1, 1), (1, 2), (1, 9), (9, 1), (2, 1)])
def test_degenerate_grids(cls, shape):
    """1-wide grids exercise every boundary mask at once."""
    topo = cls(*shape)
    assert_csr_equal(build_adjacency(topo), build_adjacency_loop(topo),
                     f"{cls.__name__} {shape}")


@pytest.mark.parametrize("shape", [(1, 1, 1), (1, 5, 1), (1, 1, 7),
                                   (4, 1, 2)])
def test_degenerate_grids_3d(shape):
    topo = Mesh3D6(*shape)
    assert_csr_equal(build_adjacency(topo), build_adjacency_loop(topo),
                     f"3D-6 {shape}")


def test_paper_scale_meshes_use_stencil():
    """The four paper lattices all expose stencil edges, and the cached
    ``adjacency`` is the stencil-built CSR."""
    for topo in (Mesh2D4(32, 16), Mesh2D8(32, 16), Mesh2D3(32, 16),
                 Mesh3D6(8, 8, 8)):
        assert topo.stencil_edges() is not None
        assert_csr_equal(topo.adjacency, build_adjacency_loop(topo),
                         repr(topo))


def test_irregular_topology_falls_back_to_loop():
    """random_disk has no stencil; build_adjacency must route it through
    the loop reference builder."""
    topo = RandomDiskTopology(40, width=3.0, height=3.0,
                              radio_range=0.9, seed=3)
    assert topo.stencil_edges() is None
    assert_csr_equal(build_adjacency(topo), build_adjacency_loop(topo),
                     repr(topo))


def test_stencil_edges_are_directed_pairs():
    """Each undirected lattice edge appears exactly twice (u->v and
    v->u) in the raw stencil arrays — the property that makes the CSR
    symmetric without an explicit symmetrisation pass."""
    topo = Mesh2D3(7, 5)
    rows, cols = topo.stencil_edges()
    fwd = set(zip(rows.tolist(), cols.tolist()))
    assert len(fwd) == len(rows)          # no duplicates
    assert all((v, u) in fwd for u, v in fwd)
    assert all(u != v for u, v in fwd)    # no self-loops
