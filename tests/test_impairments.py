"""Tests for channel impairments and fault injection in the engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import (BernoulliBatchLoss, BernoulliLoss, BurstBatchLoss,
                         BurstLoss, CounterBernoulliLoss, CounterBurstLoss,
                         PerTrialBatchLoss, PerfectChannel, counter_uniforms,
                         dead_mask_from_coords, random_dead_mask,
                         trial_seeds)
from repro.sim import replay, run_reactive
from repro.topology import Mesh2D4


class TestLossProcesses:
    def test_perfect_channel_identity(self):
        rx = np.array([True, False, True])
        assert (PerfectChannel().apply(3, rx) == rx).all()

    def test_bernoulli_zero_is_identity(self):
        rx = np.ones(10, dtype=bool)
        assert BernoulliLoss(0.0).apply(1, rx).all()

    def test_bernoulli_one_erases_everything(self):
        rx = np.ones(10, dtype=bool)
        assert not BernoulliLoss(1.0).apply(1, rx).any()

    def test_bernoulli_deterministic_per_slot(self):
        """The same slot must always draw the same erasures, regardless of
        call order — replay stability."""
        rx = np.ones(50, dtype=bool)
        loss = BernoulliLoss(0.5, seed=7)
        a = loss.apply(9, rx)
        loss.apply(3, rx)  # interleave another slot
        b = loss.apply(9, rx)
        assert (a == b).all()

    def test_bernoulli_slots_differ(self):
        rx = np.ones(200, dtype=bool)
        loss = BernoulliLoss(0.5, seed=7)
        assert (loss.apply(1, rx) != loss.apply(2, rx)).any()

    def test_bernoulli_rate_roughly_respected(self):
        rx = np.ones(8000, dtype=bool)
        survived = BernoulliLoss(0.3, seed=1).apply(1, rx).sum()
        assert 0.6 * 8000 <= survived <= 0.8 * 8000

    def test_burst_all_or_nothing(self):
        rx = np.ones(20, dtype=bool)
        loss = BurstLoss(0.5, seed=3)
        for slot in range(1, 30):
            out = loss.apply(slot, rx)
            assert out.all() or not out.any()

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)
        with pytest.raises(ValueError):
            BurstLoss(1.1)

    def test_loss_never_creates_receptions(self):
        rx = np.zeros(10, dtype=bool)
        assert not BernoulliLoss(0.5, seed=0).apply(1, rx).any()


class TestCounterRNG:
    def test_scalar_seed_shape(self):
        u = counter_uniforms(5, 3, 16)
        assert u.shape == (16,)
        assert ((0.0 <= u) & (u < 1.0)).all()

    def test_vector_seed_shape(self):
        seeds = np.arange(4, dtype=np.uint64)
        u = counter_uniforms(seeds, 3, 16)
        assert u.shape == (4, 16)

    def test_grid_rows_equal_scalar_draws(self):
        """The serial-equivalence root: drawing the (B, n) grid at once is
        bit-identical to drawing each seed's row independently."""
        seeds = trial_seeds(9, 0.1, 6)
        grid = counter_uniforms(seeds, 7, 25)
        for b, s in enumerate(seeds):
            assert (grid[b] == counter_uniforms(int(s), 7, 25)).all()

    def test_deterministic_and_slot_dependent(self):
        assert (counter_uniforms(1, 4, 50) == counter_uniforms(1, 4, 50)).all()
        assert (counter_uniforms(1, 4, 50) != counter_uniforms(1, 5, 50)).any()
        assert (counter_uniforms(1, 4, 50) != counter_uniforms(2, 4, 50)).any()

    def test_rate_roughly_uniform(self):
        u = counter_uniforms(3, 1, 8000)
        assert 0.45 < u.mean() < 0.55

    def test_trial_seeds_distinct(self):
        seeds = trial_seeds(0, 0.1, 64)
        assert len(set(seeds.tolist())) == 64

    def test_trial_seeds_mix_parameter(self):
        """Different sweep parameters must yield disjoint seed streams —
        the correlated-stream bug this replaces keyed on trial alone."""
        a = trial_seeds(0, 0.1, 32).tolist()
        b = trial_seeds(0, 0.2, 32).tolist()
        assert not set(a) & set(b)

    def test_trial_seeds_mix_seed(self):
        a = trial_seeds(0, 0.1, 32).tolist()
        b = trial_seeds(1, 0.1, 32).tolist()
        assert not set(a) & set(b)


class TestCounterLosses:
    def test_counter_bernoulli_matches_uniforms(self):
        rx = np.ones(100, dtype=bool)
        out = CounterBernoulliLoss(0.4, seed=5).apply(3, rx)
        assert (out == (counter_uniforms(5, 3, 100) >= 0.4)).all()

    def test_counter_bernoulli_deterministic_per_slot(self):
        rx = np.ones(50, dtype=bool)
        loss = CounterBernoulliLoss(0.5, seed=7)
        a = loss.apply(9, rx)
        loss.apply(3, rx)
        assert (a == loss.apply(9, rx)).all()

    def test_counter_burst_all_or_nothing(self):
        rx = np.ones(20, dtype=bool)
        loss = CounterBurstLoss(0.5, seed=3)
        outcomes = set()
        for slot in range(1, 40):
            out = loss.apply(slot, rx)
            assert out.all() or not out.any()
            outcomes.add(bool(out.any()))
        assert outcomes == {True, False}

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterBernoulliLoss(-0.1)
        with pytest.raises(ValueError):
            CounterBurstLoss(1.5)


class TestBatchLosses:
    def test_bernoulli_batch_rows_equal_trial_loss(self):
        seeds = trial_seeds(2, 0.3, 5)
        batch = BernoulliBatchLoss(0.3, seeds)
        rx = np.ones((5, 60), dtype=bool)
        out = batch.apply_batch(4, rx)
        for b in range(5):
            assert (out[b] == batch.trial_loss(b).apply(4, rx[b])).all()

    def test_burst_batch_rows_equal_trial_loss(self):
        seeds = trial_seeds(2, 0.5, 8)
        batch = BurstBatchLoss(0.5, seeds)
        rx = np.ones((8, 30), dtype=bool)
        for slot in (1, 2, 3):
            out = batch.apply_batch(slot, rx)
            for b in range(8):
                assert (out[b] ==
                        batch.trial_loss(b).apply(slot, rx[b])).all()

    def test_per_trial_adapter_rows(self):
        losses = [BernoulliLoss(0.3, seed=1), BurstLoss(0.5, seed=2)]
        batch = PerTrialBatchLoss(losses)
        rx = np.ones((2, 40), dtype=bool)
        out = batch.apply_batch(6, rx)
        for b in range(2):
            assert (out[b] == losses[b].apply(6, rx[b])).all()
        assert batch.trial_loss(1) is losses[1]

    def test_zero_rate_is_identity(self):
        rx = np.random.default_rng(0).random((3, 20)) < 0.5
        seeds = trial_seeds(0, 0.0, 3)
        assert (BernoulliBatchLoss(0.0, seeds).apply_batch(1, rx) == rx).all()

    def test_batch_never_creates_receptions(self):
        rx = np.zeros((4, 20), dtype=bool)
        seeds = trial_seeds(1, 0.5, 4)
        assert not BernoulliBatchLoss(0.5, seeds).apply_batch(1, rx).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliBatchLoss(2.0, trial_seeds(0, 0.1, 2))
        with pytest.raises(ValueError):
            BernoulliBatchLoss(0.1, [])
        with pytest.raises(ValueError):
            PerTrialBatchLoss([])


class TestBurstLength:
    """Edge cases of the multi-slot burst window (``length > 1``)."""

    def test_length_one_is_single_slot_burst(self):
        """length=1 must reproduce the original one-draw-per-slot burst
        bit-for-bit."""
        rx = np.ones(30, dtype=bool)
        a = CounterBurstLoss(0.4, seed=9)
        b = CounterBurstLoss(0.4, seed=9, length=1)
        for slot in range(1, 25):
            assert (a.apply(slot, rx) == b.apply(slot, rx)).all()

    def test_longer_bursts_only_add_erasures(self):
        """Growing the window can only black out more slots: every slot
        erased at length L is erased at length L+1 (same start draws)."""
        rx = np.ones(10, dtype=bool)
        short = CounterBurstLoss(0.3, seed=4, length=1)
        long = CounterBurstLoss(0.3, seed=4, length=3)
        for slot in range(1, 40):
            erased_short = not short.apply(slot, rx).any()
            erased_long = not long.apply(slot, rx).any()
            assert erased_long or not erased_short

    def test_rate_zero_is_identity_at_any_length(self):
        rx = np.ones(15, dtype=bool)
        loss = CounterBurstLoss(0.0, seed=1, length=50)
        for slot in range(1, 20):
            assert loss.apply(slot, rx).all()

    def test_rate_one_blacks_out_everything(self):
        rx = np.ones(15, dtype=bool)
        for length in (1, 3):
            loss = CounterBurstLoss(1.0, seed=1, length=length)
            for slot in range(1, 20):
                assert not loss.apply(slot, rx).any()

    def test_length_exceeding_horizon(self):
        """A burst longer than the whole broadcast: once any start draw
        in slot 1..t fires, every later slot stays erased — the engine
        must still terminate with a partial (possibly source-only)
        wave."""
        from repro.core import protocol_for
        mesh = Mesh2D4(6, 4)
        compiled = protocol_for("2D-4").compile(mesh, (3, 2))
        horizon = compiled.schedule.max_slot
        loss = CounterBurstLoss(1.0, seed=0, length=horizon + 50)
        trace = replay(mesh, compiled.schedule, mesh.index((3, 2)),
                       loss=loss)
        assert trace.reachability == 1.0 / mesh.num_nodes  # source only
        assert trace.rx_events == []

    def test_batch_rows_equal_trial_loss_with_length(self):
        """The (B,)-vectorised window must stay bit-identical to the
        serial per-trial scan at every slot, including slots < length
        where the window clips at slot 1."""
        seeds = trial_seeds(3, 0.5, 6)
        batch = BurstBatchLoss(0.5, seeds, length=4)
        rx = np.ones((6, 25), dtype=bool)
        for slot in (1, 2, 3, 4, 5, 9):
            out = batch.apply_batch(slot, rx)
            for b in range(6):
                assert (out[b] ==
                        batch.trial_loss(b).apply(slot, rx[b])).all()

    def test_length_validation(self):
        with pytest.raises(ValueError):
            CounterBurstLoss(0.5, length=0)
        with pytest.raises(ValueError):
            BurstBatchLoss(0.5, trial_seeds(0, 0.5, 2), length=-1)


class TestDeadMasks:
    def test_from_coords(self):
        mesh = Mesh2D4(4, 4)
        mask = dead_mask_from_coords(mesh, [(1, 1), (4, 4)])
        assert mask.sum() == 2
        assert mask[mesh.index((1, 1))]

    def test_random_mask_protects(self):
        mesh = Mesh2D4(6, 6)
        for seed in range(5):
            mask = random_dead_mask(mesh, 10, seed=seed, protect=[0])
            assert mask.sum() == 10
            assert not mask[0]

    def test_random_mask_deterministic(self):
        mesh = Mesh2D4(6, 6)
        a = random_dead_mask(mesh, 5, seed=3)
        b = random_dead_mask(mesh, 5, seed=3)
        assert (a == b).all()

    def test_too_many_failures(self):
        mesh = Mesh2D4(3, 3)
        with pytest.raises(ValueError):
            random_dead_mask(mesh, 9, protect=[0])


class TestEngineFaults:
    def test_dead_node_blocks_line(self):
        mesh = Mesh2D4(6, 1)
        relay = np.ones(6, dtype=bool)
        dead = np.zeros(6, dtype=bool)
        dead[3] = True
        trace = run_reactive(mesh, 0, relay, dead_mask=dead)
        assert trace.first_rx[2] >= 0
        assert trace.first_rx[3] == -1   # dead: never receives
        assert trace.first_rx[4] == -1   # cut off behind the corpse
        assert all(v != 3 for _, v in trace.tx_events)

    def test_dead_source_rejected(self):
        mesh = Mesh2D4(4, 1)
        dead = np.zeros(4, dtype=bool)
        dead[0] = True
        with pytest.raises(ValueError):
            run_reactive(mesh, 0, np.ones(4, dtype=bool), dead_mask=dead)

    def test_replay_with_dead_drops_downstream_tx(self):
        """A fault-injected replay must not let uninformed nodes forward."""
        mesh = Mesh2D4(6, 1)
        relay = np.ones(6, dtype=bool)
        baseline = run_reactive(mesh, 0, relay)
        dead = np.zeros(6, dtype=bool)
        dead[2] = True
        trace = replay(mesh, baseline.as_schedule(), 0, dead_mask=dead)
        # nodes 3..5 never got the message, so they never transmit
        for _, v in trace.tx_events:
            assert v in (0, 1)

    def test_total_loss_stops_wave(self):
        mesh = Mesh2D4(5, 1)
        relay = np.ones(5, dtype=bool)
        trace = run_reactive(mesh, 0, relay, loss=BernoulliLoss(1.0))
        assert trace.num_rx == 0
        assert trace.num_tx == 1  # only the source fires

    def test_reactive_and_replay_agree_under_loss(self):
        """Per-slot seeding makes loss identical across execution modes
        whenever the transmission sets coincide."""
        mesh = Mesh2D4(8, 4)
        relay = np.ones(mesh.num_nodes, dtype=bool)
        loss = BernoulliLoss(0.2, seed=11)
        reactive = run_reactive(mesh, 0, relay, loss=loss)
        replayed = replay(mesh, reactive.as_schedule(), 0, loss=loss)
        assert replayed.rx_events == reactive.rx_events
        assert (replayed.first_rx == reactive.first_rx).all()

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_loss_only_removes_receptions_on_collision_free_wave(self, seed):
        """On a collision-free schedule (a line wave: one transmitter per
        slot), a lossy replay's receptions are a subset of the clean
        replay's.  (With collisions this need not hold pointwise: a lost
        upstream transmission can also *remove* a collision.)"""
        mesh = Mesh2D4(8, 1)
        relay = np.ones(8, dtype=bool)
        sched = run_reactive(mesh, 0, relay).as_schedule()
        clean = replay(mesh, sched, 0)
        lossy = replay(mesh, sched, 0, loss=BernoulliLoss(0.3, seed=seed))
        assert set(lossy.rx_events) <= set(clean.rx_events)
        assert lossy.num_tx <= clean.num_tx
