"""The committed BENCH_sweep.json artefact must stay well-formed.

``benchmarks/perf_sweep.py`` regenerates the artefact; this tier-1 check
only validates its structure (cheap, no timing), so a hand-edited or
truncated file is caught before it misleads anyone reading the numbers.
"""

import json
from pathlib import Path

import pytest

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


@pytest.mark.skipif(not ARTIFACT.exists(),
                    reason="BENCH_sweep.json not generated")
def test_bench_sweep_artifact_well_formed():
    payload = json.loads(ARTIFACT.read_text())
    assert payload["schema"] == "repro-wsn/bench-sweep/v1"
    assert payload["parallel_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "cold", "warm", "parallel"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["sources_per_second"] > 0, label
    assert payload["sources"] == payload["shape"][0] * payload["shape"][1]
    assert isinstance(payload["workers"], int) and payload["workers"] >= 1
