"""The committed benchmark artefacts must stay well-formed.

``benchmarks/perf_sweep.py`` / ``benchmarks/perf_robustness.py`` /
``benchmarks/perf_scaling.py`` regenerate the artefacts; these tier-1
checks only validate their structure (cheap, no timing), so a
hand-edited or truncated file is caught before it misleads anyone
reading the numbers.
"""

import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
SWEEP_ARTIFACT = _ROOT / "BENCH_sweep.json"
ROBUSTNESS_ARTIFACT = _ROOT / "BENCH_robustness.json"
SCALING_ARTIFACT = _ROOT / "BENCH_scaling.json"
SYMMETRY_ARTIFACT = _ROOT / "BENCH_symmetry.json"
RECOVERY_ARTIFACT = _ROOT / "BENCH_recovery.json"


@pytest.mark.skipif(not SWEEP_ARTIFACT.exists(),
                    reason="BENCH_sweep.json not generated")
def test_bench_sweep_artifact_well_formed():
    payload = json.loads(SWEEP_ARTIFACT.read_text())
    assert payload["schema"] == "repro-wsn/bench-sweep/v1"
    assert payload["parallel_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "cold", "warm", "parallel"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["sources_per_second"] > 0, label
    assert payload["sources"] == payload["shape"][0] * payload["shape"][1]
    assert isinstance(payload["workers"], int) and payload["workers"] >= 1


@pytest.mark.skipif(not ROBUSTNESS_ARTIFACT.exists(),
                    reason="BENCH_robustness.json not generated")
def test_bench_robustness_artifact_well_formed():
    payload = json.loads(ROBUSTNESS_ARTIFACT.read_text())
    assert payload["schema"] == "repro-wsn/bench-robustness/v1"
    assert payload["batched_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "batched", "parallel"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["simulations_per_second"] > 0, label
    assert payload["simulations"] == \
        len(payload["loss_rates"]) * payload["trials"]
    # the ISSUE's acceptance floor for the committed artefact
    assert len(payload["loss_rates"]) >= 8
    assert payload["trials"] >= 32
    assert payload["batched_speedup_vs_serial"] >= 3.0


@pytest.mark.skipif(not SYMMETRY_ARTIFACT.exists(),
                    reason="BENCH_symmetry.json not generated")
def test_bench_symmetry_artifact_well_formed():
    payload = json.loads(SYMMETRY_ARTIFACT.read_text())
    assert payload["schema"] == "repro-wsn/bench-symmetry/v1"
    # the hard equality gate: symmetry sweeps reproduced the direct
    # sweeps' metrics exactly before the artefact was written
    assert payload["metrics_equal"] is True
    assert payload["cpu_count"] is None or payload["cpu_count"] >= 1
    assert payload["cpus_available"] >= 1
    labels = set()
    for entry in payload["entries"]:
        labels.add(entry["topology"])
        assert entry["metrics_equal"] is True
        assert entry["classes"] >= 1
        assert entry["classes"] <= entry["sources"]
        for mode in ("no_symmetry", "symmetry"):
            assert entry[mode]["seconds"] > 0
            assert entry[mode]["compile_calls"] >= 0
        assert entry["no_symmetry"]["compile_calls"] == entry["sources"]
        assert entry["symmetry"]["compile_calls"] <= entry["classes"]
        assert entry["speedup"] > 0
    # the ISSUE's acceptance floors for the committed artefact: a
    # full-grid 2D-4 sweep with >= 5x fewer compile calls and a
    # measured wall-clock speedup over the direct cached-sweep baseline
    assert "2D-4" in labels
    mesh2d4 = next(e for e in payload["entries"]
                   if e["topology"] == "2D-4")
    assert mesh2d4["sources"] == mesh2d4["shape"][0] * mesh2d4["shape"][1]
    assert mesh2d4["compile_call_reduction"] >= 5.0
    assert mesh2d4["speedup"] > 1.0


@pytest.mark.skipif(not RECOVERY_ARTIFACT.exists(),
                    reason="BENCH_recovery.json not generated")
def test_bench_recovery_artifact_well_formed():
    payload = json.loads(RECOVERY_ARTIFACT.read_text())
    assert payload["schema"] == "repro-wsn/bench-recovery/v1"
    assert payload["batched_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "batched"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["simulations_per_second"] > 0, label
    # the frontier rows must cover every strategy of the sweep
    assert len(payload["frontier"]) == len(payload["strategies"])
    for row in payload["frontier"]:
        assert 0.0 <= row["mean_reach"] <= 1.0
        assert row["mean_energy_j"] > 0
    # the ISSUE's acceptance floors for the committed artefact: the
    # 2D-4 16x16 / p=0.2 reference case must contain a recovery policy
    # that meets blind-r2's reachability at >= 25% lower mean energy
    assert payload["topology"] == "2D-4"
    assert payload["shape"] == [16, 16]
    assert payload["loss_rate"] == 0.2
    assert payload["trials"] >= 32
    acc = payload["acceptance"]
    assert acc["meets_bar"] is True
    assert acc["recovery"]["mean_reach"] >= acc["blind_r2"]["mean_reach"]
    assert acc["energy_saving_vs_blind_r2"] >= 0.25


@pytest.mark.skipif(not SCALING_ARTIFACT.exists(),
                    reason="BENCH_scaling.json not generated")
def test_bench_scaling_artifact_well_formed():
    payload = json.loads(SCALING_ARTIFACT.read_text())
    assert payload["schema"] == "repro-wsn/bench-scaling/v1"
    assert payload["dense_gate_respected"] is True
    assert payload["adjacency_equal_everywhere"] is True
    assert payload["workers_effective"] >= 1
    assert len(payload["points"]) == len(payload["sizes"])
    for p in payload["points"]:
        assert p["stencil_build_s"] > 0
        assert p["peak_rss_mb"] > 0
        if p["loop_build_s"] is not None:
            assert p["adjacency_equal"] is True
    # the ISSUE's acceptance floors for the committed artefact
    assert payload["topology"] == "2D-4"
    assert payload["largest_common_nodes"] >= 500_000
    assert payload["adjacency_speedup_at_largest_common"] >= 5.0
    big = max(payload["points"], key=lambda p: p["nodes"])
    assert big["nodes"] >= 500_000
    assert big["compile_s"] is not None
    assert big["simulate_s"] is not None
    assert big["reachability"] == 1.0
