"""The committed benchmark artefacts must stay well-formed.

``benchmarks/perf_sweep.py`` / ``perf_robustness.py`` /
``perf_scaling.py`` / ``perf_recovery.py`` / ``perf_symmetry.py`` /
``perf_kernel.py`` / ``perf_service.py`` / ``perf_faults.py``
regenerate the artefacts; these tier-1 checks only
validate their structure (cheap, no timing), so a hand-edited or
truncated file is caught before it misleads anyone reading the
numbers.

Every validator is keyed by the artefact's declared ``schema`` string
in :data:`VALIDATORS`; ``test_every_bench_artifact_has_validator``
globs ``BENCH_*.json`` so a future artefact committed without a
matching validator (or with a typo'd schema) fails tier 1 instead of
silently riding along unchecked.
"""

import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
SWEEP_ARTIFACT = _ROOT / "BENCH_sweep.json"
ROBUSTNESS_ARTIFACT = _ROOT / "BENCH_robustness.json"
SCALING_ARTIFACT = _ROOT / "BENCH_scaling.json"
SYMMETRY_ARTIFACT = _ROOT / "BENCH_symmetry.json"
RECOVERY_ARTIFACT = _ROOT / "BENCH_recovery.json"
KERNEL_ARTIFACT = _ROOT / "BENCH_kernel.json"
SERVICE_ARTIFACT = _ROOT / "BENCH_service.json"
FAULTS_ARTIFACT = _ROOT / "BENCH_faults.json"


def _validate_sweep(payload):
    assert payload["parallel_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "cold", "warm", "parallel"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["sources_per_second"] > 0, label
    assert payload["sources"] == payload["shape"][0] * payload["shape"][1]
    assert isinstance(payload["workers"], int) and payload["workers"] >= 1
    # v2: warm hits are served from the artifact store's persisted
    # counts (no replay), so a warm sweep must beat even the cache-less
    # serial sweep — the v1 artefacts had warm *slower* than serial
    # (0.87s vs 0.65s) because every disk hit replayed its schedule.
    assert payload["warm_speedup_vs_serial"] > 1.0
    assert payload["warm_speedup_vs_cold"] > 1.0


def _validate_service(payload):
    # fidelity gates: asserted by the benchmark before writing, checked
    # again here so a hand-edited artefact cannot claim them
    assert payload["metrics_equal"] is True
    assert payload["replay_verified"] is True
    assert set(payload["entries"]) == {"cold", "warm"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["queries_per_second"] > 0, label
        assert entry["queries"] == payload["sources"]
    assert payload["sources"] == payload["shape"][0] * payload["shape"][1]
    # the ISSUE's acceptance floors for the committed artefact: warm
    # store throughput >= 10x cold on the 2D-4 32x16 fleet shape, and
    # >= 64 same-class concurrent queries coalesced into one compile
    assert payload["topology"] == "2D-4"
    assert payload["shape"] == [32, 16]
    assert payload["warm_speedup_vs_cold"] >= 10.0
    co = payload["coalescing"]
    assert co["queries"] >= 64
    assert co["compile_calls"] == 1
    assert co["coalesced"] == co["queries"] - 1
    warm = payload["warm_summary"]
    assert warm["entries"] == payload["sources"]
    assert warm["compiles"] <= warm["classes"]


def _validate_robustness(payload):
    assert payload["batched_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "batched", "parallel"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["simulations_per_second"] > 0, label
    assert payload["simulations"] == \
        len(payload["loss_rates"]) * payload["trials"]
    # the ISSUE's acceptance floor for the committed artefact
    assert len(payload["loss_rates"]) >= 8
    assert payload["trials"] >= 32
    assert payload["batched_speedup_vs_serial"] >= 3.0


def _validate_symmetry(payload):
    # the hard equality gate: symmetry sweeps reproduced the direct
    # sweeps' metrics exactly before the artefact was written
    assert payload["metrics_equal"] is True
    assert payload["cpu_count"] is None or payload["cpu_count"] >= 1
    assert payload["cpus_available"] >= 1
    labels = set()
    for entry in payload["entries"]:
        labels.add(entry["topology"])
        assert entry["metrics_equal"] is True
        assert entry["classes"] >= 1
        assert entry["classes"] <= entry["sources"]
        for mode in ("no_symmetry", "symmetry"):
            assert entry[mode]["seconds"] > 0
            assert entry[mode]["compile_calls"] >= 0
        assert entry["no_symmetry"]["compile_calls"] == entry["sources"]
        assert entry["symmetry"]["compile_calls"] <= entry["classes"]
        assert entry["speedup"] > 0
    # the ISSUE's acceptance floors for the committed artefact: a
    # full-grid 2D-4 sweep with >= 5x fewer compile calls and a
    # measured wall-clock speedup over the direct cached-sweep baseline
    assert "2D-4" in labels
    mesh2d4 = next(e for e in payload["entries"]
                   if e["topology"] == "2D-4")
    assert mesh2d4["sources"] == mesh2d4["shape"][0] * mesh2d4["shape"][1]
    assert mesh2d4["compile_call_reduction"] >= 5.0
    assert mesh2d4["speedup"] > 1.0


def _validate_recovery(payload):
    assert payload["batched_matches_serial"] is True
    assert set(payload["entries"]) == {"serial", "batched"}
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["simulations_per_second"] > 0, label
    # the frontier rows must cover every strategy of the sweep
    assert len(payload["frontier"]) == len(payload["strategies"])
    for row in payload["frontier"]:
        assert 0.0 <= row["mean_reach"] <= 1.0
        assert row["mean_energy_j"] > 0
    # the ISSUE's acceptance floors for the committed artefact: the
    # 2D-4 16x16 / p=0.2 reference case must contain a recovery policy
    # that meets blind-r2's reachability at >= 25% lower mean energy
    assert payload["topology"] == "2D-4"
    assert payload["shape"] == [16, 16]
    assert payload["loss_rate"] == 0.2
    assert payload["trials"] >= 32
    acc = payload["acceptance"]
    assert acc["meets_bar"] is True
    assert acc["recovery"]["mean_reach"] >= acc["blind_r2"]["mean_reach"]
    assert acc["energy_saving_vs_blind_r2"] >= 0.25


def _validate_scaling(payload):
    assert payload["dense_gate_respected"] is True
    assert payload["adjacency_equal_everywhere"] is True
    assert payload["workers_effective"] >= 1
    assert len(payload["points"]) == len(payload["sizes"])
    for p in payload["points"]:
        assert p["stencil_build_s"] > 0
        assert p["peak_rss_mb"] > 0
        if p["loop_build_s"] is not None:
            assert p["adjacency_equal"] is True
    # the ISSUE's acceptance floors for the committed artefact
    assert payload["topology"] == "2D-4"
    assert payload["largest_common_nodes"] >= 500_000
    assert payload["adjacency_speedup_at_largest_common"] >= 5.0
    big = max(payload["points"], key=lambda p: p["nodes"])
    assert big["nodes"] >= 500_000
    assert big["compile_s"] is not None
    assert big["simulate_s"] is not None
    assert big["reachability"] == 1.0


def _validate_kernel(payload):
    # the hard equality gates: every tier and every shard count
    # reproduced the batch engine's results exactly before the
    # artefact was written
    assert payload["engines_equal"] is True
    assert payload["shard_invariant"] is True
    if not payload["native_available"]:
        assert payload["native_reason"]
    sweep = payload["sweep"]
    assert {"serial", "batch", "packed", "sharded"} <= set(sweep["entries"])
    for label, entry in sweep["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["simulations_per_second"] > 0, label
    assert sweep["simulations"] == \
        len(sweep["loss_rates"]) * sweep["trials"]
    # comparable to BENCH_robustness: same reference workload floors
    assert len(sweep["loss_rates"]) >= 8
    assert sweep["trials"] >= 32
    for section in ("large_grid", "recovery_grid"):
        grid = payload[section]
        assert grid["nodes"] == grid["shape"][0] * grid["shape"][1]
        assert {"batch", "packed"} <= set(grid["entries"])
        for label, entry in grid["entries"].items():
            assert entry["seconds"] > 0, label
            assert entry["simulations_per_second"] > 0, label
    grid = payload["large_grid"]
    assert grid["nodes"] >= 4096
    assert grid["trials"] >= 256
    # the PR-6 acceptance floor: >= 3x over the dense batch engine
    # on one CPU from the packed word resolve alone (no sharding)
    assert grid["recovery"] is None
    assert grid["packed_speedup_vs_batch"] >= 3.0
    if payload["native_available"]:
        assert grid["compiled_speedup_vs_batch"] >= 3.0
    # v2: the recovery cell carries its own enforced floors now that
    # the recovery update is tiered (packed bitset / C inner loops)
    rec = payload["recovery_grid"]
    assert rec["recovery"] is not None
    floors = rec["speedup_floors"]
    assert floors["packed"] >= 2.5
    assert floors["compiled"] >= 5.0
    assert rec["packed_speedup_vs_batch"] >= floors["packed"]
    if payload["native_available"]:
        assert rec["compiled_speedup_vs_batch"] >= floors["compiled"]
    # v3: the compiled tier's intra-process thread pool.  The artefact
    # records the effective thread/core configuration, and the
    # multi-thread contract is conditional on it: a multi-core host
    # must carry compiled-mt entries (threads=1 baseline + default
    # width) and meet the floors once it has min_cores to scale
    # across; a single-core host must carry *no* compiled-mt entry —
    # absence is the honest "not measurable here", never a silent pass.
    assert isinstance(payload["threads"], int) and payload["threads"] >= 1
    assert payload["cores_available"] >= 1
    mt_floors = payload["mt_speedup_floors"]
    assert mt_floors["min_cores"] >= 2
    multi = payload["native_available"] and payload["threads"] >= 2
    for section in ("large_grid", "recovery_grid"):
        grid = payload[section]
        if multi:
            assert grid["entries"]["compiled"]["threads"] == 1
            assert grid["entries"]["compiled-mt"]["threads"] \
                == payload["threads"]
            assert grid["mt_speedup_vs_compiled"] > 0
            if payload["cores_available"] >= mt_floors["min_cores"]:
                assert grid["mt_speedup_vs_compiled"] \
                    >= mt_floors[section]
        else:
            assert "compiled-mt" not in grid["entries"]
            assert "mt_speedup_vs_compiled" not in grid


def _validate_faults(payload):
    # The resilience floors: asserted by the benchmark before writing,
    # checked again here so a hand-edited artefact cannot claim them.
    assert payload["availability"] >= payload["availability_floor"]
    assert payload["availability_floor"] >= 0.99
    assert payload["answers_equal"] is True
    assert payload["shard_retry"]["identical"] is True
    assert payload["demotion"]["answers_equal"] is True
    # The chaos must actually have happened — an artefact showing 100%
    # availability with zero fired faults measured nothing.
    assert payload["faults_fired_total"] > 0
    fired = {seam: s["fired"] for seam, s in payload["faults"].items()}
    assert fired.get("server.drop_connection", 0) >= 1
    assert fired.get("shard.worker_kill", 0) >= 1
    assert fired.get("store.torn_write", 0) >= 1
    assert payload["store_errors"] >= 1
    # Deadline sheds must cost zero compiles.
    assert payload["deadline"]["shed"] >= 1
    assert payload["deadline"]["compiles_burned"] == 0
    for label, entry in payload["entries"].items():
        assert entry["seconds"] > 0, label
        assert entry["queries_per_second"] > 0, label
        assert entry["queries"] == payload["sources"]
    assert payload["sources"] == payload["shape"][0] * payload["shape"][1]
    # The client's retry loop is what bought the availability: under
    # the canonical drop/garble schedule it must have retried.
    assert payload["client"]["retries"] >= 1
    assert payload["client"]["reconnects"] >= 2


#: Declared-schema string -> structural validator.  The glob guard
#: below keeps this registry complete.
VALIDATORS = {
    "repro-wsn/bench-sweep/v2": _validate_sweep,
    "repro-wsn/bench-robustness/v1": _validate_robustness,
    "repro-wsn/bench-symmetry/v1": _validate_symmetry,
    "repro-wsn/bench-recovery/v1": _validate_recovery,
    "repro-wsn/bench-scaling/v1": _validate_scaling,
    "repro-wsn/bench-kernel/v3": _validate_kernel,
    "repro-wsn/bench-service/v1": _validate_service,
    "repro-wsn/bench-faults/v1": _validate_faults,
}

_ARTIFACTS = [
    (SWEEP_ARTIFACT, "repro-wsn/bench-sweep/v2"),
    (ROBUSTNESS_ARTIFACT, "repro-wsn/bench-robustness/v1"),
    (SYMMETRY_ARTIFACT, "repro-wsn/bench-symmetry/v1"),
    (RECOVERY_ARTIFACT, "repro-wsn/bench-recovery/v1"),
    (SCALING_ARTIFACT, "repro-wsn/bench-scaling/v1"),
    (KERNEL_ARTIFACT, "repro-wsn/bench-kernel/v3"),
    (SERVICE_ARTIFACT, "repro-wsn/bench-service/v1"),
    (FAULTS_ARTIFACT, "repro-wsn/bench-faults/v1"),
]


@pytest.mark.parametrize("path,schema", _ARTIFACTS,
                         ids=[p.name for p, _ in _ARTIFACTS])
def test_bench_artifact_well_formed(path, schema):
    if not path.exists():
        pytest.skip(f"{path.name} not generated")
    payload = json.loads(path.read_text())
    assert payload["schema"] == schema
    VALIDATORS[schema](payload)


def test_every_bench_artifact_has_validator():
    """Any committed BENCH_*.json must declare a schema this suite
    knows how to validate — a new artefact cannot ride along
    unchecked, and a schema bump must update the validator."""
    found = sorted(_ROOT.glob("BENCH_*.json"))
    assert found, "no benchmark artefacts committed?"
    known_paths = {p for p, _ in _ARTIFACTS}
    for path in found:
        payload = json.loads(path.read_text())
        schema = payload.get("schema")
        assert schema in VALIDATORS, (
            f"{path.name} declares unknown schema {schema!r}")
        assert path in known_paths, (
            f"{path.name} is not wired into the per-artifact test")
        VALIDATORS[schema](payload)
