"""Unit tests of the compiled-schedule cache (memory + disk tiers)."""

import json

import pytest

from repro.core import ScheduleCache, protocol_for, schedule_cache_key
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(8, 6)


@pytest.fixture
def proto():
    return protocol_for("2D-4")


class TestKey:
    def test_deterministic(self, mesh):
        a = schedule_cache_key(mesh, "2D-4", 7)
        b = schedule_cache_key(Mesh2D4(8, 6), "2D-4", 7)
        assert a == b and len(a) == 64

    def test_varies_by_everything(self, mesh):
        base = schedule_cache_key(mesh, "2D-4", 7)
        assert base != schedule_cache_key(mesh, "2D-4", 8)
        assert base != schedule_cache_key(mesh, "flood", 7)
        assert base != schedule_cache_key(Mesh2D4(6, 8), "2D-4", 7)
        assert base != schedule_cache_key(mesh, "2D-4", 7, completion=False)
        assert base != schedule_cache_key(mesh, "2D-4", 7, repair=False)


class TestMemoryTier:
    def test_hit_returns_same_object(self, mesh, proto):
        cache = ScheduleCache()
        a = proto.compile(mesh, (3, 3), cache=cache)
        b = proto.compile(mesh, (3, 3), cache=cache)
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)

    def test_options_are_separate_entries(self, mesh, proto):
        cache = ScheduleCache()
        proto.compile(mesh, (3, 3), cache=cache)
        proto.compile(mesh, (3, 3), cache=cache,
                      completion=False, repair=False)
        assert cache.misses == 2 and len(cache) == 2


class TestDiskTier:
    def test_round_trip_reproduces_trace(self, mesh, proto, tmp_path):
        cache = ScheduleCache(tmp_path)
        a = proto.compile(mesh, (1, 1), cache=cache)
        cache.clear_memory()
        b = proto.compile(mesh, (1, 1), cache=cache)
        assert cache.hits == 1
        assert b.trace.tx_events == a.trace.tx_events
        assert b.trace.rx_events == a.trace.rx_events
        assert b.trace.collision_events == a.trace.collision_events
        assert (b.trace.first_rx == a.trace.first_rx).all()
        assert b.completions == a.completions
        assert b.repairs == a.repairs
        assert b.rounds == a.rounds
        assert b.schedule._slots == a.schedule._slots

    def test_corrupt_entry_is_a_miss(self, mesh, proto, tmp_path):
        cache = ScheduleCache(tmp_path)
        proto.compile(mesh, (2, 2), cache=cache)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{ not json")
        cache.clear_memory()
        proto.compile(mesh, (2, 2), cache=cache)
        assert cache.misses == 2

    def test_stale_version_ignored(self, mesh, proto, tmp_path):
        cache = ScheduleCache(tmp_path)
        proto.compile(mesh, (2, 2), cache=cache)
        entry = next(tmp_path.glob("*.json"))
        payload = json.loads(entry.read_text())
        payload["version"] = 999
        entry.write_text(json.dumps(payload))
        cache.clear_memory()
        proto.compile(mesh, (2, 2), cache=cache)
        assert cache.misses == 2

    def test_fingerprint_mismatch_ignored(self, proto, tmp_path):
        cache = ScheduleCache(tmp_path)
        proto.compile(Mesh2D4(8, 6), (2, 2), cache=cache)
        entry = next(tmp_path.glob("*.json"))
        payload = json.loads(entry.read_text())
        payload["fingerprint"] = "0" * 64
        entry.write_text(json.dumps(payload))
        cache.clear_memory()
        proto.compile(Mesh2D4(8, 6), (2, 2), cache=cache)
        assert cache.misses == 2
