"""Differential suite for the symmetry-reduced compilation path.

Three layers, matching the exactness argument of
:mod:`repro.core.symmetry`:

1. the batched multi-source engine is trace-for-trace identical to the
   serial engine (including forced transmissions and droppable forced) —
   hypothesis-randomised across all four paper topologies;
2. every symmetry-derived sweep member equals direct
   ``compile_broadcast`` output event for event, exhaustively over all
   source positions of small grids (odd shapes included: 1xN, Mx1, 2x2,
   non-square 3D);
3. ``sweep_sources(symmetry=True)`` equals ``symmetry=False`` as whole
   :class:`~repro.analysis.sweep.SweepResult` objects, serial and
   parallel.

Plus the exact-translation guards (:mod:`repro.sim.translate`), the
generic-vs-vectorised ``shift_index_map`` agreement, and the class-profile
cache tier round-trip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import sweep_sources
from repro.core import (CompilationError, ScheduleCache, compile_broadcast,
                        protocol_for)
from repro.core.base import RelayPlan
from repro.core.compiler import compile_call_count
from repro.core.symmetry import (ClassMemberResult, compile_class,
                                 group_sources, sweep_compile)
from repro.sim import (TranslationError, compute_metrics, run_reactive,
                       run_reactive_multi, translate_compiled)
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6
from repro.topology.base import Topology


def assert_traces_equal(a, b):
    assert sorted(a.tx_events) == sorted(b.tx_events)
    assert sorted(a.rx_events) == sorted(b.rx_events)
    assert sorted(a.collision_events) == sorted(b.collision_events)
    assert sorted(a.dropped_forced) == sorted(b.dropped_forced)
    assert (a.first_rx == b.first_rx).all()
    assert a.source == b.source


def assert_compiled_equal(a, b):
    assert_traces_equal(a.trace, b.trace)
    assert sorted(a.completions) == sorted(b.completions)
    assert sorted(a.repairs) == sorted(b.repairs)
    assert a.rounds == b.rounds
    assert a.schedule.active_slots() == b.schedule.active_slots()
    for slot in a.schedule.active_slots():
        assert a.schedule.transmitters(slot) == b.schedule.transmitters(slot)


TOPOLOGIES = [Mesh2D4(5, 4), Mesh2D8(5, 4), Mesh2D3(6, 4), Mesh3D6(3, 3, 2)]


# ---------------------------------------------------------------------------
# Layer 1: batched multi-source engine == serial engine
# ---------------------------------------------------------------------------

class TestMultiEngineDifferential:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_multi_matches_serial(self, data):
        topo = data.draw(st.sampled_from(TOPOLOGIES))
        n = topo.num_nodes
        trials = data.draw(st.integers(1, 4))
        sources, masks, delays, repeats, forceds = [], [], [], [], []
        for _ in range(trials):
            sources.append(data.draw(st.integers(0, n - 1)))
            masks.append(np.array(
                data.draw(st.lists(st.booleans(), min_size=n, max_size=n))))
            delays.append(np.array(
                data.draw(st.lists(st.integers(0, 2), min_size=n,
                                   max_size=n)), dtype=np.int64))
            repeats.append({
                data.draw(st.integers(0, n - 1)): (1, 3)
                for _ in range(data.draw(st.integers(0, 2)))})
            forceds.append({
                data.draw(st.integers(1, 10)):
                {data.draw(st.integers(0, n - 1))}
                for _ in range(data.draw(st.integers(0, 3)))})
        traces = run_reactive_multi(
            topo, np.asarray(sources), np.stack(masks),
            extra_delays=np.stack(delays),
            repeat_offsets_list=repeats, forced_tx_list=forceds)
        for b in range(trials):
            serial = run_reactive(
                topo, sources[b], masks[b], extra_delay=delays[b],
                repeat_offsets=repeats[b], forced_tx=forceds[b])
            assert_traces_equal(traces[b], serial)

    def test_summary_mode_matches_trace_mode(self):
        topo = Mesh2D4(6, 5)
        proto = protocol_for(topo)
        srcs = [topo.index((2, 2)), topo.index((5, 4)), topo.index((1, 1))]
        plans = [proto.relay_plan(topo, topo.coord(s)) for s in srcs]
        kw = dict(
            extra_delays=np.stack([p.extra_delay for p in plans]),
            repeat_offsets_list=[p.repeat_offsets for p in plans])
        masks = np.stack([p.relay_mask for p in plans])
        traces = run_reactive_multi(topo, np.asarray(srcs), masks, **kw)
        summary = run_reactive_multi(topo, np.asarray(srcs), masks,
                                     summary=True, **kw)
        for b, tr in enumerate(traces):
            assert (summary.first_rx[b] == tr.first_rx).all()
            assert summary.tx_count[b].sum() == tr.num_tx
            assert summary.rx_count[b].sum() == tr.num_rx
            assert summary.collisions[b] == tr.num_collisions


# ---------------------------------------------------------------------------
# Layer 2: symmetry-derived members == direct compilation, exhaustively
# ---------------------------------------------------------------------------

SMALL_GRIDS = [
    Mesh2D4(6, 5), Mesh2D4(1, 7), Mesh2D4(7, 1), Mesh2D4(2, 2),
    Mesh2D8(6, 5), Mesh2D8(2, 2),
    Mesh2D3(6, 5), Mesh2D3(2, 2),
    Mesh3D6(3, 3, 2), Mesh3D6(4, 2, 3),
]


class TestSymmetryExactness:
    @pytest.mark.parametrize(
        "topo", SMALL_GRIDS, ids=lambda t: f"{t.name}-{t.shape}")
    def test_all_sources_equal_direct_compile(self, topo):
        proto = protocol_for(topo)
        sources = [topo.coord(i) for i in range(topo.num_nodes)]
        results = sweep_compile(topo, proto, sources)
        assert results is not None and len(results) == len(sources)
        for src, res in zip(sources, results):
            direct = proto.compile(topo, src)
            assert res.source_index == topo.index(src)
            assert res.metrics(topo) == compute_metrics(direct.trace, topo)
            if res.compiled is not None:
                assert_compiled_equal(res.compiled, direct)

    def test_class_keys_group_only_identical_problems(self):
        # Grouping sanity: members of one class share residue and clamped
        # border distances, and the key is None off-topology.
        topo = Mesh2D4(6, 5)
        proto = protocol_for(topo)
        key_a = proto.source_class_key(topo, (3, 3))
        key_b = proto.source_class_key(topo, (3, 3))
        assert key_a == key_b and key_a is not None
        assert proto.source_class_key(Mesh2D8(6, 5), (3, 3)) is None
        assert proto.source_class_key(topo, (99, 99)) is None

    def test_ungroupable_protocol_returns_none(self):
        from repro.core.baselines.flooding import FloodingProtocol
        topo = Mesh2D4(4, 4)
        proto = FloodingProtocol()
        sources = [topo.coord(i) for i in range(topo.num_nodes)]
        assert sweep_compile(topo, proto, sources) is None


# ---------------------------------------------------------------------------
# Layer 3: whole sweeps, both modes, serial and parallel
# ---------------------------------------------------------------------------

class TestSweepEquivalence:
    @pytest.mark.parametrize("topo", [Mesh2D4(6, 5), Mesh2D8(5, 4),
                                      Mesh2D3(6, 4), Mesh3D6(3, 3, 2)],
                             ids=lambda t: t.name)
    def test_symmetry_sweep_equals_direct(self, topo):
        on = sweep_sources(topo, symmetry=True)
        off = sweep_sources(topo, symmetry=False)
        assert on.metrics == off.metrics
        assert on.topology == off.topology

    def test_symmetry_sweep_parallel_identical(self):
        topo = Mesh2D4(6, 5)
        serial = sweep_sources(topo, symmetry=True)
        par = sweep_sources(topo, symmetry=True, workers=2)
        assert par.metrics == serial.metrics

    def test_symmetry_reduces_compile_calls(self):
        topo = Mesh2D4(9, 7)
        before = compile_call_count()
        sweep_sources(topo, symmetry=True)
        sym_calls = compile_call_count() - before
        before = compile_call_count()
        sweep_sources(topo, symmetry=False)
        direct_calls = compile_call_count() - before
        assert direct_calls == topo.num_nodes
        assert sym_calls < direct_calls / 2

    def test_progress_monotonic_and_complete(self):
        topo = Mesh2D4(6, 4)
        calls = []
        sweep_sources(topo, symmetry=True,
                      progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (topo.num_nodes, topo.num_nodes)
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)

    def test_warm_class_profiles_skip_all_compiles(self, tmp_path):
        topo = Mesh2D4(6, 5)
        cache = ScheduleCache(tmp_path / "sched")
        first = sweep_sources(topo, symmetry=True, cache=cache)
        before = compile_call_count()
        warm_cache = ScheduleCache(tmp_path / "sched")
        second = sweep_sources(topo, symmetry=True, cache=warm_cache)
        assert second.metrics == first.metrics
        # Profiles predict zero-fix for every 2D-4 class, so the warm
        # sweep derives everything with the batched engine: the only
        # compile_broadcast calls allowed are all-reached fallbacks
        # (none on this grid).
        assert compile_call_count() - before == 0


# ---------------------------------------------------------------------------
# Exact translation: guards and applicability
# ---------------------------------------------------------------------------

class TestTranslateCompiled:
    def _sub_spanning(self, topo, src_coord):
        """A broadcast that informs only the source's neighbourhood."""
        plan = RelayPlan.empty(topo.num_nodes)
        return compile_broadcast(
            topo, topo.index(src_coord), plan,
            completion=False, repair=False)

    def test_exact_on_sub_spanning_broadcast(self):
        topo = Mesh2D4(8, 8)
        compiled = self._sub_spanning(topo, (4, 4))
        assert not compiled.trace.all_reached
        moved = translate_compiled(topo, compiled, (2, 1))
        # Re-simulating the translated plan from the translated source
        # must reproduce the translated trace event for event.
        redone = compile_broadcast(
            topo, moved.source, moved.plan,
            completion=False, repair=False)
        assert_traces_equal(moved.trace, redone.trace)
        assert moved.source == topo.index((6, 5))

    def test_zero_delta_is_identity(self):
        topo = Mesh2D8(5, 4)
        compiled = protocol_for(topo).compile(topo, (3, 2))
        same = translate_compiled(topo, compiled, (0, 0))
        assert_compiled_equal(same, compiled)

    def test_raises_on_spanning_broadcast(self):
        topo = Mesh2D4(6, 5)
        compiled = protocol_for(topo).compile(topo, (3, 3))
        assert compiled.trace.all_reached
        with pytest.raises(TranslationError):
            translate_compiled(topo, compiled, (1, 0))

    def test_raises_when_footprint_leaves_grid(self):
        topo = Mesh2D4(8, 8)
        compiled = self._sub_spanning(topo, (4, 4))
        with pytest.raises(TranslationError):
            translate_compiled(topo, compiled, (5, 0))


class TestShiftIndexMap:
    @pytest.mark.parametrize(
        "topo,delta", [(Mesh2D4(5, 4), (1, -2)), (Mesh2D8(4, 5), (-1, 0)),
                       (Mesh2D3(5, 4), (2, 1)), (Mesh3D6(3, 3, 2),
                                                 (1, -1, 1))],
        ids=lambda v: str(v))
    def test_vectorized_matches_generic(self, topo, delta):
        mapped, valid = topo.shift_index_map(delta)
        ref_mapped, ref_valid = Topology.shift_index_map(topo, delta)
        assert (mapped == ref_mapped).all()
        assert (valid == ref_valid).all()


class TestClassProfileCache:
    def test_round_trip_memory_and_disk(self, tmp_path):
        topo = Mesh2D4(4, 4)
        cache = ScheduleCache(tmp_path / "sched")
        key = ("2D-4", 1, 0, 2, 1, 1)
        profile = {"zero_fix": True, "rounds": 1}
        assert cache.class_profile(topo, "2D-4", key) is None
        cache.store_class_profile(topo, "2D-4", key, profile)
        assert cache.class_profile(topo, "2D-4", key) == profile
        cache.clear_memory()
        assert cache.class_profile(topo, "2D-4", key) == profile
        # A memory-only cache forgets on clear.
        mem = ScheduleCache()
        mem.store_class_profile(topo, "2D-4", key, profile)
        mem.clear_memory()
        assert mem.class_profile(topo, "2D-4", key) is None

    def test_distinct_keys_distinct_entries(self, tmp_path):
        topo = Mesh2D4(4, 4)
        cache = ScheduleCache(tmp_path / "sched")
        cache.store_class_profile(topo, "2D-4", ("a",), {"zero_fix": True})
        assert cache.class_profile(topo, "2D-4", ("b",)) is None
        assert cache.class_profile(topo, "2D-8", ("a",)) is None
