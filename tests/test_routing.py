"""Tests for the unicast routing substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (bfs_route, brick_route, diagonal_route,
                           evaluate_flows, hotspot_flows, random_flows,
                           route, validate_route, valiant_router,
                           xy_route, xyz_route)
from repro.topology import (Mesh2D3, Mesh2D4, Mesh2D6, Mesh2D8, Mesh3D6)


def coords_2d(m, n):
    return st.tuples(st.integers(1, m), st.integers(1, n))


class TestStructuredRoutes:
    def test_xy_route_shape(self):
        mesh = Mesh2D4(10, 8)
        path = xy_route(mesh, (2, 3), (7, 6))
        validate_route(mesh, path)
        assert path[0] == (2, 3) and path[-1] == (7, 6)
        assert len(path) - 1 == 5 + 3  # Manhattan-optimal

    def test_diagonal_route_is_chebyshev_optimal(self):
        mesh = Mesh2D8(10, 10)
        path = diagonal_route(mesh, (1, 1), (7, 4))
        validate_route(mesh, path)
        assert len(path) - 1 == 6  # max(6, 3)

    def test_xyz_route(self):
        mesh = Mesh3D6(5, 5, 5)
        path = xyz_route(mesh, (1, 1, 1), (4, 3, 5))
        validate_route(mesh, path)
        assert len(path) - 1 == 3 + 2 + 4

    @given(coords_2d(9, 7), coords_2d(9, 7))
    @settings(max_examples=30, deadline=None)
    def test_brick_route_valid(self, src, dst):
        mesh = Mesh2D3(9, 7)
        path = brick_route(mesh, src, dst)
        validate_route(mesh, path)
        assert path[0] == src and path[-1] == dst

    @given(coords_2d(9, 7), coords_2d(9, 7))
    @settings(max_examples=20, deadline=None)
    def test_brick_route_near_optimal(self, src, dst):
        """The structured brick route may sidestep for parity, but stays
        within a constant of the true shortest path."""
        mesh = Mesh2D3(9, 7)
        structured = len(brick_route(mesh, src, dst)) - 1
        optimal = len(bfs_route(mesh, src, dst)) - 1
        assert structured >= optimal
        assert structured <= optimal + 4

    @given(coords_2d(8, 6), coords_2d(8, 6))
    @settings(max_examples=20, deadline=None)
    def test_xy_route_matches_bfs_length(self, src, dst):
        mesh = Mesh2D4(8, 6)
        assert len(xy_route(mesh, src, dst)) == \
            len(bfs_route(mesh, src, dst))

    def test_route_dispatch(self):
        for mesh in (Mesh2D4(6, 6), Mesh2D8(6, 6), Mesh2D3(6, 6),
                     Mesh3D6(4, 4, 4), Mesh2D6(6, 6)):
            src = mesh.coord(0)
            dst = mesh.coord(mesh.num_nodes - 1)
            path = route(mesh, src, dst)
            validate_route(mesh, path)
            assert path[0] == src and path[-1] == dst

    def test_route_same_endpoints(self):
        mesh = Mesh2D4(4, 4)
        assert route(mesh, (2, 2), (2, 2)) == [(2, 2)]

    def test_bfs_unreachable(self):
        mesh = Mesh2D3(1, 4)  # disconnected brick column
        with pytest.raises(ValueError):
            bfs_route(mesh, (1, 1), (1, 4))

    def test_endpoint_validation(self):
        mesh = Mesh2D4(4, 4)
        with pytest.raises(ValueError):
            route(mesh, (0, 0), (2, 2))

    def test_validate_route_rejects_jump(self):
        mesh = Mesh2D4(4, 4)
        with pytest.raises(AssertionError):
            validate_route(mesh, [(1, 1), (3, 3)])


class TestFlows:
    def test_single_flow_energy(self):
        mesh = Mesh2D4(6, 1, spacing=0.5)
        report = evaluate_flows(mesh, [((1, 1), (4, 1))])
        from repro.radio import PAPER_RADIO_MODEL as M
        expected = 3 * (M.tx_energy(512, 0.5) + M.rx_energy(512))
        assert report.energy_j == pytest.approx(expected)
        assert report.total_hops == 3
        assert report.max_hops == 3

    def test_load_counts_forwarders(self):
        mesh = Mesh2D4(6, 1)
        report = evaluate_flows(mesh, [((1, 1), (6, 1))])
        # nodes 1..5 each transmit once, node 6 not at all
        assert report.tx_load[mesh.index((1, 1))] == 1
        assert report.tx_load[mesh.index((5, 1))] == 1
        assert report.tx_load[mesh.index((6, 1))] == 0

    def test_random_flows_deterministic(self):
        mesh = Mesh2D4(8, 8)
        assert random_flows(mesh, 10, seed=3) == \
            random_flows(mesh, 10, seed=3)

    def test_hotspot_flows_target_sink(self):
        mesh = Mesh2D4(8, 8)
        flows = hotspot_flows(mesh, 12, (4, 4), seed=1)
        assert all(dst == (4, 4) for _, dst in flows)
        assert all(src != (4, 4) for src, _ in flows)

    def test_valiant_balances_hotspot_load(self):
        """Reference [9]'s point: randomised waypoints flatten the load
        concentration near a sink, at ~2x the hop cost."""
        mesh = Mesh2D4(12, 12)
        flows = hotspot_flows(mesh, 60, (6, 6), seed=2)
        direct = evaluate_flows(mesh, flows)
        balanced = evaluate_flows(mesh, flows, router=valiant_router(3))
        # waypointing spreads transmissions over more distinct nodes
        assert (balanced.tx_load > 0).sum() > (direct.tx_load > 0).sum()
        assert balanced.total_hops > direct.total_hops

    def test_empty_flow_batch(self):
        mesh = Mesh2D4(4, 4)
        report = evaluate_flows(mesh, [])
        assert report.num_flows == 0
        assert report.energy_j == 0.0
        assert report.load_imbalance == 1.0
