"""Bit-packed word-space kernel vs the dense CSR kernel.

The packed tier's value is entirely conditional on being *exactly* the
dense kernel 64x denser — these tests pin the pack/unpack layout, the
popcount accounting, the carry-save collision resolve, the sparse
(trial, node) extraction order, and the sender attribution against the
dense reference, plus the integer-threshold Bernoulli equivalence the
packed/compiled loss draws rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio import bitpack
from repro.radio.impairments import (bernoulli_threshold, counter_slot_keys,
                                     counter_uniforms, trial_seeds)
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6

pytestmark = pytest.mark.skipif(not bitpack.packing_supported(),
                                reason="big-endian host")

MESHES = [(Mesh2D4, (5, 4)), (Mesh2D8, (4, 4)),
          (Mesh2D3, (5, 4)), (Mesh3D6, (3, 3, 3))]


class TestPacking:
    def test_num_words(self):
        assert bitpack.num_words(1) == 1
        assert bitpack.num_words(64) == 1
        assert bitpack.num_words(65) == 2
        assert bitpack.num_words(4096) == 64

    @given(st.integers(0, 2**32), st.integers(1, 150), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, seed, n, b):
        rng = np.random.default_rng(seed)
        mask = rng.random((b, n)) < 0.4
        words = bitpack.pack_bool_matrix(mask)
        assert words.shape == (b, bitpack.num_words(n))
        assert np.array_equal(bitpack.unpack_word_matrix(words, n), mask)
        # popcount over words == row sums of the boolean matrix
        assert np.array_equal(
            bitpack.popcount(words).sum(axis=1),
            mask.sum(axis=1))

    def test_bit_layout(self):
        # Node v must be bit (v & 63) of word (v >> 6) — the layout the
        # C kernel and words_to_pairs hard-code.
        mask = np.zeros((1, 130), dtype=bool)
        mask[0, [0, 63, 64, 129]] = True
        w = bitpack.pack_bool_matrix(mask)[0]
        assert w[0] == (1 | (1 << 63))
        assert w[1] == 1
        assert w[2] == 2

    def test_words_to_pairs_sorted(self):
        rng = np.random.default_rng(0)
        mask = rng.random((4, 100)) < 0.3
        words = bitpack.pack_bool_matrix(mask)
        active = np.array([2, 5, 7, 11], dtype=np.int64)
        tr, nd = bitpack.words_to_pairs(active, words)
        et, en = mask.nonzero()
        assert np.array_equal(tr, active[et])
        assert np.array_equal(nd, en)


class TestPackedResolve:
    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_matches_dense_kernel(self, cls, shape):
        mesh = cls(*shape)
        kernel = mesh.slot_kernel
        packed = kernel.packed()
        n = mesh.num_nodes
        rng = np.random.default_rng(42)
        for trials in (1, 3, 6):
            for _ in range(15):
                pairs = {(int(rng.integers(trials)), int(rng.integers(n)))
                         for _ in range(int(rng.integers(1, n)))}
                arr = np.array(sorted(pairs), dtype=np.int64)
                tr, nd = arr[:, 0].copy(), arr[:, 1].copy()
                heard, received, collided, senders = kernel.resolve_batch(
                    nd, tr, trials)
                active, rx_w, cl_w, txw = packed.resolve_words(nd, tr)
                assert np.array_equal(active, np.unique(tr))
                rt, rn = bitpack.words_to_pairs(active, rx_w)
                drt, drn = received.nonzero()
                assert np.array_equal(rt, drt)
                assert np.array_equal(rn, drn)
                ct, cn = bitpack.words_to_pairs(active, cl_w)
                dct, dcn = collided.nonzero()
                assert np.array_equal(ct, dct)
                assert np.array_equal(cn, dcn)
                sv = packed.attribute_senders(rt, rn, active, txw)
                assert np.array_equal(sv, senders[drt, drn])

    def test_empty_slot(self):
        mesh = Mesh2D4(4, 4)
        packed = mesh.slot_kernel.packed()
        e = np.empty(0, dtype=np.int64)
        active, rx, cl, txw = packed.resolve_words(e, e)
        assert len(active) == 0 and rx.shape[0] == 0
        tr, nd = bitpack.words_to_pairs(active, rx)
        assert len(tr) == 0
        assert len(packed.attribute_senders(tr, nd, active, txw)) == 0


class TestBernoulliThreshold:
    @given(st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_threshold_exact(self, p):
        """u >= p  <=>  (bits >> 11) >= threshold, for u = k * 2^-53."""
        t = bernoulli_threshold(p)
        inv = 2.0 ** -53
        for k in (0, 1, t - 1, t, t + 1, (1 << 53) - 1):
            if 0 <= k < (1 << 53):
                assert (k * inv >= p) == (k >= t), (p, t, k)

    def test_counter_keys_consistent(self):
        """Drawing via slot keys reproduces counter_uniforms exactly."""
        from repro.radio.impairments import _splitmix64
        seeds = trial_seeds(7, 0.3, 5)
        for slot in (1, 2, 9):
            keys = counter_slot_keys(seeds, slot)
            n = 40
            nodes = np.arange(n, dtype=np.uint64)
            bits = _splitmix64(keys[:, None] ^ nodes[None, :])
            u = (bits >> np.uint64(11)).astype(np.float64) * 2.0 ** -53
            assert np.array_equal(u, counter_uniforms(seeds, slot, n))
