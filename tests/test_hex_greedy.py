"""Tests for the hexagonal 2D-6 mesh and the generic greedy-ETR protocol
(extensions beyond the paper; DESIGN.md §4, ablation benchmarks)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ideal_case, protocol_for, validate_broadcast
from repro.core.baselines import GreedyETRProtocol
from repro.sim import compute_metrics
from repro.topology import Mesh2D4, Mesh2D6, Mesh3D6, RandomDiskTopology


class TestHexMesh:
    def test_interior_has_six_neighbors(self):
        mesh = Mesh2D6(7, 7)
        assert len(mesh.neighbors((4, 4))) == 6

    def test_odd_row_diagonals_point_right(self):
        mesh = Mesh2D6(7, 7)
        nbrs = mesh.neighbors((4, 3))  # y=3 odd
        assert (5, 2) in nbrs and (5, 4) in nbrs
        assert (3, 2) not in nbrs

    def test_even_row_diagonals_point_left(self):
        mesh = Mesh2D6(7, 7)
        nbrs = mesh.neighbors((4, 4))  # y=4 even
        assert (3, 3) in nbrs and (3, 5) in nbrs
        assert (5, 3) not in nbrs

    def test_symmetry_and_structure(self):
        Mesh2D6(9, 6).validate()

    def test_all_neighbors_equidistant(self):
        """The offset geometry must make all six neighbours sit exactly
        one spacing away (proper triangular tiling)."""
        mesh = Mesh2D6(9, 9, spacing=0.5)
        for centre in [(4, 4), (5, 5), (4, 5), (5, 4)]:
            for nb in mesh.neighbors(centre):
                assert mesh.link_distance(centre, nb) == \
                    pytest.approx(0.5, rel=1e-9)

    def test_adjacent_nodes_share_two_neighbors(self):
        mesh = Mesh2D6(9, 9)
        a, b = (4, 4), (5, 4)
        common = set(mesh.neighbors(a)) & set(mesh.neighbors(b))
        assert len(common) == 2

    @given(st.integers(2, 10), st.integers(2, 10))
    @settings(max_examples=15, deadline=None)
    def test_connected(self, m, n):
        assert Mesh2D6(m, n).is_connected()

    def test_ideal_model_extension(self):
        mesh = Mesh2D6(32, 16)
        ideal = ideal_case(mesh)
        # 1 + ceil((511 - 6) / 3) = 170
        assert ideal.tx == 170
        assert ideal.rx == 170 * 6


class TestGreedyProtocol:
    def test_reaches_all_on_every_lattice(self, small_meshes):
        proto = GreedyETRProtocol()
        for label, mesh in small_meshes.items():
            src = mesh.coord(mesh.num_nodes // 2)
            result = proto.compile(mesh, src)
            assert result.reached_all, label
            validate_broadcast(mesh, result.schedule,
                               mesh.index(src)).raise_if_failed()

    def test_reaches_all_on_hex(self):
        mesh = Mesh2D6(12, 9)
        result = GreedyETRProtocol().compile(mesh, (6, 5))
        assert result.reached_all

    def test_reaches_connected_part_of_random_graph(self):
        topo = RandomDiskTopology(60, 10, 10, 3.0, seed=4)
        src = topo.coord(int(topo.degrees.argmax()))
        result = GreedyETRProtocol().compile(topo, src)
        # reaches at least the giant component
        assert result.trace.reachability > 0.8

    def test_paper_rules_beat_greedy_on_tx(self):
        """The ablation's point: hand-crafted structure is cheaper than
        pure greedy on the lattices it was designed for."""
        mesh = Mesh2D4(32, 16)
        greedy = GreedyETRProtocol().compile(mesh, (16, 8))
        paper = protocol_for("2D-4").compile(mesh, (16, 8))
        assert paper.trace.num_tx < greedy.trace.num_tx

    def test_greedy_beats_flooding(self):
        from repro.core.baselines import FloodingProtocol
        mesh = Mesh2D4(16, 16)
        greedy = GreedyETRProtocol().compile(mesh, (8, 8))
        flood = FloodingProtocol().compile(mesh, (8, 8))
        assert greedy.trace.num_tx < flood.trace.num_tx

    def test_completion_false_rejected(self):
        mesh = Mesh2D4(4, 4)
        with pytest.raises(ValueError):
            GreedyETRProtocol().compile(mesh, (2, 2), completion=False)

    def test_3d_support(self):
        mesh = Mesh3D6(4, 4, 3)
        result = GreedyETRProtocol().compile(mesh, (2, 2, 2))
        assert result.reached_all

    def test_deterministic(self):
        mesh = Mesh2D6(8, 8)
        a = GreedyETRProtocol().compile(mesh, (4, 4))
        b = GreedyETRProtocol().compile(mesh, (4, 4))
        assert a.schedule == b.schedule
