"""Differential testing: vectorised engine vs pure-python reference.

The reference simulator re-implements replay with per-node state machines
and no numpy in the decision logic; both implementations must produce
byte-identical traces on identical schedules — including randomly
generated (hypothesis) schedules full of collisions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BroadcastSchedule, ReferenceSimulator, replay
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6
from repro.core import protocol_for


def assert_traces_equal(a, b):
    assert a.tx_events == b.tx_events
    assert a.rx_events == b.rx_events
    assert a.collision_events == b.collision_events
    assert (a.first_rx == b.first_rx).all()


class TestHandBuilt:
    def test_single_tx(self):
        mesh = Mesh2D4(4, 4)
        sched = BroadcastSchedule.from_events([(1, mesh.index((2, 2)))])
        assert_traces_equal(
            replay(mesh, sched, mesh.index((2, 2))),
            ReferenceSimulator(mesh).replay(sched, mesh.index((2, 2))))

    def test_collision_scenario(self):
        mesh = Mesh2D4(5, 1)
        src = 2
        sched = BroadcastSchedule.from_events([(1, 2), (2, 1), (2, 3)])
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))


@st.composite
def random_schedule(draw, num_nodes):
    n_events = draw(st.integers(0, 40))
    events = [
        (draw(st.integers(1, 12)), draw(st.integers(0, num_nodes - 1)))
        for _ in range(n_events)
    ]
    return BroadcastSchedule.from_events(events)


class TestRandomisedDifferential:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_mesh2d4(self, data):
        mesh = Mesh2D4(5, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_mesh2d8(self, data):
        mesh = Mesh2D8(4, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_mesh2d3(self, data):
        mesh = Mesh2D3(5, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_mesh3d6(self, data):
        mesh = Mesh3D6(3, 3, 3)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))


class TestCompiledSchedules:
    """The real compiled protocol schedules must replay identically too."""

    @pytest.mark.parametrize("cls,label,src", [
        (Mesh2D4, "2D-4", (4, 3)),
        (Mesh2D8, "2D-8", (4, 3)),
        (Mesh2D3, "2D-3", (4, 3)),
    ])
    def test_protocol_schedule(self, cls, label, src):
        mesh = cls(8, 6)
        compiled = protocol_for(label).compile(mesh, src)
        src_idx = mesh.index(src)
        assert_traces_equal(
            replay(mesh, compiled.schedule, src_idx),
            ReferenceSimulator(mesh).replay(compiled.schedule, src_idx))

    def test_protocol_schedule_3d(self):
        mesh = Mesh3D6(4, 4, 3)
        compiled = protocol_for("3D-6").compile(mesh, (2, 2, 2))
        src_idx = mesh.index((2, 2, 2))
        assert_traces_equal(
            replay(mesh, compiled.schedule, src_idx),
            ReferenceSimulator(mesh).replay(compiled.schedule, src_idx))
