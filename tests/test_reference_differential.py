"""Differential testing: vectorised engine vs pure-python reference.

The reference simulator re-implements replay with per-node state machines
and no numpy in the decision logic; both implementations must produce
byte-identical traces on identical schedules — including randomly
generated (hypothesis) schedules full of collisions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (BroadcastSchedule, ReferenceSimulator, replay,
                       run_reactive)
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6
from repro.core import protocol_for


def assert_traces_equal(a, b):
    assert a.tx_events == b.tx_events
    assert a.rx_events == b.rx_events
    assert a.collision_events == b.collision_events
    assert (a.first_rx == b.first_rx).all()


class TestHandBuilt:
    def test_single_tx(self):
        mesh = Mesh2D4(4, 4)
        sched = BroadcastSchedule.from_events([(1, mesh.index((2, 2)))])
        assert_traces_equal(
            replay(mesh, sched, mesh.index((2, 2))),
            ReferenceSimulator(mesh).replay(sched, mesh.index((2, 2))))

    def test_collision_scenario(self):
        mesh = Mesh2D4(5, 1)
        src = 2
        sched = BroadcastSchedule.from_events([(1, 2), (2, 1), (2, 3)])
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))


@st.composite
def random_schedule(draw, num_nodes):
    n_events = draw(st.integers(0, 40))
    events = [
        (draw(st.integers(1, 12)), draw(st.integers(0, num_nodes - 1)))
        for _ in range(n_events)
    ]
    return BroadcastSchedule.from_events(events)


class TestRandomisedDifferential:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_mesh2d4(self, data):
        mesh = Mesh2D4(5, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_mesh2d8(self, data):
        mesh = Mesh2D8(4, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_mesh2d3(self, data):
        mesh = Mesh2D3(5, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_mesh3d6(self, data):
        mesh = Mesh3D6(3, 3, 3)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert_traces_equal(
            replay(mesh, sched, src),
            ReferenceSimulator(mesh).replay(sched, src))


class TestCompiledSchedules:
    """The real compiled protocol schedules must replay identically too."""

    @pytest.mark.parametrize("cls,label,src", [
        (Mesh2D4, "2D-4", (4, 3)),
        (Mesh2D8, "2D-8", (4, 3)),
        (Mesh2D3, "2D-3", (4, 3)),
    ])
    def test_protocol_schedule(self, cls, label, src):
        mesh = cls(8, 6)
        compiled = protocol_for(label).compile(mesh, src)
        src_idx = mesh.index(src)
        assert_traces_equal(
            replay(mesh, compiled.schedule, src_idx),
            ReferenceSimulator(mesh).replay(compiled.schedule, src_idx))

    def test_protocol_schedule_3d(self):
        mesh = Mesh3D6(4, 4, 3)
        compiled = protocol_for("3D-6").compile(mesh, (2, 2, 2))
        src_idx = mesh.index((2, 2, 2))
        assert_traces_equal(
            replay(mesh, compiled.schedule, src_idx),
            ReferenceSimulator(mesh).replay(compiled.schedule, src_idx))


@st.composite
def reactive_scenario(draw, num_nodes):
    """Random reactive-wave inputs: relay mask, delays, repeats, forced
    transmissions, dead nodes and an optional loss process."""
    source = draw(st.integers(0, num_nodes - 1))
    relay_mask = np.array(
        [draw(st.booleans()) for _ in range(num_nodes)], dtype=bool)
    if draw(st.booleans()):
        extra_delay = np.array(
            [draw(st.integers(0, 2)) for _ in range(num_nodes)],
            dtype=np.int64)
    else:
        extra_delay = None
    repeats = {}
    for v in draw(st.lists(st.integers(0, num_nodes - 1),
                           max_size=4, unique=True)):
        repeats[v] = tuple(sorted(draw(st.lists(
            st.integers(1, 3), min_size=1, max_size=2, unique=True))))
    forced = {}
    for slot in draw(st.lists(st.integers(1, 10), max_size=3, unique=True)):
        forced[slot] = draw(st.lists(
            st.integers(0, num_nodes - 1), min_size=1, max_size=3,
            unique=True))
    dead = None
    if draw(st.booleans()):
        dead = np.zeros(num_nodes, dtype=bool)
        for v in draw(st.lists(st.integers(0, num_nodes - 1),
                               max_size=3, unique=True)):
            if v != source:
                dead[v] = True
    loss = None
    kind = draw(st.sampled_from(["none", "bernoulli", "burst"]))
    if kind == "bernoulli":
        from repro.radio.impairments import BernoulliLoss
        loss = BernoulliLoss(draw(st.sampled_from([0.1, 0.3])),
                             seed=draw(st.integers(0, 5)))
    elif kind == "burst":
        from repro.radio.impairments import BurstLoss
        loss = BurstLoss(draw(st.sampled_from([0.2, 0.5])),
                         seed=draw(st.integers(0, 5)))
    return dict(source=source, relay_mask=relay_mask,
                extra_delay=extra_delay, repeat_offsets=repeats,
                forced_tx=forced, dead_mask=dead, loss=loss)


def assert_reactive_equal(a, b):
    assert_traces_equal(a, b)
    assert a.dropped_forced == b.dropped_forced


class TestReactiveDifferential:
    """run_reactive (vectorised) vs the pure-python reference wave."""

    @pytest.mark.parametrize("cls,shape", [
        (Mesh2D4, (5, 4)),
        (Mesh2D8, (4, 4)),
        (Mesh2D3, (5, 4)),
        (Mesh3D6, (3, 3, 3)),
    ])
    def test_random_scenarios(self, cls, shape):
        mesh = cls(*shape)
        ref = ReferenceSimulator(mesh)

        @given(data=st.data())
        @settings(max_examples=25, deadline=None)
        def check(data):
            kw = data.draw(reactive_scenario(mesh.num_nodes))
            source = kw.pop("source")
            assert_reactive_equal(
                run_reactive(mesh, source, **kw),
                ref.run_reactive(source, **kw))

        check()

    def test_protocol_waves(self):
        """The actual paper relay plans must match the reference too."""
        for cls, label, src in [(Mesh2D4, "2D-4", (4, 3)),
                                (Mesh2D8, "2D-8", (4, 3)),
                                (Mesh2D3, "2D-3", (4, 3))]:
            mesh = cls(8, 6)
            plan = protocol_for(label).relay_plan(mesh, src)
            src_idx = mesh.index(src)
            assert_reactive_equal(
                run_reactive(mesh, src_idx, plan.relay_mask,
                             extra_delay=plan.extra_delay,
                             repeat_offsets=plan.repeat_offsets),
                ReferenceSimulator(mesh).run_reactive(
                    src_idx, plan.relay_mask,
                    extra_delay=plan.extra_delay,
                    repeat_offsets=plan.repeat_offsets))

    def test_dropped_forced_recorded_identically(self):
        mesh = Mesh2D4(5, 4)
        src = mesh.index((3, 2))
        relay = np.zeros(mesh.num_nodes, dtype=bool)
        # Forced tx by a node that is never informed -> dropped.
        forced = {2: [mesh.index((1, 4)), mesh.index((5, 4))], 5: [src]}
        eng = run_reactive(mesh, src, relay, forced_tx=forced)
        ref = ReferenceSimulator(mesh).run_reactive(
            src, relay, forced_tx=forced)
        assert eng.dropped_forced and eng.dropped_forced == ref.dropped_forced


class TestFaultyReplayDifferential:
    """Replay with dead nodes / loss must match the reference too."""

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_dead_and_loss(self, data):
        from repro.radio.impairments import BernoulliLoss
        mesh = Mesh2D4(5, 4)
        sched = data.draw(random_schedule(mesh.num_nodes))
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dead = np.zeros(mesh.num_nodes, dtype=bool)
        for v in data.draw(st.lists(st.integers(0, mesh.num_nodes - 1),
                                    max_size=3, unique=True)):
            dead[v] = True
        loss = (BernoulliLoss(0.2, seed=data.draw(st.integers(0, 3)))
                if data.draw(st.booleans()) else None)
        assert_traces_equal(
            replay(mesh, sched, src, dead_mask=dead, loss=loss),
            ReferenceSimulator(mesh).replay(
                sched, src, dead_mask=dead, loss=loss))
