"""Differential testing: batched trial engine vs the serial engine.

The batch engine's contract is exact serial equivalence: trial *b* of
``run_reactive_batch`` / ``replay_batch`` must be trace-for-trace
identical to a one-trial ``run_reactive`` / ``replay`` run with that
trial's dead mask and loss process.  This suite enforces the contract
with hypothesis-generated scenarios on all four paper topologies —
per-trial dead masks, every loss kind (counter-based Bernoulli/burst,
legacy PCG64 adapters), repeats, extra delays, forced transmissions —
plus hardened paper plans and summary/full-trace consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import harden_plan
from repro.core import protocol_for
from repro.radio.impairments import (BernoulliBatchLoss, BernoulliLoss,
                                     BurstBatchLoss, BurstLoss,
                                     PerTrialBatchLoss, trial_seeds)
from repro.sim import (BroadcastSchedule, replay, replay_batch, run_reactive,
                       run_reactive_batch)
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6

MESHES = [
    (Mesh2D4, (5, 4)),
    (Mesh2D8, (4, 4)),
    (Mesh2D3, (5, 4)),
    (Mesh3D6, (3, 3, 3)),
]


def assert_trial_equal(batch_trace, serial_trace):
    assert batch_trace.tx_events == serial_trace.tx_events
    assert batch_trace.rx_events == serial_trace.rx_events
    assert batch_trace.collision_events == serial_trace.collision_events
    assert (batch_trace.first_rx == serial_trace.first_rx).all()
    assert batch_trace.dropped_forced == serial_trace.dropped_forced


def serial_kwargs(b, dead_masks, loss):
    return dict(
        dead_mask=None if dead_masks is None else dead_masks[b],
        loss=None if loss is None else loss.trial_loss(b))


@st.composite
def batch_scenario(draw, num_nodes):
    """Random batched-wave inputs: a shared relay plan plus per-trial
    channel realisations (dead masks and a batch loss process)."""
    trials = draw(st.integers(1, 4))
    source = draw(st.integers(0, num_nodes - 1))
    relay_mask = np.array(
        [draw(st.booleans()) for _ in range(num_nodes)], dtype=bool)
    if draw(st.booleans()):
        extra_delay = np.array(
            [draw(st.integers(0, 2)) for _ in range(num_nodes)],
            dtype=np.int64)
    else:
        extra_delay = None
    repeats = {}
    for v in draw(st.lists(st.integers(0, num_nodes - 1),
                           max_size=4, unique=True)):
        repeats[v] = tuple(sorted(draw(st.lists(
            st.integers(1, 3), min_size=1, max_size=2, unique=True))))
    forced = {}
    for slot in draw(st.lists(st.integers(1, 10), max_size=3, unique=True)):
        forced[slot] = draw(st.lists(
            st.integers(0, num_nodes - 1), min_size=1, max_size=3,
            unique=True))
    dead_masks = None
    if draw(st.booleans()):
        dead_masks = np.zeros((trials, num_nodes), dtype=bool)
        for b in range(trials):
            for v in draw(st.lists(st.integers(0, num_nodes - 1),
                                   max_size=3, unique=True)):
                if v != source:
                    dead_masks[b, v] = True
    kind = draw(st.sampled_from(
        ["none", "bernoulli", "burst", "per_trial"]))
    seed = draw(st.integers(0, 5))
    seeds = trial_seeds(seed, 0.25, trials)
    if kind == "bernoulli":
        loss = BernoulliBatchLoss(draw(st.sampled_from([0.1, 0.3])), seeds)
    elif kind == "burst":
        loss = BurstBatchLoss(draw(st.sampled_from([0.2, 0.5])), seeds)
    elif kind == "per_trial":
        # Legacy PCG64 processes, one per trial (exercises the adapter).
        p = draw(st.sampled_from([0.1, 0.3]))
        loss = PerTrialBatchLoss(
            [BernoulliLoss(p, seed=seed + b) if b % 2 == 0
             else BurstLoss(p, seed=seed + b) for b in range(trials)])
    else:
        loss = None
    return dict(source=source, trials=trials, relay_mask=relay_mask,
                extra_delay=extra_delay, repeat_offsets=repeats,
                forced_tx=forced, dead_masks=dead_masks, loss=loss)


class TestReactiveBatchDifferential:
    """run_reactive_batch trial b == run_reactive with trial b's channel."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_random_scenarios(self, cls, shape):
        mesh = cls(*shape)

        @given(data=st.data())
        @settings(max_examples=20, deadline=None)
        def check(data):
            kw = data.draw(batch_scenario(mesh.num_nodes))
            source = kw.pop("source")
            dead_masks, loss = kw["dead_masks"], kw["loss"]
            traces = run_reactive_batch(mesh, source, kw["relay_mask"],
                                        extra_delay=kw["extra_delay"],
                                        repeat_offsets=kw["repeat_offsets"],
                                        forced_tx=kw["forced_tx"],
                                        dead_masks=dead_masks, loss=loss,
                                        trials=kw["trials"])
            assert len(traces) == kw["trials"]
            for b, batch_trace in enumerate(traces):
                assert_trial_equal(
                    batch_trace,
                    run_reactive(mesh, source, kw["relay_mask"],
                                 extra_delay=kw["extra_delay"],
                                 repeat_offsets=kw["repeat_offsets"],
                                 forced_tx=kw["forced_tx"],
                                 **serial_kwargs(b, dead_masks, loss)))

        check()

    @pytest.mark.parametrize("cls,label,shape,src", [
        (Mesh2D4, "2D-4", (8, 6), (4, 3)),
        (Mesh2D8, "2D-8", (8, 6), (4, 3)),
        (Mesh2D3, "2D-3", (8, 6), (4, 3)),
        (Mesh3D6, "3D-6", (4, 4, 3), (2, 2, 2)),
    ])
    def test_hardened_paper_plans(self, cls, label, shape, src):
        """Hardened real relay plans under loss + dead masks, all four
        topologies: the exact configuration the robustness sweeps run."""
        mesh = cls(*shape)
        plan = harden_plan(protocol_for(label).relay_plan(mesh, src), 2)
        src_idx = mesh.index(src)
        trials = 4
        rng = np.random.default_rng(7)
        dead_masks = np.zeros((trials, mesh.num_nodes), dtype=bool)
        for b in range(trials):
            victims = rng.choice(mesh.num_nodes, size=3, replace=False)
            dead_masks[b, victims] = True
        dead_masks[:, src_idx] = False
        loss = BernoulliBatchLoss(0.15, trial_seeds(11, 0.15, trials))
        traces = run_reactive_batch(mesh, src_idx, plan.relay_mask,
                                    extra_delay=plan.extra_delay,
                                    repeat_offsets=plan.repeat_offsets,
                                    dead_masks=dead_masks, loss=loss)
        for b, batch_trace in enumerate(traces):
            assert_trial_equal(
                batch_trace,
                run_reactive(mesh, src_idx, plan.relay_mask,
                             extra_delay=plan.extra_delay,
                             repeat_offsets=plan.repeat_offsets,
                             dead_mask=dead_masks[b],
                             loss=loss.trial_loss(b)))


@st.composite
def random_schedule(draw, num_nodes):
    n_events = draw(st.integers(0, 40))
    events = [
        (draw(st.integers(1, 12)), draw(st.integers(0, num_nodes - 1)))
        for _ in range(n_events)
    ]
    return BroadcastSchedule.from_events(events)


class TestReplayBatchDifferential:
    """replay_batch trial b == replay with trial b's channel."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_random_schedules(self, cls, shape):
        mesh = cls(*shape)

        @given(data=st.data())
        @settings(max_examples=15, deadline=None)
        def check(data):
            sched = data.draw(random_schedule(mesh.num_nodes))
            src = data.draw(st.integers(0, mesh.num_nodes - 1))
            trials = data.draw(st.integers(1, 4))
            dead_masks = None
            if data.draw(st.booleans()):
                dead_masks = np.zeros((trials, mesh.num_nodes), dtype=bool)
                for b in range(trials):
                    for v in data.draw(st.lists(
                            st.integers(0, mesh.num_nodes - 1),
                            max_size=3, unique=True)):
                        dead_masks[b, v] = True
            loss = None
            if data.draw(st.booleans()):
                loss = BernoulliBatchLoss(
                    0.2, trial_seeds(data.draw(st.integers(0, 3)),
                                     0.2, trials))
            traces = replay_batch(mesh, sched, src, dead_masks=dead_masks,
                                  loss=loss, trials=trials)
            for b, batch_trace in enumerate(traces):
                assert_trial_equal(
                    batch_trace,
                    replay(mesh, sched, src,
                           **serial_kwargs(b, dead_masks, loss)))

        check()

    def test_perfect_channel_replay(self):
        """No faults: every trial must equal the single perfect replay."""
        mesh = Mesh2D4(8, 6)
        compiled = protocol_for("2D-4").compile(mesh, (4, 3))
        src = mesh.index((4, 3))
        serial = replay(mesh, compiled.schedule, src)
        for batch_trace in replay_batch(mesh, compiled.schedule, src,
                                        trials=3):
            assert_trial_equal(batch_trace, serial)


class TestSummaryConsistency:
    """TraceSummary must agree with the full traces of the same batch."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_summary_matches_traces(self, cls, shape):
        mesh = cls(*shape)
        label = mesh.name
        src = tuple(1 for _ in shape)
        plan = protocol_for(label).relay_plan(mesh, src)
        src_idx = mesh.index(src)
        trials = 5
        loss = BernoulliBatchLoss(0.2, trial_seeds(3, 0.2, trials))
        common = dict(extra_delay=plan.extra_delay,
                      repeat_offsets=plan.repeat_offsets,
                      forced_tx={2: [src_idx, (src_idx + 5) % mesh.num_nodes]},
                      loss=loss)
        traces = run_reactive_batch(mesh, src_idx, plan.relay_mask, **common)
        s = run_reactive_batch(mesh, src_idx, plan.relay_mask, summary=True,
                               **common)
        assert s.trials == trials
        assert (s.first_rx == np.stack([t.first_rx for t in traces])).all()
        assert (s.num_tx == np.array([t.num_tx for t in traces])).all()
        assert (s.num_rx == np.array([t.num_rx for t in traces])).all()
        assert (s.collisions == np.array(
            [len(t.collision_events) for t in traces])).all()
        assert np.allclose(s.reachability,
                           [t.reachability for t in traces])
        assert (s.delay_slots == np.array(
            [t.delay_slots for t in traces])).all()
        assert s.dropped_forced == [t.dropped_forced for t in traces]
        for b, trace in enumerate(traces):
            assert (s.tx_count[b] == trace.tx_count_per_node()).all()
            assert (s.rx_count[b] == trace.rx_count_per_node()).all()


class TestBatchValidation:
    def test_batch_size_inference_conflict(self):
        mesh = Mesh2D4(4, 4)
        relay = np.ones(mesh.num_nodes, dtype=bool)
        loss = BernoulliBatchLoss(0.1, trial_seeds(0, 0.1, 3))
        with pytest.raises(ValueError, match="inconsistent batch sizes"):
            run_reactive_batch(mesh, 0, relay, loss=loss, trials=4)

    def test_batch_size_required(self):
        mesh = Mesh2D4(4, 4)
        relay = np.ones(mesh.num_nodes, dtype=bool)
        with pytest.raises(ValueError, match="cannot infer"):
            run_reactive_batch(mesh, 0, relay)

    def test_dead_source_rejected(self):
        mesh = Mesh2D4(4, 4)
        relay = np.ones(mesh.num_nodes, dtype=bool)
        dead = np.zeros((2, mesh.num_nodes), dtype=bool)
        dead[1, 0] = True
        with pytest.raises(ValueError, match="source"):
            run_reactive_batch(mesh, 0, relay, dead_masks=dead)
