"""Unit tests for the slotted collision channel."""

import numpy as np
import pytest

from repro.radio import Packet, resolve_slot, unique_transmitter
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(5, 5)


def mask_for(mesh, coords):
    m = np.zeros(mesh.num_nodes, dtype=bool)
    for c in coords:
        m[mesh.index(c)] = True
    return m


class TestResolveSlot:
    def test_single_transmitter_reaches_all_neighbors(self, mesh):
        tx = mask_for(mesh, [(3, 3)])
        out = resolve_slot(mesh.adjacency, tx)
        for nb in mesh.neighbors((3, 3)):
            assert out.received[mesh.index(nb)]
        assert out.received.sum() == 4
        assert out.collided.sum() == 0

    def test_two_transmitters_collide_at_common_neighbor(self, mesh):
        tx = mask_for(mesh, [(2, 3), (4, 3)])
        out = resolve_slot(mesh.adjacency, tx)
        # (3,3) hears both -> collision
        assert out.collided[mesh.index((3, 3))]
        assert not out.received[mesh.index((3, 3))]
        # (1,3) hears only (2,3)
        assert out.received[mesh.index((1, 3))]

    def test_transmitter_is_deaf(self, mesh):
        """Half-duplex: a transmitter never receives in its own slot."""
        tx = mask_for(mesh, [(3, 3), (3, 4)])
        out = resolve_slot(mesh.adjacency, tx)
        assert not out.received[mesh.index((3, 3))]
        assert not out.received[mesh.index((3, 4))]
        assert not out.collided[mesh.index((3, 3))]

    def test_heard_counts(self, mesh):
        tx = mask_for(mesh, [(2, 2), (2, 4), (4, 3)])
        out = resolve_slot(mesh.adjacency, tx)
        assert out.heard[mesh.index((2, 3))] == 2
        assert out.heard[mesh.index((3, 3))] == 1
        assert out.heard[mesh.index((5, 5))] == 0

    def test_silence(self, mesh):
        tx = mask_for(mesh, [])
        out = resolve_slot(mesh.adjacency, tx)
        assert out.received.sum() == 0
        assert out.collided.sum() == 0
        assert out.heard.sum() == 0

    def test_three_way_collision(self, mesh):
        tx = mask_for(mesh, [(2, 3), (4, 3), (3, 2)])
        out = resolve_slot(mesh.adjacency, tx)
        assert out.heard[mesh.index((3, 3))] == 3
        assert out.collided[mesh.index((3, 3))]

    def test_shape_mismatch_raises(self, mesh):
        with pytest.raises(ValueError):
            resolve_slot(mesh.adjacency, np.zeros(7, dtype=bool))


class TestUniqueTransmitter:
    def test_attributes_single_sender(self, mesh):
        tx = mask_for(mesh, [(3, 3)])
        sender = unique_transmitter(mesh.adjacency, tx, mesh.index((3, 4)))
        assert sender == mesh.index((3, 3))

    def test_ambiguous_returns_minus_one(self, mesh):
        tx = mask_for(mesh, [(2, 3), (4, 3)])
        assert unique_transmitter(
            mesh.adjacency, tx, mesh.index((3, 3))) == -1

    def test_silence_returns_minus_one(self, mesh):
        tx = mask_for(mesh, [])
        assert unique_transmitter(
            mesh.adjacency, tx, mesh.index((3, 3))) == -1


class TestPacket:
    def test_defaults(self):
        p = Packet()
        assert p.bits == 512
        assert p.seq == 0

    def test_with_seq(self):
        p = Packet(bits=128, source=(1, 1))
        q = p.with_seq(5)
        assert q.seq == 5
        assert q.bits == 128
        assert q.source == (1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(bits=0)
        with pytest.raises(ValueError):
            Packet(seq=-1)

    def test_frozen(self):
        p = Packet()
        with pytest.raises(Exception):
            p.bits = 9  # type: ignore[misc]


class TestSlotKernel:
    """The batched kernel must agree bit-for-bit with resolve_slot +
    per-receiver unique_transmitter."""

    def _check(self, topo, tx_indices):
        from repro.radio.channel import SlotKernel
        kernel = SlotKernel(topo.adjacency)
        tx_nodes = np.array(sorted(tx_indices), dtype=np.int64)
        mask = np.zeros(topo.num_nodes, dtype=bool)
        mask[tx_nodes] = True
        heard, received, collided, senders = kernel.resolve(tx_nodes)
        ref = resolve_slot(topo.adjacency, mask)
        assert (heard == ref.heard).all()
        assert (received == ref.received).all()
        assert (collided == ref.collided).all()
        for v in np.nonzero(received)[0]:
            assert senders[v] == unique_transmitter(topo.adjacency, mask, v)

    def test_empty_slot(self, mesh):
        self._check(mesh, [])

    def test_single_transmitter(self, mesh):
        self._check(mesh, [mesh.index((3, 3))])

    def test_colliding_pair(self, mesh):
        self._check(mesh, [mesh.index((2, 3)), mesh.index((4, 3))])

    def test_random_slots_all_topologies(self):
        from repro.topology import Mesh2D3, Mesh2D8, Mesh3D6
        rng = np.random.default_rng(7)
        for topo in (Mesh2D4(6, 5), Mesh2D8(5, 5), Mesh2D3(6, 5),
                     Mesh3D6(3, 3, 3)):
            for _ in range(25):
                k = int(rng.integers(0, topo.num_nodes // 2))
                tx = rng.choice(topo.num_nodes, size=k, replace=False)
                self._check(topo, tx)

    def test_scratch_buffer_reuse_is_safe(self, mesh):
        """Back-to-back resolves must not corrupt each other's results."""
        from repro.radio.channel import SlotKernel
        kernel = SlotKernel(mesh.adjacency)
        a = np.array([mesh.index((3, 3))], dtype=np.int64)
        b = np.array([mesh.index((1, 1))], dtype=np.int64)
        _, recv_a, _, senders_a = kernel.resolve(a)
        senders_a_snapshot = senders_a[recv_a].copy()
        kernel.resolve(b)
        _, recv_a2, _, senders_a2 = kernel.resolve(a)
        assert (senders_a2[recv_a2] == senders_a_snapshot).all()

    def test_batch_scratch_keyed_on_trials_and_nodes(self):
        """Interleaving resolve_batch on kernels of different node
        counts but equal trial counts must not cross-corrupt: the
        scratch is keyed on the full (trials, n) shape, not trials
        alone (regression for the trials-only cache key)."""
        from repro.radio.channel import SlotKernel
        from repro.topology import Mesh2D8
        small = Mesh2D4(4, 4)
        big = Mesh2D8(6, 6)
        ks, kb = SlotKernel(small.adjacency), SlotKernel(big.adjacency)
        rng = np.random.default_rng(13)
        trials = 3
        for _ in range(6):
            for topo, kernel in ((small, ks), (big, kb)):
                k = int(rng.integers(1, topo.num_nodes // 2))
                nd = np.sort(rng.choice(topo.num_nodes, size=k,
                                        replace=False)).astype(np.int64)
                tr = np.sort(rng.integers(0, trials, size=k)
                             ).astype(np.int64)
                out = kernel.resolve_batch(nd, tr, trials)
                # resolve() below reuses kernel scratch: snapshot first.
                heard, received, collided, senders = (x.copy() for x in out)
                assert heard.shape == (trials, topo.num_nodes)
                # Per-trial reference via the unbatched resolver.
                for b in range(trials):
                    ref_h, ref_r, ref_c, ref_s = kernel.resolve(
                        np.unique(nd[tr == b]))
                    assert (heard[b] == ref_h).all()
                    assert (received[b] == ref_r).all()
                    assert (collided[b] == ref_c).all()
                    rx = np.nonzero(ref_r)[0]
                    assert (senders[b, rx] == ref_s[rx]).all()
