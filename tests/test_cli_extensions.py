"""Tests for the extension CLI commands (figure --svg, robustness,
scaling)."""

import pytest

from repro.cli import main


class TestFigureSvg:
    def test_figure5_svg(self, tmp_path, capsys):
        out = tmp_path / "fig5.svg"
        assert main(["figure", "5", "--svg", str(out)]) == 0
        assert out.exists()
        content = out.read_text()
        assert content.startswith("<svg")
        assert "SVG written" in capsys.readouterr().out

    def test_figure9_svg_renders_source_plane(self, tmp_path):
        out = tmp_path / "fig9.svg"
        assert main(["figure", "9", "--svg", str(out)]) == 0
        assert "plane z=2" in out.read_text()


class TestRobustnessCommand:
    def test_default_run(self, capsys):
        assert main(["robustness", "2D-4", "--shape", "10", "6",
                     "--loss-rates", "0", "0.1",
                     "--failures", "0", "4", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "loss p=0.0" in out
        assert "4 dead (static)" in out

    def test_recompile_mode(self, capsys):
        assert main(["robustness", "2D-4", "--shape", "10", "6",
                     "--loss-rates", "0",
                     "--failures", "4", "--trials", "2",
                     "--recompile"]) == 0
        assert "(recompiled)" in capsys.readouterr().out

    def test_harden_flag(self, capsys):
        assert main(["robustness", "2D-4", "--shape", "10", "6",
                     "--loss-rates", "0.1", "--failures", "0",
                     "--trials", "2", "--harden", "1"]) == 0
        assert "loss p=0.1" in capsys.readouterr().out

    def test_explicit_source(self, capsys):
        assert main(["robustness", "2D-4", "--shape", "8", "6",
                     "--source", "2", "2", "--loss-rates", "0",
                     "--failures", "0", "--trials", "1"]) == 0
        assert "(2, 2)" in capsys.readouterr().out

    def test_3d_default_source(self, capsys):
        assert main(["robustness", "3D-6", "--shape", "4", "4", "3",
                     "--loss-rates", "0", "--failures", "0",
                     "--trials", "1"]) == 0
        assert "3D-6" in capsys.readouterr().out

    def test_engines_print_identical_tables(self, capsys):
        def table(out):
            # drop the per-run "engine: ..." decision line; the tables
            # themselves must be identical across engines
            return [ln for ln in out.splitlines()
                    if not ln.startswith("engine:")]

        args = ["robustness", "2D-4", "--shape", "10", "6",
                "--loss-rates", "0.1", "0.2", "--failures", "3",
                "--trials", "3", "--seed", "5"]
        assert main(args + ["--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert "engine: batch" in batch_out
        assert main(args + ["--engine", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert "engine: serial" in serial_out
        assert table(serial_out) == table(batch_out)

    def test_workers_and_cache_flags(self, tmp_path, capsys):
        assert main(["robustness", "2D-4", "--shape", "10", "6",
                     "--loss-rates", "0", "0.1", "--failures", "0", "3",
                     "--trials", "2", "--workers", "2",
                     "--cache", str(tmp_path / "sched")]) == 0
        assert "loss p=0.1" in capsys.readouterr().out
        assert (tmp_path / "sched").is_dir()


class TestRobustnessRecoveryFlags:
    def test_recovery_flag(self, capsys):
        assert main(["robustness", "2D-4", "--shape", "10", "6",
                     "--loss-rates", "0.25", "--failures", "0",
                     "--trials", "2", "--recovery"]) == 0
        assert "loss p=0.25" in capsys.readouterr().out

    def test_recovery_improves_reported_reach(self, capsys):
        args = ["robustness", "2D-4", "--shape", "10", "6",
                "--loss-rates", "0.25", "--failures", "0",
                "--trials", "3", "--seed", "4"]
        assert main(args) == 0
        bare = capsys.readouterr().out
        assert main(args + ["--recovery", "--recovery-no-election"]) == 0
        rec = capsys.readouterr().out

        def mean_reach(out):
            line = next(l for l in out.splitlines() if "loss p=" in l)
            return float(line.split("|")[1])

        assert mean_reach(rec) > mean_reach(bare)

    def test_recovery_policy_flags_parsed(self, capsys):
        assert main(["robustness", "2D-4", "--shape", "8", "6",
                     "--loss-rates", "0.2", "--failures", "0",
                     "--trials", "2", "--recovery",
                     "--recovery-timeout", "3",
                     "--recovery-max-retries", "1",
                     "--recovery-backoff", "1",
                     "--recovery-suppression-k", "0",
                     "--recovery-no-election"]) == 0
        assert "loss p=0.2" in capsys.readouterr().out


class TestFrontierCommand:
    def test_default_run(self, capsys):
        assert main(["frontier", "2D-4", "--shape", "8", "6",
                     "--loss-rates", "0.2", "--trials", "2",
                     "--hardening", "0", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "blind-r0" in out
        assert "blind-r2" in out
        assert "recovery-" in out
        assert "*" in out  # at least one Pareto point

    def test_seed_changes_channels(self, capsys):
        args = ["frontier", "2D-4", "--shape", "8", "6",
                "--loss-rates", "0.3", "--trials", "2",
                "--hardening", "0"]
        assert main(args + ["--seed", "1"]) == 0
        a = capsys.readouterr().out
        assert main(args + ["--seed", "2"]) == 0
        b = capsys.readouterr().out
        assert a != b

    def test_engines_print_identical_tables(self, capsys):
        def table(out):
            return [ln for ln in out.splitlines()
                    if not ln.startswith("engine:")]

        args = ["frontier", "2D-4", "--shape", "8", "6",
                "--loss-rates", "0.2", "--trials", "2",
                "--hardening", "0", "--seed", "3"]
        assert main(args + ["--engine", "batch"]) == 0
        batch = capsys.readouterr().out
        assert main(args + ["--engine", "serial"]) == 0
        serial = capsys.readouterr().out
        assert table(batch) == table(serial)

    def test_workers_flag(self, capsys):
        assert main(["frontier", "2D-4", "--shape", "8", "6",
                     "--loss-rates", "0.1", "0.2", "--trials", "2",
                     "--hardening", "0", "--workers", "2"]) == 0
        assert "recovery frontier" in capsys.readouterr().out


class TestLifetimeCommand:
    def test_default_run(self, capsys):
        assert main(["lifetime", "2D-4", "--shape", "8", "6",
                     "--battery", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "rounds completed" in out
        assert "energy imbalance" in out

    def test_rotate_and_loss(self, capsys):
        assert main(["lifetime", "2D-4", "--shape", "8", "6", "--rotate",
                     "--loss", "0.1", "--trials", "4",
                     "--battery", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "sources (cycled) : 5" in out
        assert "Bernoulli p=0.1" in out

    def test_explicit_source_with_workers(self, tmp_path, capsys):
        assert main(["lifetime", "2D-4", "--shape", "8", "6",
                     "--source", "2", "2", "--battery", "0.002",
                     "--workers", "2",
                     "--cache", str(tmp_path / "sched")]) == 0
        assert "2D-4" in capsys.readouterr().out


class TestSweepSymmetryFlag:
    def _sweep_output(self, capsys, *flags):
        assert main(["sweep", "2D-4", "--shape", "9", "6", "--stride", "4",
                     *flags]) == 0
        return capsys.readouterr().out

    def test_symmetry_and_direct_print_identical_tables(self, capsys):
        forced = self._sweep_output(capsys, "--symmetry")
        direct = self._sweep_output(capsys, "--no-symmetry")
        default = self._sweep_output(capsys)
        assert forced == direct == default
        assert "source sweep: 2D-4" in forced

    def test_symmetry_composes_with_workers_and_cache(self, tmp_path,
                                                      capsys):
        out = self._sweep_output(
            capsys, "--symmetry", "--workers", "2",
            "--cache", str(tmp_path / "sched"))
        assert "all reached        : True" in out

    def test_table_accepts_symmetry_flag(self, capsys):
        assert main(["table", "3", "--stride", "64", "--symmetry"]) == 0
        assert "Table 3" in capsys.readouterr().out


class TestScalingCommand:
    def test_scaling(self, capsys):
        assert main(["scaling", "2D-4", "--sizes", "128", "288"]) == 0
        out = capsys.readouterr().out
        assert "scaling study: 2D-4" in out
        assert "16x8" in out

    def test_scaling_3d(self, capsys):
        assert main(["scaling", "3D-6", "--sizes", "64"]) == 0
        assert "4x4x4" in capsys.readouterr().out

    def test_scaling_explicit_sizes_override_ladder(self, capsys):
        assert main(["scaling", "2D-4", "--ladder", "large",
                     "--sizes", "128"]) == 0
        out = capsys.readouterr().out
        assert "16x8" in out
        assert "1000x500" not in out

    def test_scaling_rejects_unknown_ladder(self, capsys):
        with pytest.raises(SystemExit):
            main(["scaling", "2D-4", "--ladder", "huge"])
        assert "invalid choice" in capsys.readouterr().err
