"""Unit tests for S1/S2 diagonal sets and B1/B2 staircases (Section 3)."""

import pytest

from repro.topology import Mesh2D3, Mesh2D8
from repro.topology import diagonal as D


class TestSValues:
    def test_paper_s1_example(self):
        """Paper: nodes (5,7), (6,6), (7,5) are in S1(12)."""
        mesh = Mesh2D8(14, 14)
        s1_12 = D.s1_set(mesh, 12)
        for node in [(5, 7), (6, 6), (7, 5)]:
            assert node in s1_12
            assert D.s1_value(node) == 12

    def test_paper_s2_example(self):
        """Paper: nodes (5,3), (6,4), (7,5) are in S2(2)."""
        mesh = Mesh2D8(14, 14)
        s2_2 = D.s2_set(mesh, 2)
        for node in [(5, 3), (6, 4), (7, 5)]:
            assert node in s2_2
            assert D.s2_value(node) == 2

    def test_s1_runs_antidiagonally(self):
        mesh = Mesh2D8(10, 10)
        nodes = D.s1_set(mesh, 8)
        xs = [x for x, _ in nodes]
        ys = [y for _, y in nodes]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)

    def test_s2_runs_diagonally(self):
        mesh = Mesh2D8(10, 10)
        nodes = D.s2_set(mesh, 3)
        xs = [x for x, _ in nodes]
        ys = [y for _, y in nodes]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_clipping_to_grid(self):
        mesh = Mesh2D8(6, 4)
        assert D.s1_set(mesh, 2) == [(1, 1)]
        assert D.s1_set(mesh, 10) == [(6, 4)]
        assert D.s2_set(mesh, 5) == [(6, 1)]
        assert D.s2_set(mesh, -3) == [(1, 4)]
        assert D.s1_set(mesh, 1) == []
        assert D.s1_set(mesh, 11) == []

    def test_ranges(self):
        mesh = Mesh2D8(6, 4)
        lo, hi = D.s1_range(mesh)
        assert (lo, hi) == (2, 10)
        lo, hi = D.s2_range(mesh)
        assert (lo, hi) == (-3, 5)
        # every value in range is nonempty; outside empty
        for c in range(2, 11):
            assert D.s1_set(mesh, c)
        for c in range(-3, 6):
            assert D.s2_set(mesh, c)

    def test_sets_partition_the_grid(self):
        mesh = Mesh2D8(7, 5)
        all_s1 = [n for c in range(2, 13) for n in D.s1_set(mesh, c)]
        assert sorted(all_s1) == sorted(mesh.iter_coords())


class TestVectorizedIndices:
    """s1_indices/s2_indices are the index-arithmetic equivalents of the
    coordinate-tuple sets — same nodes, same x-order, no python loop."""

    @pytest.mark.parametrize("shape", [(8, 8), (7, 5), (1, 6), (6, 1),
                                       (2, 2)])
    def test_s1_matches_coordinate_set(self, shape):
        mesh = Mesh2D8(*shape)
        lo, hi = D.s1_range(mesh)
        for c in range(lo - 2, hi + 3):  # incl. out-of-range constants
            want = [mesh.index(cd) for cd in D.s1_set(mesh, c)]
            assert D.s1_indices(mesh, c).tolist() == want, c

    @pytest.mark.parametrize("shape", [(8, 8), (7, 5), (1, 6), (6, 1),
                                       (2, 2)])
    def test_s2_matches_coordinate_set(self, shape):
        mesh = Mesh2D8(*shape)
        lo, hi = D.s2_range(mesh)
        for c in range(lo - 2, hi + 3):
            want = [mesh.index(cd) for cd in D.s2_set(mesh, c)]
            assert D.s2_indices(mesh, c).tolist() == want, c


class TestStaircases:
    def test_paper_b_values_example(self):
        """Paper Section 3.3: source (5,4), (5,5) not a neighbour ->
        B1 = S1(9) u S1(8), B2 = S2(1) u S2(2)."""
        mesh = Mesh2D3(10, 10)
        assert not mesh.has_up_neighbor((5, 4))
        assert D.b1_values(mesh, (5, 4)) == (9, 8)
        assert D.b2_values(mesh, (5, 4)) == (1, 2)

    def test_b_values_other_parity(self):
        mesh = Mesh2D3(10, 10)
        assert mesh.has_up_neighbor((4, 4))
        assert D.b1_values(mesh, (4, 4)) == (8, 9)
        assert D.b2_values(mesh, (4, 4)) == (0, -1)

    def test_b1_set_is_connected_staircase(self):
        """The union of the paired diagonals must form a connected path in
        the brick lattice (this is the property the protocol relies on)."""
        mesh = Mesh2D3(12, 12)
        for base in [(5, 4), (6, 6), (7, 3)]:
            nodes = D.b1_set(mesh, base)
            assert _is_connected_in(mesh, nodes)

    def test_b2_set_is_connected_staircase(self):
        mesh = Mesh2D3(12, 12)
        for base in [(5, 4), (6, 6), (7, 3)]:
            nodes = D.b2_set(mesh, base)
            assert _is_connected_in(mesh, nodes)

    def test_staircase_contains_base(self):
        mesh = Mesh2D3(10, 10)
        assert (5, 4) in D.b1_set(mesh, (5, 4))
        assert (5, 4) in D.b2_set(mesh, (5, 4))

    def test_staircases_have_two_nodes_per_level_inside(self):
        mesh = Mesh2D3(20, 8)
        nodes = D.b1_set(mesh, (10, 4))
        by_level = {}
        for x, y in nodes:
            by_level.setdefault(y, []).append(x)
        # interior levels have exactly 2 nodes (border levels may clip)
        for y in range(2, 8):
            assert len(by_level.get(y, [])) == 2


def _is_connected_in(mesh, nodes):
    nodes = set(nodes)
    if not nodes:
        return True
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        cur = stack.pop()
        for nb in mesh.neighbors(cur):
            if nb in nodes and nb not in seen:
                seen.add(nb)
                stack.append(nb)
    return seen == nodes
