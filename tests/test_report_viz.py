"""Tests for report rendering and ASCII visualisation."""

import pytest

from repro.analysis.report import (format_number, render_kv,
                                   render_paper_comparison, render_table)
from repro.core import protocol_for
from repro.topology import Mesh2D4, Mesh3D6
from repro.viz import relay_map, slot_timeline, summary_block, wave_map


class TestReport:
    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(True) == "True"
        assert format_number(0.0218) == "0.0218"
        assert format_number(2.18e-5) == "2.180e-05"
        assert format_number("x") == "x"

    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        out = render_table(rows, ["a", "b"], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_render_table_header_mismatch(self):
        with pytest.raises(ValueError):
            render_table([], ["a"], headers=["x", "y"])

    def test_render_table_empty_rows(self):
        out = render_table([], ["a", "b"])
        assert "a" in out

    def test_render_paper_comparison(self):
        rows = [{"topology": "2D-4", "tx": 208,
                 "paper": {"tx": 208}}]
        out = render_paper_comparison(rows, ["tx"], "cmp")
        assert "tx (paper)" in out
        assert "208" in out

    def test_render_kv(self):
        out = render_kv([("key", 1), ("longer key", 2.5)], title="hdr")
        assert out.splitlines()[0] == "hdr"
        assert ": 1" in out

    def test_render_kv_empty(self):
        assert render_kv([], title="t") == "t"


class TestViz:
    @pytest.fixture(scope="class")
    def compiled_2d(self):
        mesh = Mesh2D4(10, 6)
        return mesh, protocol_for("2D-4").compile(mesh, (5, 3))

    @pytest.fixture(scope="class")
    def compiled_3d(self):
        mesh = Mesh3D6(4, 4, 3)
        return mesh, protocol_for("3D-6").compile(mesh, (2, 2, 2))

    def test_relay_map_contains_source_and_legend(self, compiled_2d):
        mesh, result = compiled_2d
        out = relay_map(mesh, result)
        assert "S" in out
        assert "legend" not in out  # legend text itself, not the word
        assert "#=relay" in out
        # one row per y plus header/ruler
        assert len(out.splitlines()) == 6 + 3

    def test_relay_map_3d_renders_planes(self, compiled_3d):
        mesh, result = compiled_3d
        out = relay_map(mesh, result)
        for z in (1, 2, 3):
            assert f"plane z={z}" in out

    def test_wave_map_rx(self, compiled_2d):
        mesh, result = compiled_2d
        out = wave_map(mesh, result, what="rx")
        assert "first rx slot" in out
        # the source cell shows slot 0
        assert " 0" in out

    def test_wave_map_tx(self, compiled_2d):
        mesh, result = compiled_2d
        out = wave_map(mesh, result, what="tx")
        assert "first tx slot" in out

    def test_wave_map_3d_needs_plane(self, compiled_3d):
        mesh, result = compiled_3d
        with pytest.raises(ValueError):
            wave_map(mesh, result)
        out = wave_map(mesh, result, z=2)
        assert "plane z=2" in out

    def test_wave_map_invalid_what(self, compiled_2d):
        mesh, result = compiled_2d
        with pytest.raises(ValueError):
            wave_map(mesh, result, what="energy")

    def test_slot_timeline(self, compiled_2d):
        mesh, result = compiled_2d
        out = slot_timeline(mesh, result)
        lines = out.splitlines()
        assert "slot" in lines[1]
        # one line per active slot (+2 header lines)
        assert len(lines) == len(result.schedule.active_slots()) + 2

    def test_slot_timeline_truncation(self, compiled_2d):
        mesh, result = compiled_2d
        out = slot_timeline(mesh, result, max_slots=2)
        assert len(out.splitlines()) == 4

    def test_summary_block(self, compiled_2d):
        mesh, result = compiled_2d
        out = summary_block(mesh, result)
        assert "transmissions" in out
        assert "100.0%" in out

    def test_retransmitters_marked(self):
        mesh = Mesh2D4(16, 16)
        result = protocol_for("2D-4").compile(mesh, (6, 8))
        out = relay_map(mesh, result)
        assert "*" in out
