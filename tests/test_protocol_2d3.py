"""Tests for the 2D-3 broadcasting protocol (Section 3.3, Fig. 8)."""

import pytest

from repro.core import validate_broadcast
from repro.core.mesh2d3 import Mesh2D3Protocol, staircase_seeds
from repro.topology import Mesh2D3, Mesh2D4
from repro.topology.diagonal import b1_values, b2_values


class TestSeeds:
    def test_seed_columns_every_four(self):
        seeds = staircase_seeds(20, 14, 10, 7)
        in_grid = [s for s in seeds if 1 <= s <= 20]
        assert in_grid == [2, 6, 10, 14, 18]

    def test_virtual_seeds_extend_beyond_grid(self):
        seeds = staircase_seeds(20, 14, 10, 7)
        assert min(seeds) < 1
        assert max(seeds) > 20

    def test_seeds_include_source_column(self):
        assert 10 in staircase_seeds(20, 14, 10, 7)
        assert 3 in staircase_seeds(8, 8, 3, 5)


class TestFig8Values:
    """The paper's Fig. 8 lists the selected diagonal sets explicitly for
    source (10, 7): B1 pairs {17,16},{13,12},{9,8},{21,20},{25,24} and
    B2 pairs {3,4},{-1,0},{-5,-4},{7,8},{11,12} on the in-grid seeds."""

    def test_b_values_per_seed(self):
        mesh = Mesh2D3(20, 14)
        assert b1_values(mesh, (10, 7)) == (17, 16)
        assert b1_values(mesh, (6, 7)) == (13, 12)
        assert b1_values(mesh, (2, 7)) == (9, 8)
        assert b1_values(mesh, (14, 7)) == (21, 20)
        assert b1_values(mesh, (18, 7)) == (25, 24)
        assert b2_values(mesh, (10, 7)) == (3, 4)
        assert b2_values(mesh, (6, 7)) == (-1, 0)
        assert b2_values(mesh, (2, 7)) == (-5, -4)
        assert b2_values(mesh, (14, 7)) == (7, 8)
        assert b2_values(mesh, (18, 7)) == (11, 12)

    def test_plan_includes_fig8_b_values(self):
        mesh = Mesh2D3(20, 14)
        plan = Mesh2D3Protocol().relay_plan(mesh, (10, 7))
        for c in (16, 17, 12, 13, 8, 9, 20, 21, 24, 25):
            assert c in plan.notes["b1_values"]
        for c in (3, 4, -1, 0, -5, -4, 7, 8, 11, 12):
            assert c in plan.notes["b2_values"]

    def test_source_row_is_relay(self):
        mesh = Mesh2D3(20, 14)
        plan = Mesh2D3Protocol().relay_plan(mesh, (10, 7))
        for x in range(1, 21):
            assert plan.relay_mask[mesh.index((x, 7))]

    def test_source_staircases_are_relays(self):
        mesh = Mesh2D3(20, 14)
        plan = Mesh2D3Protocol().relay_plan(mesh, (10, 7))
        # B1(10,7) = S1(17) u S1(16): e.g. (9,8), (8,8), (11,6), (12,5)
        for coord in [(9, 8), (8, 8), (11, 6), (12, 4)]:
            assert plan.relay_mask[mesh.index(coord)], coord

    def test_notes_record_partition(self):
        mesh = Mesh2D3(20, 14)
        plan = Mesh2D3Protocol().relay_plan(mesh, (10, 7))
        assert plan.notes["base_a"] == (10, 5)
        assert plan.notes["base_b"] == (10, 8)
        assert plan.notes["source_left"] is True

    def test_wrong_topology_type(self):
        with pytest.raises(TypeError):
            Mesh2D3Protocol().relay_plan(Mesh2D4(4, 4), (2, 2))


class TestFig8Broadcast:
    @pytest.fixture(scope="class")
    def compiled(self):
        mesh = Mesh2D3(20, 14)
        return mesh, Mesh2D3Protocol().compile(mesh, (10, 7))

    def test_full_reachability(self, compiled):
        _, result = compiled
        assert result.reached_all

    def test_audits_clean(self, compiled):
        mesh, result = compiled
        report = validate_broadcast(mesh, result.schedule, result.source)
        assert report.ok, report.issues

    def test_relay_density_near_half(self, compiled):
        """2D-3's optimal ETR of 2/3 needs about one relay per two nodes;
        the realised relay fraction must stay in that regime."""
        mesh, result = compiled
        relays = len({v for _, v in result.trace.tx_events})
        assert relays <= 0.75 * mesh.num_nodes


class TestPaperMesh:
    def test_central_reaches_all(self, compiled_central):
        assert compiled_central["2D-3"].reached_all

    def test_corner_reaches_all(self, compiled_corner):
        assert compiled_corner["2D-3"].reached_all

    def test_tx_in_paper_regime(self, compiled_central):
        """Paper Table 3/4: 301-308 transmissions; our generalised rules
        land within ~20% (EXPERIMENTS.md discusses the gap)."""
        tx = compiled_central["2D-3"].trace.num_tx
        assert 255 <= tx <= 380

    def test_delay_bounded(self, paper_meshes, compiled_corner):
        """Corner-source delay must stay within ~1.5x the graph diameter
        (the paper's own Table 5 claims the diameter itself)."""
        mesh = paper_meshes["2D-3"]
        delay = compiled_corner["2D-3"].trace.delay_slots
        assert mesh.diameter <= delay <= 1.5 * mesh.diameter


class TestManySources:
    @pytest.mark.parametrize("src", [(1, 1), (12, 9), (12, 1), (1, 9),
                                     (6, 5), (11, 2)])
    def test_reachability(self, src):
        mesh = Mesh2D3(12, 9)
        result = Mesh2D3Protocol().compile(mesh, src)
        assert result.reached_all

    @pytest.mark.parametrize("shape", [(8, 6), (15, 4), (4, 15), (9, 9)])
    def test_reachability_shapes(self, shape):
        mesh = Mesh2D3(*shape)
        src = (max(1, shape[0] // 2), max(1, shape[1] // 2))
        result = Mesh2D3Protocol().compile(mesh, src)
        assert result.reached_all
