"""Tests for the baseline and ablation protocols."""

import pytest

from repro.core import protocol_for
from repro.core.baselines import (DelayedMesh2D4Protocol, FloodingProtocol,
                                  GossipProtocol, StaggeredFloodingProtocol)
from repro.sim import compute_metrics
from repro.topology import Mesh2D4, RandomDiskTopology


class TestFlooding:
    def test_every_node_is_relay(self):
        mesh = Mesh2D4(6, 4)
        plan = FloodingProtocol().relay_plan(mesh, (3, 2))
        assert plan.relay_mask.all()

    def test_raw_flooding_collides_heavily(self):
        """Blind flooding on a lattice causes collisions — the Section 3
        motivation for choosing relays deliberately."""
        mesh = Mesh2D4(10, 10)
        result = FloodingProtocol().compile(
            mesh, (5, 5), completion=False, repair=False)
        assert result.trace.num_collisions > 0

    def test_repaired_flooding_reaches_all_but_costs_more(self):
        mesh = Mesh2D4(10, 10)
        flood = FloodingProtocol().compile(mesh, (5, 5))
        proto = protocol_for("2D-4").compile(mesh, (5, 5))
        assert flood.reached_all
        assert flood.trace.num_tx > proto.trace.num_tx

    def test_runs_on_any_topology(self):
        topo = RandomDiskTopology(25, 10, 10, 4.0, seed=2)
        result = FloodingProtocol().compile(topo, (1,))
        assert result.trace.reachability > 0

    def test_supports_everything(self):
        assert FloodingProtocol().supports(Mesh2D4(3, 3))


class TestStaggeredFlooding:
    def test_stagger_reduces_collisions(self):
        mesh = Mesh2D4(10, 10)
        raw = FloodingProtocol().compile(
            mesh, (5, 5), completion=False, repair=False)
        staggered = StaggeredFloodingProtocol(phases=3).compile(
            mesh, (5, 5), completion=False, repair=False)
        assert staggered.trace.num_collisions < raw.trace.num_collisions

    def test_phases_validated(self):
        with pytest.raises(ValueError):
            StaggeredFloodingProtocol(phases=0)

    def test_deterministic(self):
        mesh = Mesh2D4(8, 8)
        a = StaggeredFloodingProtocol().relay_plan(mesh, (4, 4))
        b = StaggeredFloodingProtocol().relay_plan(mesh, (4, 4))
        assert (a.extra_delay == b.extra_delay).all()


class TestGossip:
    def test_probability_controls_relay_count(self):
        mesh = Mesh2D4(16, 16)
        lo = GossipProtocol(p=0.2, seed=1).relay_plan(mesh, (8, 8))
        hi = GossipProtocol(p=0.9, seed=1).relay_plan(mesh, (8, 8))
        assert lo.num_relays < hi.num_relays

    def test_source_always_relay(self):
        mesh = Mesh2D4(8, 8)
        plan = GossipProtocol(p=0.0, seed=3).relay_plan(mesh, (4, 4))
        assert plan.relay_mask[mesh.index((4, 4))]
        assert plan.num_relays == 1

    def test_seed_reproducibility(self):
        mesh = Mesh2D4(8, 8)
        a = GossipProtocol(p=0.5, seed=42).relay_plan(mesh, (4, 4))
        b = GossipProtocol(p=0.5, seed=42).relay_plan(mesh, (4, 4))
        assert (a.relay_mask == b.relay_mask).all()

    def test_p_validated(self):
        with pytest.raises(ValueError):
            GossipProtocol(p=1.5)

    def test_low_p_misses_nodes_without_repair(self):
        mesh = Mesh2D4(12, 12)
        result = GossipProtocol(p=0.3, seed=0).compile(
            mesh, (6, 6), completion=False, repair=False)
        assert result.trace.reachability < 1.0


class TestDelayedAblation:
    """Section 3.1's rejected design: delay instead of retransmit."""

    def test_no_designated_retransmitters(self):
        mesh = Mesh2D4(16, 16)
        plan = DelayedMesh2D4Protocol().relay_plan(mesh, (6, 8))
        assert plan.repeat_offsets == {}

    def test_column_starts_delayed(self):
        mesh = Mesh2D4(16, 16)
        plan = DelayedMesh2D4Protocol().relay_plan(mesh, (6, 8))
        for x in plan.notes["columns"]:
            assert plan.extra_delay[mesh.index((x, 7))] == 1
            assert plan.extra_delay[mesh.index((x, 9))] == 1

    def test_still_reaches_all(self):
        mesh = Mesh2D4(16, 16)
        result = DelayedMesh2D4Protocol().compile(mesh, (6, 8))
        assert result.reached_all

    def test_paper_tradeoff_more_duplicates_or_delay(self):
        """The paper argues retransmission beats delaying: the delayed
        variant must not beat the paper protocol on both delay and
        receptions simultaneously."""
        mesh = Mesh2D4(32, 16)
        delayed = DelayedMesh2D4Protocol().compile(mesh, (16, 8))
        normal = protocol_for("2D-4").compile(mesh, (16, 8))
        d = compute_metrics(delayed.trace, mesh)
        n = compute_metrics(normal.trace, mesh)
        assert delayed.reached_all
        assert (d.delay_slots, d.rx) >= (n.delay_slots, n.rx) or \
            d.delay_slots > n.delay_slots or d.rx >= n.rx
