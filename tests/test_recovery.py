"""Unit tests for the closed-loop recovery layer (beyond the paper).

``src/repro/sim/recovery.py`` adds overhear-ACKs, timeout/backoff
retransmission, Trickle-style suppression, and a last-resort repair
election on top of the slot-synchronous engines.  These tests pin the
behavioural contract on the serial engine; the batch engine is held to
exact serial equivalence by ``tests/test_recovery_differential.py``.
"""

import numpy as np
import pytest

from repro.analysis import harden_plan
from repro.core import protocol_for
from repro.radio import CounterBernoulliLoss
from repro.sim import (RecoveryPolicy, replay, run_reactive,
                       relay_like_from_schedule, relay_like_mask)
from repro.topology import Mesh2D4, Mesh2D8


@pytest.fixture
def mesh():
    return Mesh2D4(12, 8)


@pytest.fixture
def plan(mesh):
    return protocol_for("2D-4").relay_plan(mesh, (6, 4))


def reactive(mesh, plan, src=(6, 4), **kw):
    return run_reactive(mesh, mesh.index(src), plan.relay_mask,
                        extra_delay=plan.extra_delay,
                        repeat_offsets=plan.repeat_offsets, **kw)


class TestRecoveryPolicy:
    def test_defaults(self):
        pol = RecoveryPolicy()
        assert pol.timeout == 2
        assert pol.max_retries == 3
        assert pol.backoff == 2
        assert pol.suppression_k == 2
        assert pol.election is True

    @pytest.mark.parametrize("kw", [
        {"timeout": 0},
        {"max_retries": -1},
        {"backoff": 0},
        {"suppression_k": -1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kw)

    def test_election_delay_spans_retry_budget(self):
        pol = RecoveryPolicy(timeout=3, max_retries=2)
        # elections must not race the dead relay's own retry schedule
        assert pol.election_delay == 3 * (2 + 1)

    def test_label(self):
        assert RecoveryPolicy(2, 3, 2, 1).label() == "recovery-t2r3b2k1"
        assert (RecoveryPolicy(2, 2, 1, 2, election=False).label()
                == "recovery-t2r2b1k2-noelect")

    def test_frozen(self):
        with pytest.raises(Exception):
            RecoveryPolicy().timeout = 5


class TestRelayLikeMasks:
    def test_mask_includes_relays_and_source(self, mesh, plan):
        src = mesh.index((6, 4))
        mask = relay_like_mask(mesh.num_nodes, plan.relay_mask, src)
        assert mask[src]
        assert (mask[plan.relay_mask]).all()
        # a non-relay, non-source node must stay out
        others = np.nonzero(~plan.relay_mask)[0]
        others = others[others != src]
        assert not mask[others].any()

    def test_from_schedule(self, mesh):
        compiled = protocol_for("2D-4").compile(mesh, (6, 4))
        mask = relay_like_from_schedule(mesh.num_nodes, compiled.schedule)
        assert set(np.nonzero(mask)[0]) == \
            set(compiled.schedule.transmitting_nodes())


class TestCleanChannel:
    def test_reach_stays_perfect(self, mesh, plan):
        trace = reactive(mesh, plan, recovery=RecoveryPolicy())
        assert trace.reachability == 1.0

    def test_no_retry_storm(self, mesh, plan):
        """On a clean channel nearly every neighbour ACKs by the first
        check, so recovery may only add a handful of transmissions."""
        base = reactive(mesh, plan)
        rec = reactive(mesh, plan, recovery=RecoveryPolicy())
        assert rec.num_tx <= base.num_tx + 10

    def test_noop_policy_is_baseline(self, mesh, plan):
        """max_retries=0 + election=False must leave the wave untouched."""
        base = reactive(mesh, plan)
        rec = reactive(mesh, plan, recovery=RecoveryPolicy(
            max_retries=0, election=False))
        assert rec.tx_events == base.tx_events
        assert rec.rx_events == base.rx_events
        assert (rec.first_rx == base.first_rx).all()


class TestLossyChannel:
    def test_recovery_beats_bare_plan(self, mesh, plan):
        loss = lambda: CounterBernoulliLoss(0.25, seed=3)
        base = reactive(mesh, plan, loss=loss())
        rec = reactive(mesh, plan, loss=loss(),
                       recovery=RecoveryPolicy(election=False))
        assert rec.reachability > base.reachability

    def test_recovery_cheaper_than_blind_r2(self, mesh, plan):
        """The headline trade: recovery must reach at least blind r=2's
        coverage from fewer transmissions on the same channel."""
        loss = lambda: CounterBernoulliLoss(0.2, seed=5)
        blind = reactive(mesh, harden_plan(plan, 2), loss=loss())
        rec = reactive(mesh, plan, loss=loss(), recovery=RecoveryPolicy(
            timeout=2, max_retries=2, backoff=1, suppression_k=2,
            election=False))
        assert rec.reachability >= blind.reachability
        assert rec.num_tx < blind.num_tx

    def test_suppression_reduces_transmissions(self, mesh, plan):
        """Enabling the Trickle counter may only remove retransmissions
        relative to the suppression-free run of the same policy."""
        loss = lambda: CounterBernoulliLoss(0.3, seed=2)
        kw = dict(timeout=2, max_retries=3, backoff=1, election=False)
        free = reactive(mesh, plan, loss=loss(),
                        recovery=RecoveryPolicy(suppression_k=0, **kw))
        trickle = reactive(mesh, plan, loss=loss(),
                           recovery=RecoveryPolicy(suppression_k=1, **kw))
        assert trickle.num_tx <= free.num_tx

    def test_bigger_retry_budget_not_worse(self, mesh, plan):
        loss = lambda: CounterBernoulliLoss(0.3, seed=9)
        r1 = reactive(mesh, plan, loss=loss(), recovery=RecoveryPolicy(
            max_retries=1, election=False))
        r3 = reactive(mesh, plan, loss=loss(), recovery=RecoveryPolicy(
            max_retries=3, election=False))
        assert r3.reachability >= r1.reachability


class TestElection:
    """Last-resort repair: a covered non-relay substitutes for a relay
    that never transmitted.

    The election only has teeth on 2D-8: its Moore neighbourhood has
    triangles, so a substitute adjacent to the dead relay shares
    neighbours with it.  On the triangle-free lattices (2D-4, 2D-3,
    3D-6) an elected substitute reaches none of the dead relay's other
    neighbours, so no local repair is possible there — by anyone.
    """

    def test_election_repairs_dead_relay_2d8(self):
        topo = Mesh2D8(8, 8)
        plan = protocol_for("2D-8").relay_plan(topo, (4, 4))
        src = topo.index((4, 4))
        dead = np.zeros(topo.num_nodes, dtype=bool)
        dead[topo.index((5, 3))] = True
        kw = dict(extra_delay=plan.extra_delay,
                  repeat_offsets=plan.repeat_offsets, dead_mask=dead)
        pol = dict(timeout=2, max_retries=2, backoff=2, suppression_k=0)
        base = run_reactive(topo, src, plan.relay_mask, **kw)
        noelect = run_reactive(topo, src, plan.relay_mask,
                               recovery=RecoveryPolicy(election=False,
                                                       **pol), **kw)
        elect = run_reactive(topo, src, plan.relay_mask,
                             recovery=RecoveryPolicy(election=True,
                                                     **pol), **kw)
        # retries alone cannot substitute for a dead relay...
        assert noelect.reachability == base.reachability
        # ...the election can (partially): (5,3)'s hole shrinks a lot
        assert base.reachability < 0.75
        assert elect.reachability > 0.95

    def test_election_cannot_repair_triangle_free(self, mesh, plan):
        """On 2D-4 a dead relay's other neighbours are unreachable by any
        single substitute — election must not change reachability."""
        src = mesh.index((6, 4))
        relays = np.nonzero(plan.relay_mask)[0]
        victim = int(next(v for v in relays if v != src))
        dead = np.zeros(mesh.num_nodes, dtype=bool)
        dead[victim] = True
        pol = dict(timeout=2, max_retries=2, backoff=2, suppression_k=0)
        noelect = reactive(mesh, plan, dead_mask=dead,
                           recovery=RecoveryPolicy(election=False, **pol))
        elect = reactive(mesh, plan, dead_mask=dead,
                         recovery=RecoveryPolicy(election=True, **pol))
        assert elect.reachability == noelect.reachability


class TestReplayRecovery:
    def test_replay_recovery_beats_bare_replay(self, mesh):
        compiled = protocol_for("2D-4").compile(mesh, (6, 4))
        src = mesh.index((6, 4))
        loss = lambda: CounterBernoulliLoss(0.25, seed=4)
        base = replay(mesh, compiled.schedule, src, loss=loss())
        rec = replay(mesh, compiled.schedule, src, loss=loss(),
                     recovery=RecoveryPolicy(election=False))
        assert rec.reachability > base.reachability

    def test_replay_extends_past_schedule_horizon(self, mesh):
        """Backoff can push retries beyond the static schedule's last
        slot; the replay loop must keep stepping slots to honour them."""
        compiled = protocol_for("2D-4").compile(mesh, (6, 4))
        src = mesh.index((6, 4))
        rec = replay(mesh, compiled.schedule, src,
                     loss=CounterBernoulliLoss(0.4, seed=8),
                     recovery=RecoveryPolicy(timeout=3, max_retries=3,
                                             backoff=2, election=False))
        last_tx = max(t for t, _ in rec.tx_events)
        assert last_tx > compiled.schedule.max_slot

    def test_replay_clean_channel_noop(self, mesh):
        compiled = protocol_for("2D-4").compile(mesh, (6, 4))
        src = mesh.index((6, 4))
        base = replay(mesh, compiled.schedule, src)
        rec = replay(mesh, compiled.schedule, src,
                     recovery=RecoveryPolicy(max_retries=0, election=False))
        assert rec.rx_events == base.rx_events
        assert (rec.first_rx == base.first_rx).all()
