"""The sharded artifact store: round-trips, guards, migration, concurrency.

The store's contract is deliberately forgiving on the read side — any
kind of damage (stale format version, torn index, data file shorter
than the index claims) must surface as a cache *miss*, never a
mis-parse or a crash — and strict on the write side: concurrent
writers may interleave freely without producing torn indexes or
unreadable entries.
"""

import json
import multiprocessing
import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core.cache import ScheduleCache
from repro.core.registry import protocol_for
from repro.core.store import (LEGACY_FORMAT_VERSION, STORE_FORMAT_VERSION,
                              ArtifactStore, shard_id, trace_counts)
from repro.radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from repro.sim.metrics import compute_metrics
from repro.topology import Mesh2D4

PROTO = "2D-4"


def _mesh(m=8, n=8):
    return Mesh2D4(m, n)


def _compile(topology, source):
    return protocol_for(topology).compile(topology, source)


def _put_compiled(store, topology, compiled, source):
    store.put(topology, PROTO, topology.index(source),
              schedule=compiled.schedule,
              counts=trace_counts(compiled.trace),
              completions=compiled.completions,
              repairs=compiled.repairs, rounds=compiled.rounds)


def _shard_paths(store, topology):
    sid = shard_id(topology.fingerprint, PROTO)
    return store.path / f"{sid}.json", store.path / f"{sid}.bin"


def test_entry_round_trip_and_counts_metrics(tmp_path):
    topology = _mesh()
    source = (3, 5)
    compiled = _compile(topology, source)
    store = ArtifactStore(tmp_path)
    _put_compiled(store, topology, compiled, source)

    entry = ArtifactStore(tmp_path).get(topology, PROTO,
                                        topology.index(source))
    assert entry is not None and entry.has_schedule
    want_slots, want_nodes = compiled.schedule.to_arrays()
    got_slots, got_nodes = entry.schedule().to_arrays()
    assert np.array_equal(got_slots, want_slots)
    assert np.array_equal(got_nodes, want_nodes)
    # counts-derived metrics are field-for-field the direct metrics
    direct = compute_metrics(compiled.trace, topology, PAPER_RADIO_MODEL,
                             PAPER_PACKET_BITS)
    assert entry.metrics(topology) == direct


def test_replay_differential_matches_stored_counts(tmp_path):
    """The verification path: replaying the stored schedule rebuilds a
    trace whose metrics equal the counts-derived warm metrics."""
    topology = _mesh()
    source = (7, 2)
    cache = ScheduleCache(tmp_path)
    protocol = protocol_for(topology)
    protocol.compile(topology, source, cache=cache)  # populates the store

    warm = ScheduleCache(tmp_path)
    counts_metrics = warm.cached_metrics(protocol, topology, source)
    assert counts_metrics is not None
    replayed = protocol.compile(topology, source,
                                cache=ScheduleCache(tmp_path))
    assert compute_metrics(replayed.trace, topology, PAPER_RADIO_MODEL,
                           PAPER_PACKET_BITS) == counts_metrics


def test_unknown_format_version_reads_as_miss_and_rebuilds(tmp_path):
    topology = _mesh()
    source = (1, 1)
    store = ArtifactStore(tmp_path)
    _put_compiled(store, topology, _compile(topology, source), source)
    index_path, _ = _shard_paths(store, topology)

    index = json.loads(index_path.read_text())
    index["version"] = STORE_FORMAT_VERSION + 1
    index_path.write_text(json.dumps(index))

    fresh = ArtifactStore(tmp_path)
    assert fresh.get(topology, PROTO, topology.index(source)) is None
    # the next publish rebuilds the shard from scratch
    other = (2, 2)
    _put_compiled(fresh, topology, _compile(topology, other), other)
    assert fresh.get(topology, PROTO, topology.index(other)) is not None
    assert json.loads(index_path.read_text())["version"] \
        == STORE_FORMAT_VERSION


def test_torn_index_reads_as_miss_and_recovers(tmp_path):
    topology = _mesh()
    source = (4, 4)
    store = ArtifactStore(tmp_path)
    _put_compiled(store, topology, _compile(topology, source), source)
    index_path, _ = _shard_paths(store, topology)

    blob = index_path.read_bytes()
    index_path.write_bytes(blob[:len(blob) // 2])  # torn mid-write

    fresh = ArtifactStore(tmp_path)
    assert fresh.get(topology, PROTO, topology.index(source)) is None
    _put_compiled(fresh, topology, _compile(topology, source), source)
    assert fresh.get(topology, PROTO, topology.index(source)) is not None


def test_data_file_shorter_than_index_is_a_miss(tmp_path):
    topology = _mesh()
    source = (5, 3)
    store = ArtifactStore(tmp_path)
    _put_compiled(store, topology, _compile(topology, source), source)
    index_path, data_path = _shard_paths(store, topology)

    data_path.write_bytes(data_path.read_bytes()[:8])

    fresh = ArtifactStore(tmp_path)
    entry = fresh.get(topology, PROTO, topology.index(source))
    assert entry is None  # offsets beyond the mapped size are not trusted


def test_foreign_fingerprint_is_a_miss(tmp_path):
    topology = _mesh()
    source = (2, 6)
    store = ArtifactStore(tmp_path)
    _put_compiled(store, topology, _compile(topology, source), source)
    index_path, _ = _shard_paths(store, topology)

    index = json.loads(index_path.read_text())
    index["fingerprint"] = "0" * len(index["fingerprint"])
    index_path.write_text(json.dumps(index))

    fresh = ArtifactStore(tmp_path)
    assert fresh.get(topology, PROTO, topology.index(source)) is None


# -- legacy migration -----------------------------------------------------

def _legacy_payload(topology, compiled, source):
    by_slot = {}
    slots, nodes = compiled.schedule.to_arrays()
    for slot, node in zip(slots.tolist(), nodes.tolist()):
        by_slot.setdefault(str(slot), []).append(node)
    return {
        "version": LEGACY_FORMAT_VERSION,
        "fingerprint": topology.fingerprint,
        "protocol": PROTO,
        "completion": True,
        "repair": True,
        "source_index": topology.index(source),
        "schedule": by_slot,
        "completions": [list(e) for e in compiled.completions],
        "repairs": [list(e) for e in compiled.repairs],
        "rounds": compiled.rounds,
    }


def test_legacy_per_entry_cache_is_imported(tmp_path):
    topology = _mesh()
    source = (6, 6)
    compiled = _compile(topology, source)
    legacy_name = "ab" * 32 + ".json"
    (tmp_path / legacy_name).write_text(
        json.dumps(_legacy_payload(topology, compiled, source)))

    store = ArtifactStore(tmp_path)
    assert store.migrated_entries == 1
    # original parked, not re-scanned on the next open
    assert not (tmp_path / legacy_name).exists()
    assert (tmp_path / "legacy-imported" / legacy_name).exists()

    entry = store.get(topology, PROTO, topology.index(source))
    assert entry is not None and entry.has_schedule
    assert entry.counts is None  # legacy entries never stored counts
    assert entry.metrics(topology) is None  # callers fall back to replay
    want_slots, want_nodes = compiled.schedule.to_arrays()
    got_slots, got_nodes = entry.schedule().to_arrays()
    assert np.array_equal(got_slots, want_slots)
    assert np.array_equal(got_nodes, want_nodes)

    # the cache serves it through the replay path as a disk hit
    cache = ScheduleCache(tmp_path)
    replayed = protocol_for(topology).compile(topology, source, cache=cache)
    assert cache.disk_hits == 1
    assert compute_metrics(replayed.trace, topology, PAPER_RADIO_MODEL,
                           PAPER_PACKET_BITS) \
        == compute_metrics(compiled.trace, topology, PAPER_RADIO_MODEL,
                           PAPER_PACKET_BITS)


def test_unreadable_legacy_entry_warns_and_never_crashes(tmp_path):
    (tmp_path / ("cd" * 32 + ".json")).write_text("{ not json")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        store = ArtifactStore(tmp_path)
    assert store.migrated_entries == 0
    assert any("legacy" in str(w.message) for w in caught)
    # the broken file is parked so the warning fires once, not per open
    assert (tmp_path / "legacy-imported" / ("cd" * 32 + ".json")).exists()


# -- concurrency ----------------------------------------------------------

def _writer_job(store_dir, sources):
    """Worker: compile and publish a batch of sources (module-level so
    the fork-context pool can resolve it)."""
    topology = _mesh()
    store = ArtifactStore(store_dir)
    for source in sources:
        compiled = _compile(topology, source)
        _put_compiled(store, topology, compiled, source)
    return len(sources)


def test_concurrent_writers_produce_a_consistent_shard(tmp_path):
    """Overlapping multi-process writers: no torn index, every entry
    readable, schedules identical to fresh compiles."""
    topology = _mesh()
    all_sources = [(r, c) for r in (1, 3, 5, 7) for c in (2, 4, 6, 8)]
    # overlapping batches: both workers race on the shared middle slice
    batches = [all_sources[:12], all_sources[4:]]
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(2) as pool:
        done = pool.starmap(_writer_job,
                            [(str(tmp_path), b) for b in batches])
    assert done == [len(b) for b in batches]

    index_path, _ = _shard_paths(ArtifactStore(tmp_path), topology)
    index = json.loads(index_path.read_text())  # parses => not torn
    assert index["version"] == STORE_FORMAT_VERSION
    assert len(index["entries"]) == len(all_sources)

    store = ArtifactStore(tmp_path)
    for source in all_sources:
        entry = store.get(topology, PROTO, topology.index(source))
        assert entry is not None and entry.has_schedule, source
        compiled = _compile(topology, source)
        want_slots, want_nodes = compiled.schedule.to_arrays()
        got_slots, got_nodes = entry.schedule().to_arrays()
        assert np.array_equal(got_slots, want_slots), source
        assert np.array_equal(got_nodes, want_nodes), source
        assert entry.metrics(topology) == compute_metrics(
            compiled.trace, topology, PAPER_RADIO_MODEL, PAPER_PACKET_BITS)


def test_reader_revalidates_despite_equal_mtime_and_size(tmp_path):
    """Rapid republishes can leave (mtime, size) unchanged on coarse
    filesystems; cached reader snapshots must still refresh (every
    atomic index publish lands on a fresh inode, and st_ino is part of
    the staleness stamp)."""
    topology = _mesh()
    key = "ab" * 32
    writer = ArtifactStore(tmp_path)
    writer.store_class_profile(topology, PROTO, key,
                               {"zero_fix": True, "rounds": 1})
    index_path, _ = _shard_paths(writer, topology)
    st = index_path.stat()

    reader = ArtifactStore(tmp_path)
    assert reader.class_profile(topology, PROTO, key)["rounds"] == 1

    # forge the collision: an equal-length index JSON with a pinned mtime
    writer.store_class_profile(topology, PROTO, key,
                               {"zero_fix": True, "rounds": 2})
    os.utime(index_path, ns=(st.st_atime_ns, st.st_mtime_ns))
    assert index_path.stat().st_size == st.st_size
    assert index_path.stat().st_mtime_ns == st.st_mtime_ns
    assert reader.class_profile(topology, PROTO, key)["rounds"] == 2


def test_lru_eviction_counts_and_bounds_memory(tmp_path):
    topology = _mesh()
    cache = ScheduleCache(tmp_path, max_entries=4)
    protocol = protocol_for(topology)
    sources = [(1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6)]
    for source in sources:
        protocol.compile(topology, source, cache=cache)
    assert len(cache) == 4
    assert cache.evictions == 2
    assert cache.misses == len(sources)
    # evicted entries are still store hits, not recompiles
    protocol.compile(topology, sources[0], cache=cache)
    assert cache.disk_hits == 1
    assert cache.misses == len(sources)
    stats = cache.stats()
    assert stats["max_entries"] == 4
    assert stats["memory_entries"] == 4
    assert stats["evictions"] >= 2


def test_store_rejects_file_path(tmp_path):
    target = tmp_path / "not-a-dir"
    target.write_text("x")
    with pytest.raises(ValueError):
        ArtifactStore(target)


# -- garbage collection ---------------------------------------------------

def test_gc_round_trip_reclaims_orphans(tmp_path):
    """GC drops bytes no index entry references (crashed-writer orphans)
    and every live entry round-trips identically afterwards."""
    topology = _mesh()
    sources = [(1, 2), (3, 4), (5, 6)]
    store = ArtifactStore(tmp_path)
    compiled = {s: _compile(topology, s) for s in sources}
    for source in sources:
        _put_compiled(store, topology, compiled[source], source)
    _, data_path = _shard_paths(store, topology)
    live_bytes = data_path.stat().st_size

    # simulate a crashed writer: appended record, index never published
    with open(data_path, "ab") as fh:
        fh.write(b"\x00" * 160)
    assert data_path.stat().st_size == live_bytes + 160

    stats = store.gc()
    assert stats["shards"] == 1
    assert stats["entries"] == len(sources)
    assert stats["dropped"] == 0
    assert stats["reclaimed"] == 160
    assert data_path.stat().st_size == live_bytes

    # idempotent: a second pass finds nothing to reclaim
    again = ArtifactStore(tmp_path).gc()
    assert again["reclaimed"] == 0

    fresh = ArtifactStore(tmp_path)
    for source in sources:
        entry = fresh.get(topology, PROTO, topology.index(source))
        assert entry is not None and entry.has_schedule, source
        want_slots, want_nodes = compiled[source].schedule.to_arrays()
        got_slots, got_nodes = entry.schedule().to_arrays()
        assert np.array_equal(got_slots, want_slots), source
        assert np.array_equal(got_nodes, want_nodes), source
        assert entry.metrics(topology) == compute_metrics(
            compiled[source].trace, topology, PAPER_RADIO_MODEL,
            PAPER_PACKET_BITS)


def test_gc_demotes_truncated_entries_and_keeps_counts(tmp_path):
    """An entry whose record was lost to truncation (published index,
    torn data file) keeps its warm counts as a metrics-only entry."""
    topology = _mesh()
    source = (2, 3)
    store = ArtifactStore(tmp_path)
    compiled = _compile(topology, source)
    _put_compiled(store, topology, compiled, source)
    _, data_path = _shard_paths(store, topology)
    data_path.write_bytes(data_path.read_bytes()[:8])

    stats = ArtifactStore(tmp_path).gc()
    assert stats["dropped"] == 1 and stats["entries"] == 0

    entry = ArtifactStore(tmp_path).get(topology, PROTO,
                                        topology.index(source))
    assert entry is not None and not entry.has_schedule
    assert entry.metrics(topology) == compute_metrics(
        compiled.trace, topology, PAPER_RADIO_MODEL, PAPER_PACKET_BITS)


def test_gc_skips_foreign_json_files(tmp_path):
    (tmp_path / "notes.json").write_text('{"hello": 1}')
    store = ArtifactStore(tmp_path)
    stats = store.gc()
    assert stats["shards"] == 0
    assert json.loads((tmp_path / "notes.json").read_text()) == {"hello": 1}


def _gc_reader_job(store_dir, source_indexes, barrier, results):
    """Worker: hammer reads before/during/after a GC in the parent.

    Every read must be either a full hit identical to the pre-GC
    content or a clean miss — never an exception, never torn data."""
    topology = _mesh()
    store = ArtifactStore(store_dir)
    expected = {}
    for idx in source_indexes:
        entry = store.get(topology, PROTO, idx)
        expected[idx] = (entry.slots.copy(), entry.nodes.copy())
    barrier.wait()  # parent starts GC loop now
    ok = True
    hits = 0
    for _ in range(300):
        for idx in source_indexes:
            entry = store.get(topology, PROTO, idx)
            if entry is None or not entry.has_schedule:
                continue  # stale-window miss: allowed
            hits += 1
            want_slots, want_nodes = expected[idx]
            if not (np.array_equal(entry.slots, want_slots)
                    and np.array_equal(entry.nodes, want_nodes)):
                ok = False
    results.put((ok, hits))


def test_concurrent_reader_survives_gc(tmp_path):
    """A reader process mid-flight across repeated GC passes never sees
    torn or foreign bytes — only identical hits or clean misses."""
    topology = _mesh()
    sources = [(1, 1), (3, 5), (6, 2), (7, 7)]
    store = ArtifactStore(tmp_path)
    for source in sources:
        _put_compiled(store, topology, _compile(topology, source), source)
    _, data_path = _shard_paths(store, topology)
    idxs = [topology.index(s) for s in sources]

    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    results = ctx.Queue()
    proc = ctx.Process(target=_gc_reader_job,
                       args=(str(tmp_path), idxs, barrier, results))
    proc.start()
    barrier.wait()
    gc_store = ArtifactStore(tmp_path)
    for _ in range(30):
        # keep re-orphaning bytes so every pass truly rewrites the bin
        with open(data_path, "ab") as fh:
            fh.write(b"\x00" * 64)
        stats = gc_store.gc()
        assert stats["dropped"] == 0
    ok, hits = results.get(timeout=60)
    proc.join(timeout=60)
    assert proc.exitcode == 0
    assert ok, "reader observed torn or foreign schedule bytes"
    assert hits > 0  # the reader did exercise the hit path
    # post-GC store is fully intact
    fresh = ArtifactStore(tmp_path)
    for source in sources:
        entry = fresh.get(topology, PROTO, topology.index(source))
        assert entry is not None and entry.has_schedule
