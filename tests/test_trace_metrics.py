"""Unit tests for trace accounting and paper metrics."""

import numpy as np
import pytest

from repro.radio import PAPER_RADIO_MODEL, FirstOrderRadioModel
from repro.sim import compute_metrics, run_reactive
from repro.sim.trace import BroadcastTrace
from repro.topology import Mesh2D4


def make_trace():
    """Hand-built trace on a 1x4 line: 0 -> 1 -> 2 -> 3 with one dup."""
    t = BroadcastTrace(num_nodes=4, source=0,
                       first_rx=np.array([0, 1, 2, 3]))
    t.tx_events = [(1, 0), (2, 1), (3, 2)]
    t.rx_events = [(1, 1, 0), (2, 2, 1), (3, 3, 2), (3, 1, 2)]
    t.collision_events = [(2, 0)]
    return t


class TestTraceCounts:
    def test_headline_counts(self):
        t = make_trace()
        assert t.num_tx == 3
        assert t.num_rx == 4
        assert t.num_first_rx == 3
        assert t.num_duplicate_rx == 1
        assert t.num_collisions == 1
        assert t.delay_slots == 3
        assert t.last_activity_slot == 3
        assert t.reachability == 1.0
        assert t.all_reached

    def test_unreached(self):
        t = BroadcastTrace(num_nodes=3, source=0,
                           first_rx=np.array([0, 2, -1]))
        assert not t.all_reached
        assert t.reachability == pytest.approx(2 / 3)
        assert t.delay_slots == -1
        assert t.unreached_nodes().tolist() == [2]

    def test_delivery_tree(self):
        t = make_trace()
        tree = t.delivery_tree()
        assert tree == {1: 0, 2: 1, 3: 2}

    def test_delivery_tree_prefers_first_reception(self):
        t = BroadcastTrace(num_nodes=3, source=0,
                           first_rx=np.array([0, 1, 1]))
        t.rx_events = [(1, 1, 0), (1, 2, 0), (2, 2, 1)]
        assert t.delivery_tree() == {1: 0, 2: 0}

    def test_per_node_counts(self):
        t = make_trace()
        assert t.tx_count_per_node().tolist() == [1, 1, 1, 0]
        assert t.rx_count_per_node().tolist() == [0, 2, 1, 1]

    def test_retransmitting_nodes(self):
        t = make_trace()
        t.tx_events.append((4, 1))
        assert t.retransmitting_nodes() == [1]

    def test_as_schedule(self):
        t = make_trace()
        sched = t.as_schedule()
        assert set(sched) == {(1, 0), (2, 1), (3, 2)}


class TestComputeMetrics:
    def test_against_manual_energy(self):
        mesh = Mesh2D4(6, 1)
        relay = np.ones(6, dtype=bool)
        trace = run_reactive(mesh, 0, relay)
        m = compute_metrics(trace, mesh)
        e_tx = PAPER_RADIO_MODEL.tx_energy(512, mesh.tx_range())
        e_rx = PAPER_RADIO_MODEL.rx_energy(512)
        assert m.energy_j == pytest.approx(
            trace.num_tx * e_tx + trace.num_rx * e_rx)
        assert m.tx == trace.num_tx
        assert m.rx == trace.num_rx
        assert m.reached_all

    def test_collided_energy_flag_increases_energy(self):
        mesh = Mesh2D4(5, 1)
        relay = np.zeros(5, dtype=bool)
        # force a collision at node 2's position via two forced tx
        trace = run_reactive(mesh, 2, relay, forced_tx={2: [1, 3]})
        base = compute_metrics(trace, mesh)
        loud = compute_metrics(trace, mesh, count_collided_rx_energy=True)
        assert trace.num_collisions > 0
        assert loud.energy_j > base.energy_j
        assert loud.energy_j == pytest.approx(
            base.energy_j
            + trace.num_collisions * PAPER_RADIO_MODEL.rx_energy(512))

    def test_custom_model_and_bits(self):
        mesh = Mesh2D4(4, 1)
        relay = np.ones(4, dtype=bool)
        trace = run_reactive(mesh, 0, relay)
        model = FirstOrderRadioModel(e_elec=1e-6, e_amp=0.0)
        m = compute_metrics(trace, mesh, model=model, packet_bits=10)
        assert m.energy_j == pytest.approx(
            (trace.num_tx + trace.num_rx) * 1e-5)

    def test_as_row(self):
        mesh = Mesh2D4(4, 1)
        trace = run_reactive(mesh, 0, np.ones(4, dtype=bool))
        row = compute_metrics(trace, mesh).as_row()
        assert row["topology"] == "2D-4"
        assert row["tx"] == trace.num_tx
        assert 0 <= row["reachability"] <= 1
