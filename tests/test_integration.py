"""Integration and property-based tests across the whole stack.

The paper's headline correctness claim — "our one-to-all broadcast
protocols can achieve 100% reachability" — is asserted here over random
grid shapes and source positions for all four protocols, with the audit
replay as an independent witness.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (compute_metrics, make_topology, protocol_for,
                   validate_broadcast)
from repro.core import ideal_case, optimal_etr
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6


@st.composite
def mesh_and_source_2d(draw, cls, min_side=2, max_side=14):
    m = draw(st.integers(min_side, max_side))
    n = draw(st.integers(min_side, max_side))
    x = draw(st.integers(1, m))
    y = draw(st.integers(1, n))
    return cls(m, n), (x, y)


@st.composite
def mesh_and_source_3d(draw, max_side=6):
    m = draw(st.integers(2, max_side))
    n = draw(st.integers(2, max_side))
    l = draw(st.integers(1, max_side))
    src = (draw(st.integers(1, m)), draw(st.integers(1, n)),
           draw(st.integers(1, l)))
    return Mesh3D6(m, n, l), src


class TestReachabilityProperty:
    @given(mesh_and_source_2d(Mesh2D4))
    @settings(max_examples=25, deadline=None)
    def test_2d4(self, ms):
        mesh, src = ms
        result = protocol_for("2D-4").compile(mesh, src)
        assert result.reached_all
        validate_broadcast(mesh, result.schedule,
                           mesh.index(src)).raise_if_failed()

    @given(mesh_and_source_2d(Mesh2D8))
    @settings(max_examples=20, deadline=None)
    def test_2d8(self, ms):
        mesh, src = ms
        result = protocol_for("2D-8").compile(mesh, src)
        assert result.reached_all
        validate_broadcast(mesh, result.schedule,
                           mesh.index(src)).raise_if_failed()

    @given(mesh_and_source_2d(Mesh2D3, min_side=2))
    @settings(max_examples=20, deadline=None)
    def test_2d3(self, ms):
        mesh, src = ms
        result = protocol_for("2D-3").compile(mesh, src)
        assert result.reached_all
        validate_broadcast(mesh, result.schedule,
                           mesh.index(src)).raise_if_failed()

    @given(mesh_and_source_3d())
    @settings(max_examples=15, deadline=None)
    def test_3d6(self, ms):
        mesh, src = ms
        result = protocol_for("3D-6").compile(mesh, src)
        assert result.reached_all
        validate_broadcast(mesh, result.schedule,
                           mesh.index(src)).raise_if_failed()


class TestEfficiencyProperties:
    @given(mesh_and_source_2d(Mesh2D4, min_side=4))
    @settings(max_examples=15, deadline=None)
    def test_2d4_tx_bounded_by_density(self, ms):
        """The 2D-4 relay structure uses roughly one relay per 3 columns
        plus the source row; transmissions must stay well below the
        flooding bound of one per node plus overhead."""
        mesh, src = ms
        result = protocol_for("2D-4").compile(mesh, src)
        bound = mesh.num_nodes * 0.55 + mesh.m + mesh.n + 10
        assert result.trace.num_tx <= bound

    @given(mesh_and_source_2d(Mesh2D4, min_side=3))
    @settings(max_examples=15, deadline=None)
    def test_delay_at_least_eccentricity(self, ms):
        """No schedule can beat the hop-distance lower bound."""
        mesh, src = ms
        result = protocol_for("2D-4").compile(mesh, src)
        assert result.trace.delay_slots >= mesh.eccentricity(src)

    @given(mesh_and_source_2d(Mesh2D8, min_side=3))
    @settings(max_examples=15, deadline=None)
    def test_2d8_delay_lower_bound(self, ms):
        mesh, src = ms
        result = protocol_for("2D-8").compile(mesh, src)
        assert result.trace.delay_slots >= mesh.eccentricity(src)

    @given(mesh_and_source_2d(Mesh2D4, min_side=3))
    @settings(max_examples=10, deadline=None)
    def test_rx_bounded_by_tx_times_degree(self, ms):
        mesh, src = ms
        trace = protocol_for("2D-4").compile(mesh, src).trace
        assert trace.num_rx <= trace.num_tx * mesh.nominal_degree


class TestCrossTopologyClaims:
    """Section 4 qualitative findings on the paper's 512-node networks."""

    def test_more_neighbors_fewer_tx(self, paper_meshes, compiled_central):
        """'when the number of neighbors increase, the total number of
        transmissions decrease' (2D topologies)."""
        tx = {lab: compiled_central[lab].trace.num_tx
              for lab in ("2D-3", "2D-4", "2D-8")}
        assert tx["2D-3"] > tx["2D-4"] > tx["2D-8"]

    def test_more_neighbors_more_rx_per_tx(self, paper_meshes,
                                           compiled_central):
        """'...but the total number of receptions increase' — true in
        ratio: each transmission reaches more neighbours."""
        ratios = {}
        for lab in ("2D-3", "2D-4", "2D-8"):
            t = compiled_central[lab].trace
            ratios[lab] = t.num_rx / t.num_tx
        assert ratios["2D-3"] < ratios["2D-4"] < ratios["2D-8"]

    def test_protocol_energy_within_25pct_of_ideal(self, paper_meshes,
                                                   compiled_central):
        """'the total power consumption of our protocols is quite close
        to that of the ideal case'."""
        for label, mesh in paper_meshes.items():
            m = compute_metrics(compiled_central[label].trace, mesh)
            ideal = ideal_case(mesh)
            assert m.energy_j <= 1.25 * ideal.energy_j, label

    def test_all_protocols_reach_everything(self, compiled_central,
                                            compiled_corner):
        for results in (compiled_central, compiled_corner):
            for label, result in results.items():
                assert result.reached_all, label
