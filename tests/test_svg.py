"""Tests for the SVG figure renderer."""

import xml.dom.minidom as minidom

import pytest

from repro.core import protocol_for
from repro.topology import Mesh2D4, Mesh2D6, Mesh3D6
from repro.viz import broadcast_svg, save_broadcast_svg
from repro.viz.svg import (COLOR_IDLE, COLOR_RELAY, COLOR_RETRANSMIT,
                           COLOR_SOURCE, _classify)


@pytest.fixture(scope="module")
def compiled_2d():
    mesh = Mesh2D4(10, 6)
    return mesh, protocol_for("2D-4").compile(mesh, (5, 3))


class TestBroadcastSvg:
    def test_valid_xml(self, compiled_2d):
        mesh, compiled = compiled_2d
        svg = broadcast_svg(mesh, compiled)
        doc = minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"

    def test_one_circle_per_node(self, compiled_2d):
        mesh, compiled = compiled_2d
        svg = broadcast_svg(mesh, compiled)
        assert svg.count("<circle") == mesh.num_nodes

    def test_source_colored(self, compiled_2d):
        mesh, compiled = compiled_2d
        svg = broadcast_svg(mesh, compiled)
        assert COLOR_SOURCE in svg

    def test_labels_toggle(self, compiled_2d):
        mesh, compiled = compiled_2d
        plain = broadcast_svg(mesh, compiled)
        labelled = broadcast_svg(mesh, compiled, label_first_rx=True)
        assert "<text" not in plain
        assert labelled.count("<text") >= mesh.num_nodes - 1

    def test_3d_needs_plane(self):
        mesh = Mesh3D6(4, 4, 3)
        compiled = protocol_for("3D-6").compile(mesh, (2, 2, 2))
        with pytest.raises(ValueError):
            broadcast_svg(mesh, compiled)
        svg = broadcast_svg(mesh, compiled, plane_z=2)
        assert svg.count("<circle") == 16

    def test_hex_lattice_renders(self):
        mesh = Mesh2D6(8, 6)
        from repro.core.baselines import GreedyETRProtocol
        compiled = GreedyETRProtocol().compile(mesh, (4, 3))
        svg = broadcast_svg(mesh, compiled)
        minidom.parseString(svg)
        assert svg.count("<circle") == 48

    def test_classification(self, compiled_2d):
        mesh, compiled = compiled_2d
        colors = _classify(mesh, compiled)
        assert colors[compiled.source] == COLOR_SOURCE
        tx_counts = compiled.trace.tx_count_per_node()
        for idx in range(mesh.num_nodes):
            if idx == compiled.source:
                continue
            if tx_counts[idx] >= 2:
                assert colors[idx] == COLOR_RETRANSMIT
            elif tx_counts[idx] == 0:
                assert colors[idx] == COLOR_IDLE

    def test_save(self, tmp_path, compiled_2d):
        mesh, compiled = compiled_2d
        out = save_broadcast_svg(str(tmp_path / "fig.svg"), mesh, compiled)
        content = (tmp_path / "fig.svg").read_text()
        assert content.startswith("<svg")
        assert out.endswith("fig.svg")
