"""Unit tests for the 2D mesh topologies (paper Figs. 1-3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8

mesh_dims = st.tuples(st.integers(1, 12), st.integers(1, 12))


class TestMesh2D4:
    def test_interior_neighbors(self):
        mesh = Mesh2D4(5, 5)
        assert mesh.neighbors((3, 3)) == [(2, 3), (3, 2), (3, 4), (4, 3)]

    def test_corner_neighbors(self):
        mesh = Mesh2D4(5, 5)
        assert mesh.neighbors((1, 1)) == [(1, 2), (2, 1)]
        assert mesh.neighbors((5, 5)) == [(4, 5), (5, 4)]

    def test_edge_neighbors(self):
        mesh = Mesh2D4(5, 5)
        assert mesh.neighbors((3, 1)) == [(2, 1), (3, 2), (4, 1)]

    def test_degree_census(self):
        mesh = Mesh2D4(6, 4)
        degs = mesh.degrees
        # corners: 4 nodes of degree 2; edges: 2*(6-2)+2*(4-2)=12 of deg 3
        assert (degs == 2).sum() == 4
        assert (degs == 3).sum() == 12
        assert (degs == 4).sum() == 6 * 4 - 16

    def test_border_classification(self):
        mesh = Mesh2D4(5, 5)
        assert mesh.is_border((1, 3))
        assert not mesh.is_border((3, 3))

    def test_tx_range_is_spacing(self):
        mesh = Mesh2D4(3, 3, spacing=0.7)
        assert mesh.tx_range() == pytest.approx(0.7)

    def test_index_errors(self):
        mesh = Mesh2D4(3, 3)
        with pytest.raises(ValueError):
            mesh.index((0, 1))
        with pytest.raises(ValueError):
            mesh.index((4, 1))
        with pytest.raises(ValueError):
            mesh.coord(9)

    def test_positions_scale_with_spacing(self):
        mesh = Mesh2D4(3, 2, spacing=0.5)
        pos = mesh.positions()
        assert pos.shape == (6, 2)
        a = pos[mesh.index((1, 1))]
        b = pos[mesh.index((2, 1))]
        assert math.dist(a, b) == pytest.approx(0.5)

    @given(mesh_dims)
    @settings(max_examples=25, deadline=None)
    def test_validate_any_shape(self, dims):
        Mesh2D4(*dims).validate()

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            Mesh2D4(0, 5)
        with pytest.raises(ValueError):
            Mesh2D4(5, -1)
        with pytest.raises(ValueError):
            Mesh2D4(5, 5, spacing=0.0)


class TestMesh2D8:
    def test_interior_has_eight_neighbors(self):
        mesh = Mesh2D8(5, 5)
        nbrs = mesh.neighbors((3, 3))
        assert len(nbrs) == 8
        assert (2, 2) in nbrs and (4, 4) in nbrs
        assert (2, 4) in nbrs and (4, 2) in nbrs

    def test_corner_has_three(self):
        mesh = Mesh2D8(5, 5)
        assert mesh.neighbors((1, 1)) == [(1, 2), (2, 1), (2, 2)]

    def test_degree_census(self):
        mesh = Mesh2D8(6, 4)
        degs = mesh.degrees
        assert (degs == 3).sum() == 4          # corners
        assert (degs == 5).sum() == 12         # non-corner border
        assert (degs == 8).sum() == 24 - 16    # interior

    def test_tx_range_covers_diagonal(self):
        mesh = Mesh2D8(4, 4, spacing=0.5)
        assert mesh.tx_range() == pytest.approx(0.5 * math.sqrt(2))
        # the range must reach the farthest lattice neighbour
        assert mesh.tx_range() >= mesh.link_distance((2, 2), (3, 3)) - 1e-12

    @given(mesh_dims)
    @settings(max_examples=25, deadline=None)
    def test_validate_any_shape(self, dims):
        Mesh2D8(*dims).validate()

    def test_edge_count(self):
        # 6x4: horizontal 5*4 + vertical 6*3 + diagonals 2*5*3
        mesh = Mesh2D8(6, 4)
        assert int(mesh.degrees.sum()) // 2 == 20 + 18 + 30


class TestMesh2D3:
    def test_paper_example_neighbourhood(self):
        """The paper's Section 3.3 example: node (5,4) has (5,3) but not
        (5,5) as a neighbour."""
        mesh = Mesh2D3(10, 10)
        nbrs = mesh.neighbors((5, 4))
        assert (5, 3) in nbrs
        assert (5, 5) not in nbrs
        assert nbrs == [(4, 4), (5, 3), (6, 4)]

    def test_vertical_edge_parity(self):
        mesh = Mesh2D3(8, 8)
        # (x, y)-(x, y+1) exists iff x+y even
        assert (2, 3) in mesh.neighbors((2, 2))   # 2+2 even -> up edge
        assert (2, 4) not in mesh.neighbors((2, 3))  # 2+3 odd -> no up edge
        assert (3, 1) in mesh.neighbors((3, 2))   # 3+2 odd -> down edge
        assert (3, 4) in mesh.neighbors((3, 3))   # 3+3 even -> up edge

    def test_every_interior_node_has_three(self):
        mesh = Mesh2D3(8, 8)
        for x in range(2, 8):
            for y in range(2, 8):
                assert mesh.degree((x, y)) == 3

    def test_vertical_neighbor_is_mutual(self):
        mesh = Mesh2D3(6, 6)
        for i in range(mesh.num_nodes):
            c = mesh.coord(i)
            for nb in mesh.neighbors(c):
                assert c in mesh.neighbors(nb)

    def test_has_up_neighbor(self):
        mesh = Mesh2D3(6, 6)
        assert mesh.has_up_neighbor((2, 2))       # 4 even
        assert not mesh.has_up_neighbor((2, 3))   # 5 odd

    def test_degree_at_most_three(self):
        mesh = Mesh2D3(9, 7)
        assert mesh.max_degree == 3

    @given(st.tuples(st.integers(2, 12), st.integers(2, 12)))
    @settings(max_examples=25, deadline=None)
    def test_validate_any_shape(self, dims):
        Mesh2D3(*dims).validate()

    @given(st.tuples(st.integers(2, 10), st.integers(2, 10)))
    @settings(max_examples=20, deadline=None)
    def test_connected_for_m_ge_2(self, dims):
        assert Mesh2D3(*dims).is_connected()

    def test_single_column_is_disconnected(self):
        # degenerate: a 1-wide brick wall has only alternating vertical
        # edges and falls apart into pairs
        mesh = Mesh2D3(1, 6)
        assert not mesh.is_connected()


class TestSharedBehaviour:
    @pytest.mark.parametrize("cls", [Mesh2D3, Mesh2D4, Mesh2D8])
    def test_shape_property(self, cls):
        mesh = cls(7, 4)
        assert mesh.shape == (7, 4)
        assert mesh.num_nodes == 28
        assert mesh.dims == 2

    @pytest.mark.parametrize("cls", [Mesh2D3, Mesh2D4, Mesh2D8])
    def test_iter_coords_matches_indices(self, cls):
        mesh = cls(4, 3)
        coords = list(mesh.iter_coords())
        assert len(coords) == 12
        assert coords[0] == (1, 1)
        assert [mesh.index(c) for c in coords] == list(range(12))

    @pytest.mark.parametrize("cls", [Mesh2D3, Mesh2D8, Mesh2D4])
    def test_neighbors_rejects_foreign_coord(self, cls):
        mesh = cls(4, 4)
        with pytest.raises(ValueError):
            mesh.neighbors((0, 0))

    @pytest.mark.parametrize("cls", [Mesh2D3, Mesh2D4, Mesh2D8])
    def test_adjacency_cached(self, cls):
        mesh = cls(4, 4)
        assert mesh.adjacency is mesh.adjacency
