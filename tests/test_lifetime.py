"""Tests for the network-lifetime extension."""

import numpy as np
import pytest

from repro.analysis import (per_node_round_energy, simulate_lifetime)
from repro.topology import Mesh2D4


class TestPerNodeEnergy:
    def test_nonrelay_pays_only_rx(self):
        mesh = Mesh2D4(8, 8)
        cost = per_node_round_energy(mesh, (4, 4))
        from repro.radio import PAPER_RADIO_MODEL
        e_rx = PAPER_RADIO_MODEL.rx_energy(512)
        # a node that never transmits pays a multiple of e_rx
        idx = mesh.index((2, 2))
        assert cost[idx] == pytest.approx(
            round(cost[idx] / e_rx) * e_rx)

    def test_source_pays_at_least_one_tx(self):
        mesh = Mesh2D4(8, 8)
        cost = per_node_round_energy(mesh, (4, 4))
        from repro.radio import PAPER_RADIO_MODEL
        assert cost[mesh.index((4, 4))] >= \
            PAPER_RADIO_MODEL.tx_energy(512, mesh.tx_range())

    def test_total_matches_broadcast_metrics(self):
        from repro.core import protocol_for
        from repro.sim import compute_metrics
        mesh = Mesh2D4(8, 8)
        cost = per_node_round_energy(mesh, (4, 4))
        compiled = protocol_for(mesh).compile(mesh, (4, 4))
        m = compute_metrics(compiled.trace, mesh)
        assert float(cost.sum()) == pytest.approx(m.energy_j)


class TestLifetime:
    def test_rounds_scale_with_battery(self):
        mesh = Mesh2D4(6, 6)
        small = simulate_lifetime(mesh, [(3, 3)], battery_j=1e-3)
        large = simulate_lifetime(mesh, [(3, 3)], battery_j=2e-3)
        assert large.rounds_completed >= 2 * small.rounds_completed - 1
        assert not small.survived_all_rounds

    def test_first_death_is_busiest_node(self):
        mesh = Mesh2D4(6, 6)
        res = simulate_lifetime(mesh, [(3, 3)], battery_j=1e-3)
        cost = per_node_round_energy(mesh, (3, 3))
        assert res.first_death_node == tuple(
            mesh.coord(int(np.argmax(cost))))

    def test_rotation_extends_lifetime(self):
        """Rotating sources (LEACH-style) balances load and extends time
        to first death versus a fixed source."""
        mesh = Mesh2D4(8, 8)
        fixed = simulate_lifetime(mesh, [(4, 4)], battery_j=5e-3)
        rotated = simulate_lifetime(
            mesh, [(4, 4), (1, 1), (8, 8), (1, 8), (8, 1)],
            battery_j=5e-3)
        assert rotated.rounds_completed >= fixed.rounds_completed

    def test_rotation_lowers_imbalance(self):
        mesh = Mesh2D4(8, 8)
        fixed = simulate_lifetime(mesh, [(4, 4)], battery_j=2e-3)
        rotated = simulate_lifetime(
            mesh, [(2, 2), (7, 7), (2, 7), (7, 2)], battery_j=2e-3)
        assert rotated.energy_imbalance() <= fixed.energy_imbalance() + 0.5

    def test_max_rounds_budget(self):
        mesh = Mesh2D4(4, 4)
        res = simulate_lifetime(mesh, [(2, 2)], battery_j=10.0,
                                max_rounds=5)
        assert res.rounds_completed == 5
        assert res.survived_all_rounds

    def test_residual_energy_decreases(self):
        mesh = Mesh2D4(5, 5)
        res = simulate_lifetime(mesh, [(3, 3)], battery_j=1.0,
                                max_rounds=10)
        assert (res.residual_energy_j < 1.0).all()
        assert (res.energy_spent_j > 0).all()

    def test_validation(self):
        mesh = Mesh2D4(4, 4)
        with pytest.raises(ValueError):
            simulate_lifetime(mesh, [(2, 2)], battery_j=0.0)
        with pytest.raises(ValueError):
            simulate_lifetime(mesh, [], battery_j=1.0)


class TestLossyEnergy:
    def test_lossy_cost_is_cheaper(self):
        """Under loss, uninformed nodes cannot forward, so the expected
        per-round total cost is below the perfect-channel cost."""
        mesh = Mesh2D4(8, 8)
        clean = per_node_round_energy(mesh, (4, 4))
        lossy = per_node_round_energy(mesh, (4, 4), loss_rate=0.3,
                                      loss_trials=8, seed=1)
        assert float(lossy.sum()) < float(clean.sum())
        assert (lossy >= 0).all()

    def test_zero_loss_rate_matches_clean(self):
        mesh = Mesh2D4(8, 8)
        clean = per_node_round_energy(mesh, (4, 4))
        lossy = per_node_round_energy(mesh, (4, 4), loss_rate=0.0,
                                      loss_trials=4)
        assert np.allclose(lossy, clean)

    def test_lossy_cost_deterministic_in_seed(self):
        mesh = Mesh2D4(6, 6)
        a = per_node_round_energy(mesh, (3, 3), loss_rate=0.2, seed=5)
        b = per_node_round_energy(mesh, (3, 3), loss_rate=0.2, seed=5)
        c = per_node_round_energy(mesh, (3, 3), loss_rate=0.2, seed=6)
        assert (a == b).all()
        assert (a != c).any()

    def test_lossy_lifetime_runs_longer(self):
        mesh = Mesh2D4(6, 6)
        clean = simulate_lifetime(mesh, [(3, 3)], battery_j=1e-3)
        lossy = simulate_lifetime(mesh, [(3, 3)], battery_j=1e-3,
                                  loss_rate=0.4, loss_trials=8)
        assert lossy.rounds_completed >= clean.rounds_completed


class TestParallelLifetime:
    def test_workers_match_serial(self):
        mesh = Mesh2D4(8, 8)
        sources = [(4, 4), (1, 1), (8, 8), (1, 8)]
        serial = simulate_lifetime(mesh, sources, battery_j=2e-3)
        parallel = simulate_lifetime(mesh, sources, battery_j=2e-3,
                                     workers=2)
        assert parallel.rounds_completed == serial.rounds_completed
        assert parallel.first_death_node == serial.first_death_node
        assert np.allclose(parallel.residual_energy_j,
                           serial.residual_energy_j)

    def test_workers_share_disk_cache(self, tmp_path):
        from repro.core import ScheduleCache
        mesh = Mesh2D4(8, 8)
        sources = [(4, 4), (1, 1), (8, 8)]
        cache = ScheduleCache(tmp_path / "sched")
        res = simulate_lifetime(mesh, sources, battery_j=2e-3,
                                workers=2, cache=cache)
        assert res.rounds_completed > 0
        # the worker processes populated the shared disk tier
        warm = ScheduleCache(tmp_path / "sched")
        rerun = simulate_lifetime(mesh, sources, battery_j=2e-3,
                                  cache=warm)
        assert rerun.rounds_completed == res.rounds_completed
        assert warm.hits >= 1
