"""Unit tests for the ideal-case analytic model (paper Tables 2 and 5)."""

import pytest

from repro.core.ideal import (ideal_case, ideal_delay, ideal_max_delay,
                              ideal_tx_2d, ideal_tx_3d6)
from repro.topology import (Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6,
                            make_topology, paper_topologies)


class TestTable2Exact:
    """The ideal model must reproduce Table 2 cell for cell."""

    @pytest.mark.parametrize("label,tx,rx,power", [
        ("2D-3", 255, 765, 2.61e-2),
        ("2D-4", 170, 680, 2.18e-2),
        ("2D-8", 102, 816, 2.35e-2),
        ("3D-6", 124, 744, 2.22e-2),
    ])
    def test_row(self, label, tx, rx, power):
        ideal = ideal_case(make_topology(label))
        assert ideal.tx == tx
        assert ideal.rx == rx
        assert ideal.energy_j == pytest.approx(power, rel=5e-3)

    def test_as_row(self):
        row = ideal_case(make_topology("2D-4")).as_row()
        assert row["tx"] == 170


class TestFormulas:
    def test_2d_formula_components(self):
        # 512 nodes: 1 + ceil((511 - deg) / M_opt)
        assert ideal_tx_2d("2D-3", 512) == 255
        assert ideal_tx_2d("2D-4", 512) == 170
        assert ideal_tx_2d("2D-8", 512) == 102

    def test_2d_formula_small(self):
        assert ideal_tx_2d("2D-4", 64) == 21
        # trivially small networks: one transmission suffices
        assert ideal_tx_2d("2D-4", 5) == 1
        assert ideal_tx_2d("2D-8", 9) == 1

    def test_2d_rejects_3d_label(self):
        with pytest.raises(ValueError):
            ideal_tx_2d("3D-6", 512)

    def test_3d_formula(self):
        # 8x8x8 with a 13-column Lee class: 21 + 8*13 - 1 = 124
        assert ideal_tx_3d6(8, 8, 8, seed=(1, 1)) in (116, 124)
        seeds13 = [s for s in [(x, y) for x in range(1, 6)
                               for y in range(1, 6)]
                   if ideal_tx_3d6(8, 8, 8, seed=s) == 124]
        assert seeds13  # the paper's 124 corresponds to a 13-point class

    def test_ideal_case_picks_max_z_seed(self):
        ideal = ideal_case(Mesh3D6(8, 8, 8))
        assert ideal.tx == 124

    def test_rx_is_tx_times_degree(self):
        for label, topo in paper_topologies().items():
            ideal = ideal_case(topo)
            assert ideal.rx == ideal.tx * topo.nominal_degree

    def test_unsupported_topology(self):
        from repro.topology import RandomDiskTopology
        with pytest.raises(ValueError):
            ideal_case(RandomDiskTopology(10, 5, 5, 2.0))


class TestIdealDelay:
    def test_delay_is_eccentricity(self):
        mesh = Mesh2D4(10, 6)
        assert ideal_delay(mesh, (1, 1)) == 9 + 5
        # centre node: farthest corner is (10, 6) or (1, 6) etc.
        assert ideal_delay(mesh, (5, 3)) == max(
            (10 - 5) + (6 - 3), (5 - 1) + (6 - 3),
            (10 - 5) + (3 - 1), (5 - 1) + (3 - 1))

    def test_delay_center_vs_corner(self):
        mesh = Mesh2D4(10, 6)
        assert ideal_delay(mesh, (5, 3)) < ideal_delay(mesh, (1, 1))

    @pytest.mark.parametrize("label,expected", [
        ("2D-3", 46), ("2D-4", 46), ("2D-8", 31), ("3D-6", 21),
    ])
    def test_table5_ideal_column(self, label, expected):
        """Our ideal max delay = graph diameter.  The paper reports
        46/45/31/20; the 2D-4 and 3D-6 rows differ from the true diameter
        by exactly one slot (see EXPERIMENTS.md)."""
        assert ideal_max_delay(make_topology(label)) == expected
