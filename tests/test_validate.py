"""Unit tests for the schedule auditor."""

import pytest

from repro.core import ScheduleError, protocol_for, validate_broadcast
from repro.sim import BroadcastSchedule
from repro.topology import Mesh2D4


@pytest.fixture
def mesh():
    return Mesh2D4(6, 1)


class TestAudit:
    def test_valid_line_schedule(self, mesh):
        sched = BroadcastSchedule.from_events(
            [(k + 1, k) for k in range(6)])
        report = validate_broadcast(mesh, sched, 0)
        assert report.ok
        assert report.trace.all_reached
        report.raise_if_failed()  # must not raise

    def test_causality_violation_detected(self, mesh):
        # node 3 transmits before anything could have reached it
        sched = BroadcastSchedule.from_events([(1, 0), (1, 3)])
        report = validate_broadcast(mesh, sched, 0,
                                    expect_full_reach=False)
        assert not report.ok
        assert any("before its first reception" in i or
                   "never receives" in i for i in report.issues)
        with pytest.raises(ScheduleError):
            report.raise_if_failed()

    def test_transmit_without_reception_detected(self, mesh):
        sched = BroadcastSchedule.from_events([(1, 0), (9, 5)])
        report = validate_broadcast(mesh, sched, 0,
                                    expect_full_reach=False)
        assert not report.ok
        assert any("never receives" in i for i in report.issues)

    def test_unreached_nodes_reported(self, mesh):
        sched = BroadcastSchedule.from_events([(1, 0)])
        report = validate_broadcast(mesh, sched, 0)
        assert not report.ok
        assert any("never reached" in i for i in report.issues)

    def test_unreached_ok_when_not_expected(self, mesh):
        sched = BroadcastSchedule.from_events([(1, 0)])
        report = validate_broadcast(mesh, sched, 0,
                                    expect_full_reach=False)
        assert report.ok

    def test_many_missing_elided(self):
        big = Mesh2D4(20, 20)
        sched = BroadcastSchedule.from_events([(1, 0)])
        report = validate_broadcast(big, sched, 0)
        assert any("more)" in i for i in report.issues)


class TestCompiledSchedulesPass:
    @pytest.mark.parametrize("label", ["2D-3", "2D-4", "2D-8", "3D-6"])
    def test_protocol_outputs_audit_clean(self, label, paper_meshes,
                                          compiled_central):
        mesh = paper_meshes[label]
        compiled = compiled_central[label]
        report = validate_broadcast(mesh, compiled.schedule,
                                    compiled.source)
        assert report.ok, report.issues
