"""Shared fixtures.

Paper-size (512-node) compilations are expensive enough to share, so they
are session-scoped and cached per (label, source).
"""

from __future__ import annotations

import pytest

from repro import make_topology, protocol_for
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6

LABELS = ("2D-3", "2D-4", "2D-8", "3D-6")

#: Representative central sources on the paper's evaluation shapes.
CENTRAL_SOURCE = {
    "2D-3": (16, 8),
    "2D-4": (16, 8),
    "2D-8": (16, 8),
    "3D-6": (4, 4, 4),
}

#: Representative corner sources.
CORNER_SOURCE = {
    "2D-3": (1, 1),
    "2D-4": (1, 1),
    "2D-8": (1, 1),
    "3D-6": (1, 1, 1),
}


@pytest.fixture(scope="session")
def paper_meshes():
    """The four 512-node evaluation topologies."""
    return {label: make_topology(label) for label in LABELS}


@pytest.fixture(scope="session")
def compiled_central(paper_meshes):
    """Compiled broadcasts from a central source, one per topology."""
    out = {}
    for label, mesh in paper_meshes.items():
        out[label] = protocol_for(mesh).compile(mesh, CENTRAL_SOURCE[label])
    return out


@pytest.fixture(scope="session")
def compiled_corner(paper_meshes):
    """Compiled broadcasts from a corner source, one per topology."""
    out = {}
    for label, mesh in paper_meshes.items():
        out[label] = protocol_for(mesh).compile(mesh, CORNER_SOURCE[label])
    return out


@pytest.fixture
def small_meshes():
    """Small instances of every topology for cheap per-test compiles."""
    return {
        "2D-3": Mesh2D3(10, 8),
        "2D-4": Mesh2D4(10, 8),
        "2D-8": Mesh2D8(10, 8),
        "3D-6": Mesh3D6(5, 5, 4),
    }
