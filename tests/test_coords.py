"""Unit tests for coordinate flattening and distance helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.coords import (chebyshev, flatten2d, flatten3d, in_box2d,
                                   in_box3d, manhattan, unflatten2d,
                                   unflatten3d, validate_coord)


class TestFlatten2D:
    def test_origin_is_index_zero(self):
        assert flatten2d(1, 1, 7) == 0

    def test_x_major_order(self):
        assert flatten2d(2, 1, 7) == 1
        assert flatten2d(1, 2, 7) == 7

    def test_last_cell(self):
        assert flatten2d(7, 3, 7) == 20

    @given(st.integers(1, 50), st.integers(1, 50), st.integers(1, 50))
    def test_roundtrip(self, m, x, y):
        x = min(x, m)
        idx = flatten2d(x, y, m)
        assert unflatten2d(idx, m) == (x, y)

    def test_indices_are_dense_and_unique(self):
        m, n = 5, 4
        seen = {flatten2d(x, y, m)
                for y in range(1, n + 1) for x in range(1, m + 1)}
        assert seen == set(range(m * n))


class TestFlatten3D:
    def test_origin(self):
        assert flatten3d(1, 1, 1, 4, 3) == 0

    def test_axis_strides(self):
        m, n = 4, 3
        assert flatten3d(2, 1, 1, m, n) == 1
        assert flatten3d(1, 2, 1, m, n) == m
        assert flatten3d(1, 1, 2, m, n) == m * n

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12),
           st.integers(1, 12), st.integers(1, 12))
    def test_roundtrip(self, m, n, x, y, z):
        x, y = min(x, m), min(y, n)
        idx = flatten3d(x, y, z, m, n)
        assert unflatten3d(idx, m, n) == (x, y, z)


class TestBoxes:
    def test_in_box2d_inclusive_bounds(self):
        assert in_box2d(1, 1, 3, 3)
        assert in_box2d(3, 3, 3, 3)
        assert not in_box2d(0, 1, 3, 3)
        assert not in_box2d(4, 1, 3, 3)
        assert not in_box2d(1, 0, 3, 3)
        assert not in_box2d(1, 4, 3, 3)

    def test_in_box3d(self):
        assert in_box3d(2, 2, 2, 3, 3, 3)
        assert not in_box3d(2, 2, 4, 3, 3, 3)
        assert not in_box3d(2, 2, 0, 3, 3, 3)


class TestDistances:
    def test_manhattan_basic(self):
        assert manhattan((1, 1), (4, 5)) == 7

    def test_chebyshev_basic(self):
        assert chebyshev((1, 1), (4, 5)) == 4

    def test_3d(self):
        assert manhattan((1, 1, 1), (2, 3, 5)) == 7
        assert chebyshev((1, 1, 1), (2, 3, 5)) == 4

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            manhattan((1, 2), (1, 2, 3))
        with pytest.raises(ValueError):
            chebyshev((1,), (1, 2))

    @given(st.tuples(st.integers(-99, 99), st.integers(-99, 99)),
           st.tuples(st.integers(-99, 99), st.integers(-99, 99)))
    def test_chebyshev_le_manhattan(self, a, b):
        assert chebyshev(a, b) <= manhattan(a, b)

    @given(st.tuples(st.integers(-99, 99), st.integers(-99, 99)),
           st.tuples(st.integers(-99, 99), st.integers(-99, 99)))
    def test_symmetry(self, a, b):
        assert manhattan(a, b) == manhattan(b, a)
        assert chebyshev(a, b) == chebyshev(b, a)


class TestValidateCoord:
    def test_accepts_lists_and_tuples(self):
        assert validate_coord([3, 4], 2) == (3, 4)
        assert validate_coord((3, 4, 5), 3) == (3, 4, 5)

    def test_coerces_to_int(self):
        import numpy as np
        got = validate_coord((np.int64(2), np.int64(9)), 2)
        assert got == (2, 9)
        assert all(type(c) is int for c in got)

    def test_wrong_dims_raise(self):
        with pytest.raises(ValueError):
            validate_coord((1, 2, 3), 2)
        with pytest.raises(ValueError):
            validate_coord((1,), 2)
