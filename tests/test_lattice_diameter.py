"""Closed-form lattice metrics vs BFS/dense measurement.

The large-grid fast path answers ``diameter`` / ``eccentricities`` /
``is_connected`` from closed forms on the four regular grids.  Exactness
is the whole point — a million-node mesh can't be cross-checked — so
this suite proves the formulas on a grid of small shapes against the
dense all-pairs matrix, and pins down the size gate plus the BFS
double-sweep fallback used where no closed form exists.
"""

import numpy as np
import pytest

from repro.topology import Mesh2D3, Mesh2D4, Mesh2D6, Mesh2D8, Mesh3D6
from repro.topology import graph as G

SHAPES_2D = [(1, 1), (1, 2), (1, 5), (1, 6), (2, 1), (5, 1), (2, 2),
             (2, 7), (7, 2), (3, 3), (3, 8), (8, 3), (4, 6), (6, 4),
             (5, 5), (8, 8), (2, 9), (9, 2)]
SHAPES_3D = [(1, 1, 1), (2, 2, 2), (1, 4, 2), (3, 1, 3), (2, 3, 4),
             (4, 3, 2), (3, 3, 3), (5, 2, 1)]


def measured_metrics(topo):
    """Ground truth from the dense all-pairs matrix (small shapes only)."""
    adj = topo.adjacency
    d = G.all_pairs_distances(adj)
    finite = d[np.isfinite(d)]
    diam = int(finite.max()) if finite.size else 0
    dd = d.copy()
    dd[~np.isfinite(dd)] = -np.inf
    ecc = dd.max(axis=1).astype(np.int64)
    connected = bool(np.isfinite(d).all())
    return diam, ecc, connected


@pytest.mark.parametrize("cls", [Mesh2D4, Mesh2D8, Mesh2D3])
@pytest.mark.parametrize("shape", SHAPES_2D)
def test_closed_forms_2d(cls, shape):
    topo = cls(*shape)
    diam, ecc, connected = measured_metrics(topo)
    assert topo.lattice_diameter() == diam, (cls.__name__, shape)
    assert np.array_equal(topo.lattice_eccentricities(), ecc), \
        (cls.__name__, shape)
    assert topo._lattice_connected() == connected, (cls.__name__, shape)
    # the public accessors route through the closed forms
    assert topo.diameter == diam
    assert np.array_equal(topo.eccentricities(), ecc)
    assert topo.is_connected() == connected
    # spot-check the O(1) single-node form on a few nodes
    for i in (0, topo.num_nodes // 2, topo.num_nodes - 1):
        c = topo.coord(i)
        assert topo._lattice_eccentricity(c) == ecc[i], (cls.__name__,
                                                         shape, c)
        assert topo.eccentricity(c) == ecc[i]


@pytest.mark.parametrize("shape", SHAPES_3D)
def test_closed_forms_3d(shape):
    topo = Mesh3D6(*shape)
    diam, ecc, connected = measured_metrics(topo)
    assert topo.lattice_diameter() == diam, shape
    assert np.array_equal(topo.lattice_eccentricities(), ecc), shape
    assert topo._lattice_connected() is True and connected
    for i in (0, topo.num_nodes // 2, topo.num_nodes - 1):
        c = topo.coord(i)
        assert topo._lattice_eccentricity(c) == ecc[i], (shape, c)


def test_brick_distance_matches_bfs():
    """The 2D-3 closed-form hop distance (not just its max) is exact."""
    for shape in [(2, 2), (3, 5), (5, 3), (6, 6), (4, 7), (7, 4)]:
        topo = Mesh2D3(*shape)
        d = G.all_pairs_distances(topo.adjacency)
        x, y = topo._grid_xy()
        closed = Mesh2D3._brick_distance(x[:, None], y[:, None],
                                         x[None, :], y[None, :])
        assert np.array_equal(closed, d.astype(np.int64)), shape


def test_hex_has_no_closed_form_but_stays_exact():
    """2D-6 relies on the generic fallbacks; below the gate these are the
    dense exact paths."""
    topo = Mesh2D6(9, 7)
    assert topo.lattice_diameter() is None
    diam, ecc, connected = measured_metrics(topo)
    assert topo.diameter == diam
    assert np.array_equal(topo.eccentricities(), ecc)
    assert topo.is_connected() == connected


class TestDenseGate:
    def test_all_pairs_refuses_above_gate(self):
        adj = Mesh2D4(2, 2).adjacency
        big = G.DENSE_PAIRS_GATE + 1
        import scipy.sparse as sp
        huge = sp.csr_matrix((big, big), dtype=np.int8)
        with pytest.raises(G.DenseAllPairsError):
            G.all_pairs_distances(huge)
        with pytest.raises(G.DenseAllPairsError):
            G.eccentricities(huge)
        # a MemoryError subclass, so generic OOM guards catch it too
        assert issubclass(G.DenseAllPairsError, MemoryError)
        # small matrices still work
        assert np.isfinite(G.all_pairs_distances(adj)).all()

    def test_diameter_switches_to_double_sweep_above_gate(self):
        m, n = 150, 40  # 6000 nodes > gate
        topo = Mesh2D8(m, n)
        adj = topo.adjacency
        assert adj.shape[0] > G.DENSE_PAIRS_GATE
        assert G.diameter(adj) == topo.lattice_diameter() == m - 1

    def test_double_sweep_exact_on_lattices(self):
        for topo in (Mesh2D4(9, 6), Mesh2D8(7, 7), Mesh2D3(8, 5),
                     Mesh3D6(4, 3, 5), Mesh2D6(6, 8)):
            want = G.diameter(topo.adjacency)  # dense exact (below gate)
            assert G.double_sweep_diameter(topo.adjacency) == want, \
                repr(topo)

    def test_double_sweep_disconnected(self):
        topo = Mesh2D3(1, 5)  # domino components
        assert not topo.is_connected()
        assert G.double_sweep_diameter(topo.adjacency) == 1
