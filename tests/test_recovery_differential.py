"""Differential testing: batched recovery vs the serial recovery state.

The batch engine's contract extends to the recovery layer: with the same
:class:`RecoveryPolicy`, trial *b* of ``run_reactive_batch`` /
``replay_batch`` must stay trace-for-trace identical to a one-trial
``run_reactive`` / ``replay`` run with that trial's dead mask and loss
process.  The serial :class:`RecoveryState` is implemented with python
sets and per-node scalars while :class:`BatchRecoveryState` is a flat
CSR-indexed vectorisation — hypothesis-generated scenarios on all four
paper topologies (loss + dead-node masks + random policies) enforce
that the two implementations agree exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import protocol_for
from repro.radio.impairments import (BernoulliBatchLoss, BurstBatchLoss,
                                     trial_seeds)
from repro.sim import (RecoveryPolicy, replay, replay_batch, run_reactive,
                       run_reactive_batch)
from repro.topology import Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6

MESHES = [
    (Mesh2D4, (5, 4)),
    (Mesh2D8, (4, 4)),
    (Mesh2D3, (5, 4)),
    (Mesh3D6, (3, 3, 3)),
]


def assert_trial_equal(batch_trace, serial_trace):
    assert batch_trace.tx_events == serial_trace.tx_events
    assert batch_trace.rx_events == serial_trace.rx_events
    assert batch_trace.collision_events == serial_trace.collision_events
    assert (batch_trace.first_rx == serial_trace.first_rx).all()


@st.composite
def recovery_policy(draw):
    return RecoveryPolicy(
        timeout=draw(st.integers(1, 3)),
        max_retries=draw(st.integers(0, 3)),
        backoff=draw(st.integers(1, 2)),
        suppression_k=draw(st.integers(0, 3)),
        election=draw(st.booleans()))


@st.composite
def channel(draw, num_nodes, trials, source):
    """Per-trial dead masks (never the source) and a batch loss."""
    dead_masks = None
    if draw(st.booleans()):
        dead_masks = np.zeros((trials, num_nodes), dtype=bool)
        for b in range(trials):
            for v in draw(st.lists(st.integers(0, num_nodes - 1),
                                   max_size=3, unique=True)):
                if v != source:
                    dead_masks[b, v] = True
    kind = draw(st.sampled_from(["none", "bernoulli", "burst"]))
    seeds = trial_seeds(draw(st.integers(0, 5)), 0.3, trials)
    if kind == "bernoulli":
        loss = BernoulliBatchLoss(draw(st.sampled_from([0.15, 0.35])), seeds)
    elif kind == "burst":
        loss = BurstBatchLoss(draw(st.sampled_from([0.2, 0.4])), seeds,
                              length=draw(st.integers(1, 3)))
    else:
        loss = None
    return dead_masks, loss


def serial_kwargs(b, dead_masks, loss):
    return dict(
        dead_mask=None if dead_masks is None else dead_masks[b],
        loss=None if loss is None else loss.trial_loss(b))


class TestReactiveRecoveryDifferential:
    """run_reactive_batch + recovery == run_reactive + recovery, per trial."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_paper_plans(self, cls, shape):
        mesh = cls(*shape)
        src = tuple(max(1, s // 2) for s in shape)
        plan = protocol_for(mesh.name).relay_plan(mesh, src)
        src_idx = mesh.index(src)

        @given(data=st.data())
        @settings(max_examples=20, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            trials = data.draw(st.integers(1, 3))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, src_idx))
            traces = run_reactive_batch(
                mesh, src_idx, plan.relay_mask,
                extra_delay=plan.extra_delay,
                repeat_offsets=plan.repeat_offsets,
                dead_masks=dead_masks, loss=loss, trials=trials,
                recovery=policy)
            for b, batch_trace in enumerate(traces):
                assert_trial_equal(
                    batch_trace,
                    run_reactive(mesh, src_idx, plan.relay_mask,
                                 extra_delay=plan.extra_delay,
                                 repeat_offsets=plan.repeat_offsets,
                                 recovery=policy,
                                 **serial_kwargs(b, dead_masks, loss)))

        check()

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_random_relay_masks(self, cls, shape):
        """Recovery on arbitrary relay sets, not just the paper plans —
        exercises guardians with partially-covered neighbourhoods."""
        mesh = cls(*shape)

        @given(data=st.data())
        @settings(max_examples=15, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            source = data.draw(st.integers(0, mesh.num_nodes - 1))
            relay_mask = np.array(
                [data.draw(st.booleans()) for _ in range(mesh.num_nodes)],
                dtype=bool)
            trials = data.draw(st.integers(1, 3))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, source))
            traces = run_reactive_batch(mesh, source, relay_mask,
                                        dead_masks=dead_masks, loss=loss,
                                        trials=trials, recovery=policy)
            for b, batch_trace in enumerate(traces):
                assert_trial_equal(
                    batch_trace,
                    run_reactive(mesh, source, relay_mask, recovery=policy,
                                 **serial_kwargs(b, dead_masks, loss)))

        check()


class TestReplayRecoveryDifferential:
    """replay_batch + recovery == replay + recovery, per trial."""

    @pytest.mark.parametrize("cls,shape", MESHES)
    def test_compiled_schedules(self, cls, shape):
        mesh = cls(*shape)
        src = tuple(max(1, s // 2) for s in shape)
        compiled = protocol_for(mesh.name).compile(mesh, src)
        src_idx = mesh.index(src)

        @given(data=st.data())
        @settings(max_examples=15, deadline=None)
        def check(data):
            policy = data.draw(recovery_policy())
            trials = data.draw(st.integers(1, 3))
            dead_masks, loss = data.draw(
                channel(mesh.num_nodes, trials, src_idx))
            traces = replay_batch(mesh, compiled.schedule, src_idx,
                                  dead_masks=dead_masks, loss=loss,
                                  trials=trials, recovery=policy)
            for b, batch_trace in enumerate(traces):
                assert_trial_equal(
                    batch_trace,
                    replay(mesh, compiled.schedule, src_idx,
                           recovery=policy,
                           **serial_kwargs(b, dead_masks, loss)))

        check()

    def test_clean_channel_replay_matches(self):
        mesh = Mesh2D4(8, 6)
        compiled = protocol_for("2D-4").compile(mesh, (4, 3))
        src = mesh.index((4, 3))
        policy = RecoveryPolicy()
        serial = replay(mesh, compiled.schedule, src, recovery=policy)
        for batch_trace in replay_batch(mesh, compiled.schedule, src,
                                        trials=3, recovery=policy):
            assert_trial_equal(batch_trace, serial)
