"""Opt-in per-phase timing of the simulation hot path.

The benchmark scripts' ``--profile`` flag needs to know where the slot
budget goes (CSR gather vs counting vs loss RNG vs recovery update vs
shard merge) without slowing down normal runs.  This module keeps one
module-level accumulator that is ``None`` unless a profile capture is
active; the hot-path hooks reduce to a single attribute check when
profiling is off, so the engine pays nothing in the common case.

Phases are free-form names; the engine currently emits ``resolve``,
``commit``, ``loss-rng``, and — with a recovery policy active —
``recovery-pre`` (due checks/elections before the slot),
``recovery-post`` (ACK/overhear + episode accounting after it), and
``recovery-election`` (the election bookkeeping *inside* the other two:
a sub-phase, so its time is also counted by its parent — do not sum it
with them).

Not thread-safe, and deliberately not process-aware: a sharded run
profiles only the parent process (per-shard phases happen in workers),
which is why the benchmarks capture profiles with sharding disabled.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, Optional

_times: Optional[Dict[str, float]] = None


def enabled() -> bool:
    """True while a capture is active (hot-path guard)."""
    return _times is not None


def start() -> None:
    """Begin a capture, discarding any previous one."""
    global _times
    _times = {}


def stop() -> Dict[str, float]:
    """End the capture and return ``{phase: seconds}``."""
    global _times
    out = _times or {}
    _times = None
    return dict(out)


def add(phase: str, seconds: float) -> None:
    """Accumulate *seconds* into *phase* (no-op when not capturing)."""
    if _times is not None:
        _times[phase] = _times.get(phase, 0.0) + seconds


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a block into *name*; free when no capture is active."""
    if _times is None:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        add(name, perf_counter() - t0)
