"""Diagonal-axis sets S1 / S2 from Section 3 of the paper.

For any node ``(x, y)``:

* ``(x, y)`` belongs to ``S1(c)`` iff ``x + y == c``.  The nodes of an
  ``S1`` set form a straight line running in the ``(+1, -1)`` direction
  (the "anti-diagonal").
* ``(x, y)`` belongs to ``S2(c)`` iff ``x - y == c``.  The nodes of an
  ``S2`` set form a line in the ``(+1, +1)`` direction (the "main
  diagonal").

Example from the paper: nodes (5,7), (6,6), (7,5) are in ``S1(12)``; nodes
(5,3), (6,4), (7,5) are in ``S2(2)``.

The 2D-3 protocol additionally uses *paired* diagonal sets
``B1/B2 = S(c) ∪ S(c±1)`` whose union forms a connected staircase path in
the brick-wall lattice (see :func:`b1_set` / :func:`b2_set`).
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from .coords import Coord2D
from .mesh2d import Mesh2D3, _Mesh2DBase


def s1_value(coord: Coord2D) -> int:
    """The S1 diagonal constant ``x + y`` of *coord*."""
    x, y = coord
    return x + y


def s2_value(coord: Coord2D) -> int:
    """The S2 diagonal constant ``x - y`` of *coord*."""
    x, y = coord
    return x - y


def s1_set(mesh: _Mesh2DBase, c: int) -> List[Coord2D]:
    """All in-grid nodes of ``S1(c)`` (``x + y == c``), sorted by x."""
    out = []
    for x in range(max(1, c - mesh.n), min(mesh.m, c - 1) + 1):
        y = c - x
        if 1 <= y <= mesh.n:
            out.append((x, y))
    return out


def s2_set(mesh: _Mesh2DBase, c: int) -> List[Coord2D]:
    """All in-grid nodes of ``S2(c)`` (``x - y == c``), sorted by x."""
    out = []
    for x in range(max(1, c + 1), min(mesh.m, c + mesh.n) + 1):
        y = x - c
        if 1 <= y <= mesh.n:
            out.append((x, y))
    return out


def s1_indices(mesh: _Mesh2DBase, c: int) -> np.ndarray:
    """0-based node indices of ``S1(c)``, ordered by x (vectorised).

    Index-arithmetic equivalent of :func:`s1_set` for large grids: no
    coordinate tuples are materialised.
    """
    x = np.arange(max(1, c - mesh.n), min(mesh.m, c - 1) + 1, dtype=np.int64)
    y = c - x
    return x - 1 + (y - 1) * mesh.m


def s2_indices(mesh: _Mesh2DBase, c: int) -> np.ndarray:
    """0-based node indices of ``S2(c)``, ordered by x (vectorised)."""
    x = np.arange(max(1, c + 1), min(mesh.m, c + mesh.n) + 1, dtype=np.int64)
    y = x - c
    return x - 1 + (y - 1) * mesh.m


def s1_range(mesh: _Mesh2DBase) -> Tuple[int, int]:
    """Inclusive range of S1 constants with nonempty in-grid sets."""
    return (2, mesh.m + mesh.n)


def s2_range(mesh: _Mesh2DBase) -> Tuple[int, int]:
    """Inclusive range of S2 constants with nonempty in-grid sets."""
    return (1 - mesh.n, mesh.m - 1)


# ----------------------------------------------------------------------
# Paired diagonals for the 2D-3 (brick-wall) protocol
# ----------------------------------------------------------------------

def b1_values(mesh: Mesh2D3, base: Coord2D) -> Tuple[int, int]:
    """The two S1 constants of ``B1(base)`` per the paper's rule.

    "If node (i, j+1) is node (i, j)'s neighbour then
    ``B1(i,j) = S1(i+j) ∪ S1(i+j+1)`` else ``B1(i,j) = S1(i+j) ∪ S1(i+j-1)``."
    """
    i, j = base
    c = i + j
    if mesh.has_up_neighbor(base):
        return (c, c + 1)
    return (c, c - 1)


def b2_values(mesh: Mesh2D3, base: Coord2D) -> Tuple[int, int]:
    """The two S2 constants of ``B2(base)`` per the paper's rule.

    "If node (i, j+1) is node (i, j)'s neighbour then
    ``B2(i,j) = S2(i-j) ∪ S2(i-j-1)`` else ``B2(i,j) = S2(i-j) ∪ S2(i-j+1)``."
    """
    i, j = base
    c = i - j
    if mesh.has_up_neighbor(base):
        return (c, c - 1)
    return (c, c + 1)


def b1_set(mesh: Mesh2D3, base: Coord2D) -> Set[Coord2D]:
    """Nodes of the ``B1`` staircase (paired anti-diagonals) through *base*.

    In the brick lattice the union of the two adjacent S1 diagonals is a
    connected zig-zag path running up-left / down-right from *base*.
    """
    ca, cb = b1_values(mesh, base)
    return set(s1_set(mesh, ca)) | set(s1_set(mesh, cb))


def b2_set(mesh: Mesh2D3, base: Coord2D) -> Set[Coord2D]:
    """Nodes of the ``B2`` staircase (paired main diagonals) through *base*.

    A connected zig-zag path running up-right / down-left from *base*.
    """
    ca, cb = b2_values(mesh, base)
    return set(s2_set(mesh, ca)) | set(s2_set(mesh, cb))
