"""Topology factory.

The benchmarks and the CLI refer to topologies by the paper's row labels
("2D-3", "2D-4", "2D-8", "3D-6").  This module turns those labels — plus
the paper's standard 512-node evaluation shapes — into topology objects.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .base import Topology
from .mesh2d import Mesh2D3, Mesh2D4, Mesh2D8
from .mesh3d import Mesh3D6

#: Label -> topology class, in the paper's table order.
TOPOLOGY_CLASSES: Dict[str, type] = {
    "2D-3": Mesh2D3,
    "2D-4": Mesh2D4,
    "2D-8": Mesh2D8,
    "3D-6": Mesh3D6,
}

#: The paper's Section 4 evaluation shapes: 512 nodes as a 32x16 2D mesh
#: or an 8x8x8 3D mesh.
PAPER_SHAPES: Dict[str, Tuple[int, ...]] = {
    "2D-3": (32, 16),
    "2D-4": (32, 16),
    "2D-8": (32, 16),
    "3D-6": (8, 8, 8),
}

#: Paper Section 4: neighbour spacing d = 0.5 m.
PAPER_SPACING = 0.5


def make_topology(label: str, shape: Tuple[int, ...] | None = None,
                  spacing: float = PAPER_SPACING) -> Topology:
    """Build the topology *label* ("2D-3" | "2D-4" | "2D-8" | "3D-6").

    With ``shape=None`` the paper's 512-node evaluation shape is used.
    """
    try:
        cls = TOPOLOGY_CLASSES[label]
    except KeyError:
        raise ValueError(
            f"unknown topology {label!r}; expected one of "
            f"{sorted(TOPOLOGY_CLASSES)}") from None
    if shape is None:
        shape = PAPER_SHAPES[label]
    expected_dims = 3 if label == "3D-6" else 2
    if len(shape) != expected_dims:
        raise ValueError(
            f"{label} needs a {expected_dims}-tuple shape, got {shape!r}")
    return cls(*shape, spacing=spacing)


def paper_topologies(spacing: float = PAPER_SPACING) -> Dict[str, Topology]:
    """All four paper topologies at their 512-node evaluation shapes."""
    return {label: make_topology(label, spacing=spacing)
            for label in TOPOLOGY_CLASSES}
