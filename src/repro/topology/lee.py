"""The z-relay lattice of rule R5 (3D-6 protocol, paper Section 3.4).

Rule R5 generates, from a seed ``(x, y)``, the set of points reachable by
integer combinations of the vectors ``(2, 1)`` and ``(-1, 2)`` — a sublattice
of Z^2 with index 5.  Its fundamental property (the reason the paper picked
it): the radius-1 "plus" shapes (Lee spheres) centred on lattice points
*perfectly tile the plane*.  Hence when every z-relay of a plane transmits,
every node of that plane is covered exactly once — simultaneously forwarding
the broadcast to the neighbouring planes along Z.

Membership test: ``(u, v) = a*(2,1) + b*(-1,2)`` has the integer solution
``a = (2u + v)/5``, ``b = (2v - u)/5``; both are integers iff
``2u + v ≡ 0 (mod 5)`` (then ``2v - u = 5b`` automatically).
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from .coords import Coord2D


def is_lee_lattice_point(u: int, v: int) -> bool:
    """True if ``(u, v)`` lies on the R5 lattice rooted at the origin."""
    return (2 * u + v) % 5 == 0


def lee_points(m: int, n: int, seed: Coord2D) -> List[Coord2D]:
    """All R5-lattice points inside the 1-based ``m x n`` grid, for a
    lattice rooted at *seed*.  Sorted for determinism."""
    sx, sy = seed
    out = []
    for y in range(1, n + 1):
        for x in range(1, m + 1):
            if is_lee_lattice_point(x - sx, y - sy):
                out.append((x, y))
    return out


def lee_mask(m: int, n: int, seed: Coord2D) -> np.ndarray:
    """Boolean ``(n, m)`` array (row y-1, col x-1) flagging lattice points."""
    sx, sy = seed
    xs = np.arange(1, m + 1)
    ys = np.arange(1, n + 1)
    u = xs[None, :] - sx
    v = ys[:, None] - sy
    return (2 * u + v) % 5 == 0


def lee_count(m: int, n: int, seed: Coord2D) -> int:
    """Number of R5-lattice points in the grid (used by the ideal model).

    For an 8x8 grid this is 12 or 13 depending on the seed's residue class
    (64 = 12*5 + 4, so four residues get 13 points and one gets 12).
    """
    return int(lee_mask(m, n, seed).sum())


def lee_cover_gaps(m: int, n: int, seed: Coord2D) -> Set[Coord2D]:
    """Grid nodes NOT covered by any in-grid lattice point's Lee sphere.

    In the unbounded plane the tiling is perfect, so gaps only appear where
    a covering lattice point falls outside the grid border.  These are
    exactly the nodes for which the paper adds "additional relay nodes in
    the border" (the gray nodes of Fig. 9).
    """
    mask = lee_mask(m, n, seed)
    covered = mask.copy()
    covered[1:, :] |= mask[:-1, :]
    covered[:-1, :] |= mask[1:, :]
    covered[:, 1:] |= mask[:, :-1]
    covered[:, :-1] |= mask[:, 1:]
    gaps = set()
    ys, xs = np.nonzero(~covered)
    for y, x in zip(ys, xs):
        gaps.add((int(x) + 1, int(y) + 1))
    return gaps
