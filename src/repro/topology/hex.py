"""Hexagonal 2D mesh with 6 neighbours.

The paper builds protocols for four of the regular topologies studied by
its reference [12] (Salhieh et al., "Power efficient topologies for
wireless sensor networks"), which also evaluates the 6-neighbour
hexagonal lattice.  We provide it as an extension so the generic
ETR-greedy protocol (and the ideal model) can be compared across the full
topology family.

Representation: "odd-r" offset coordinates.  Node ``(x, y)`` always has
its row neighbours ``(x±1, y)`` and column neighbours ``(x, y±1)``; the
two remaining diagonal neighbours depend on row parity:

* odd ``y``:  ``(x+1, y-1)`` and ``(x+1, y+1)``
* even ``y``: ``(x-1, y-1)`` and ``(x-1, y+1)``

Geometrically the odd rows are shifted half a spacing to the right and
rows are ``sqrt(3)/2`` spacings apart, so all six neighbours sit at the
same distance (the lattice is a proper triangular tiling).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .mesh2d import _Mesh2DBase


class Mesh2D6(_Mesh2DBase):
    """Hexagonal (triangular-tiling) mesh with 6 neighbours."""

    name = "2D-6"
    nominal_degree = 6

    def _neighbor_coords(self, coord) -> List[tuple]:
        x, y = coord
        dx = 1 if y % 2 == 1 else -1
        offsets = ((1, 0), (-1, 0), (0, 1), (0, -1),
                   (dx, 1), (dx, -1))
        return self._offset_neighbors(coord, offsets)

    def _stencil_offsets(self, x: np.ndarray, y: np.ndarray) -> List[tuple]:
        """Axis pairs plus the row-parity diagonal pair (odd-r offset)."""
        dxa = np.where(y % 2 == 1, 1, -1)
        return [(1, 0), (-1, 0), (0, 1), (0, -1),
                (dxa, 1), (dxa, -1)]

    def positions(self) -> np.ndarray:
        xs = np.arange(self.m, dtype=np.float64)
        ys = np.arange(self.n, dtype=np.float64)
        gx, gy = np.meshgrid(xs, ys, indexing="xy")
        # odd-r offset: odd rows (y index 1, 3, ... -> paper coords 2, 4,
        # ...) shift right by half a spacing
        shift = ((np.arange(self.n) + 1) % 2 == 1).astype(np.float64) * 0.5
        gx = gx + shift[:, None]
        pos = np.stack([gx.ravel(), gy.ravel() * math.sqrt(3) / 2], axis=1)
        return pos * self.spacing

    def tx_range(self) -> float:
        """All six neighbours sit exactly one spacing away."""
        return self.spacing
