"""Regular WSN topologies and graph utilities (paper Section 2).

Public surface:

* :class:`Topology` — abstract base class.
* :class:`Mesh2D3`, :class:`Mesh2D4`, :class:`Mesh2D8`, :class:`Mesh3D6` —
  the four regular lattices of the paper (Figs. 1-4).
* :class:`RandomDiskTopology` — random-deployment baseline.
* :func:`make_topology` / :func:`paper_topologies` — factory helpers.
* :mod:`repro.topology.diagonal` — S1/S2 diagonal sets and B1/B2 staircases.
* :mod:`repro.topology.lee` — the R5 z-relay lattice.
"""

from .base import Topology
from .builder import (PAPER_SHAPES, PAPER_SPACING, TOPOLOGY_CLASSES,
                      make_topology, paper_topologies)
from .hex import Mesh2D6
from .mesh2d import Mesh2D3, Mesh2D4, Mesh2D8
from .mesh3d import Mesh3D6
from .properties import TopologyReport, analyze
from .random_disk import RandomDiskTopology

__all__ = [
    "Topology",
    "Mesh2D3",
    "Mesh2D4",
    "Mesh2D6",
    "Mesh2D8",
    "Mesh3D6",
    "RandomDiskTopology",
    "TopologyReport",
    "analyze",
    "make_topology",
    "paper_topologies",
    "TOPOLOGY_CLASSES",
    "PAPER_SHAPES",
    "PAPER_SPACING",
]
