"""Structural property reports for topologies.

Used by the Fig. 1-4 benchmark (degree/edge census of the four lattices)
and by the CLI's ``topology`` command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .base import Topology


@dataclass(frozen=True)
class TopologyReport:
    """Structural census of a topology."""

    name: str
    num_nodes: int
    num_edges: int
    nominal_degree: int
    degree_histogram: Dict[int, int] = field(default_factory=dict)
    num_border_nodes: int = 0
    diameter: int = 0
    connected: bool = True

    def as_rows(self) -> list[tuple[str, str]]:
        """Key/value rows for pretty-printing."""
        return [
            ("topology", self.name),
            ("nodes", str(self.num_nodes)),
            ("edges", str(self.num_edges)),
            ("nominal degree", str(self.nominal_degree)),
            ("degree histogram",
             ", ".join(f"{d}:{c}" for d, c in sorted(
                 self.degree_histogram.items()))),
            ("border nodes", str(self.num_border_nodes)),
            ("diameter", str(self.diameter)),
            ("connected", str(self.connected)),
        ]


def analyze(topology: Topology) -> TopologyReport:
    """Compute a :class:`TopologyReport` for *topology*."""
    degrees = topology.degrees
    vals, counts = np.unique(degrees, return_counts=True)
    hist = {int(v): int(c) for v, c in zip(vals, counts)}
    num_edges = int(degrees.sum()) // 2
    border = int((degrees < topology.nominal_degree).sum())
    return TopologyReport(
        name=topology.name,
        num_nodes=topology.num_nodes,
        num_edges=num_edges,
        nominal_degree=topology.nominal_degree,
        degree_histogram=hist,
        num_border_nodes=border,
        diameter=topology.diameter,
        connected=topology.is_connected(),
    )
