"""3D mesh with 6 neighbours (paper Fig. 4).

A stack of ``l`` XY planes, each an ``m x n`` :class:`~repro.topology.mesh2d.
Mesh2D4`-style lattice, with vertical edges between vertically adjacent
nodes.  The paper's 3D-6 broadcast protocol treats the source's XY plane
with the 2D-4 protocol and forwards across planes along the Z axis.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import Topology
from .coords import Coord3D, flatten3d, in_box3d, unflatten3d, validate_coord


class Mesh3D6(Topology):
    """3D mesh with 6 neighbours."""

    name = "3D-6"
    nominal_degree = 6

    OFFSETS = (
        (1, 0, 0), (-1, 0, 0),
        (0, 1, 0), (0, -1, 0),
        (0, 0, 1), (0, 0, -1),
    )

    def __init__(self, m: int, n: int, l: int, spacing: float = 0.5) -> None:
        super().__init__(spacing)
        if m < 1 or n < 1 or l < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {m}x{n}x{l}")
        self.m = int(m)
        self.n = int(n)
        self.l = int(l)

    @property
    def num_nodes(self) -> int:
        return self.m * self.n * self.l

    @property
    def dims(self) -> int:
        return 3

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(m, n, l)`` grid extent."""
        return (self.m, self.n, self.l)

    def contains(self, coord) -> bool:
        x, y, z = validate_coord(coord, 3)
        return in_box3d(x, y, z, self.m, self.n, self.l)

    def index(self, coord) -> int:
        x, y, z = validate_coord(coord, 3)
        if not in_box3d(x, y, z, self.m, self.n, self.l):
            raise ValueError(
                f"({x}, {y}, {z}) outside {self.m}x{self.n}x{self.l} mesh")
        return flatten3d(x, y, z, self.m, self.n)

    def coord(self, index: int) -> Coord3D:
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"index {index} out of range")
        return unflatten3d(index, self.m, self.n)

    def positions(self) -> np.ndarray:
        zs, ys, xs = np.meshgrid(
            np.arange(self.l), np.arange(self.n), np.arange(self.m),
            indexing="ij")
        pos = np.stack([xs.ravel(), ys.ravel(), zs.ravel()], axis=1)
        return pos.astype(np.float64) * self.spacing

    def _neighbor_coords(self, coord) -> List[Coord3D]:
        x, y, z = coord
        out = []
        for dx, dy, dz in self.OFFSETS:
            nx, ny, nz = x + dx, y + dy, z + dz
            if in_box3d(nx, ny, nz, self.m, self.n, self.l):
                out.append((nx, ny, nz))
        return out

    # -- large-grid fast path -------------------------------------------

    def _grid_xyz(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node 1-based coordinate arrays ``(x, y, z)`` in index order."""
        idx = np.arange(self.num_nodes, dtype=np.int64)
        plane = self.m * self.n
        return (idx % self.m + 1,
                idx % plane // self.m + 1,
                idx // plane + 1)

    def stencil_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Directed edge arrays from pure index arithmetic (no python loop)."""
        x, y, z = self._grid_xyz()
        idx = np.arange(self.num_nodes, dtype=np.int64)
        plane = self.m * self.n
        rows, cols = [], []
        for dx, dy, dz in self.OFFSETS:
            nx, ny, nz = x + dx, y + dy, z + dz
            ok = ((nx >= 1) & (nx <= self.m)
                  & (ny >= 1) & (ny <= self.n)
                  & (nz >= 1) & (nz <= self.l))
            rows.append(idx[ok])
            cols.append(nx[ok] - 1 + (ny[ok] - 1) * self.m
                        + (nz[ok] - 1) * plane)
        return np.concatenate(rows), np.concatenate(cols)

    def shift_index_map(self, delta) -> Tuple[np.ndarray, np.ndarray]:
        """Index-arithmetic translation map (no coordinate loop)."""
        dx, dy, dz = (int(d) for d in delta)
        x, y, z = self._grid_xyz()
        nx, ny, nz = x + dx, y + dy, z + dz
        valid = ((nx >= 1) & (nx <= self.m)
                 & (ny >= 1) & (ny <= self.n)
                 & (nz >= 1) & (nz <= self.l))
        plane = self.m * self.n
        mapped = np.where(
            valid, nx - 1 + (ny - 1) * self.m + (nz - 1) * plane, -1)
        return mapped, valid

    # Hop distance is the 3D Manhattan metric.

    def lattice_diameter(self) -> int:
        return (self.m - 1) + (self.n - 1) + (self.l - 1)

    def lattice_eccentricities(self) -> np.ndarray:
        x, y, z = self._grid_xyz()
        return (np.maximum(x - 1, self.m - x)
                + np.maximum(y - 1, self.n - y)
                + np.maximum(z - 1, self.l - z))

    def _lattice_eccentricity(self, coord) -> int:
        x, y, z = validate_coord(coord, 3)
        self.index((x, y, z))  # bounds check
        return (max(x - 1, self.m - x) + max(y - 1, self.n - y)
                + max(z - 1, self.l - z))

    def _lattice_connected(self) -> bool:
        return True

    def plane_indices(self, z: int) -> np.ndarray:
        """0-based node indices of the XY plane at height *z* (1-based)."""
        if not 1 <= z <= self.l:
            raise ValueError(f"z={z} outside [1, {self.l}]")
        base = (z - 1) * self.m * self.n
        return np.arange(base, base + self.m * self.n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Mesh3D6 {self.m}x{self.n}x{self.l}>"
