"""Abstract base class for network topologies.

A :class:`Topology` is a static, undirected communication graph over sensor
nodes placed on a regular lattice (or, for the random baseline, at arbitrary
positions).  It provides:

* coordinate <-> index translation (paper-style 1-based ids),
* neighbourhood queries (python-level and vectorised CSR adjacency),
* geometric positions in metres (for the radio energy model),
* hop-distance / eccentricity / diameter utilities.

Subclasses only implement the lattice-specific parts
(:meth:`_neighbor_coords`, :meth:`coord`, :meth:`index`, ...); all graph
machinery is shared and cached here.
"""

from __future__ import annotations

import abc
import hashlib
from functools import cached_property
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from .coords import Coord
from . import graph as _graph


class Topology(abc.ABC):
    """A static undirected communication graph over sensor nodes.

    Parameters
    ----------
    spacing:
        Distance in metres between lattice-adjacent nodes.  The paper's
        evaluation uses 0.5 m.
    """

    #: Human-readable short name, e.g. ``"2D-4"`` — matches the paper's
    #: table row labels.
    name: str = "topology"

    #: Nominal (interior) node degree; border nodes have fewer neighbours.
    nominal_degree: int = 0

    def __init__(self, spacing: float = 0.5) -> None:
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        self.spacing = float(spacing)

    # ------------------------------------------------------------------
    # Abstract lattice interface
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Total number of nodes in the network."""

    @property
    @abc.abstractmethod
    def dims(self) -> int:
        """Coordinate dimensionality (2 or 3)."""

    @abc.abstractmethod
    def contains(self, coord: Coord) -> bool:
        """True if *coord* names a node of this topology."""

    @abc.abstractmethod
    def index(self, coord: Coord) -> int:
        """Flatten a 1-based coordinate to a 0-based node index."""

    @abc.abstractmethod
    def coord(self, index: int) -> Coord:
        """Inverse of :meth:`index`."""

    @abc.abstractmethod
    def _neighbor_coords(self, coord: Coord) -> List[Coord]:
        """In-grid neighbours of *coord* (unsorted, lattice-specific)."""

    @abc.abstractmethod
    def positions(self) -> np.ndarray:
        """``(num_nodes, dims)`` float array of node positions in metres."""

    # ------------------------------------------------------------------
    # Large-grid fast-path hooks (regular lattices override these)
    # ------------------------------------------------------------------

    def stencil_edges(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Vectorised directed edge arrays ``(rows, cols)``, or ``None``.

        Regular lattices build both arrays from pure index arithmetic
        (meshgrid + offset shifts + boundary masks), letting
        :func:`repro.topology.graph.build_adjacency` assemble the CSR
        matrix with no per-node python loop.  Irregular topologies return
        ``None`` and fall back to the loop reference builder.
        """
        return None

    def lattice_diameter(self) -> Optional[int]:
        """Closed-form graph diameter, or ``None`` if no closed form.

        Exactness is differentially tested against the dense all-pairs
        diameter across shape grids (``tests/test_lattice_diameter.py``).
        """
        return None

    def lattice_eccentricities(self) -> Optional[np.ndarray]:
        """Closed-form per-node eccentricity vector (O(n)), or ``None``."""
        return None

    def _lattice_eccentricity(self, coord: Coord) -> Optional[int]:
        """Closed-form eccentricity of one node (O(1)), or ``None``."""
        return None

    def _lattice_connected(self) -> Optional[bool]:
        """Connectivity known from the lattice structure, or ``None``."""
        return None

    # ------------------------------------------------------------------
    # Shared graph machinery
    # ------------------------------------------------------------------

    def neighbors(self, coord: Coord) -> List[Coord]:
        """In-grid neighbours of *coord*, sorted for determinism."""
        if not self.contains(coord):
            raise ValueError(f"{coord!r} is not a node of {self!r}")
        return sorted(self._neighbor_coords(coord))

    def neighbor_indices(self, index: int) -> np.ndarray:
        """0-based indices of the neighbours of node *index*."""
        adj = self.adjacency
        return adj.indices[adj.indptr[index]:adj.indptr[index + 1]]

    def iter_coords(self) -> Iterator[Coord]:
        """Iterate over all node coordinates in index order."""
        for i in range(self.num_nodes):
            yield self.coord(i)

    @cached_property
    def adjacency(self) -> sparse.csr_matrix:
        """Symmetric boolean CSR adjacency matrix (cached)."""
        return _graph.build_adjacency(self)

    @cached_property
    def neighbor_sets(self) -> Sequence[frozenset]:
        """Per-node neighbour sets (lazy, cached).

        The schedule compiler's working representation.  Backed by CSR
        slices and materialised per node on first access
        (:class:`~repro.topology.graph.LazyNeighborSets`): the compiler's
        fix planner only inspects border/collision neighbourhoods, so a
        large grid never pays the O(n) set-construction cost up front.
        """
        return _graph.LazyNeighborSets(self.adjacency)

    @cached_property
    def slot_kernel(self):
        """Batched per-slot collision kernel bound to this adjacency.

        See :class:`repro.radio.channel.SlotKernel`; shared by every
        simulation over this topology so the CSR arrays are extracted once.
        """
        from ..radio.channel import SlotKernel
        return SlotKernel(self.adjacency)

    @cached_property
    def fingerprint(self) -> str:
        """Stable hex digest of the graph (class, name, spacing, edges).

        Two topology objects with equal fingerprints are interchangeable
        for simulation purposes; the compiled-schedule cache uses this as
        its topology key component so cached schedules survive across
        processes and sessions.
        """
        h = hashlib.sha256()
        h.update(type(self).__name__.encode())
        h.update(self.name.encode())
        h.update(np.int64(self.num_nodes).tobytes())
        h.update(np.float64(self.spacing).tobytes())
        adj = self.adjacency
        h.update(np.asarray(adj.indptr, dtype=np.int64).tobytes())
        h.update(np.asarray(adj.indices, dtype=np.int64).tobytes())
        return h.hexdigest()

    @cached_property
    def degrees(self) -> np.ndarray:
        """Per-node degree array (int)."""
        return np.diff(self.adjacency.indptr).astype(np.int64)

    @property
    def max_degree(self) -> int:
        """Largest realised degree (equals :attr:`nominal_degree` except in
        degenerate tiny grids)."""
        return int(self.degrees.max())

    def degree(self, coord: Coord) -> int:
        """Degree of the node at *coord*."""
        return int(self.degrees[self.index(coord)])

    def is_border(self, coord: Coord) -> bool:
        """True if the node has fewer neighbours than the nominal degree.

        The paper: "All the nodes in the WSN shall have the same number of
        neighboring nodes, except the nodes in the boarder."
        """
        return self.degree(coord) < self.nominal_degree

    # -- coordinate translation -----------------------------------------

    def coord_delta(self, a: Coord, b: Coord) -> Tuple[int, ...]:
        """Per-axis displacement taking coordinate *a* to *b*."""
        if len(a) != len(b):
            raise ValueError(f"dimension mismatch: {a} vs {b}")
        return tuple(int(q) - int(p) for p, q in zip(a, b))

    def shift_coord(self, coord: Coord, delta: Sequence[int]) -> Tuple[int, ...]:
        """*coord* translated by *delta* (may leave the topology)."""
        if len(coord) != len(delta):
            raise ValueError(f"dimension mismatch: {coord} vs {delta}")
        return tuple(int(c) + int(d) for c, d in zip(coord, delta))

    def shift_index_map(self, delta: Sequence[int]
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized node translation by *delta*.

        Returns ``(mapped, valid)``: ``mapped[i]`` is the index of
        ``coord(i) + delta`` where that coordinate stays inside the
        topology, else ``-1`` (with ``valid[i]`` False).  The generic
        implementation walks the coordinates; box lattices override it
        with pure index arithmetic.
        """
        n = self.num_nodes
        mapped = np.full(n, -1, dtype=np.int64)
        valid = np.zeros(n, dtype=bool)
        for i, coord in enumerate(self.iter_coords()):
            shifted = self.shift_coord(coord, delta)
            if self.contains(shifted):
                mapped[i] = self.index(shifted)
                valid[i] = True
        return mapped, valid

    # -- distances ------------------------------------------------------

    def hop_distances(self, source: Coord) -> np.ndarray:
        """Hop count from *source* to every node (BFS); ``-1`` if unreachable."""
        return _graph.bfs_distances(self.adjacency, self.index(source))

    def eccentricity(self, source: Coord) -> int:
        """Maximum hop distance from *source* to any reachable node.

        Regular lattices answer from their closed-form hop metric in
        O(1); otherwise one BFS sweep.
        """
        closed = self._lattice_eccentricity(source)
        if closed is not None:
            return closed
        d = self.hop_distances(source)
        reachable = d[d >= 0]
        return int(reachable.max())

    def eccentricities(self) -> np.ndarray:
        """Per-node eccentricity vector.

        O(n) via the lattice closed forms where available; the dense
        all-pairs fallback is gated by
        :data:`repro.topology.graph.DENSE_PAIRS_GATE`.
        """
        closed = self.lattice_eccentricities()
        if closed is not None:
            return closed
        return _graph.eccentricities(self.adjacency)

    @cached_property
    def diameter(self) -> int:
        """Maximum eccentricity over all nodes (graph diameter).

        Closed form for the regular lattices (O(1)); otherwise exact
        dense all-pairs below the size gate and the BFS double-sweep
        estimate above it (see :func:`repro.topology.graph.diameter`).
        """
        closed = self.lattice_diameter()
        if closed is not None:
            return closed
        return _graph.diameter(self.adjacency)

    def is_connected(self) -> bool:
        """True if every node is reachable from node 0."""
        closed = self._lattice_connected()
        if closed is not None:
            return closed
        d = _graph.bfs_distances(self.adjacency, 0)
        return bool((d >= 0).all())

    # -- geometry -------------------------------------------------------

    def tx_range(self) -> float:
        """Radio range (metres) required to reach all lattice neighbours.

        This is the *d* plugged into the First Order Radio Model's
        amplifier term.  For axis-only meshes it equals the spacing; the
        2D-8 mesh overrides it with ``spacing * sqrt(2)`` to cover diagonal
        neighbours.  (At the paper's parameters the difference to total
        power is below its 3-significant-digit resolution either way;
        see EXPERIMENTS.md.)
        """
        return self.spacing

    def link_distance(self, a: Coord, b: Coord) -> float:
        """Euclidean distance in metres between two (adjacent or not) nodes."""
        pa = self.positions()[self.index(a)]
        pb = self.positions()[self.index(b)]
        return float(np.linalg.norm(pa - pb))

    # -- misc -----------------------------------------------------------

    def validate(self) -> None:
        """Run internal consistency checks; raises AssertionError on failure.

        Checks symmetry of the adjacency, coordinate round-tripping and
        agreement between the python-level and CSR neighbourhoods.  Used by
        the test-suite and by :mod:`repro.cli` self-checks.
        """
        adj = self.adjacency
        if (adj != adj.T).nnz != 0:
            raise AssertionError(f"{self!r}: adjacency is not symmetric")
        if adj.diagonal().any():
            raise AssertionError(f"{self!r}: self-loops present")
        for i in range(self.num_nodes):
            c = self.coord(i)
            if self.index(c) != i:
                raise AssertionError(f"{self!r}: coord/index mismatch at {i}")
            got = sorted(self.coord(j) for j in self.neighbor_indices(i))
            want = self.neighbors(c)
            if got != want:
                raise AssertionError(
                    f"{self!r}: neighbourhood mismatch at {c}: {got} != {want}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} n={self.num_nodes}>"
