"""Random unit-disk WSN topology (baseline for the regular-vs-random claim).

The paper's introduction motivates regular topologies by citing [12, 14]:
"the WSN with regular topology can communicate more efficiently than the WSN
with random topology".  To reproduce that comparison we provide the standard
random-deployment model those works assume: nodes scattered uniformly at
random over a rectangle, with a radio link between every pair closer than
the transmission radius (a unit-disk graph).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import Topology
from .coords import validate_coord


class RandomDiskTopology(Topology):
    """Uniform random node placement with unit-disk connectivity.

    Parameters
    ----------
    num_nodes:
        Number of sensors to scatter.
    width, height:
        Extent of the deployment rectangle in metres.
    radio_range:
        Link radius in metres.
    seed:
        RNG seed (deterministic by default so tests are reproducible).

    Node "coordinates" are 1-tuples ``(i,)`` with ``1 <= i <= num_nodes``
    since random deployments have no lattice structure; positions in metres
    are available through :meth:`positions`.
    """

    name = "random-disk"
    nominal_degree = 0  # no nominal degree in a random graph

    def __init__(self, num_nodes: int, width: float, height: float,
                 radio_range: float, seed: int = 0) -> None:
        super().__init__(spacing=radio_range)
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if width <= 0 or height <= 0 or radio_range <= 0:
            raise ValueError("width, height and radio_range must be positive")
        self._n = int(num_nodes)
        self.width = float(width)
        self.height = float(height)
        self.radio_range = float(radio_range)
        rng = np.random.default_rng(seed)
        self._pos = rng.uniform(
            low=[0.0, 0.0], high=[width, height], size=(self._n, 2))
        # Precompute the neighbour lists once (N is small in all our uses).
        diff = self._pos[:, None, :] - self._pos[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        within = dist2 <= radio_range * radio_range
        np.fill_diagonal(within, False)
        self._nbrs: List[np.ndarray] = [
            np.nonzero(within[i])[0] for i in range(self._n)]
        # nominal degree: the realised maximum, so is_border() is meaningful
        self.nominal_degree = max(
            (len(a) for a in self._nbrs), default=0)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def dims(self) -> int:
        return 1

    def contains(self, coord) -> bool:
        (i,) = validate_coord(coord, 1)
        return 1 <= i <= self._n

    def index(self, coord) -> int:
        (i,) = validate_coord(coord, 1)
        if not 1 <= i <= self._n:
            raise ValueError(f"node {i} outside [1, {self._n}]")
        return i - 1

    def coord(self, index: int):
        if not 0 <= index < self._n:
            raise ValueError(f"index {index} out of range")
        return (index + 1,)

    def positions(self) -> np.ndarray:
        return self._pos

    def tx_range(self) -> float:
        return self.radio_range

    def _neighbor_coords(self, coord):
        (i,) = coord
        return [(int(j) + 1,) for j in self._nbrs[i - 1]]
