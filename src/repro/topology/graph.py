"""Vectorised graph utilities shared by all topologies.

All functions operate on scipy CSR adjacency matrices so that the hot paths
(per-slot collision counting in the simulator, BFS sweeps over hundreds of
sources in the benchmarks) stay inside numpy/scipy kernels, per the
"vectorise, don't loop" rule of the HPC guides.

Large-grid fast path
--------------------
Two of the utilities here have size-sensitive implementations:

* :func:`build_adjacency` consumes the topology's vectorised *stencil*
  edge arrays (:meth:`~repro.topology.base.Topology.stencil_edges`) when
  the lattice provides them, and only falls back to the per-node python
  loop (:func:`build_adjacency_loop`) for irregular topologies.  The loop
  builder is kept as the differential reference; the test-suite asserts
  CSR equality between the two across shapes and lattices.
* :func:`all_pairs_distances` materialises a dense ``(n, n)`` float matrix
  — O(n^2) memory, catastrophic past ~10^4 nodes — so it is gated behind
  :data:`DENSE_PAIRS_GATE`.  :func:`diameter` switches to the BFS
  double-sweep estimator above the gate; regular lattices never get that
  far because :class:`~repro.topology.base.Topology` prefers their exact
  closed-form diameters.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import Topology

#: Largest node count for which the dense all-pairs matrix may be
#: materialised (n^2 float64 at 4096 nodes is ~128 MiB; a million-node
#: mesh would need ~7 TiB).  Above the gate, callers must use the lattice
#: closed forms or the BFS-based estimators.
DENSE_PAIRS_GATE = 4096


class DenseAllPairsError(MemoryError):
    """Raised when the O(n^2) all-pairs matrix is requested above the gate."""


def build_adjacency(topology: "Topology") -> sparse.csr_matrix:
    """Build the symmetric 0/1 CSR adjacency matrix of *topology*.

    Regular lattices provide vectorised stencil edge arrays (pure index
    arithmetic, no per-node python); irregular topologies fall back to
    :func:`build_adjacency_loop`.  Both paths produce identical CSR
    matrices (indices sorted, all-ones data) — the differential suite in
    ``tests/test_stencil_adjacency.py`` pins this down.
    """
    edges = topology.stencil_edges()
    if edges is None:
        return build_adjacency_loop(topology)
    rows, cols = edges
    n = topology.num_nodes
    data = np.ones(len(rows), dtype=np.int8)
    adj = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    adj.sum_duplicates()
    if adj.nnz != len(rows):
        raise AssertionError("duplicate edges produced by stencil_edges")
    adj.sort_indices()
    return adj


def build_adjacency_loop(topology: "Topology") -> sparse.csr_matrix:
    """Reference per-node loop builder (O(n * degree) python calls).

    Constructed from the lattice-level ``_neighbor_coords`` so the CSR
    matrix is, by construction, in agreement with the python-level API
    (``Topology.validate`` double-checks this).  Kept as the differential
    oracle for :func:`build_adjacency`'s stencil fast path and as the only
    builder for irregular topologies (random disk deployments).
    """
    rows: list[int] = []
    cols: list[int] = []
    n = topology.num_nodes
    for i in range(n):
        c = topology.coord(i)
        for nb in topology._neighbor_coords(c):
            rows.append(i)
            cols.append(topology.index(nb))
    data = np.ones(len(rows), dtype=np.int8)
    adj = sparse.csr_matrix(
        (data, (np.asarray(rows), np.asarray(cols))), shape=(n, n))
    adj.sum_duplicates()
    if (adj.data > 1).any():
        raise AssertionError("duplicate edges produced by _neighbor_coords")
    adj.sort_indices()
    return adj


class LazyNeighborSets(Sequence):
    """CSR-slice-backed per-node neighbour sets, built on first access.

    The schedule compiler only touches the neighbourhoods of unreached /
    border / collision nodes when planning fixes, so eagerly freezing all
    n sets up front (the previous ``neighbor_sets`` implementation) paid
    an O(n) python pass per topology that large grids never amortise.
    This sequence materialises ``frozenset`` views lazily and memoises
    them per node; fully-indexed it is element-for-element identical to
    the eager list.
    """

    __slots__ = ("_indptr", "_indices", "_cache")

    def __init__(self, adj: sparse.csr_matrix) -> None:
        self._indptr = adj.indptr
        self._indices = adj.indices
        self._cache: list = [None] * (len(adj.indptr) - 1)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, v):
        if isinstance(v, slice):
            return [self[i] for i in range(*v.indices(len(self)))]
        got = self._cache[v]          # list indexing handles bounds/negatives
        if got is None:
            v %= len(self._cache)
            got = frozenset(
                self._indices[self._indptr[v]:self._indptr[v + 1]].tolist())
            self._cache[v] = got
        return got


def bfs_distances(adj: sparse.csr_matrix, source: int) -> np.ndarray:
    """Hop distances from *source* to every node; ``-1`` where unreachable.

    Implemented as a frontier sweep with boolean sparse mat-vec products —
    O(edges) per level and fully vectorised.
    """
    n = adj.shape[0]
    dist = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    visited = frontier.copy()
    dist[source] = 0
    level = 0
    while frontier.any():
        level += 1
        reached = adj.dot(frontier.astype(np.int8)) > 0
        frontier = reached & ~visited
        dist[frontier] = level
        visited |= frontier
    return dist


def all_pairs_distances(adj: sparse.csr_matrix, *,
                        force: bool = False) -> np.ndarray:
    """Dense all-pairs hop-distance matrix (``inf`` where unreachable).

    Allocates an ``(n, n)`` float64 matrix, so it refuses to run above
    :data:`DENSE_PAIRS_GATE` nodes unless ``force=True``; large-grid
    callers should use the lattice closed forms on
    :class:`~repro.topology.base.Topology` or :func:`diameter`'s BFS
    double-sweep path instead.
    """
    n = adj.shape[0]
    if n > DENSE_PAIRS_GATE and not force:
        raise DenseAllPairsError(
            f"dense all-pairs over {n} nodes needs ~{8 * n * n / 2**30:.1f}"
            f" GiB; use the lattice closed forms / BFS sweeps, or pass "
            f"force=True (gate: {DENSE_PAIRS_GATE} nodes)")
    return csgraph.shortest_path(adj, method="D", unweighted=True)


def diameter(adj: sparse.csr_matrix) -> int:
    """Graph diameter (max finite hop distance over all pairs).

    Below :data:`DENSE_PAIRS_GATE` this is exact via the dense all-pairs
    matrix.  Above the gate it returns :func:`double_sweep_diameter`,
    which is exact on this repo's lattice family (differentially tested
    against the closed forms) and a lower bound on arbitrary graphs.
    """
    if adj.shape[0] <= DENSE_PAIRS_GATE:
        d = all_pairs_distances(adj)
        finite = d[np.isfinite(d)]
        return int(finite.max())
    return double_sweep_diameter(adj)


def double_sweep_diameter(adj: sparse.csr_matrix,
                          starts: Optional[Sequence[int]] = None,
                          sweeps: int = 4) -> int:
    """BFS double-sweep diameter estimate in O(sweeps * edges * levels).

    From each start node: BFS, hop to the farthest node found, BFS again,
    and keep chasing eccentricity maxima for up to *sweeps* rounds.  On
    the grid lattices of this repo the second sweep already attains the
    true diameter; in general graphs the result is a lower bound.
    Unreachable pairs are ignored (matching :func:`diameter`'s max-finite
    convention), so disconnected inputs yield the largest eccentricity
    seen from the explored components.
    """
    n = adj.shape[0]
    if n == 0:
        return 0
    if starts is None:
        # First/last node plus extreme-degree nodes: cheap, deterministic,
        # and diverse enough that on this repo's lattices at least one
        # start escapes the ecc-chasing fixed points (the hex lattice has
        # corner starts whose sweep stalls one below the diameter).
        degrees = np.diff(adj.indptr)
        starts = sorted({0, n - 1, int(degrees.argmax()),
                         int(degrees.argmin())})
    best = 0
    for start in starts:
        v = int(start)
        seen = set()
        for _ in range(max(1, sweeps)):
            if v in seen:
                break
            seen.add(v)
            dist = bfs_distances(adj, v)
            ecc = int(dist.max())
            if ecc > best:
                best = ecc
            v = int(dist.argmax())
    return best


def eccentricities(adj: sparse.csr_matrix, *,
                   force: bool = False) -> np.ndarray:
    """Per-node eccentricity vector (ignores unreachable pairs).

    Dense all-pairs underneath, so gated exactly like
    :func:`all_pairs_distances`; large regular grids should use
    :meth:`repro.topology.base.Topology.eccentricities`, which evaluates
    the closed-form lattice distances in O(n).
    """
    d = all_pairs_distances(adj, force=force)
    d[~np.isfinite(d)] = -np.inf
    return d.max(axis=1).astype(np.int64)


def connected_components(adj: sparse.csr_matrix) -> tuple[int, np.ndarray]:
    """Number of connected components and per-node component labels."""
    ncomp, labels = csgraph.connected_components(adj, directed=False)
    return int(ncomp), labels


def neighbor_counts(adj: sparse.csr_matrix, mask: np.ndarray) -> np.ndarray:
    """For each node, how many of its neighbours are flagged in *mask*.

    This single sparse mat-vec is the collision-model kernel: with *mask* =
    "transmitting this slot", the result counts simultaneous in-range
    transmitters per receiver.
    """
    return adj.dot(mask.astype(np.int8)).astype(np.int64)
