"""Vectorised graph utilities shared by all topologies.

All functions operate on scipy CSR adjacency matrices so that the hot paths
(per-slot collision counting in the simulator, BFS sweeps over hundreds of
sources in the benchmarks) stay inside numpy/scipy kernels, per the
"vectorise, don't loop" rule of the HPC guides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import Topology


def build_adjacency(topology: "Topology") -> sparse.csr_matrix:
    """Build the symmetric 0/1 CSR adjacency matrix of *topology*.

    Constructed from the lattice-level ``_neighbor_coords`` so the CSR
    matrix is, by construction, in agreement with the python-level API
    (``Topology.validate`` double-checks this).
    """
    rows: list[int] = []
    cols: list[int] = []
    n = topology.num_nodes
    for i in range(n):
        c = topology.coord(i)
        for nb in topology._neighbor_coords(c):
            rows.append(i)
            cols.append(topology.index(nb))
    data = np.ones(len(rows), dtype=np.int8)
    adj = sparse.csr_matrix(
        (data, (np.asarray(rows), np.asarray(cols))), shape=(n, n))
    adj.sum_duplicates()
    if (adj.data > 1).any():
        raise AssertionError("duplicate edges produced by _neighbor_coords")
    adj.sort_indices()
    return adj


def bfs_distances(adj: sparse.csr_matrix, source: int) -> np.ndarray:
    """Hop distances from *source* to every node; ``-1`` where unreachable.

    Implemented as a frontier sweep with boolean sparse mat-vec products —
    O(edges) per level and fully vectorised.
    """
    n = adj.shape[0]
    dist = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    visited = frontier.copy()
    dist[source] = 0
    level = 0
    while frontier.any():
        level += 1
        reached = adj.dot(frontier.astype(np.int8)) > 0
        frontier = reached & ~visited
        dist[frontier] = level
        visited |= frontier
    return dist


def all_pairs_distances(adj: sparse.csr_matrix) -> np.ndarray:
    """Dense all-pairs hop-distance matrix (``inf`` where unreachable)."""
    return csgraph.shortest_path(adj, method="D", unweighted=True)


def diameter(adj: sparse.csr_matrix) -> int:
    """Graph diameter (max finite hop distance over all pairs)."""
    d = all_pairs_distances(adj)
    finite = d[np.isfinite(d)]
    return int(finite.max())


def eccentricities(adj: sparse.csr_matrix) -> np.ndarray:
    """Per-node eccentricity vector (ignores unreachable pairs)."""
    d = all_pairs_distances(adj)
    d[~np.isfinite(d)] = -np.inf
    return d.max(axis=1).astype(np.int64)


def connected_components(adj: sparse.csr_matrix) -> tuple[int, np.ndarray]:
    """Number of connected components and per-node component labels."""
    ncomp, labels = csgraph.connected_components(adj, directed=False)
    return int(ncomp), labels


def neighbor_counts(adj: sparse.csr_matrix, mask: np.ndarray) -> np.ndarray:
    """For each node, how many of its neighbours are flagged in *mask*.

    This single sparse mat-vec is the collision-model kernel: with *mask* =
    "transmitting this slot", the result counts simultaneous in-range
    transmitters per receiver.
    """
    return adj.dot(mask.astype(np.int8)).astype(np.int64)
