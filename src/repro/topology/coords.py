"""Coordinate conventions for regular WSN topologies.

The paper assigns every sensor node a unique *id* equal to its position in
the grid: ``(x, y)`` in 2D and ``(x, y, z)`` in 3D, with 1-based components
(``1 <= x <= m``, ``1 <= y <= n``, ``1 <= z <= l``).  All public APIs in this
library speak that 1-based coordinate language; internally nodes are
flattened to 0-based integer indices so state can live in numpy arrays.

The flattening is x-major: ``index = (x-1) + (y-1)*m [+ (z-1)*m*n]``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

Coord2D = Tuple[int, int]
Coord3D = Tuple[int, int, int]
Coord = Union[Coord2D, Coord3D]


def flatten2d(x: int, y: int, m: int) -> int:
    """Flatten a 1-based 2D coordinate to a 0-based node index."""
    return (x - 1) + (y - 1) * m


def unflatten2d(index: int, m: int) -> Coord2D:
    """Inverse of :func:`flatten2d`."""
    y, x = divmod(index, m)
    return (x + 1, y + 1)


def flatten3d(x: int, y: int, z: int, m: int, n: int) -> int:
    """Flatten a 1-based 3D coordinate to a 0-based node index."""
    return (x - 1) + (y - 1) * m + (z - 1) * m * n


def unflatten3d(index: int, m: int, n: int) -> Coord3D:
    """Inverse of :func:`flatten3d`."""
    z, rest = divmod(index, m * n)
    y, x = divmod(rest, m)
    return (x + 1, y + 1, z + 1)


def in_box2d(x: int, y: int, m: int, n: int) -> bool:
    """True if ``(x, y)`` lies inside the 1-based ``m x n`` grid."""
    return 1 <= x <= m and 1 <= y <= n


def in_box3d(x: int, y: int, z: int, m: int, n: int, l: int) -> bool:
    """True if ``(x, y, z)`` lies inside the 1-based ``m x n x l`` grid."""
    return 1 <= x <= m and 1 <= y <= n and 1 <= z <= l


def manhattan(a: Sequence[int], b: Sequence[int]) -> int:
    """Manhattan (L1) distance between two coordinates of equal length."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {a} vs {b}")
    return sum(abs(ai - bi) for ai, bi in zip(a, b))


def chebyshev(a: Sequence[int], b: Sequence[int]) -> int:
    """Chebyshev (L-infinity) distance between two coordinates."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {a} vs {b}")
    return max(abs(ai - bi) for ai, bi in zip(a, b))


def validate_coord(coord: Iterable[int], dims: int) -> Coord:
    """Normalise *coord* to a tuple of ``dims`` ints, raising on mismatch.

    Accepts any iterable of integers (lists, numpy scalars, ...) so callers
    can be sloppy; protocol code always works with plain tuples afterwards.
    """
    tup = tuple(int(c) for c in coord)
    if len(tup) != dims:
        raise ValueError(f"expected a {dims}-D coordinate, got {tup!r}")
    return tup  # type: ignore[return-value]
