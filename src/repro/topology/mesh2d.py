"""The three regular 2D mesh topologies of the paper (Figs. 1-3).

* :class:`Mesh2D4` — each interior node talks to its 4 axis neighbours
  (von Neumann neighbourhood).
* :class:`Mesh2D8` — 8 neighbours: axis + diagonals (Moore neighbourhood).
* :class:`Mesh2D3` — 3 neighbours: both horizontal neighbours plus exactly
  one vertical neighbour, alternating up/down like a brick wall.  The
  vertical edge between ``(x, y)`` and ``(x, y+1)`` exists iff ``x + y`` is
  even — the convention consistent with the paper's worked example, where
  source ``(5, 4)`` has ``(5, 3)`` but *not* ``(5, 5)`` as a neighbour.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from .base import Topology
from .coords import Coord2D, flatten2d, in_box2d, unflatten2d, validate_coord


class _Mesh2DBase(Topology):
    """Common machinery for the rectangular 2D meshes."""

    def __init__(self, m: int, n: int, spacing: float = 0.5) -> None:
        super().__init__(spacing)
        if m < 1 or n < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {m}x{n}")
        self.m = int(m)
        self.n = int(n)

    @property
    def num_nodes(self) -> int:
        return self.m * self.n

    @property
    def dims(self) -> int:
        return 2

    @property
    def shape(self) -> tuple[int, int]:
        """``(m, n)`` grid extent."""
        return (self.m, self.n)

    def contains(self, coord) -> bool:
        x, y = validate_coord(coord, 2)
        return in_box2d(x, y, self.m, self.n)

    def index(self, coord) -> int:
        x, y = validate_coord(coord, 2)
        if not in_box2d(x, y, self.m, self.n):
            raise ValueError(f"({x}, {y}) outside {self.m}x{self.n} mesh")
        return flatten2d(x, y, self.m)

    def coord(self, index: int) -> Coord2D:
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"index {index} out of range")
        return unflatten2d(index, self.m)

    def positions(self) -> np.ndarray:
        xs, ys = np.meshgrid(
            np.arange(self.m), np.arange(self.n), indexing="xy")
        pos = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
        return pos * self.spacing

    def _offset_neighbors(self, coord, offsets) -> List[Coord2D]:
        x, y = coord
        out = []
        for dx, dy in offsets:
            nx, ny = x + dx, y + dy
            if in_box2d(nx, ny, self.m, self.n):
                out.append((nx, ny))
        return out

    # -- large-grid fast path -------------------------------------------

    def _grid_xy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node 1-based coordinate arrays ``(x, y)`` in index order."""
        idx = np.arange(self.num_nodes, dtype=np.int64)
        return idx % self.m + 1, idx // self.m + 1

    def _stencil_offsets(self, x: np.ndarray, y: np.ndarray) -> List[tuple]:
        """``(dx, dy)`` pairs of the lattice stencil; each component is an
        int or a per-node array (parity-dependent lattices)."""
        return list(self.OFFSETS)

    def stencil_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Directed edge arrays from pure index arithmetic (no python
        loop): shift the coordinate grids by each stencil offset and mask
        out-of-box targets."""
        x, y = self._grid_xy()
        idx = np.arange(self.num_nodes, dtype=np.int64)
        rows, cols = [], []
        for dx, dy in self._stencil_offsets(x, y):
            nx, ny = x + dx, y + dy
            ok = (nx >= 1) & (nx <= self.m) & (ny >= 1) & (ny <= self.n)
            rows.append(idx[ok])
            cols.append(nx[ok] - 1 + (ny[ok] - 1) * self.m)
        return np.concatenate(rows), np.concatenate(cols)

    def shift_index_map(self, delta) -> Tuple[np.ndarray, np.ndarray]:
        """Index-arithmetic translation map (no coordinate loop)."""
        dx, dy = (int(d) for d in delta)
        x, y = self._grid_xy()
        nx, ny = x + dx, y + dy
        valid = (nx >= 1) & (nx <= self.m) & (ny >= 1) & (ny <= self.n)
        mapped = np.where(valid, nx - 1 + (ny - 1) * self.m, -1)
        return mapped, valid

    def _lattice_connected(self) -> Optional[bool]:
        """Rectangular meshes with both horizontal and some vertical edge
        per node are connected; parity lattices override."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.m}x{self.n}>"


class Mesh2D4(_Mesh2DBase):
    """2D mesh with 4 neighbours (paper Fig. 2)."""

    name = "2D-4"
    nominal_degree = 4

    OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1))

    def _neighbor_coords(self, coord) -> List[Coord2D]:
        return self._offset_neighbors(coord, self.OFFSETS)

    # Hop distance is the Manhattan metric, so the far corner is always a
    # farthest node and all the O(n)/O(1) metrics are closed-form.

    def lattice_diameter(self) -> int:
        return (self.m - 1) + (self.n - 1)

    def lattice_eccentricities(self) -> np.ndarray:
        x, y = self._grid_xy()
        return (np.maximum(x - 1, self.m - x)
                + np.maximum(y - 1, self.n - y))

    def _lattice_eccentricity(self, coord) -> int:
        x, y = validate_coord(coord, 2)
        self.index((x, y))  # bounds check
        return max(x - 1, self.m - x) + max(y - 1, self.n - y)


class Mesh2D8(_Mesh2DBase):
    """2D mesh with 8 neighbours (paper Fig. 3)."""

    name = "2D-8"
    nominal_degree = 8

    OFFSETS = (
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (1, -1), (-1, 1), (-1, -1),
    )

    def _neighbor_coords(self, coord) -> List[Coord2D]:
        return self._offset_neighbors(coord, self.OFFSETS)

    def tx_range(self) -> float:
        """Diagonal neighbours sit ``sqrt(2) * spacing`` away."""
        return self.spacing * math.sqrt(2.0)

    # Hop distance is the Chebyshev metric.

    def lattice_diameter(self) -> int:
        return max(self.m - 1, self.n - 1)

    def lattice_eccentricities(self) -> np.ndarray:
        x, y = self._grid_xy()
        return np.maximum(np.maximum(x - 1, self.m - x),
                          np.maximum(y - 1, self.n - y))

    def _lattice_eccentricity(self, coord) -> int:
        x, y = validate_coord(coord, 2)
        self.index((x, y))  # bounds check
        return max(x - 1, self.m - x, y - 1, self.n - y)


class Mesh2D3(_Mesh2DBase):
    """2D mesh with 3 neighbours — brick-wall lattice (paper Fig. 1).

    Every node has both horizontal neighbours; vertical edges alternate so
    that each node has exactly one vertical neighbour.  The edge
    ``(x, y) - (x, y+1)`` exists iff ``x + y`` is even.
    """

    name = "2D-3"
    nominal_degree = 3

    @staticmethod
    def vertical_neighbor_offset(x: int, y: int) -> int:
        """Return +1 or -1: the dy of the (unique) vertical neighbour of
        ``(x, y)`` in an unbounded brick lattice."""
        return 1 if (x + y) % 2 == 0 else -1

    def has_up_neighbor(self, coord) -> bool:
        """True if ``(x, y+1)`` is the vertical neighbour of *coord*
        (ignoring the grid border)."""
        x, y = validate_coord(coord, 2)
        return self.vertical_neighbor_offset(x, y) == 1

    def _neighbor_coords(self, coord) -> List[Coord2D]:
        x, y = coord
        dy = self.vertical_neighbor_offset(x, y)
        return self._offset_neighbors(coord, ((1, 0), (-1, 0), (0, dy)))

    def _stencil_offsets(self, x: np.ndarray, y: np.ndarray) -> List[tuple]:
        """Horizontal pair plus the parity-dependent vertical edge: the
        ``(x + y) % 2`` brick rule as one vectorised offset column."""
        dy = np.where((x + y) % 2 == 0, 1, -1)
        return [(1, 0), (-1, 0), (0, dy)]

    # -- closed-form hop metric -----------------------------------------
    #
    # For m >= 2 the brick-wall hop distance has a closed form.  Climbing
    # one row requires a column of the right parity ((x + y) even), and
    # consecutive climbs need alternating column parities, so a path with
    # dy vertical moves spends at least max(dx, dy - 1 + a + b) horizontal
    # moves, where a = 1 iff the lower endpoint cannot climb immediately
    # ((x_lo + y_lo) odd) and b = 1 iff the upper endpoint is not on the
    # final climb parity ((x_hi + y_hi) even).  Both bounds are achievable
    # by zig-zagging between adjacent columns, so
    #
    #     d = dy + max(dx, dy - 1 + a + b)        (dy >= 1; d = dx else).
    #
    # tests/test_lattice_diameter.py verifies this differentially against
    # dense BFS over a grid of shapes.  m == 1 degenerates into isolated
    # domino pairs and is special-cased.

    @staticmethod
    def _brick_distance(x1, y1, x2, y2):
        """Vectorised closed-form hop distance (valid for m >= 2)."""
        x1, y1, x2, y2 = (np.asarray(v, dtype=np.int64)
                          for v in (x1, y1, x2, y2))
        swap = y1 > y2
        xl = np.where(swap, x2, x1)
        yl = np.where(swap, y2, y1)
        xh = np.where(swap, x1, x2)
        yh = np.where(swap, y1, y2)
        dx = np.abs(x1 - x2)
        dy = yh - yl
        a = (xl + yl) % 2
        b = (xh + yh + 1) % 2
        return np.where(dy == 0, dx,
                        dy + np.maximum(dx, dy - 1 + a + b))

    #: Candidate x-columns containing a farthest node for any source (both
    #: parities at both extremes); eccentricity = max distance over the
    #: candidate set {1, 2, m-1, m} x {1, n}.

    def _far_candidates(self) -> Tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(sorted({1, 2, self.m - 1, self.m}), dtype=np.int64)
        xs = xs[(xs >= 1) & (xs <= self.m)]
        ys = np.asarray(sorted({1, self.n}), dtype=np.int64)
        cx, cy = np.meshgrid(xs, ys, indexing="ij")
        return cx.ravel(), cy.ravel()

    def lattice_diameter(self) -> int:
        if self.m == 1:
            # Vertical edges only at (1, y)-(1, y+1) with y odd: the grid
            # decomposes into dominoes (plus a singleton for odd n).
            return 1 if self.n >= 2 else 0
        return max(self.m + self.n - 2, 2 * self.n - 1)

    def lattice_eccentricities(self) -> np.ndarray:
        if self.m == 1:
            y = np.arange(1, self.n + 1, dtype=np.int64)
            paired = (y % 2 == 0) | (y < self.n)
            return paired.astype(np.int64)
        x, y = self._grid_xy()
        cx, cy = self._far_candidates()
        d = self._brick_distance(x[:, None], y[:, None],
                                 cx[None, :], cy[None, :])
        return d.max(axis=1)

    def _lattice_eccentricity(self, coord) -> int:
        x, y = validate_coord(coord, 2)
        self.index((x, y))  # bounds check
        if self.m == 1:
            return int(y % 2 == 0 or y < self.n)
        cx, cy = self._far_candidates()
        return int(self._brick_distance(x, y, cx, cy).max())

    def _lattice_connected(self) -> bool:
        return self.m >= 2 or self.n <= 2
