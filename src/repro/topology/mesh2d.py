"""The three regular 2D mesh topologies of the paper (Figs. 1-3).

* :class:`Mesh2D4` — each interior node talks to its 4 axis neighbours
  (von Neumann neighbourhood).
* :class:`Mesh2D8` — 8 neighbours: axis + diagonals (Moore neighbourhood).
* :class:`Mesh2D3` — 3 neighbours: both horizontal neighbours plus exactly
  one vertical neighbour, alternating up/down like a brick wall.  The
  vertical edge between ``(x, y)`` and ``(x, y+1)`` exists iff ``x + y`` is
  even — the convention consistent with the paper's worked example, where
  source ``(5, 4)`` has ``(5, 3)`` but *not* ``(5, 5)`` as a neighbour.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .base import Topology
from .coords import Coord2D, flatten2d, in_box2d, unflatten2d, validate_coord


class _Mesh2DBase(Topology):
    """Common machinery for the rectangular 2D meshes."""

    def __init__(self, m: int, n: int, spacing: float = 0.5) -> None:
        super().__init__(spacing)
        if m < 1 or n < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {m}x{n}")
        self.m = int(m)
        self.n = int(n)

    @property
    def num_nodes(self) -> int:
        return self.m * self.n

    @property
    def dims(self) -> int:
        return 2

    @property
    def shape(self) -> tuple[int, int]:
        """``(m, n)`` grid extent."""
        return (self.m, self.n)

    def contains(self, coord) -> bool:
        x, y = validate_coord(coord, 2)
        return in_box2d(x, y, self.m, self.n)

    def index(self, coord) -> int:
        x, y = validate_coord(coord, 2)
        if not in_box2d(x, y, self.m, self.n):
            raise ValueError(f"({x}, {y}) outside {self.m}x{self.n} mesh")
        return flatten2d(x, y, self.m)

    def coord(self, index: int) -> Coord2D:
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"index {index} out of range")
        return unflatten2d(index, self.m)

    def positions(self) -> np.ndarray:
        xs, ys = np.meshgrid(
            np.arange(self.m), np.arange(self.n), indexing="xy")
        pos = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
        return pos * self.spacing

    def _offset_neighbors(self, coord, offsets) -> List[Coord2D]:
        x, y = coord
        out = []
        for dx, dy in offsets:
            nx, ny = x + dx, y + dy
            if in_box2d(nx, ny, self.m, self.n):
                out.append((nx, ny))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.m}x{self.n}>"


class Mesh2D4(_Mesh2DBase):
    """2D mesh with 4 neighbours (paper Fig. 2)."""

    name = "2D-4"
    nominal_degree = 4

    OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1))

    def _neighbor_coords(self, coord) -> List[Coord2D]:
        return self._offset_neighbors(coord, self.OFFSETS)


class Mesh2D8(_Mesh2DBase):
    """2D mesh with 8 neighbours (paper Fig. 3)."""

    name = "2D-8"
    nominal_degree = 8

    OFFSETS = (
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (1, -1), (-1, 1), (-1, -1),
    )

    def _neighbor_coords(self, coord) -> List[Coord2D]:
        return self._offset_neighbors(coord, self.OFFSETS)

    def tx_range(self) -> float:
        """Diagonal neighbours sit ``sqrt(2) * spacing`` away."""
        return self.spacing * math.sqrt(2.0)


class Mesh2D3(_Mesh2DBase):
    """2D mesh with 3 neighbours — brick-wall lattice (paper Fig. 1).

    Every node has both horizontal neighbours; vertical edges alternate so
    that each node has exactly one vertical neighbour.  The edge
    ``(x, y) - (x, y+1)`` exists iff ``x + y`` is even.
    """

    name = "2D-3"
    nominal_degree = 3

    @staticmethod
    def vertical_neighbor_offset(x: int, y: int) -> int:
        """Return +1 or -1: the dy of the (unique) vertical neighbour of
        ``(x, y)`` in an unbounded brick lattice."""
        return 1 if (x + y) % 2 == 0 else -1

    def has_up_neighbor(self, coord) -> bool:
        """True if ``(x, y+1)`` is the vertical neighbour of *coord*
        (ignoring the grid border)."""
        x, y = validate_coord(coord, 2)
        return self.vertical_neighbor_offset(x, y) == 1

    def _neighbor_coords(self, coord) -> List[Coord2D]:
        x, y = coord
        dy = self.vertical_neighbor_offset(x, y)
        return self._offset_neighbors(coord, ((1, 0), (-1, 0), (0, dy)))
