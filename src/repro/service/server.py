"""Asyncio NDJSON front end: ``repro-wsn serve``.

A thin TCP server over :class:`~repro.service.runtime.AsyncRuntime`:
each connection streams newline-delimited JSON requests
(:mod:`repro.service.wire`); every line becomes a task awaiting the
shared dispatcher, so concurrent requests — across lines *and* across
connections — coalesce into batched, symmetry-reduced engine calls.

Responses are written in completion order, tagged with nothing but their
content — clients that pipeline requests and need request/response
pairing should send an ``include_schedule``-free query per line and
match on ``source`` (or run one request per connection).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from .engine import QueryEngine
from .runtime import AsyncRuntime
from .wire import error_to_dict, query_from_dict, result_to_dict

MAX_LINE_BYTES = 1 << 20


async def _handle_line(runtime: AsyncRuntime, line: bytes,
                       writer: asyncio.StreamWriter,
                       lock: asyncio.Lock) -> None:
    try:
        query = query_from_dict(json.loads(line))
        result = await runtime.query(query)
        payload = result_to_dict(result)
    except asyncio.CancelledError:
        raise
    except Exception as exc:
        payload = error_to_dict(f"{type(exc).__name__}: {exc}")
    blob = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
    async with lock:  # interleaving-safe writes per connection
        writer.write(blob)
        await writer.drain()


async def _handle_connection(runtime: AsyncRuntime,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    lock = asyncio.Lock()
    pending = set()
    try:
        while True:
            try:
                line = await reader.readline()
            except ConnectionResetError:
                break
            except ValueError:
                # StreamReader.readline converts a limit overrun into
                # ValueError: tell the client why before closing rather
                # than tearing the connection down with a traceback.
                payload = error_to_dict(
                    f"request line exceeds {MAX_LINE_BYTES} bytes")
                blob = (json.dumps(payload, separators=(",", ":"))
                        + "\n").encode()
                try:
                    async with lock:
                        writer.write(blob)
                        await writer.drain()
                except (ConnectionResetError, OSError):
                    pass
                break
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(
                _handle_line(runtime, line, writer, lock))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        for task in pending:
            task.cancel()
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def serve(engine: QueryEngine, host: str = "127.0.0.1",
                port: int = 8765, *,
                ready: Optional[asyncio.Event] = None) -> None:
    """Run the NDJSON query server until cancelled.

    *ready*, when given, is set once the socket is listening (tests use
    it to avoid polling); the bound port is published as
    ``serve.bound_port`` on the event for ``port=0`` runs.
    """
    runtime = AsyncRuntime(engine)
    await runtime.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(runtime, r, w),
        host=host, port=port, limit=MAX_LINE_BYTES)
    try:
        if ready is not None:
            ready.bound_port = server.sockets[0].getsockname()[1]
            ready.set()
        async with server:
            await server.serve_forever()
    finally:
        await runtime.close()


def run_server(engine: QueryEngine, host: str = "127.0.0.1",
               port: int = 8765) -> None:
    """Blocking entry point for the CLI (Ctrl-C to stop)."""
    try:
        asyncio.run(serve(engine, host, port))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
