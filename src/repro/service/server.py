"""Asyncio NDJSON front end: ``repro-wsn serve``.

A thin TCP server over :class:`~repro.service.runtime.AsyncRuntime`:
each connection streams newline-delimited JSON requests
(:mod:`repro.service.wire`); every line becomes a task awaiting the
shared dispatcher, so concurrent requests — across lines *and* across
connections — coalesce into batched, symmetry-reduced engine calls.

Responses are written in completion order, tagged with nothing but their
content — clients that pipeline requests and need request/response
pairing should send an ``include_schedule``-free query per line and
match on ``source`` (or run one request per connection).

Resilience surface (PR 10):

* every error is a structured ``{"ok": false, "error", "error_type"}``
  line — malformed JSON, oversized lines, unknown request types,
  deadline/overload sheds — never a traceback, never a torn connection;
* per-connection in-flight caps (:data:`MAX_INFLIGHT_PER_CONN`): a
  connection that pipelines faster than the engine serves stops being
  *read*, which pushes back through TCP instead of growing the queue;
* graceful shutdown: :func:`serve` takes a ``stop`` event (and
  :func:`run_server` wires SIGTERM/SIGINT to it) — the listener closes
  first, in-flight queries drain for up to ``drain_timeout`` seconds,
  then idle connections are dropped;
* the ``server.drop_connection`` / ``server.garble_response`` fault
  seams (:mod:`repro.faults`) let the chaos suite prove clients
  survive both.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Optional, Set

from .. import faults
from .engine import QueryEngine
from .runtime import AsyncRuntime
from .wire import error_to_dict, request_from_dict, result_to_dict

MAX_LINE_BYTES = 1 << 20

#: Most request lines one connection may have in flight; beyond it the
#: server stops reading that connection until responses drain (TCP
#: backpressure), so one greedy client cannot monopolise the queue.
MAX_INFLIGHT_PER_CONN = 64

#: Default seconds granted to in-flight queries on graceful shutdown.
DRAIN_TIMEOUT_S = 5.0


def _error_payload(exc: Exception) -> dict:
    """Structured error for *exc* — one line, typed, no traceback.

    Exceptions carrying an ``error_type`` (deadline/overload sheds) keep
    it; malformed input maps to ``bad_request``; anything else is an
    ``internal`` error whose message is the exception's one-line
    ``str()`` only.
    """
    error_type = getattr(exc, "error_type", None)
    if error_type is None:
        error_type = ("bad_request" if isinstance(exc, ValueError)
                      else "internal")
    return error_to_dict(f"{type(exc).__name__}: {exc}", error_type)


def _health_payload(runtime: AsyncRuntime) -> dict:
    health = runtime.engine.health()
    health["engine"] = runtime.stats()  # superset: adds queue counters
    return {"ok": True, "type": "health", **health}


async def _write_response(payload: dict, writer: asyncio.StreamWriter,
                          lock: asyncio.Lock) -> None:
    blob = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
    if faults.fires(faults.SERVER_DROP):
        writer.transport.abort()  # injected: connection dies, no reply
        return
    if faults.fires(faults.SERVER_GARBLE):
        blob = b"\x15garbled{not json\n"  # injected: corrupt response
    async with lock:  # interleaving-safe writes per connection
        writer.write(blob)
        await writer.drain()


async def _handle_line(runtime: AsyncRuntime, line: bytes,
                       writer: asyncio.StreamWriter,
                       lock: asyncio.Lock,
                       slots: asyncio.Semaphore) -> None:
    try:
        try:
            kind, parsed = request_from_dict(json.loads(line))
            if kind == "health":
                payload = _health_payload(runtime)
            elif kind == "batch":
                outcomes = await asyncio.gather(
                    *(runtime.query(q) for q in parsed),
                    return_exceptions=True)
                results = []
                for outcome in outcomes:
                    if isinstance(outcome, asyncio.CancelledError):
                        raise outcome
                    if isinstance(outcome, BaseException):
                        results.append(_error_payload(outcome))
                    else:
                        results.append(result_to_dict(outcome))
                payload = {"ok": True, "type": "batch",
                           "results": results}
            else:
                payload = result_to_dict(await runtime.query(parsed))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            payload = _error_payload(exc)
        try:
            await _write_response(payload, writer, lock)
        except (ConnectionResetError, OSError):
            pass  # client went away mid-reply; nothing left to tell it
    finally:
        slots.release()


async def _handle_connection(runtime: AsyncRuntime,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             inflight: Set[asyncio.Task]) -> None:
    lock = asyncio.Lock()
    slots = asyncio.Semaphore(MAX_INFLIGHT_PER_CONN)
    pending = set()
    try:
        while True:
            try:
                line = await reader.readline()
            except ConnectionResetError:
                break
            except ValueError:
                # StreamReader.readline converts a limit overrun into
                # ValueError: tell the client why before closing rather
                # than tearing the connection down with a traceback.
                payload = error_to_dict(
                    f"request line exceeds {MAX_LINE_BYTES} bytes")
                blob = (json.dumps(payload, separators=(",", ":"))
                        + "\n").encode()
                try:
                    async with lock:
                        writer.write(blob)
                        await writer.drain()
                except (ConnectionResetError, OSError):
                    pass
                break
            if not line:
                break
            if not line.strip():
                continue
            # In-flight cap: wait for a slot before reading further —
            # the kernel's receive buffer becomes the queue, and TCP
            # flow control slows the sender down.
            await slots.acquire()
            task = asyncio.create_task(
                _handle_line(runtime, line, writer, lock, slots))
            pending.add(task)
            inflight.add(task)
            task.add_done_callback(pending.discard)
            task.add_done_callback(inflight.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        for task in pending:
            task.cancel()
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def serve(engine: QueryEngine, host: str = "127.0.0.1",
                port: int = 8765, *,
                ready: Optional[asyncio.Event] = None,
                stop: Optional[asyncio.Event] = None,
                drain_timeout: float = DRAIN_TIMEOUT_S) -> None:
    """Run the NDJSON query server until cancelled or *stop* is set.

    *ready*, when given, is set once the socket is listening (tests use
    it to avoid polling); the bound port is published as
    ``serve.bound_port`` on the event for ``port=0`` runs.

    Setting *stop* begins a graceful shutdown: the listener closes (no
    new connections), queries already in flight get up to
    *drain_timeout* seconds to finish and write their responses, and
    only then are the remaining connections dropped.  Cancelling the
    ``serve`` task skips the drain (the old hard-stop path, still used
    by tests).
    """
    runtime = AsyncRuntime(engine)
    await runtime.start()
    if stop is None:
        stop = asyncio.Event()
    conn_tasks: Set[asyncio.Task] = set()
    inflight: Set[asyncio.Task] = set()

    async def handler(reader, writer):
        task = asyncio.current_task()
        conn_tasks.add(task)
        try:
            await _handle_connection(runtime, reader, writer, inflight)
        finally:
            conn_tasks.discard(task)

    server = await asyncio.start_server(
        handler, host=host, port=port, limit=MAX_LINE_BYTES)
    try:
        if ready is not None:
            ready.bound_port = server.sockets[0].getsockname()[1]
            ready.set()
        stop_wait = asyncio.create_task(stop.wait())
        serve_task = asyncio.create_task(server.serve_forever())
        try:
            await asyncio.wait({stop_wait, serve_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (stop_wait, serve_task):
                task.cancel()
            await asyncio.gather(stop_wait, serve_task,
                                 return_exceptions=True)
        # Graceful drain: stop accepting, let in-flight lines finish.
        server.close()
        if inflight:
            await asyncio.wait(set(inflight), timeout=drain_timeout)
    finally:
        for task in list(conn_tasks):
            task.cancel()
        if conn_tasks:
            await asyncio.gather(*list(conn_tasks),
                                 return_exceptions=True)
        server.close()
        try:
            await server.wait_closed()
        except (ConnectionResetError, OSError):  # pragma: no cover
            pass
        await runtime.close()


def run_server(engine: QueryEngine, host: str = "127.0.0.1",
               port: int = 8765, *,
               drain_timeout: float = DRAIN_TIMEOUT_S) -> None:
    """Blocking entry point for the CLI.

    SIGTERM and SIGINT (Ctrl-C) trigger the graceful path: in-flight
    queries drain for up to *drain_timeout* seconds before the process
    exits, so a rolling restart loses no answered work.
    """
    async def main():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without loop signal handlers
        await serve(engine, host, port, stop=stop,
                    drain_timeout=drain_timeout)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass


class BackgroundServer:
    """The server on a daemon thread, for tests, benchmarks, embedding.

    Runs :func:`serve` inside its own ``asyncio.run`` loop on a
    background thread, waits until the socket is listening, and exposes
    the bound port.  ``stop()`` (or leaving the ``with`` block) performs
    the same graceful drain as a SIGTERM.

    ::

        with BackgroundServer(engine, port=0) as srv:
            client = ServiceClient(port=srv.port)
            ...
    """

    def __init__(self, engine: QueryEngine, host: str = "127.0.0.1",
                 port: int = 0, *,
                 drain_timeout: float = DRAIN_TIMEOUT_S) -> None:
        self._engine = engine
        self._host = host
        self._request_port = port
        self._drain_timeout = drain_timeout
        self._started = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self.port: Optional[int] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-ndjson-server")
        self._thread.start()
        if not self._started.wait(timeout=60.0):  # pragma: no cover
            raise RuntimeError("server did not start within 60 s")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            ready = asyncio.Event()
            task = asyncio.create_task(serve(
                self._engine, self._host, self._request_port,
                ready=ready, stop=self._stop,
                drain_timeout=self._drain_timeout))
            ready_wait = asyncio.create_task(ready.wait())
            done, _ = await asyncio.wait({ready_wait, task},
                                         return_when=asyncio.FIRST_COMPLETED)
            if task in done:
                ready_wait.cancel()
                task.result()  # startup failed: surface the reason
                raise RuntimeError("server exited before becoming ready")
            self.port = ready.bound_port
            self._started.set()
            await task

        try:
            asyncio.run(main())
        except BaseException as exc:  # startup failures land on start()
            self._error = exc
        finally:
            self._started.set()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
