"""Runtime variants: the same query engine under three execution models.

Following the ``AsyncRuntime`` / ``SyncRuntime`` / ``SimulationRuntime``
split of the doeff CESK runtime (SNIPPETS.md snippet 3), the protocol /
store / engine code never touches a clock or an event loop itself — a
*runtime* decides how queries execute and what "time" means:

=====================  ==========================  =======================
Runtime                execution model             use case
=====================  ==========================  =======================
:class:`AsyncRuntime`  asyncio, micro-batching     ``repro-wsn serve``
:class:`SyncRuntime`   direct calls, wall clock    ``repro-wsn query`` CLI
:class:`SimulationRuntime`  virtual clock, instant  deterministic tests
=====================  ==========================  =======================

All three expose the same surface — ``query`` / ``query_batch`` /
``now`` — so service code (and its tests) is runtime-agnostic; only
:class:`AsyncRuntime`'s methods are coroutines.

The async runtime is where request coalescing becomes *temporal*:
queries issued by concurrent tasks funnel through one dispatcher, which
drains everything currently queued each tick — so N same-class queries
in flight cost one representative compile, and later stragglers ride
the persisted class profile (zero further compiles).

One tick may mix query *classes* (different shapes, topologies or
compile options — a fleet warming several grids at once).  The
dispatcher splits the drained batch into per-class groups and serves
each group as its own
:meth:`~repro.service.engine.QueryEngine.query_batch` call on the
executor thread pool, concurrently: cold representatives of different
shapes compile on different cores instead of queueing behind each
other, and a slow cold class no longer adds latency to the warm hits
that happened to share its tick.  Splitting costs nothing in compiles —
``query_batch`` coalesces within a class family, and the groups *are*
the class families, so k classes cost exactly k representative compiles
whether they arrive in one tick or k.
"""

from __future__ import annotations

import abc
import asyncio
import time
from typing import List, Optional, Sequence, Tuple

from .engine import (DeadlineExceeded, Overloaded, Query, QueryEngine,
                     QueryResult)

#: Upper bound on one async dispatch batch (bounds per-tick latency).
MAX_BATCH = 1024

#: Default bound on queries waiting for a dispatch tick; beyond it the
#: overflow policy applies (reject the newcomer, or shed the oldest).
MAX_QUEUE = 4096

#: Overflow policies of the bounded async queue.
OVERFLOW_POLICIES = ("reject", "shed-oldest")


class Runtime(abc.ABC):
    """Common surface of the three runtimes."""

    name: str = "runtime"

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (wall-clock or virtual)."""

    def stats(self):
        return self.engine.stats()


class SyncRuntime(Runtime):
    """Direct synchronous execution on the caller's thread.

    The CLI runtime: no event loop, no virtual clock — a query is a
    function call.
    """

    name = "sync"

    def now(self) -> float:
        return time.monotonic()

    def query(self, query: Query) -> QueryResult:
        return self.engine.query(query)

    def query_batch(self, queries: Sequence[Query]) -> List[QueryResult]:
        return self.engine.query_batch(queries)


class SimulationRuntime(Runtime):
    """Deterministic in-process runtime with a virtual clock.

    Queries execute immediately (simulated time does not flow while the
    engine works); the clock only moves through :meth:`advance`.  Every
    answered query is appended to :attr:`timeline` as ``(virtual_time,
    via)`` so tests can assert on serving-tier sequences without
    touching wall-clock timing or sockets.
    """

    name = "simulation"

    def __init__(self, engine: QueryEngine) -> None:
        super().__init__(engine)
        self.time = 0.0
        self.timeline: List[Tuple[float, str]] = []

    def now(self) -> float:
        return self.time

    def advance(self, seconds: float) -> None:
        """Move the virtual clock forward (never backwards)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} s")
        self.time += seconds

    def query(self, query: Query) -> QueryResult:
        result = self.engine.query(query)
        self.timeline.append((self.time, result.via))
        return result

    def query_batch(self, queries: Sequence[Query]) -> List[QueryResult]:
        results = self.engine.query_batch(queries)
        for result in results:
            self.timeline.append((self.time, result.via))
        return results


class AsyncRuntime(Runtime):
    """Asyncio runtime with micro-batching, group-parallel dispatch.

    Concurrent ``await runtime.query(...)`` calls enqueue onto one
    dispatcher task.  Each tick drains the queue, splits the batch into
    per-class groups (same topology, shape, protocol and compile
    options), and runs every group as its own ``query_batch`` on the
    default executor concurrently — the event loop stays responsive
    while cold classes compile in parallel on the engine's locked
    shared tiers.  Failures are group-scoped: an error in one class
    rejects that group's futures and leaves the rest of the tick (and
    the dispatcher) running.
    """

    name = "async"

    def __init__(self, engine: QueryEngine, *,
                 max_batch: int = MAX_BATCH,
                 max_queue: int = MAX_QUEUE,
                 overflow: str = "reject") -> None:
        super().__init__(engine)
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {overflow!r}; "
                             f"expected one of {OVERFLOW_POLICIES}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.overflow = overflow
        #: Overload-protection counters: queries refused at the door
        #: ("reject") and queued queries displaced by newer arrivals
        #: ("shed-oldest"), plus queries shed at dispatch because their
        #: deadline expired while queued.
        self.rejected = 0
        self.shed_queued = 0
        self.shed_expired = 0
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None

    def now(self) -> float:
        return time.monotonic()

    def stats(self):
        out = dict(self.engine.stats())
        out.update({
            "rejected": self.rejected,
            "shed_queued": self.shed_queued,
            "shed_expired": self.shed_expired,
            "queued": 0 if self._queue is None else self._queue.qsize(),
            "max_queue": self.max_queue,
            "overflow": self.overflow,
        })
        return out

    async def __aenter__(self) -> "AsyncRuntime":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._task is not None:
            return
        self._queue = asyncio.Queue()
        self._task = asyncio.create_task(self._dispatch(),
                                         name="repro-query-dispatch")

    async def close(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task, self._queue = None, None

    async def query(self, query: Query) -> QueryResult:
        """Answer one query (coalesced with everything else in flight).

        The deadline is stamped *here*, at arrival — queue wait counts
        against the client's timeout.  A full queue applies the overflow
        policy: ``"reject"`` raises :class:`~repro.service.engine.
        Overloaded` to the newcomer (classic load shedding — cheapest
        possible refusal), ``"shed-oldest"`` fails the longest-waiting
        queued query instead, on the theory that its client has the
        least patience left anyway.
        """
        if self._task is None:
            await self.start()
        query = query.stamped(self.now())
        if self._queue.qsize() >= self.max_queue:
            if self.overflow == "reject":
                self.rejected += 1
                raise Overloaded(
                    f"queue full ({self.max_queue} queries waiting)")
            old_query, old_future = self._queue.get_nowait()
            self.shed_queued += 1
            if not old_future.done():
                old_future.set_exception(Overloaded(
                    "shed from a full queue by a newer arrival"))
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        await self._queue.put((query, future))
        return await future

    async def query_batch(self, queries: Sequence[Query]
                          ) -> List[QueryResult]:
        return list(await asyncio.gather(
            *(self.query(q) for q in queries)))

    @staticmethod
    def _split_groups(batch):
        """Partition one tick's ``(query, future)`` pairs into per-class
        groups — the same key :meth:`QueryEngine.query_batch` coalesces
        on, plus ``include_schedule`` (schedule requests bypass
        coalescing anyway).  Insertion-ordered, so result delivery stays
        deterministic per group."""
        groups: "dict[tuple, list]" = {}
        for item in batch:
            query = item[0]
            key = (query.topology,
                   None if query.shape is None else tuple(query.shape),
                   query.protocol, query.completion, query.repair,
                   query.include_schedule)
            groups.setdefault(key, []).append(item)
        return list(groups.values())

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            # One cooperative tick so tasks that became runnable in the
            # same burst get their queries enqueued before we drain.
            await asyncio.sleep(0)
            while (not self._queue.empty()
                   and len(batch) < self.max_batch):
                batch.append(self._queue.get_nowait())
            # Shed queries whose deadline expired while they waited —
            # before they reach the engine, let alone a compile.
            now = time.monotonic()
            live = []
            for query, future in batch:
                if query.expired(now):
                    self.shed_expired += 1
                    if not future.done():
                        future.set_exception(DeadlineExceeded(
                            "deadline exceeded while queued"))
                else:
                    live.append((query, future))
            batch = live
            if not batch:
                continue
            groups = self._split_groups(batch)
            try:
                outcomes = await asyncio.gather(
                    *(loop.run_in_executor(
                        None, self.engine.query_batch, [q for q, _ in group])
                      for group in groups),
                    return_exceptions=True)
            except asyncio.CancelledError:  # runtime.close()
                for _, future in batch:
                    if not future.done():
                        future.cancel()
                raise
            for group, outcome in zip(groups, outcomes):
                if isinstance(outcome, BaseException):
                    # Group-scoped failure: reject these waiters, keep
                    # serving the other groups and later ticks.
                    for _, future in group:
                        if not future.done():
                            if isinstance(outcome, asyncio.CancelledError):
                                future.cancel()
                            else:
                                future.set_exception(outcome)
                    continue
                for (_, future), result in zip(group, outcome):
                    if not future.done():
                        future.set_result(result)
