"""Broadcast-as-a-service: a long-lived query layer over the artifact store.

The paper's pipeline is one-shot: build a topology, compile a broadcast,
print the tables.  This package turns the compiled artifact store into a
*serving* system that answers ``(topology, shape, source, protocol,
policy) -> schedule/metrics`` queries at high request rates:

* :class:`~repro.service.engine.QueryEngine` — the sync core: LRU-bounded
  memory tier over the fingerprint-sharded
  :class:`~repro.core.store.ArtifactStore`, with *single-flight
  symmetry-class coalescing*: a batch of queries that map to the same
  source-equivalence class triggers exactly one representative compile
  and derives the members through the batched class engine;
* :mod:`~repro.service.runtime` — the runtime split (after doeff's
  ``AsyncRuntime`` / ``SyncRuntime`` / ``SimulationRuntime``): the same
  engine serves an asyncio front end (``repro-wsn serve``), the sync CLI
  (``repro-wsn query``), and deterministic in-process tests with a
  virtual clock;
* :mod:`~repro.service.wire` / :mod:`~repro.service.server` — the
  newline-delimited-JSON protocol and the asyncio TCP server;
* :mod:`~repro.service.client` — the retrying client: reconnect/resend
  with exponential backoff for idempotent queries, deadline-aware.

Steady-state cost is cache warmth, not compile speed: a warmed store
answers metrics queries from persisted counts without replaying or
recompiling anything (see ``benchmarks/perf_service.py``).  The
resilience layer — deadlines, bounded queues, circuit-breaker tier
demotion, graceful shutdown — is exercised by the seeded chaos suite
(``tests/test_faults.py``, driven by :mod:`repro.faults`).
"""

from .client import RetriesExhausted, RetryPolicy, ServiceClient
from .engine import (DEFAULT_MAX_ENTRIES, DeadlineExceeded, Overloaded,
                     Query, QueryEngine, QueryResult)
from .runtime import AsyncRuntime, Runtime, SimulationRuntime, SyncRuntime
from .server import BackgroundServer, run_server, serve
from .wire import (query_from_dict, query_to_dict, request_from_dict,
                   result_to_dict)

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "DeadlineExceeded",
    "Overloaded",
    "Query",
    "QueryEngine",
    "QueryResult",
    "RetriesExhausted",
    "RetryPolicy",
    "Runtime",
    "AsyncRuntime",
    "SyncRuntime",
    "SimulationRuntime",
    "ServiceClient",
    "BackgroundServer",
    "run_server",
    "serve",
    "query_from_dict",
    "query_to_dict",
    "request_from_dict",
    "result_to_dict",
]
