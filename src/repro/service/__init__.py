"""Broadcast-as-a-service: a long-lived query layer over the artifact store.

The paper's pipeline is one-shot: build a topology, compile a broadcast,
print the tables.  This package turns the compiled artifact store into a
*serving* system that answers ``(topology, shape, source, protocol,
policy) -> schedule/metrics`` queries at high request rates:

* :class:`~repro.service.engine.QueryEngine` — the sync core: LRU-bounded
  memory tier over the fingerprint-sharded
  :class:`~repro.core.store.ArtifactStore`, with *single-flight
  symmetry-class coalescing*: a batch of queries that map to the same
  source-equivalence class triggers exactly one representative compile
  and derives the members through the batched class engine;
* :mod:`~repro.service.runtime` — the runtime split (after doeff's
  ``AsyncRuntime`` / ``SyncRuntime`` / ``SimulationRuntime``): the same
  engine serves an asyncio front end (``repro-wsn serve``), the sync CLI
  (``repro-wsn query``), and deterministic in-process tests with a
  virtual clock;
* :mod:`~repro.service.wire` / :mod:`~repro.service.server` — the
  newline-delimited-JSON protocol and the asyncio TCP server.

Steady-state cost is cache warmth, not compile speed: a warmed store
answers metrics queries from persisted counts without replaying or
recompiling anything (see ``benchmarks/perf_service.py``).
"""

from .engine import DEFAULT_MAX_ENTRIES, Query, QueryEngine, QueryResult
from .runtime import AsyncRuntime, Runtime, SimulationRuntime, SyncRuntime
from .server import serve
from .wire import query_from_dict, query_to_dict, result_to_dict

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "Query",
    "QueryEngine",
    "QueryResult",
    "Runtime",
    "AsyncRuntime",
    "SyncRuntime",
    "SimulationRuntime",
    "serve",
    "query_from_dict",
    "query_to_dict",
    "result_to_dict",
]
