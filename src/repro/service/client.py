"""Retrying NDJSON client: deadlines, backoff, reconnect.

The server treats a connection as disposable (see
:mod:`repro.service.server`); this client makes that safe to consume.
Queries are **idempotent** — the engine is deterministic and caching,
so resending a query can change nothing but the ``via`` tier of the
answer — which makes retry-on-transport-failure unconditionally
correct.

The retry loop distinguishes two worlds:

* **transport failures** — refused/reset connections, EOF before a
  response, garbled (non-JSON) response lines, injected drops — are
  retried on a *fresh* connection with exponential backoff; a garbled
  or dropped line also poisons request/response pairing on that
  socket, so reconnecting is correctness, not just hygiene;
* **structured refusals** — ``{"ok": false, ...}`` — are authoritative
  answers.  They are returned (not raised) as-is, except
  ``overloaded``, which is the server asking the client to back off
  and is retried within the attempt budget.

Backoff jitter is drawn from a seeded counter hash
(:mod:`repro.faults` uses the same construction), so a chaos run's
client behaviour is exactly replayable.  When the request carries
``timeout_ms``, the whole retry loop — connects, resends, backoff
sleeps — stays inside that budget.
"""

from __future__ import annotations

import json
import socket
import time
import zlib
from dataclasses import dataclass
from typing import Optional

from .engine import Query
from .wire import query_to_dict

__all__ = ["ClientError", "RetriesExhausted", "RetryPolicy",
           "ServiceClient"]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class ClientError(RuntimeError):
    """Base class of client-side failures."""


class RetriesExhausted(ClientError):
    """Every attempt failed at the transport (or overload) level."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``attempts`` counts total tries (first send included).  The delay
    before retry *k* (1-based) is ``base_delay * multiplier**(k-1)``
    capped at ``max_delay``, scaled by a jitter factor in
    ``[1 - jitter/2, 1 + jitter/2)`` drawn from ``seed`` and the
    client's retry counter — deterministic, so two identical chaos
    runs back off identically, while distinct retries still spread.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, retry_index: int, counter: int) -> float:
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** retry_index)
        if self.jitter <= 0:
            return raw
        u = _splitmix64((self.seed & _MASK64)
                        ^ zlib.crc32(b"client-backoff")
                        ^ counter) / float(1 << 64)
        return raw * (1.0 + self.jitter * (u - 0.5))


class ServiceClient:
    """Synchronous NDJSON client with reconnect/resend semantics.

    One in-flight request at a time (the service's batching happens
    server-side across connections, so a simple client still gets
    coalesced compiles).  Counters (:attr:`retries`,
    :attr:`reconnects`) feed the chaos benchmark's report.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, *,
                 timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.retries = 0
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _connect(self, deadline: Optional[float]) -> None:
        if self._sock is not None:
            return
        timeout = self.timeout
        if deadline is not None:
            timeout = max(0.001, min(timeout, deadline - time.monotonic()))
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=timeout)
        self._sock.settimeout(self.timeout)
        self._rfile = self._sock.makefile("rb")
        self.reconnects += 1

    # -- request plumbing -------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One request/response round trip with bounded retries.

        Returns the decoded response object (which may be a structured
        ``ok: false`` refusal); raises :class:`RetriesExhausted` when
        the attempt budget (or the request's ``timeout_ms``) runs out
        with nothing but transport failures or overload sheds.
        """
        blob = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        deadline = None
        timeout_ms = payload.get("timeout_ms")
        if timeout_ms:
            deadline = time.monotonic() + float(timeout_ms) / 1000.0
        policy = self.retry
        last_failure = "no attempt made"
        for attempt in range(max(1, policy.attempts)):
            if attempt:
                delay = policy.delay(attempt - 1, self.retries)
                self.retries += 1
                if deadline is not None:
                    budget = deadline - time.monotonic()
                    if budget <= 0:
                        break
                    delay = min(delay, budget)
                time.sleep(delay)
            try:
                response = self._attempt(blob, deadline)
            except (OSError, ValueError) as exc:
                # Transport failure (connect/reset/EOF/garbled line):
                # the socket's pairing is unreliable now — reconnect.
                last_failure = f"{type(exc).__name__}: {exc}"
                self.close()
                continue
            if (isinstance(response, dict)
                    and response.get("ok") is False
                    and response.get("error_type") == "overloaded"):
                # The server shed us to protect itself; backing off and
                # retrying is exactly what it is asking for.
                last_failure = f"overloaded: {response.get('error')}"
                continue
            return response
        raise RetriesExhausted(
            f"request failed after {policy.attempts} attempts "
            f"(last failure: {last_failure})")

    def _attempt(self, blob: bytes, deadline: Optional[float]) -> dict:
        self._connect(deadline)
        self._sock.sendall(blob)
        line = self._rfile.readline(1 << 21)
        if not line:
            raise ConnectionResetError("server closed the connection "
                                       "before responding")
        return json.loads(line)  # ValueError on a garbled response

    # -- typed surface ----------------------------------------------------

    def query(self, query: Query) -> dict:
        """Send one :class:`Query`; return the wire response object."""
        return self.request(query_to_dict(query))

    def health(self) -> dict:
        """The server's ``health`` snapshot (never triggers a compile)."""
        return self.request({"type": "health"})
