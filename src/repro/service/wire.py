"""Newline-delimited-JSON wire format of the query service.

One request per line, one response per line; a request is a JSON object
mirroring :class:`~repro.service.engine.Query`::

    {"topology": "2D-4", "shape": [32, 16], "source": [5, 5]}
    {"topology": "2D-8", "source": [7, 7], "include_schedule": true}

and a response carries the metrics row (the same fields as
:meth:`~repro.sim.metrics.BroadcastMetrics.as_row`), the serving tier,
and optionally the schedule::

    {"ok": true, "via": "store", "metrics": {...}, "schedule": [[1, 17], ...]}

Malformed requests produce ``{"ok": false, "error": "..."}`` instead of
tearing down the connection.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .engine import Query, QueryResult

#: Request fields accepted on the wire (anything else is an error — a
#: typo'd option silently ignored would be worse than a rejection).
_QUERY_FIELDS = {"topology", "source", "shape", "protocol",
                 "completion", "repair", "include_schedule"}


def _int_tuple(value, name: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ValueError(f"{name!r} must be a non-empty list of ints")
    return tuple(int(v) for v in value)


def query_from_dict(payload: dict) -> Query:
    """Parse one request object into a :class:`Query` (raises ValueError
    on malformed input)."""
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    unknown = set(payload) - _QUERY_FIELDS
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    if "topology" not in payload or "source" not in payload:
        raise ValueError("request needs 'topology' and 'source'")
    topology = payload["topology"]
    if not isinstance(topology, str):
        raise ValueError("'topology' must be a string")
    shape: Optional[Tuple[int, ...]] = None
    if payload.get("shape") is not None:
        shape = _int_tuple(payload["shape"], "shape")
    protocol = payload.get("protocol")
    if protocol is not None and not isinstance(protocol, str):
        raise ValueError("'protocol' must be a string")
    return Query(
        topology=topology,
        source=_int_tuple(payload["source"], "source"),
        shape=shape,
        protocol=protocol,
        completion=bool(payload.get("completion", True)),
        repair=bool(payload.get("repair", True)),
        include_schedule=bool(payload.get("include_schedule", False)),
    )


def query_to_dict(query: Query) -> dict:
    """Inverse of :func:`query_from_dict` (used by the CLI client)."""
    payload = {"topology": query.topology, "source": list(query.source)}
    if query.shape is not None:
        payload["shape"] = list(query.shape)
    if query.protocol is not None:
        payload["protocol"] = query.protocol
    if not query.completion:
        payload["completion"] = False
    if not query.repair:
        payload["repair"] = False
    if query.include_schedule:
        payload["include_schedule"] = True
    return payload


def result_to_dict(result: QueryResult) -> dict:
    """Serialise one answer for the wire."""
    metrics = result.metrics.as_row()
    metrics["source"] = list(metrics["source"])
    payload = {
        "ok": True,
        "via": result.via,
        "topology": result.query.topology,
        "source": list(result.query.source),
        "metrics": metrics,
    }
    if result.schedule is not None:
        payload["schedule"] = [[int(s), int(v)] for s, v in result.schedule]
    return payload


def error_to_dict(message: str) -> dict:
    return {"ok": False, "error": message}
