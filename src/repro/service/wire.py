"""Newline-delimited-JSON wire format of the query service.

One request per line, one response per line; a request is a JSON object
mirroring :class:`~repro.service.engine.Query`::

    {"topology": "2D-4", "shape": [32, 16], "source": [5, 5]}
    {"topology": "2D-8", "source": [7, 7], "include_schedule": true}
    {"topology": "2D-4", "source": [5, 5], "timeout_ms": 2000}

and a response carries the metrics row (the same fields as
:meth:`~repro.sim.metrics.BroadcastMetrics.as_row`), the serving tier,
and optionally the schedule::

    {"ok": true, "via": "store", "metrics": {...}, "schedule": [[1, 17], ...]}

Besides queries the protocol has a tagged request form — ``{"type":
"query", ...}`` is the explicit spelling of the above, ``{"type":
"health"}`` (alias ``"stats"``) returns the
:meth:`~repro.service.engine.QueryEngine.health` snapshot without
compiling anything, and ``{"type": "batch", "queries": [...]}`` answers
up to :data:`MAX_WIRE_BATCH` queries in one response line.

Malformed requests produce ``{"ok": false, "error": "...",
"error_type": "..."}`` instead of tearing down the connection — with a
one-line message, never a traceback.  Validation is strict by design:
an unknown field, a non-finite ``timeout_ms`` or an oversized
coordinate list is a rejection, because a typo'd option silently
ignored would be worse.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple, Union

from .engine import Query, QueryResult

#: Request fields accepted on the wire (anything else is an error — a
#: typo'd option silently ignored would be worse than a rejection).
_QUERY_FIELDS = {"topology", "source", "shape", "protocol",
                 "completion", "repair", "include_schedule",
                 "timeout_ms", "type"}

#: Longest coordinate list accepted for ``source`` / ``shape`` — the
#: topologies are 2-D/3-D grids; anything longer is garbage (or an
#: attack on the parser).
MAX_COORDS = 8

#: Largest absolute coordinate value accepted on the wire.
MAX_COORD_VALUE = 10 ** 9

#: Cap on ``timeout_ms`` (one day): beyond this a client should not
#: bother sending a deadline at all.
MAX_TIMEOUT_MS = 86_400_000.0

#: Most queries accepted in one ``{"type": "batch"}`` request.
MAX_WIRE_BATCH = 256

#: Request types the wire dispatches on.
REQUEST_TYPES = ("query", "batch", "health", "stats")


def _int_tuple(value, name: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ValueError(f"{name!r} must be a non-empty list of ints")
    if len(value) > MAX_COORDS:
        raise ValueError(f"{name!r} has {len(value)} entries; "
                         f"at most {MAX_COORDS} allowed")
    out = []
    for v in value:
        if isinstance(v, bool) or not isinstance(v, int):
            raise ValueError(f"{name!r} must contain only integers")
        if abs(v) > MAX_COORD_VALUE:
            raise ValueError(f"{name!r} entry {v} out of range")
        out.append(int(v))
    return tuple(out)


def _timeout_ms(value) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError("'timeout_ms' must be a number")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError("'timeout_ms' must be finite")
    if value <= 0:
        raise ValueError("'timeout_ms' must be positive")
    if value > MAX_TIMEOUT_MS:
        raise ValueError(f"'timeout_ms' exceeds the cap "
                         f"{MAX_TIMEOUT_MS:.0f}")
    return value


def query_from_dict(payload: dict) -> Query:
    """Parse one request object into a :class:`Query` (raises ValueError
    on malformed input)."""
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    unknown = set(payload) - _QUERY_FIELDS
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    if payload.get("type") not in (None, "query"):
        raise ValueError(f"not a query request: "
                         f"type={payload.get('type')!r}")
    if "topology" not in payload or "source" not in payload:
        raise ValueError("request needs 'topology' and 'source'")
    topology = payload["topology"]
    if not isinstance(topology, str):
        raise ValueError("'topology' must be a string")
    shape: Optional[Tuple[int, ...]] = None
    if payload.get("shape") is not None:
        shape = _int_tuple(payload["shape"], "shape")
    protocol = payload.get("protocol")
    if protocol is not None and not isinstance(protocol, str):
        raise ValueError("'protocol' must be a string")
    return Query(
        topology=topology,
        source=_int_tuple(payload["source"], "source"),
        shape=shape,
        protocol=protocol,
        completion=bool(payload.get("completion", True)),
        repair=bool(payload.get("repair", True)),
        include_schedule=bool(payload.get("include_schedule", False)),
        timeout_ms=_timeout_ms(payload.get("timeout_ms")),
    )


def request_from_dict(payload: dict
                      ) -> Tuple[str, Union[Query, List[Query], None]]:
    """Dispatch one request object: ``(kind, parsed)``.

    ``kind`` is ``"query"`` (parsed is the :class:`Query`),
    ``"batch"`` (parsed is a list of queries) or ``"health"``
    (parsed is ``None``; ``"stats"`` is an accepted alias).  Raises
    ``ValueError`` on anything else — including unknown ``type`` tags,
    so a protocol typo is a structured error, not a hang.
    """
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    kind = payload.get("type", "query")
    if not isinstance(kind, str) or kind not in REQUEST_TYPES:
        raise ValueError(f"unknown request type {kind!r}; "
                         f"expected one of {REQUEST_TYPES}")
    if kind in ("health", "stats"):
        extra = set(payload) - {"type"}
        if extra:
            raise ValueError(f"unknown request fields: {sorted(extra)}")
        return "health", None
    if kind == "batch":
        extra = set(payload) - {"type", "queries", "timeout_ms"}
        if extra:
            raise ValueError(f"unknown request fields: {sorted(extra)}")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ValueError("'queries' must be a non-empty list")
        if len(queries) > MAX_WIRE_BATCH:
            raise ValueError(f"batch of {len(queries)} queries exceeds "
                             f"the cap {MAX_WIRE_BATCH}")
        timeout = _timeout_ms(payload.get("timeout_ms"))
        parsed = []
        for i, entry in enumerate(queries):
            try:
                query = query_from_dict(entry)
            except ValueError as exc:
                raise ValueError(f"queries[{i}]: {exc}") from None
            if query.timeout_ms is None and timeout is not None:
                query = dataclasses.replace(query, timeout_ms=timeout)
            parsed.append(query)
        return "batch", parsed
    return "query", query_from_dict(payload)


def query_to_dict(query: Query) -> dict:
    """Inverse of :func:`query_from_dict` (used by the CLI client).

    ``deadline`` never crosses the wire — it is a local
    ``time.monotonic`` instant, meaningless on another host; the
    receiver re-stamps from ``timeout_ms`` on arrival.
    """
    payload = {"topology": query.topology, "source": list(query.source)}
    if query.shape is not None:
        payload["shape"] = list(query.shape)
    if query.protocol is not None:
        payload["protocol"] = query.protocol
    if not query.completion:
        payload["completion"] = False
    if not query.repair:
        payload["repair"] = False
    if query.include_schedule:
        payload["include_schedule"] = True
    if query.timeout_ms is not None:
        payload["timeout_ms"] = query.timeout_ms
    return payload


def result_to_dict(result: QueryResult) -> dict:
    """Serialise one answer for the wire (shed answers included)."""
    if result.error is not None:
        payload = error_to_dict(result.error,
                                error_type=result.error_type or "error")
        payload["topology"] = result.query.topology
        payload["source"] = list(result.query.source)
        return payload
    metrics = result.metrics.as_row()
    metrics["source"] = list(metrics["source"])
    payload = {
        "ok": True,
        "via": result.via,
        "topology": result.query.topology,
        "source": list(result.query.source),
        "metrics": metrics,
    }
    if result.schedule is not None:
        payload["schedule"] = [[int(s), int(v)] for s, v in result.schedule]
    return payload


def error_to_dict(message: str, error_type: str = "bad_request") -> dict:
    return {"ok": False, "error": message, "error_type": error_type}
