"""The query engine: (topology, shape, source, protocol) -> metrics.

This is the synchronous core every runtime wraps.  A query resolves in
tiers, cheapest first:

1. **memory** — the LRU-bounded :class:`~repro.core.cache.ScheduleCache`
   tier holds full compilations; metrics are one reduction away;
2. **store** — the sharded :class:`~repro.core.store.ArtifactStore`
   persists model-independent broadcast counts with every entry, so a
   warm hit rebuilds exact metrics without replaying the schedule;
3. **compile** — the ordinary fixpoint compiler, publishing its result
   to both tiers on the way out.

Batched queries additionally *coalesce*: sources that map to the same
symmetry class (:meth:`~repro.core.base.BroadcastProtocol
.source_class_key`) share one representative compile, with the members
derived through the batched class engine
(:func:`~repro.core.symmetry.compile_class`) — the engine-level
equivalent of the symmetry-reduced sweep, applied to whatever mixture of
queries happens to be in flight.  Coalescing is single-flight across
batches too: the first batch persists the class *profile*, so a later
batch hitting the same class issues zero further ``compile_broadcast``
calls.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..core.cache import ScheduleCache
from ..core.registry import protocol_for
from ..core.store import ArtifactStore
from ..core.symmetry import compile_class
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..sim.metrics import BroadcastMetrics, compute_metrics
from ..topology.builder import make_topology

#: Default memory-tier bound of a service engine: enough for several
#: full paper-scale sweeps, small enough that a long-lived process
#: doesn't grow without bound.
DEFAULT_MAX_ENTRIES = 4096

#: Bound on the per-engine topology cache (adjacency + kernels are the
#: heavy part of a topology; a serving fleet uses a handful of shapes).
MAX_TOPOLOGIES = 32


class DeadlineExceeded(Exception):
    """The query's deadline passed before (or while) it was served.

    Shedding happens *before* the expensive step — an expired query
    never burns a compile on an answer nobody is waiting for.
    """

    error_type = "deadline_exceeded"


class Overloaded(Exception):
    """The service shed this query to protect itself under load."""

    error_type = "overloaded"


@dataclass(frozen=True)
class Query:
    """One service request.

    ``source`` and ``shape`` are tuples (1-based source coordinate, grid
    shape); ``shape=None`` means the paper's 512-node evaluation shape.
    ``protocol=None`` selects the paper protocol of the topology.
    ``include_schedule`` additionally returns the compiled transmission
    schedule as ``(slot, node)`` pairs.

    ``timeout_ms`` is the client's patience; the serving side stamps it
    into ``deadline`` (a ``time.monotonic()`` instant, never serialized
    — wall clocks don't cross the wire) on arrival via :meth:`stamped`,
    and every expensive step downstream sheds the query once the
    deadline passes.
    """

    topology: str
    source: Tuple[int, ...]
    shape: Optional[Tuple[int, ...]] = None
    protocol: Optional[str] = None
    completion: bool = True
    repair: bool = True
    include_schedule: bool = False
    timeout_ms: Optional[float] = None
    deadline: Optional[float] = None

    def stamped(self, now: Optional[float] = None) -> "Query":
        """This query with ``deadline`` fixed from ``timeout_ms``."""
        if self.timeout_ms is None or self.deadline is not None:
            return self
        if now is None:
            now = time.monotonic()
        return dataclasses.replace(
            self, deadline=now + self.timeout_ms / 1000.0)

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        if now is None:
            now = time.monotonic()
        return now > self.deadline


@dataclass
class QueryResult:
    """Answer to one :class:`Query`.

    ``via`` records the serving tier: ``"memory"`` / ``"store"`` (warm
    hits), ``"compile"`` (cold fixpoint), ``"class:<mode>"`` for
    batch-coalesced members (``mode`` is the class engine's execution
    path, e.g. ``summary`` or ``representative``), or ``"shed"`` for a
    query the engine declined — then ``metrics`` is ``None`` and
    ``error``/``error_type`` say why.
    """

    query: Query
    metrics: Optional[BroadcastMetrics]
    via: str
    schedule: Optional[List[Tuple[int, int]]] = None
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _shed_result(query: Query, exc: Exception) -> QueryResult:
    return QueryResult(query=query, metrics=None, via="shed",
                       error=str(exc) or type(exc).__name__,
                       error_type=getattr(exc, "error_type", "error"))


@dataclass
class _Group:
    """Batch bookkeeping: positions of one (topology, protocol, options)
    family inside the request list."""

    topology: object
    protocol: object
    completion: bool
    repair: bool
    positions: List[int] = field(default_factory=list)


class QueryEngine:
    """Long-lived broadcast query service core.

    Thread-compatibility: the async runtime serves per-class query
    groups of one tick concurrently on the executor thread pool, so the
    engine's shared mutable state — the request counters and the
    topology LRU — is guarded by a small internal lock, and the
    :class:`~repro.core.cache.ScheduleCache` underneath locks its own
    tiers.  The slow work (fixpoint compiles) runs unlocked; concurrent
    groups never share a query, so no compile is ever duplicated.  The
    ``via`` label infers its tier from cache-counter deltas, so under
    concurrency a simultaneous hit elsewhere can turn a ``memory`` label
    into ``store`` — a cosmetic race; metrics are never affected.
    """

    def __init__(self, store_path=None, *,
                 store: Optional[ArtifactStore] = None,
                 max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
                 model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                 packet_bits: int = PAPER_PACKET_BITS) -> None:
        self.cache = ScheduleCache(store_path, store=store,
                                   max_entries=max_entries)
        self.model = model
        self.packet_bits = packet_bits
        self._lock = threading.Lock()
        self._topologies: "OrderedDict[Tuple, object]" = OrderedDict()
        self.queries = 0
        self.batches = 0
        self.coalesced = 0
        self.shed = 0

    # -- resolution -------------------------------------------------------

    def topology(self, label: str, shape: Optional[Tuple[int, ...]]):
        """Resolve (and LRU-cache) a topology instance."""
        key = (label, None if shape is None else tuple(shape))
        with self._lock:
            topo = self._topologies.get(key)
            if topo is not None:
                self._topologies.move_to_end(key)
                return topo
        # Build outside the lock (adjacency + kernels are the heavy
        # part); concurrent groups ask for different keys, and a rare
        # duplicate build is idempotent.
        topo = make_topology(label, shape=key[1])
        with self._lock:
            self._topologies[key] = topo
            while len(self._topologies) > MAX_TOPOLOGIES:
                self._topologies.popitem(last=False)
        return topo

    def _protocol(self, query: Query, topology):
        if query.protocol is None:
            return protocol_for(topology)
        return protocol_for(query.protocol)

    def _check_deadline(self, query: Query) -> None:
        if query.expired():
            with self._lock:
                self.shed += 1
            raise DeadlineExceeded(
                f"deadline exceeded (timeout_ms={query.timeout_ms})")

    # -- single queries ---------------------------------------------------

    def query(self, query: Query) -> QueryResult:
        """Answer one query through the cheapest available tier.

        Raises :class:`DeadlineExceeded` (after counting the query as
        shed) when the stamped deadline has passed — checked on entry
        and again right before the compile, the step worth shedding.
        """
        query = query.stamped()
        with self._lock:
            self.queries += 1
        self._check_deadline(query)
        topology = self.topology(query.topology, query.shape)
        protocol = self._protocol(query, topology)
        if not query.include_schedule:
            d0 = self.cache.disk_hits
            metrics = self.cache.cached_metrics(
                protocol, topology, query.source, model=self.model,
                packet_bits=self.packet_bits, completion=query.completion,
                repair=query.repair)
            if metrics is not None:
                via = "store" if self.cache.disk_hits > d0 else "memory"
                return QueryResult(query=query, metrics=metrics, via=via)
        self._check_deadline(query)  # a compile may follow: last exit
        faults.sleep_if(faults.COMPILE_SLOW)
        m0, d0 = self.cache.misses, self.cache.disk_hits
        compiled = protocol.compile(
            topology, query.source, cache=self.cache,
            completion=query.completion, repair=query.repair)
        if self.cache.misses > m0:
            via = "compile"
        elif self.cache.disk_hits > d0:
            via = "store"
        else:
            via = "memory"
        metrics = compute_metrics(compiled.trace, topology, self.model,
                                  self.packet_bits)
        schedule = None
        if query.include_schedule:
            slots, nodes = compiled.schedule.to_arrays()
            schedule = list(zip(slots.tolist(), nodes.tolist()))
        return QueryResult(query=query, metrics=metrics, via=via,
                           schedule=schedule)

    # -- batched queries (symmetry-class coalescing) ----------------------

    def query_batch(self, queries: Sequence[Query]) -> List[QueryResult]:
        """Answer a batch, coalescing same-class cold queries.

        Results align with the input order.  Warm queries are served
        tier-first exactly like :meth:`query`; the *cold* remainder is
        grouped by symmetry class and each class compiles once —
        ``compile_call_count`` moves by the number of distinct cold
        classes, not the number of queries.
        """
        with self._lock:
            self.batches += 1
        now = time.monotonic()
        queries = [query.stamped(now) for query in queries]
        results: List[Optional[QueryResult]] = [None] * len(queries)
        groups: Dict[Tuple, _Group] = {}
        for pos, query in enumerate(queries):
            if query.expired(now):
                with self._lock:
                    self.queries += 1
                    self.shed += 1
                results[pos] = _shed_result(query, DeadlineExceeded(
                    "deadline exceeded before serving"))
                continue
            if query.include_schedule:
                results[pos] = self.query(query)  # schedule => full path
                continue
            gkey = (query.topology,
                    None if query.shape is None else tuple(query.shape),
                    query.protocol, query.completion, query.repair)
            group = groups.get(gkey)
            if group is None:
                topology = self.topology(query.topology, query.shape)
                group = _Group(topology=topology,
                               protocol=self._protocol(query, topology),
                               completion=query.completion,
                               repair=query.repair)
                groups[gkey] = group
            group.positions.append(pos)
        for group in groups.values():
            self._serve_group(queries, results, group)
        return results

    def _serve_group(self, queries, results, group: _Group) -> None:
        topology, protocol = group.topology, group.protocol
        cold: List[int] = []
        for pos in group.positions:
            query = queries[pos]
            with self._lock:
                self.queries += 1
            d0 = self.cache.disk_hits
            metrics = self.cache.cached_metrics(
                protocol, topology, query.source, model=self.model,
                packet_bits=self.packet_bits,
                completion=query.completion, repair=query.repair)
            if metrics is not None:
                via = "store" if self.cache.disk_hits > d0 else "memory"
                results[pos] = QueryResult(query=query, metrics=metrics,
                                           via=via)
            else:
                cold.append(pos)
        if not cold:
            return
        # The warm sweep is cheap; what follows is not.  Re-check the
        # cold remainder's deadlines so an expired query sheds *before*
        # its class burns a compile on it.
        now = time.monotonic()
        live: List[int] = []
        for pos in cold:
            if queries[pos].expired(now):
                with self._lock:
                    self.shed += 1
                results[pos] = _shed_result(queries[pos], DeadlineExceeded(
                    "deadline exceeded before compile"))
            else:
                live.append(pos)
        cold = live
        if not cold:
            return
        # Group the cold remainder by symmetry class; each class costs at
        # most one representative compile for the whole batch.
        by_class: Dict[Tuple, List[int]] = {}
        direct: List[int] = []
        for pos in cold:
            key = protocol.source_class_key(topology, queries[pos].source)
            if key is None:
                direct.append(pos)
            else:
                by_class.setdefault(key, []).append(pos)
        for class_key, positions in by_class.items():
            # Distinct sources only: duplicates ride the first answer.
            coords: List[Tuple] = []
            coord_pos: Dict[Tuple, List[int]] = {}
            for pos in positions:
                coord = tuple(queries[pos].source)
                if coord not in coord_pos:
                    coords.append(coord)
                coord_pos[coord] = coord_pos.get(coord, []) + [pos]
            faults.sleep_if(faults.COMPILE_SLOW)
            members = compile_class(topology, protocol, class_key,
                                    coords, cache=self.cache,
                                    completion=group.completion,
                                    repair=group.repair)
            with self._lock:
                self.coalesced += len(positions) - 1
            for coord, member in zip(coords, members):
                self.cache.admit_member(protocol, topology, member,
                                        completion=group.completion,
                                        repair=group.repair)
                metrics = member.metrics(topology, self.model,
                                         self.packet_bits)
                for pos in coord_pos[coord]:
                    results[pos] = QueryResult(
                        query=queries[pos], metrics=metrics,
                        via=f"class:{member.via}")
        for pos in direct:
            with self._lock:
                self.queries -= 1  # self.query() recounts it
            try:
                results[pos] = self.query(queries[pos])
            except DeadlineExceeded as exc:
                results[pos] = _shed_result(queries[pos], exc)

    # -- warmup and stats -------------------------------------------------

    def warm(self, shapes, protocols: Optional[Sequence[str]] = None
             ) -> Dict[str, int]:
        """Precompute the store for a fleet of ``(label, shape)`` pairs.

        Requires a persistent store; see
        :meth:`repro.core.store.ArtifactStore.warm`.
        """
        if self.cache.store is None:
            raise ValueError("warm() needs an engine with a store "
                             "(pass store_path=)")
        return self.cache.store.warm(shapes, protocols=protocols)

    def stats(self) -> Dict[str, object]:
        """Engine + cache counter snapshot (the ``--cache-stats`` line)."""
        from ..core.compiler import compile_call_count
        out = {
            "queries": self.queries,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "compile_calls": compile_call_count(),
            "topologies": len(self._topologies),
        }
        out.update(self.cache.stats())
        return out

    def health(self) -> Dict[str, object]:
        """Liveness snapshot for the wire ``health`` request.

        Deliberately cheap: the native probe reports the cached build
        verdict (:func:`~repro.sim.native.native_state`) without
        triggering the lazy C build, and nothing here compiles.
        """
        from ..sim.backend import BREAKER
        from ..sim.native import native_state
        available, reason = native_state()
        store = self.cache.store
        shards = 0
        if store is not None:
            try:
                shards = sum(1 for p in store.path.glob("*.json"))
            except OSError:  # pragma: no cover - racing a cleanup
                shards = 0
        return {
            "status": "ok",
            "engine": self.stats(),
            "native": {"available": available, "reason": reason},
            "breaker": BREAKER.state(),
            "store": {
                "path": None if store is None else str(store.path),
                "shards": shards,
            },
        }
