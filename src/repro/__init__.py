"""repro — reproduction of "Efficient Broadcasting Protocols for Regular
Wireless Sensor Networks" (Hsu, Sheu, Chang; ICPP 2003).

Quickstart::

    from repro import make_topology, protocol_for, compute_metrics

    mesh = make_topology("2D-4")            # the paper's 32x16 evaluation mesh
    protocol = protocol_for(mesh)
    result = protocol.compile(mesh, source=(16, 8))
    assert result.reached_all               # 100 % reachability
    print(compute_metrics(result.trace, mesh))

Packages:

* :mod:`repro.topology` — the four regular lattices (+ random baseline).
* :mod:`repro.radio` — First Order Radio Model, channel collision semantics.
* :mod:`repro.sim` — slot-synchronous broadcast simulator.
* :mod:`repro.core` — the paper's protocols, baselines, ideal model.
* :mod:`repro.analysis` — sweeps, comparisons, paper-table assembly.
* :mod:`repro.viz` — ASCII relay-map / schedule rendering (Figs 5-9).
"""

from .core import (BroadcastProtocol, CompiledBroadcast, Mesh2D3Protocol,
                   Mesh2D4Protocol, Mesh2D8Protocol, Mesh3D6Protocol,
                   RelayPlan, compile_broadcast, ideal_case, optimal_etr,
                   protocol_for, validate_broadcast)
from .radio import FirstOrderRadioModel, Packet
from .sim import (BroadcastMetrics, BroadcastSchedule, BroadcastTrace,
                  compute_metrics, replay, run_reactive)
from .topology import (Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6,
                       RandomDiskTopology, Topology, make_topology,
                       paper_topologies)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # topology
    "Topology", "Mesh2D3", "Mesh2D4", "Mesh2D8", "Mesh3D6",
    "RandomDiskTopology", "make_topology", "paper_topologies",
    # radio
    "FirstOrderRadioModel", "Packet",
    # sim
    "BroadcastSchedule", "BroadcastTrace", "BroadcastMetrics",
    "compute_metrics", "replay", "run_reactive",
    # core
    "BroadcastProtocol", "CompiledBroadcast", "RelayPlan",
    "Mesh2D3Protocol", "Mesh2D4Protocol", "Mesh2D8Protocol",
    "Mesh3D6Protocol", "protocol_for", "compile_broadcast",
    "ideal_case", "optimal_etr", "validate_broadcast",
]
