"""The paper's contribution: broadcast protocols for regular WSNs.

Public surface:

* :func:`protocol_for` — topology -> protocol factory.
* :class:`Mesh2D3Protocol` / :class:`Mesh2D4Protocol` /
  :class:`Mesh2D8Protocol` / :class:`Mesh3D6Protocol` — Section 3.
* :mod:`repro.core.baselines` — flooding / gossip / delay ablations.
* :func:`compile_broadcast` — the offline schedule compiler.
* :mod:`repro.core.ideal` — the Section 4 ideal-case analytic model.
* :func:`validate_broadcast` — schedule audit (100 % reach + causality).
"""

from .alltoall import AllToAllResult, all_to_all
from .base import BroadcastProtocol, CompiledBroadcast, RelayPlan
from .cache import ScheduleCache, class_profile_key, schedule_cache_key
from .compiler import (CompilationError, compile_broadcast,
                       compile_call_count)
from .store import (STORE_FORMAT_VERSION, ArtifactStore, StoredEntry,
                    shard_id)
from .etr import (OPTIMAL_ETR, diagonal_vs_axis_etr, optimal_etr,
                  optimal_etr_fraction, trace_etrs, transmission_etr)
from .ideal import (IdealCase, ideal_case, ideal_delay, ideal_max_delay,
                    ideal_tx_2d, ideal_tx_3d6)
from .mesh2d3 import Mesh2D3Protocol
from .mesh2d4 import Mesh2D4Protocol
from .mesh2d8 import Mesh2D8Protocol
from .mesh3d6 import Mesh3D6Protocol
from .registry import PROTOCOL_CLASSES, protocol_for
from .symmetry import (ClassMemberResult, compile_class, group_sources,
                       sweep_compile)
from .regions import RegionPartition, base_nodes, partition
from .validate import ScheduleError, ValidationReport, validate_broadcast

__all__ = [
    "AllToAllResult",
    "all_to_all",
    "BroadcastProtocol",
    "CompiledBroadcast",
    "RelayPlan",
    "CompilationError",
    "compile_broadcast",
    "compile_call_count",
    "ScheduleCache",
    "schedule_cache_key",
    "class_profile_key",
    "ArtifactStore",
    "StoredEntry",
    "STORE_FORMAT_VERSION",
    "shard_id",
    "ClassMemberResult",
    "compile_class",
    "group_sources",
    "sweep_compile",
    "Mesh2D3Protocol",
    "Mesh2D4Protocol",
    "Mesh2D8Protocol",
    "Mesh3D6Protocol",
    "PROTOCOL_CLASSES",
    "protocol_for",
    "RegionPartition",
    "base_nodes",
    "partition",
    "OPTIMAL_ETR",
    "optimal_etr",
    "optimal_etr_fraction",
    "transmission_etr",
    "trace_etrs",
    "diagonal_vs_axis_etr",
    "IdealCase",
    "ideal_case",
    "ideal_delay",
    "ideal_max_delay",
    "ideal_tx_2d",
    "ideal_tx_3d6",
    "ScheduleError",
    "ValidationReport",
    "validate_broadcast",
]
