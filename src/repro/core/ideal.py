"""The paper's ideal-case analytic model (Section 4, Tables 2 and 5).

"In the ideal case, each relay node can achieve optimal ETR and broadcast
messages without any collision."

For the 2D meshes that means: the source's transmission informs ``deg``
nodes, and every further relay transmission informs exactly ``M_opt`` new
nodes (Table 1 numerators), so

    Tx_ideal = 1 + ceil((N - 1 - deg) / M_opt),        Rx_ideal = Tx * deg.

For 3D-6 the protocol structure is part of the ideal model: the source's
plane is covered by an ideal 2D-4 broadcast, and every plane's z-relay
columns (the R5 Lee lattice, Z points per plane) each transmit exactly once
to simultaneously tile their plane and forward along Z.  The source's own
transmission serves both parts, hence

    Tx_ideal(3D-6) = Tx_ideal(2D-4 on m x n) + l * Z - 1.

With the paper's 8x8x8 mesh and a seed in a 13-point residue class this
gives 21 + 8*13 - 1 = 124, matching Table 2 exactly (and Rx = 124*6 = 744).

The ideal maximum delay (Table 5) is the graph-theoretic worst case: the
maximum over sources of the source's eccentricity in hops — no schedule can
inform a node before its hop distance has elapsed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..topology import lee
from ..topology.base import Topology
from ..topology.hex import Mesh2D6
from ..topology.mesh2d import Mesh2D3, Mesh2D4, Mesh2D8
from ..topology.mesh3d import Mesh3D6
from .etr import OPTIMAL_NEW_PER_TX


@dataclass(frozen=True)
class IdealCase:
    """Ideal-case broadcast cost for one topology (one row of Table 2)."""

    topology: str
    num_nodes: int
    tx: int
    rx: int
    energy_j: float

    def as_row(self) -> dict:
        return {
            "topology": self.topology,
            "tx": self.tx,
            "rx": self.rx,
            "energy_J": self.energy_j,
        }


def ideal_tx_2d(label: str, num_nodes: int) -> int:
    """Ideal transmission count for a 2D topology with *num_nodes* nodes.

    Supports the paper's three 2D lattices plus the 2D-6 hexagonal
    extension."""
    if label not in ("2D-3", "2D-4", "2D-6", "2D-8"):
        raise ValueError(f"not a 2D topology label: {label!r}")
    degree = {"2D-3": 3, "2D-4": 4, "2D-6": 6, "2D-8": 8}[label]
    m_opt = OPTIMAL_NEW_PER_TX[label]
    remaining = num_nodes - 1 - degree
    if remaining <= 0:
        return 1
    return 1 + math.ceil(remaining / m_opt)


def ideal_tx_3d6(m: int, n: int, l: int, seed=(1, 1)) -> int:
    """Ideal transmission count for an ``m x n x l`` 3D-6 mesh.

    *seed* is the (x, y) of the source column; it fixes which residue class
    the Lee lattice occupies and hence Z (12 or 13 on an 8x8 plane).
    """
    plane_tx = ideal_tx_2d("2D-4", m * n)
    z = lee.lee_count(m, n, seed)
    return plane_tx + l * z - 1


def ideal_case(topology: Topology,
               model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
               packet_bits: int = PAPER_PACKET_BITS,
               seed=None) -> IdealCase:
    """Ideal-case Tx/Rx/energy for *topology* (one Table 2 row).

    For 3D-6, *seed* picks the z-relay residue class; the default uses a
    maximal-Z seed (the paper's 124-transmission figure corresponds to a
    13-column class on the 8x8 plane).
    """
    label = topology.name
    if isinstance(topology, (Mesh2D3, Mesh2D4, Mesh2D6, Mesh2D8)):
        tx = ideal_tx_2d(label, topology.num_nodes)
        deg = topology.nominal_degree
    elif isinstance(topology, Mesh3D6):
        if seed is None:
            seed = max(
                ((x, y) for x in range(1, min(topology.m, 5) + 1)
                 for y in range(1, min(topology.n, 5) + 1)),
                key=lambda s: lee.lee_count(topology.m, topology.n, s))
        tx = ideal_tx_3d6(topology.m, topology.n, topology.l, seed)
        deg = topology.nominal_degree
    else:
        raise ValueError(f"no ideal model for topology {label!r}")
    rx = tx * deg
    energy = model.broadcast_energy(tx, rx, packet_bits, topology.tx_range())
    return IdealCase(topology=label, num_nodes=topology.num_nodes,
                     tx=tx, rx=rx, energy_j=energy)


def ideal_delay(topology: Topology, source) -> int:
    """Ideal broadcast delay from *source*: its eccentricity in hops."""
    return topology.eccentricity(source)


def ideal_max_delay(topology: Topology) -> int:
    """Ideal maximum delay over all sources (Table 5): the diameter."""
    return topology.diameter
