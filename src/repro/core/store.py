"""Fingerprint-sharded, memory-mapped artifact store for compiled schedules.

This is the persistent tier behind :class:`repro.core.cache.ScheduleCache`
and the :mod:`repro.service` query engine.  It replaces the original
one-JSON-file-per-entry layout with *shards*: all entries of one
``(topology fingerprint, protocol, compile options)`` triple live in two
files,

* ``<fp16>-<protocol>-<opts>.json`` — the compact **index**: per-entry
  byte offsets into the binary file, compile metadata
  (completions/repairs/rounds) and the precomputed broadcast *counts*
  (tx/rx/duplicates/collisions/delay/reachability/...), plus the shard's
  class-profile table for symmetry-reduced sweeps;
* ``<fp16>-<protocol>-<opts>.bin`` — the **data** file: each entry's
  schedule as two little-endian ``int64`` arrays (slots, then nodes),
  concatenated.  Every record is a multiple of 8 bytes, so the file is
  memory-mapped once per shard and entries are served as zero-copy
  ``np.frombuffer`` views.

Because the counts are persisted with the entry, a warm hit answers a
metrics query **without replaying the schedule** — replay (which
reconstructs the authoritative trace from the stored transmitter sets)
remains available as the verification path and is differentially tested
against the stored counts.  This is what fixes the
warm-slower-than-serial regression of the per-entry JSON tier, where every
disk hit paid a full schedule replay just to rebuild its metrics.

Concurrency model — *atomic single-writer updates, lock-free readers*:

* writers serialise on an ``fcntl`` file lock per shard, append the
  record bytes to the ``.bin`` file, then publish the updated index via
  ``tempfile + os.replace`` (atomic on POSIX).  A writer crashing between
  the append and the publish leaves an orphan record the index never
  references — wasted bytes, never a torn entry;
* readers take no lock: they snapshot the index (one atomic file read)
  and only trust offsets that fit inside the current data file.  A stale
  snapshot is a cache *miss*, not an error.

Version guard: shards declaring an unknown ``version`` are read as
misses and rewritten from scratch on the next publish — stale formats are
never mis-parsed.  Directories holding the legacy per-entry JSON layout
are transparently imported on open (see :meth:`ArtifactStore._migrate`)
or skipped with a warning when unreadable — never a crash.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import re
import tempfile
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..sim.metrics import BroadcastMetrics
from ..sim.schedule import BroadcastSchedule
from ..topology.base import Topology

try:  # POSIX file locks; the store degrades to lockless appends without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

#: Bumped whenever the shard layout changes; stale-version shards are
#: ignored (treated as misses) and rebuilt, never mis-parsed.
STORE_FORMAT_VERSION = 2

#: The legacy one-file-per-entry layout's version marker (see
#: :meth:`ArtifactStore._migrate`).
LEGACY_FORMAT_VERSION = 1

#: Count fields persisted with every full entry; all model-independent,
#: so any radio model / packet size rebuilds exact metrics from them.
COUNT_FIELDS = ("tx", "rx", "duplicates", "collisions", "delay_slots",
                "reachability", "relays", "retransmitters")

_SAFE = re.compile(r"[^A-Za-z0-9_.-]")


def entry_key(source_index: int) -> str:
    """Index key of one per-source entry inside its shard."""
    return str(int(source_index))


def shard_id(fingerprint: str, protocol_name: str, *,
             completion: bool = True, repair: bool = True) -> str:
    """Filename stem of the shard holding one (topology, protocol,
    options) family of entries."""
    proto = _SAFE.sub("_", protocol_name)
    return f"{fingerprint[:16]}-{proto}-c{int(completion)}r{int(repair)}"


def trace_counts(trace) -> Dict[str, object]:
    """Model-independent broadcast counts of a compiled trace.

    Exactly the reductions :func:`repro.sim.metrics.compute_metrics`
    performs, so metrics rebuilt from these counts are field-for-field
    equal to the direct-compile metrics under any radio model.
    """
    return {
        "tx": int(trace.num_tx),
        "rx": int(trace.num_rx),
        "duplicates": int(trace.num_duplicate_rx),
        "collisions": int(trace.num_collisions),
        "delay_slots": int(trace.delay_slots),
        "reachability": float(trace.reachability),
        "relays": len({v for _, v in trace.tx_events}),
        "retransmitters": len(trace.retransmitting_nodes()),
    }


def summary_counts(first_rx, tx_count, rx_count,
                   collisions: int) -> Dict[str, object]:
    """Counts from a batched-summary row (one class member, no trace).

    Mirrors :func:`repro.sim.metrics.compute_metrics_from_counts`.
    """
    tx = int(tx_count.sum())
    rx = int(rx_count.sum())
    all_reached = bool((first_rx >= 0).all())
    return {
        "tx": tx,
        "rx": rx,
        "duplicates": rx - int((first_rx > 0).sum()),
        "collisions": int(collisions),
        "delay_slots": int(first_rx.max()) if all_reached else -1,
        "reachability": float((first_rx >= 0).sum()) / first_rx.shape[0],
        "relays": int((tx_count > 0).sum()),
        "retransmitters": int((tx_count > 1).sum()),
    }


@dataclass
class StoredEntry:
    """One persisted compilation, as served from a shard.

    ``slots``/``nodes`` are the schedule's ``(slot, node)`` pairs in the
    deterministic :meth:`BroadcastSchedule.to_arrays` order — zero-copy
    views into the shard's memory map when the entry carries a schedule,
    ``None`` for metrics-only entries (class members admitted by
    :meth:`ArtifactStore.warm` from batched-summary runs).
    """

    source_index: int
    completion: bool
    repair: bool
    rounds: int
    completions: List[Tuple[int, int]]
    repairs: List[Tuple[int, int]]
    counts: Optional[Dict[str, object]]
    slots: Optional[np.ndarray]
    nodes: Optional[np.ndarray]

    @property
    def has_schedule(self) -> bool:
        return self.slots is not None

    def schedule(self) -> BroadcastSchedule:
        """Materialise the stored schedule (requires ``has_schedule``)."""
        if self.slots is None:
            raise ValueError("metrics-only entry carries no schedule")
        sched = BroadcastSchedule()
        for slot, node in zip(self.slots.tolist(), self.nodes.tolist()):
            sched.add(slot, node)
        return sched

    def metrics(self, topology: Topology,
                model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                packet_bits: int = PAPER_PACKET_BITS
                ) -> Optional[BroadcastMetrics]:
        """Rebuild the broadcast metrics from the persisted counts.

        Returns ``None`` when the entry predates count persistence
        (legacy import) — the caller falls back to the replay path.
        """
        if self.counts is None:
            return None
        c = self.counts
        energy = model.broadcast_energy(
            num_tx=int(c["tx"]), num_rx=int(c["rx"]), bits=packet_bits,
            distance_m=topology.tx_range())
        return BroadcastMetrics(
            topology=topology.name,
            num_nodes=topology.num_nodes,
            source=tuple(topology.coord(self.source_index)),
            tx=int(c["tx"]),
            rx=int(c["rx"]),
            duplicates=int(c["duplicates"]),
            collisions=int(c["collisions"]),
            energy_j=energy,
            delay_slots=int(c["delay_slots"]),
            reachability=float(c["reachability"]),
            relay_count=int(c["relays"]),
            retransmit_count=int(c["retransmitters"]),
        )


@dataclass
class _ShardReader:
    """Cached snapshot of one shard: parsed index + data memory map."""

    index: dict
    stamp: Tuple[int, int, int]
    mm: Optional[mmap.mmap] = None
    mm_size: int = 0
    buf: Optional[bytes] = None  # non-mmap fallback for odd platforms

    def data(self, offset: int, length: int) -> Optional[np.ndarray]:
        if self.mm is None or offset + length * 8 > self.mm_size:
            return None
        return np.frombuffer(self.mm, dtype="<i8", count=length,
                             offset=offset)


class ArtifactStore:
    """Sharded on-disk repository of compiled broadcast artifacts.

    One store directory is safely shared by any number of concurrent
    reader and writer processes (parallel sweep workers, a long-lived
    ``repro serve`` process, ad-hoc CLI runs).
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise ValueError(
                f"artifact store path {self.path} exists and is not a "
                f"directory")
        self._readers: Dict[str, _ShardReader] = {}
        self.migrated_entries = 0
        self._migrate()

    # -- entries ----------------------------------------------------------

    def get(self, topology: Topology, protocol_name: str,
            source_index: int, *, completion: bool = True,
            repair: bool = True) -> Optional[StoredEntry]:
        """Look up one entry; ``None`` on any kind of miss."""
        sid = shard_id(topology.fingerprint, protocol_name,
                       completion=completion, repair=repair)
        reader = self._reader(sid)
        if reader is None:
            return None
        if reader.index.get("fingerprint") != topology.fingerprint:
            return None
        meta = reader.index["entries"].get(entry_key(source_index))
        if meta is None:
            return None
        slots = nodes = None
        ntx = int(meta.get("ntx", 0))
        if meta.get("offset") is not None:
            offset = int(meta["offset"])
            pairs = reader.data(offset, 2 * ntx)
            if pairs is None:  # index ahead of data file: treat as miss
                return None
            slots, nodes = pairs[:ntx], pairs[ntx:]
        return StoredEntry(
            source_index=int(meta["source_index"]),
            completion=completion, repair=repair,
            rounds=int(meta.get("rounds", 0)),
            completions=[_pair(e) for e in meta.get("completions", [])],
            repairs=[_pair(e) for e in meta.get("repairs", [])],
            counts=meta.get("counts"),
            slots=slots, nodes=nodes)

    def put(self, topology: Topology, protocol_name: str,
            source_index: int, *, completion: bool = True,
            repair: bool = True,
            schedule: Optional[BroadcastSchedule] = None,
            counts: Optional[Dict[str, object]] = None,
            completions: Sequence[Tuple[int, int]] = (),
            repairs: Sequence[Tuple[int, int]] = (),
            rounds: int = 0) -> None:
        """Publish one entry (idempotent; first writer wins)."""
        meta = {
            "source_index": int(source_index),
            "rounds": int(rounds),
            "completions": [list(map(int, e)) for e in completions],
            "repairs": [list(map(int, e)) for e in repairs],
            "counts": counts,
            "offset": None,
            "ntx": 0,
        }
        payload = b""
        if schedule is not None:
            slots, nodes = schedule.to_arrays()
            meta["ntx"] = int(slots.shape[0])
            payload = (slots.astype("<i8").tobytes()
                       + nodes.astype("<i8").tobytes())
        self._publish(topology.fingerprint, protocol_name, completion,
                      repair, entry_key(source_index), meta, payload)

    # -- class profiles ---------------------------------------------------

    def class_profile(self, topology: Topology, protocol_name: str,
                      profile_key: str, *, completion: bool = True,
                      repair: bool = True) -> Optional[dict]:
        """Stored compile profile of one source class, or ``None``."""
        sid = shard_id(topology.fingerprint, protocol_name,
                       completion=completion, repair=repair)
        reader = self._reader(sid)
        if reader is None:
            return None
        if reader.index.get("fingerprint") != topology.fingerprint:
            return None
        return reader.index.get("profiles", {}).get(profile_key)

    def store_class_profile(self, topology: Topology, protocol_name: str,
                            profile_key: str, profile: dict, *,
                            completion: bool = True,
                            repair: bool = True) -> None:
        self._publish(topology.fingerprint, protocol_name, completion,
                      repair, profile_key, dict(profile), b"",
                      section="profiles")

    # -- bulk precompute --------------------------------------------------

    def warm(self, shapes: Iterable[Tuple[str, Sequence[int]]],
             protocols: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Precompute class profiles + per-source entries for a fleet.

        *shapes* is an iterable of ``(topology label, shape)`` pairs —
        the grid fleet a service deployment expects to be queried about.
        For every shape each protocol's sources are grouped into symmetry
        classes (:func:`repro.core.symmetry.group_sources`); one
        representative per class compiles through the ordinary fixpoint
        (persisting its full schedule + counts + class profile) and every
        member is materialised through the batched class engine, so
        *all* sources of the fleet answer metrics queries warm.

        *protocols* defaults to the paper protocol of each topology.
        Returns counters: shapes / classes / compiles / entries written.
        """
        from ..topology.builder import make_topology
        from .cache import ScheduleCache
        from .registry import protocol_for
        from .symmetry import compile_class, group_sources

        stats = {"shapes": 0, "classes": 0, "compiles": 0, "entries": 0}
        for label, shape in shapes:
            topology = make_topology(label, shape=tuple(shape))
            protos = ([protocol_for(topology)] if protocols is None
                      else [protocol_for(name) for name in protocols])
            for protocol in protos:
                cache = ScheduleCache(store=self)
                sources = [topology.coord(i)
                           for i in range(topology.num_nodes)]
                groups, direct = group_sources(topology, protocol, sources)
                for class_key, positions in groups.items():
                    coords = [sources[p] for p in positions]
                    members = compile_class(topology, protocol, class_key,
                                            coords, cache=cache)
                    stats["classes"] += 1
                    for member in members:
                        cache.admit_member(protocol, topology, member)
                        stats["entries"] += 1
                for pos in direct:
                    protocol.compile(topology, sources[pos], cache=cache)
                    stats["entries"] += 1
                stats["compiles"] += cache.misses
            stats["shapes"] += 1
        return stats

    # -- maintenance ------------------------------------------------------

    def gc(self) -> Dict[str, int]:
        """Compact every shard: rewrite live bin records, drop orphans.

        The data files are append-only — a writer that crashes between
        its ``.bin`` append and its index publish leaves a record no
        index references, and a shard rebuild (fingerprint change)
        rotates the whole file — so dead bytes accumulate across crashes
        and rebuilds.  GC rewrites each shard's data file with exactly
        the live records, in index order, and republishes the index with
        the compacted offsets.

        Concurrent readers survive: a reader snapshot pairs one index
        parse with one data mmap taken at the same moment, and the old
        data inode stays valid under the reader's map after the swap.
        The swap itself is three-phase under the shard writer lock —
        publish the index with every schedule offset *demoted* (a
        schedule lookup in the window is a plain miss, which the store
        contract allows), replace the data file, then publish the index
        with the compacted offsets — so no index generation's offsets
        are ever interpreted against the other generation's bytes.

        Entries whose recorded bytes fall outside the current data file
        (a crashed writer's published-but-truncated record, or a record
        orphaned by an interrupted earlier GC) are demoted to
        metrics-only when they carry counts and dropped otherwise.

        Returns counters: ``shards`` compacted, live ``entries`` kept,
        ``dropped`` unreadable entries, ``bytes_before`` /
        ``bytes_after`` / ``reclaimed`` data-file byte totals.
        """
        stats = {"shards": 0, "entries": 0, "dropped": 0,
                 "bytes_before": 0, "bytes_after": 0, "reclaimed": 0}
        if not self.path.is_dir():
            return stats
        for index_path in sorted(self.path.glob("*.json")):
            if self._load_index(index_path) is None:
                continue  # foreign/legacy/stale file: not ours to touch
            sid = index_path.stem
            stats["shards"] += 1
            with self._locked(sid):
                index = self._current_index(sid)
                if index is None:  # vanished or rewritten under us
                    continue
                data_path = self._data_path(sid)
                try:
                    old = data_path.read_bytes()
                except OSError:
                    old = b""
                stats["bytes_before"] += len(old)
                entries = index.get("entries", {})
                chunks: List[bytes] = []
                offset = 0
                for key in sorted(entries):
                    meta = dict(entries[key])
                    ntx = int(meta.get("ntx", 0))
                    if meta.get("offset") is None or ntx <= 0:
                        continue
                    lo = int(meta["offset"])
                    hi = lo + 2 * ntx * 8
                    if hi > len(old):
                        # published index, truncated record: unreadable
                        # now and forever — keep the warm counts if any.
                        if meta.get("counts") is not None:
                            meta["offset"] = None
                            meta["ntx"] = 0
                            entries[key] = meta
                        else:
                            del entries[key]
                        stats["dropped"] += 1
                        continue
                    chunks.append(old[lo:hi])
                    meta["offset"] = offset
                    offset += hi - lo
                    entries[key] = meta
                demoted = {
                    key: ({**meta, "offset": None, "ntx": 0}
                          if meta.get("offset") is not None else meta)
                    for key, meta in entries.items()}
                # Phase 1: no index generation may point into the bin
                # while it is being swapped.
                index["entries"] = demoted
                self._write_index(sid, index)
                # Phase 2: swap in the compacted data file atomically.
                blob = b"".join(chunks)
                fd, tmp = tempfile.mkstemp(dir=str(self.path),
                                           prefix=f".{sid[:16]}-",
                                           suffix=".bin.tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(blob)
                    os.replace(tmp, data_path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                # Phase 3: publish the compacted offsets and refresh the
                # in-process snapshot (same idiom as _publish).
                index["entries"] = entries
                self._write_index(sid, index)
                stats["entries"] += len(chunks)
                stats["bytes_after"] += len(blob)
                try:
                    st = self._index_path(sid).stat()
                    reader = _ShardReader(
                        index=index,
                        stamp=(st.st_mtime_ns, st.st_size, st.st_ino))
                    self._map_data(sid, reader)
                    self._readers[sid] = reader
                except OSError:  # pragma: no cover - stat raced cleanup
                    self._readers.pop(sid, None)
        stats["reclaimed"] = stats["bytes_before"] - stats["bytes_after"]
        return stats

    # -- internals --------------------------------------------------------

    def _index_path(self, sid: str) -> Path:
        return self.path / f"{sid}.json"

    def _data_path(self, sid: str) -> Path:
        return self.path / f"{sid}.bin"

    def _reader(self, sid: str) -> Optional[_ShardReader]:
        """Load (or revalidate) the cached snapshot of one shard."""
        index_path = self._index_path(sid)
        try:
            st = index_path.stat()
        except OSError:
            self._readers.pop(sid, None)
            return None
        # st_ino is the load-bearing part of the stamp: every index
        # publish goes through tempfile + os.replace, so it lands on a
        # fresh inode even when coarse mtime granularity and an equal
        # byte size make (mtime, size) collide across rapid publishes.
        stamp = (st.st_mtime_ns, st.st_size, st.st_ino)
        reader = self._readers.get(sid)
        if reader is not None and reader.stamp == stamp:
            return reader
        index = self._load_index(index_path)
        if index is None:
            self._readers.pop(sid, None)
            return None
        reader = _ShardReader(index=index, stamp=stamp)
        self._map_data(sid, reader)
        self._readers[sid] = reader
        return reader

    def _map_data(self, sid: str, reader: _ShardReader) -> None:
        data_path = self._data_path(sid)
        try:
            size = data_path.stat().st_size
        except OSError:
            size = 0
        if size <= 0:
            return
        try:
            with open(data_path, "rb") as fh:
                reader.mm = mmap.mmap(fh.fileno(), size,
                                      access=mmap.ACCESS_READ)
                reader.mm_size = size
        except (OSError, ValueError):  # pragma: no cover - mmap refusal
            reader.buf = data_path.read_bytes()
            reader.mm = reader.buf  # frombuffer works on bytes too
            reader.mm_size = len(reader.buf)

    def _load_index(self, index_path: Path) -> Optional[dict]:
        try:
            with open(index_path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(index, dict) \
                or index.get("version") != STORE_FORMAT_VERSION \
                or not isinstance(index.get("entries"), dict):
            return None
        return index

    @contextmanager
    def _locked(self, sid: str):
        """Serialise shard writers (no-op where fcntl is unavailable)."""
        self.path.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        lock_path = self.path / f"{sid}.lock"
        with open(lock_path, "a+b") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _publish(self, fingerprint: str, protocol_name: str,
                 completion: bool, repair: bool, key: str, meta: dict,
                 payload: bytes, section: str = "entries") -> None:
        sid = shard_id(fingerprint, protocol_name,
                       completion=completion, repair=repair)
        with self._locked(sid):
            index = self._current_index(sid)
            if index is None or index.get("fingerprint") != fingerprint:
                # Fresh/stale/foreign shard: start over (the data file is
                # truncated so orphaned bytes don't accumulate).
                index = {"version": STORE_FORMAT_VERSION,
                         "fingerprint": fingerprint,
                         "protocol": protocol_name,
                         "completion": bool(completion),
                         "repair": bool(repair),
                         "entries": {}, "profiles": {}}
                # Rotate (not truncate) the data file: concurrent readers
                # may hold a mmap of the old inode, which stays valid.
                try:
                    os.unlink(self._data_path(sid))
                except OSError:
                    pass
            bucket = index.setdefault(section, {})
            if section == "entries":
                prior = bucket.get(key)
                # First full writer wins (concurrent writers produce
                # identical content); a schedule-carrying entry may
                # upgrade a metrics-only one, never the reverse.
                if prior is not None and (
                        prior.get("offset") is not None or not payload):
                    return
                if payload:
                    with open(self._data_path(sid), "ab") as fh:
                        meta = dict(meta)
                        meta["offset"] = fh.tell()
                        if faults.fires(faults.STORE_TORN):
                            # Injected writer crash between the bin
                            # append and the index publish: leave a
                            # partial payload as orphan bytes.  The
                            # store's crash contract already covers this
                            # (unindexed bytes are invisible to readers
                            # and reclaimed by gc()); the seam exists to
                            # prove callers survive the raised error.
                            fh.write(payload[:max(8, len(payload) // 2)])
                            fh.flush()
                            raise faults.InjectedFault(
                                faults.STORE_TORN,
                                f"torn shard write for {key!r}")
                        fh.write(payload)
                        fh.flush()
            bucket[key] = meta
            self._write_index(sid, index)
            # Refresh the in-process snapshot in place: re-parsing the
            # index we just wrote would make a cold sweep quadratic.
            try:
                st = self._index_path(sid).stat()
                reader = _ShardReader(
                    index=index,
                    stamp=(st.st_mtime_ns, st.st_size, st.st_ino))
                self._map_data(sid, reader)
                self._readers[sid] = reader
            except OSError:  # pragma: no cover - stat raced a cleanup
                self._readers.pop(sid, None)

    def _current_index(self, sid: str) -> Optional[dict]:
        """Writer-side index load, reusing the cached parse when the
        on-disk stamp hasn't moved (single-writer lock is held)."""
        try:
            st = self._index_path(sid).stat()
        except OSError:
            return None
        reader = self._readers.get(sid)
        if reader is not None and reader.stamp == (
                st.st_mtime_ns, st.st_size, st.st_ino):
            return reader.index
        return self._load_index(self._index_path(sid))

    def _write_index(self, sid: str, index: dict) -> None:
        target = self._index_path(sid)
        fd, tmp = tempfile.mkstemp(dir=str(self.path),
                                   prefix=f".{sid[:16]}-", suffix=".tmp")
        try:
            # One serialize + one write: json.dump's streaming iterencode
            # writes the file in thousands of tiny chunks, which dominates
            # a cold sweep's publish cost.
            blob = json.dumps(index, separators=(",", ":")).encode("utf-8")
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- legacy migration -------------------------------------------------

    def _migrate(self) -> None:
        """Import a legacy per-entry JSON cache directory, if present.

        The pre-shard layout stored one ``<sha256>.json`` per compilation
        (version 1).  Those entries carry the schedule and compile
        metadata but no counts, so they import as schedule-only entries —
        warm *metrics* still need one replay, exactly as the legacy tier
        behaved — and the originals move to ``legacy-imported/`` so the
        scan runs once.  Unreadable files are skipped with a warning;
        migration never raises.
        """
        if not self.path.is_dir():
            return
        legacy = [p for p in self.path.glob("*.json")
                  if re.fullmatch(r"(class-)?[0-9a-f]{64}\.json", p.name)]
        if not legacy:
            return
        parking = self.path / "legacy-imported"
        for entry_path in legacy:
            try:
                payload = json.loads(entry_path.read_text(encoding="utf-8"))
                if payload.get("version") != LEGACY_FORMAT_VERSION:
                    raise ValueError(
                        f"unknown legacy version {payload.get('version')!r}")
                if not entry_path.name.startswith("class-"):
                    self._import_legacy_entry(payload)
                    self.migrated_entries += 1
            except Exception as exc:
                warnings.warn(
                    f"artifact store: ignoring unreadable legacy cache "
                    f"entry {entry_path.name}: {exc}", stacklevel=2)
            try:
                parking.mkdir(exist_ok=True)
                os.replace(entry_path, parking / entry_path.name)
            except OSError:  # pragma: no cover - parking is best-effort
                pass

    def _import_legacy_entry(self, payload: dict) -> None:
        schedule = BroadcastSchedule()
        for slot_str, nodes in payload["schedule"].items():
            for v in nodes:
                schedule.add(int(slot_str), int(v))
        slots, nodes = schedule.to_arrays()
        meta = {
            "source_index": int(payload["source_index"]),
            "rounds": int(payload["rounds"]),
            "completions": [list(map(int, e))
                            for e in payload["completions"]],
            "repairs": [list(map(int, e)) for e in payload["repairs"]],
            "counts": None,  # legacy entries never stored counts
            "offset": None,
            "ntx": int(slots.shape[0]),
        }
        data = (slots.astype("<i8").tobytes()
                + nodes.astype("<i8").tobytes())
        self._publish(payload["fingerprint"], payload["protocol"],
                      bool(payload.get("completion", True)),
                      bool(payload.get("repair", True)),
                      entry_key(payload["source_index"]), meta, data)


def _pair(entry) -> Tuple[int, int]:
    node, slot = entry
    return (int(node), int(slot))


def class_profile_hash(topology_fingerprint: str, protocol_name: str,
                       class_key: Tuple, *, completion: bool = True,
                       repair: bool = True) -> str:
    """Stable digest naming one class profile inside its shard."""
    h = hashlib.sha256()
    h.update(topology_fingerprint.encode("ascii"))
    h.update(f"|{protocol_name}|class|{class_key!r}"
             f"|c{int(completion)}|r{int(repair)}".encode("ascii"))
    return h.hexdigest()
