"""Protocol registry: topology label -> paper protocol.

``protocol_for`` is the main entry point of the library: given one of the
four topologies (or its label), it returns the matching Section 3
protocol instance.
"""

from __future__ import annotations

from typing import Dict, Type

from ..topology.base import Topology
from .base import BroadcastProtocol
from .mesh2d3 import Mesh2D3Protocol
from .mesh2d4 import Mesh2D4Protocol
from .mesh2d8 import Mesh2D8Protocol
from .mesh3d6 import Mesh3D6Protocol

#: Topology label -> protocol class, in the paper's table order.
PROTOCOL_CLASSES: Dict[str, Type[BroadcastProtocol]] = {
    "2D-3": Mesh2D3Protocol,
    "2D-4": Mesh2D4Protocol,
    "2D-8": Mesh2D8Protocol,
    "3D-6": Mesh3D6Protocol,
}


def protocol_for(topology: Topology | str) -> BroadcastProtocol:
    """The paper's protocol for *topology* (object or label)."""
    label = topology if isinstance(topology, str) else topology.name
    try:
        cls = PROTOCOL_CLASSES[label]
    except KeyError:
        raise ValueError(
            f"no paper protocol for topology {label!r}; expected one of "
            f"{sorted(PROTOCOL_CLASSES)}") from None
    return cls()
