"""Efficient Transmission Ratio (ETR) — the paper's relay-selection metric.

Section 3: "Assume that the total number of neighbors is denoted as N and
the number of neighbors that receive a non-duplicated message after the
transmission is denoted as M.  The efficient transmission ratio (ETR) is
defined as ETR = M/N."

Only the source can reach ETR = 1; any other node's optimum is bounded by
the fact that the neighbour it received from already has the message.  The
per-topology optima (Table 1) additionally account for geometry — e.g. in
the 2D-8 mesh a diagonal hop leaves 3 of the 8 neighbours already covered
by the previous transmitter, so the optimum is 5/8, not 7/8.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Set, Tuple

import numpy as np

from ..sim.trace import BroadcastTrace
from ..topology.base import Topology

#: Table 1 of the paper: optimal ETR per topology.  The 2D-6 hexagonal
#: row is our extension (the lattice from the paper's reference [12]):
#: adjacent hex nodes share two common neighbours, so a relay informs at
#: most 6 - 1 - 2 = 3 new nodes.
OPTIMAL_ETR: Dict[str, Fraction] = {
    "2D-3": Fraction(2, 3),
    "2D-4": Fraction(3, 4),
    "2D-6": Fraction(1, 2),
    "2D-8": Fraction(5, 8),
    "3D-6": Fraction(5, 6),
}

#: Max new (non-duplicated) receivers per relay transmission — the M of
#: the ideal-case model.  Stated explicitly (not as ETR numerators)
#: because the hex ratio 3/6 reduces to 1/2.
OPTIMAL_NEW_PER_TX: Dict[str, int] = {
    "2D-3": 2,
    "2D-4": 3,
    "2D-6": 3,
    "2D-8": 5,
    "3D-6": 5,
}


def optimal_etr(label: str) -> Fraction:
    """Optimal per-relay ETR of topology *label* (paper Table 1)."""
    try:
        return OPTIMAL_ETR[label]
    except KeyError:
        raise ValueError(
            f"no optimal ETR known for {label!r}; expected one of "
            f"{sorted(OPTIMAL_ETR)}") from None


def transmission_etr(topology: Topology, transmitter: int,
                     informed_before: Set[int]) -> Fraction:
    """ETR of a single transmission: fraction of the transmitter's
    neighbours that did not already hold the message.

    *informed_before* is the set of informed node indices just before the
    transmission (the transmitter itself must be in it).
    """
    nbrs = topology.neighbor_indices(transmitter)
    if len(nbrs) == 0:
        return Fraction(0, 1)
    fresh = sum(1 for v in nbrs if int(v) not in informed_before)
    return Fraction(fresh, len(nbrs))


def trace_etrs(topology: Topology,
               trace: BroadcastTrace) -> List[Tuple[int, int, Fraction]]:
    """Per-transmission ETR history of a trace.

    Returns ``(slot, transmitter, etr)`` tuples in chronological order.
    The ETR of each transmission is evaluated against the set of nodes
    informed strictly before its slot (matching the paper's definition of
    "non-duplicated message after the transmission").
    """
    out: List[Tuple[int, int, Fraction]] = []
    first_rx = trace.first_rx
    for slot, v in trace.tx_events:
        informed = {int(u) for u in np.nonzero(
            (first_rx >= 0) & (first_rx < slot))[0]}
        out.append((slot, v, transmission_etr(topology, v, informed)))
    return out


def optimal_etr_fraction(topology: Topology, trace: BroadcastTrace,
                         label: str | None = None) -> float:
    """Fraction of *relay* transmissions achieving the optimal ETR.

    The paper claims "most of the relay nodes can achieve optimal ETR".
    The source (ETR 1) and border relays (degree < nominal, so their N is
    smaller) are excluded from the denominator, matching the paper's
    interior-node argument.
    """
    label = label or topology.name
    target = optimal_etr(label)
    history = trace_etrs(topology, trace)
    degrees = topology.degrees
    considered = 0
    optimal = 0
    for slot, v, etr in history:
        if v == trace.source:
            continue
        if degrees[v] < topology.nominal_degree:
            continue
        considered += 1
        if etr >= target:
            optimal += 1
    if considered == 0:
        return 0.0
    return optimal / considered


def diagonal_vs_axis_etr(label: str = "2D-8") -> Tuple[Fraction, Fraction]:
    """The Fig. 6 argument: ETR of a diagonal vs an axis hop in 2D-8.

    When an interior 2D-8 node receives from a diagonal neighbour and
    relays, 5 of its 8 neighbours are new (ETR 5/8); when it receives from
    an axis neighbour, only 3 are new (ETR 3/8).  Computed from first
    principles on a concrete lattice rather than hard-coded.
    """
    from ..topology.mesh2d import Mesh2D8
    if label != "2D-8":
        raise ValueError("the diagonal-vs-axis argument is specific to 2D-8")
    mesh = Mesh2D8(7, 7)
    centre = (4, 4)
    diag_prev = (3, 5)   # received along the diagonal
    axis_prev = (3, 4)   # received along the X axis
    out = []
    for prev in (diag_prev, axis_prev):
        informed = {mesh.index(prev)} | {
            mesh.index(c) for c in mesh.neighbors(prev)}
        informed.add(mesh.index(centre))
        out.append(transmission_etr(mesh, mesh.index(centre), informed))
    return (out[0], out[1])
