"""All-to-all broadcast by composing one-to-all schedules.

"Broadcast is a fundamental operation for all kinds of networks" — and
the next operation up is all-to-all (every node's data at every node),
the substrate of distributed aggregation.  The paper only builds
one-to-all; this extension composes its compiled schedules:

* **sequential** — run the k one-to-all broadcasts back to back (delays
  add, no cross-broadcast collisions by construction);
* the per-source schedules are compiled independently and cached, so the
  composition inherits every guarantee (100 % reachability per message,
  audited schedules).

Energy accounting and slot counts come straight from the per-broadcast
metrics, so the composition supports the questions an application asks:
what does a full exchange cost, and how is the relay load distributed
when every node takes a turn as source?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..topology.base import Topology
from .base import BroadcastProtocol
from .registry import protocol_for


@dataclass(frozen=True)
class AllToAllResult:
    """Cost of a full (or partial) all-to-all exchange."""

    topology: str
    num_sources: int
    total_tx: int
    total_rx: int
    total_slots: int
    energy_j: float
    per_node_tx: np.ndarray
    all_reached: bool

    @property
    def tx_imbalance(self) -> float:
        """Max/mean per-node transmissions across the whole exchange —
        how evenly taking turns as source spreads the relay burden."""
        mean = float(self.per_node_tx.mean())
        if mean == 0:
            return 1.0
        return float(self.per_node_tx.max()) / mean

    def as_row(self) -> dict:
        return {
            "topology": self.topology,
            "sources": self.num_sources,
            "total_tx": self.total_tx,
            "total_rx": self.total_rx,
            "total_slots": self.total_slots,
            "energy_J": self.energy_j,
            "tx_imbalance": round(self.tx_imbalance, 2),
        }


def all_to_all(
    topology: Topology,
    sources: Optional[Sequence] = None,
    protocol: Optional[BroadcastProtocol] = None,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
) -> AllToAllResult:
    """Sequentially compose one-to-all broadcasts from *sources*
    (default: every node).

    With the default sources this is the full all-to-all exchange: after
    ``total_slots`` slots every node holds every other node's message.
    """
    if protocol is None:
        protocol = protocol_for(topology)
    if sources is None:
        sources = [topology.coord(i) for i in range(topology.num_nodes)]
    e_tx = model.tx_energy(packet_bits, topology.tx_range())
    e_rx = model.rx_energy(packet_bits)

    total_tx = 0
    total_rx = 0
    total_slots = 0
    per_node_tx = np.zeros(topology.num_nodes, dtype=np.int64)
    reached = True
    for src in sources:
        compiled = protocol.compile(topology, src)
        trace = compiled.trace
        total_tx += trace.num_tx
        total_rx += trace.num_rx
        total_slots += trace.last_activity_slot
        per_node_tx += trace.tx_count_per_node()
        reached &= trace.all_reached
    return AllToAllResult(
        topology=topology.name,
        num_sources=len(sources),
        total_tx=total_tx,
        total_rx=total_rx,
        total_slots=total_slots,
        energy_j=total_tx * e_tx + total_rx * e_rx,
        per_node_tx=per_node_tx,
        all_reached=reached,
    )
