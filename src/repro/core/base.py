"""Protocol abstractions: relay plans and compiled broadcasts.

A broadcasting protocol in this library is split the way the paper splits
it conceptually:

* a **relay plan** — the topology-specific rules of Section 3: which nodes
  relay, with what extra per-node delays, and which designated nodes
  retransmit one (or more) slots after their first transmission;
* a **compiled broadcast** — the executable schedule obtained by running
  the relay plan through the :mod:`repro.core.compiler`, which adds the
  completion/repair transmissions needed for 100 % reachability on
  arbitrary grid shapes and source positions (see DESIGN.md §2).

Protocols are deterministic: the same (topology, source) always compiles
to the same schedule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..sim.schedule import BroadcastSchedule
from ..sim.trace import BroadcastTrace
from ..topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import ScheduleCache


@dataclass
class RelayPlan:
    """The rule-phase output of a protocol for one (topology, source).

    Attributes
    ----------
    relay_mask:
        Boolean per-node array; True for designated relay nodes (they
        transmit once, one slot after their first successful reception).
    extra_delay:
        Per-node additional slots beyond the default ``first_rx + 1``
        (e.g. 3D-6 z-relays in the source plane wait one extra slot).
    repeat_offsets:
        ``node -> offsets``: designated retransmitters send again at
        ``first_tx + offset`` (the paper's gray nodes use offset 1).
    notes:
        Free-form annotations (which rule selected which relays), used by
        the visualiser and in debugging.
    """

    relay_mask: np.ndarray
    extra_delay: np.ndarray
    repeat_offsets: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def empty(cls, num_nodes: int) -> "RelayPlan":
        """A plan with no relays (the source still transmits)."""
        return cls(relay_mask=np.zeros(num_nodes, dtype=bool),
                   extra_delay=np.zeros(num_nodes, dtype=np.int64))

    def copy(self) -> "RelayPlan":
        return RelayPlan(
            relay_mask=self.relay_mask.copy(),
            extra_delay=self.extra_delay.copy(),
            repeat_offsets=dict(self.repeat_offsets),
            notes=dict(self.notes),
        )

    @property
    def num_relays(self) -> int:
        """Number of designated relay nodes."""
        return int(self.relay_mask.sum())


@dataclass
class CompiledBroadcast:
    """A fully compiled, simulated and audited broadcast.

    Attributes
    ----------
    schedule:
        The static transmission schedule as executed.
    trace:
        Trace of the final (authoritative) simulation run.
    plan:
        The rule-phase relay plan the compilation started from.
    completions:
        Nodes promoted to relay by the completion phase: ``(node, slot)``.
    repairs:
        Retransmissions added by the repair phase: ``(node, slot)``.
    rounds:
        Number of compile iterations used.
    """

    topology_name: str
    source: int
    schedule: BroadcastSchedule
    trace: BroadcastTrace
    plan: RelayPlan
    completions: List[Tuple[int, int]] = field(default_factory=list)
    repairs: List[Tuple[int, int]] = field(default_factory=list)
    rounds: int = 0

    @property
    def reached_all(self) -> bool:
        """True iff the compiled broadcast informs every node."""
        return self.trace.all_reached


class BroadcastProtocol(abc.ABC):
    """Base class of the paper's four protocols and the baselines."""

    #: Protocol identifier, e.g. ``"2D-4"``.
    name: str = "protocol"

    @abc.abstractmethod
    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        """Build the rule-phase relay plan for *source* (1-based coord)."""

    def supports(self, topology: Topology) -> bool:
        """True if this protocol can run on *topology*.

        The default matches on the paper's topology label; baselines that
        run anywhere override this.
        """
        return topology.name == self.name

    def source_class_key(self, topology: Topology,
                         source) -> Optional[Tuple]:
        """Equivalence-class key of *source* for symmetry-reduced sweeps.

        Two sources sharing a key have the same relay-pattern *shape*:
        the same residue of the source under the protocol's relay period
        along each axis, and the same per-axis distances to the grid
        borders clamped at the protocol's border-rule influence radius.
        The symmetry-reduced sweep (:mod:`repro.core.symmetry`) compiles
        one representative per class through the full fixpoint and drives
        the remaining members through the batched multi-source engine;
        the key never affects *correctness* (every member's result is
        produced by the same simulate->fix algorithm), only how sources
        are grouped and which execution mode a group is predicted to take.

        ``None`` marks the source non-groupable (irregular topology,
        baseline protocol without a lattice period); such sources fall
        back to direct per-source compilation.
        """
        return None

    def compile(self, topology: Topology, source, *,
                completion: bool = True, repair: bool = True,
                cache: "Optional[ScheduleCache]" = None
                ) -> CompiledBroadcast:
        """Compile, simulate and audit a broadcast from *source*.

        See :func:`repro.core.compiler.compile_broadcast` for the phase
        semantics and the *completion* / *repair* switches.  Passing a
        :class:`~repro.core.cache.ScheduleCache` as *cache* reuses a
        previous compilation of the same ``(topology, source, options)``
        when one exists, and stores the result otherwise.
        """
        if cache is not None:
            return cache.get_or_compile(
                self, topology, source,
                completion=completion, repair=repair)
        from .compiler import compile_broadcast
        if not self.supports(topology):
            raise ValueError(
                f"protocol {self.name!r} does not support topology "
                f"{topology.name!r}")
        plan = self.relay_plan(topology, source)
        return compile_broadcast(
            topology, topology.index(source), plan,
            completion=completion, repair=repair)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
