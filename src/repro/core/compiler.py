"""Offline schedule compilation (rule -> completion -> repair fixpoint).

The paper's protocols are compiled offline: "Since the topology of the
network is predetermined, we know where the collision will occur and which
node needs to retransmit the message."  This module is that precomputation,
generalised so it works for every grid shape and source position, not only
the ones the paper enumerates (DESIGN.md §2 motivates this):

1. **Rule phase** — run the protocol's :class:`~repro.core.base.RelayPlan`
   reactively under the collision model (relays fire one slot after their
   first successful reception; designated retransmitters repeat).
2. **Completion phase** — if some node is never informed because no relay
   covers it (clipped diagonals, border gaps), promote the informed
   neighbour with the highest ETR (most new nodes covered) to relay.  This
   is the paper's own relay-selection principle and subsumes its explicit
   border rules.
3. **Repair phase** — if some node is starved purely by collisions,
   schedule an informed neighbour to retransmit at the earliest slot that
   (a) the neighbour can transmit in, and (b) does not destroy any existing
   *first* reception.  This mirrors the paper's designated retransmitters
   ("we let the collision occur and retransmit the collided message").

The compiler iterates simulate -> fix until every node is informed, then
returns the authoritative trace and static schedule.  Monotone progress is
enforced per round (at least one new node informed), so the loop terminates
in at most ``num_nodes`` rounds on connected graphs; a round cap guards the
degenerate cases.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..sim.engine import run_reactive
from ..sim.trace import BroadcastTrace
from ..topology.base import Topology
from .base import CompiledBroadcast, RelayPlan

#: Hard cap on simulate->fix rounds; real protocol compilations use only a
#: handful of rounds, and a connected graph needs at most one fix per node.
DEFAULT_MAX_ROUNDS = 256


class CompilationError(RuntimeError):
    """Raised when the compiler cannot reach a 100 %-coverage fixpoint."""


#: Monotone count of :func:`compile_broadcast` invocations in this
#: process.  Benchmarks (``benchmarks/perf_symmetry.py``) diff it around a
#: sweep to measure how many full fixpoint compilations the
#: symmetry-reduced path avoided; it has no functional role.  The async
#: service runtime compiles on executor threads, so the increment takes a
#: lock to stay exact under concurrency.
_compile_calls = 0
_compile_calls_lock = threading.Lock()


def compile_call_count() -> int:
    """Number of :func:`compile_broadcast` calls made by this process."""
    return _compile_calls


def compile_broadcast(
    topology: Topology,
    source: int,
    plan: RelayPlan,
    *,
    completion: bool = True,
    repair: bool = True,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    dead_mask=None,
) -> CompiledBroadcast:
    """Compile *plan* into a verified broadcast schedule from *source*.

    With ``completion=False`` and ``repair=False`` the result is the pure
    rule-phase broadcast (possibly incomplete — useful for studying the
    literal Section 3 rules in isolation).

    *dead_mask* compiles around known node failures: dead nodes neither
    transmit nor receive, are not counted against reachability, and the
    completion/repair phases route the wave around them (fault-injection
    extension; the paper assumes a pristine network).
    """
    global _compile_calls
    with _compile_calls_lock:
        _compile_calls += 1
    # Memoised on the topology and lazily materialised per node
    # (LazyNeighborSets): the fix planner below only inspects the
    # neighbourhoods of unreached/border/collision nodes, so a large grid
    # never pays an up-front O(n) set-construction pass.
    nbr_sets = topology.neighbor_sets

    forced: Dict[int, Set[int]] = {}
    completions: List[Tuple[int, int]] = []
    repairs: List[Tuple[int, int]] = []
    trace: Optional[BroadcastTrace] = None
    prev_informed = -1
    stall_rounds = 0

    for round_no in range(1, max_rounds + 1):
        trace = run_reactive(
            topology, source, plan.relay_mask,
            extra_delay=plan.extra_delay,
            repeat_offsets=plan.repeat_offsets,
            forced_tx=forced,
            dead_mask=dead_mask)
        _prune_dropped(trace, forced, completions, repairs)
        unreached = trace.unreached_nodes()
        if dead_mask is not None:
            unreached = np.asarray(
                [v for v in unreached if not dead_mask[v]], dtype=np.int64)
        if len(unreached) == 0:
            return CompiledBroadcast(
                topology_name=topology.name, source=source,
                schedule=trace.as_schedule(), trace=trace, plan=plan,
                completions=completions, repairs=repairs, rounds=round_no)
        if not completion and not repair:
            return CompiledBroadcast(
                topology_name=topology.name, source=source,
                schedule=trace.as_schedule(), trace=trace, plan=plan,
                completions=completions, repairs=repairs, rounds=round_no)

        # Progress tracking: the informed count may dip transiently when a
        # repair's cascade disturbs other receptions (the accumulated
        # forced set still grows monotonically, which is what ultimately
        # forces convergence), so the stall guard is generous.
        informed_now = int((trace.first_rx >= 0).sum())
        if informed_now <= prev_informed:
            stall_rounds += 1
            if stall_rounds > 24:
                raise CompilationError(
                    f"no progress after {round_no} rounds on "
                    f"{topology.name} (source {topology.coord(source)}): "
                    f"{len(unreached)} nodes unreached")
        else:
            stall_rounds = 0
        prev_informed = max(prev_informed, informed_now)

        added = _plan_fixes(
            topology, trace, forced, nbr_sets, unreached, plan,
            allow_completion=completion, allow_repair=repair,
            dead_mask=dead_mask)
        if not added:
            # Unreached nodes with no informed neighbour at all: the graph
            # is disconnected around them — return the partial broadcast.
            return CompiledBroadcast(
                topology_name=topology.name, source=source,
                schedule=trace.as_schedule(), trace=trace, plan=plan,
                completions=completions, repairs=repairs, rounds=round_no)
        for node, slot, kind in added:
            forced.setdefault(slot, set()).add(node)
            if kind == "completion":
                completions.append((node, slot))
            else:
                repairs.append((node, slot))

    raise CompilationError(
        f"schedule compilation exceeded {max_rounds} rounds on "
        f"{topology.name} (source {topology.coord(source)})")


def _prune_dropped(trace: BroadcastTrace, forced: Dict[int, Set[int]],
                   completions: List[Tuple[int, int]],
                   repairs: List[Tuple[int, int]]) -> None:
    """Remove forced transmissions that could not execute (node uninformed
    at its slot) so later rounds can re-place them.

    Membership runs against a set of the dropped ``(node, slot)`` pairs —
    a single rebuild filters every occurrence at once, where the previous
    per-entry ``list.remove`` was an O(n) scan per drop *and* silently
    left duplicate entries behind.
    """
    if not trace.dropped_forced:
        return
    dropped = {(node, slot) for slot, node in trace.dropped_forced}
    for slot, node in trace.dropped_forced:
        nodes = forced.get(slot)
        if nodes and node in nodes:
            nodes.discard(node)
            if not nodes:
                del forced[slot]
    completions[:] = [entry for entry in completions if entry not in dropped]
    repairs[:] = [entry for entry in repairs if entry not in dropped]


def _plan_fixes(
    topology: Topology,
    trace: BroadcastTrace,
    forced: Dict[int, Set[int]],
    nbr_sets: Sequence[frozenset],
    unreached: np.ndarray,
    plan: RelayPlan,
    *,
    allow_completion: bool,
    allow_repair: bool,
    dead_mask=None,
) -> List[Tuple[int, int, str]]:
    """Choose this round's extra transmissions.

    Returns ``(node, slot, kind)`` additions, ``kind`` in
    {"completion", "repair"}.
    """
    first_rx = trace.first_rx

    # Per-slot transmitter sets of the executed trace plus pending forced.
    tx_at: Dict[int, Set[int]] = {}
    for slot, v in trace.tx_events:
        tx_at.setdefault(slot, set()).add(v)
    for slot, nodes in forced.items():
        tx_at.setdefault(slot, set()).update(nodes)
    ever_tx: Set[int] = set()
    for nodes in tx_at.values():
        ever_tx |= nodes
    horizon = (max(tx_at, default=0)
               + len(unreached) + 4)

    additions: List[Tuple[int, int, str]] = []
    added_at: Dict[int, Set[int]] = {}     # this round's additions
    added_nodes: Set[int] = set()          # flat view of added_at, kept
    #                                        in sync incrementally (the
    #                                        per-candidate rebuild was an
    #                                        O(additions) rescan per probe)
    planned_rx: Dict[int, int] = {}        # unreached node -> fix slot

    def tx_count_near(v: int, slot: int) -> int:
        """Transmitting neighbours of v at slot (trace+forced+additions)."""
        cnt = len(nbr_sets[v] & tx_at.get(slot, set()))
        cnt += len(nbr_sets[v] & added_at.get(slot, set()))
        return cnt

    def transmits_at(u: int, slot: int) -> bool:
        return (u in tx_at.get(slot, set())
                or u in added_at.get(slot, set()))

    def feasible_slot(u: int, start: int) -> int:
        """Earliest slot >= start where u may transmit harmlessly."""
        s = max(start, int(first_rx[u]) + 1)
        while s <= horizon:
            if not transmits_at(u, s) and _harmless(u, s):
                return s
            s += 1
        return -1

    def _harmless(u: int, s: int) -> bool:
        """Adding u's tx at s must not destroy an existing or planned
        first reception of any of u's neighbours, nor trigger a relay
        cascade that destroys one a slot later."""
        for w in nbr_sets[u]:
            if first_rx[w] == s and not transmits_at(w, s):
                return False
            if planned_rx.get(w, -1) == s:
                return False
            # cascade safety: an unreached relay w informed at s will fire
            # at s + 1 + delay; that firing must not collide with an
            # established first reception of w's neighbours.
            if first_rx[w] < 0 and plan.relay_mask[w]:
                fire = s + 1 + int(plan.extra_delay[w])
                for x in nbr_sets[w]:
                    if first_rx[x] == fire and not transmits_at(x, fire):
                        return False
        return True

    def coverage(u: int, s: int) -> List[int]:
        """Unreached, unfixed neighbours of u that would decode (u, s)."""
        out = []
        for w in nbr_sets[u]:
            if first_rx[w] >= 0 or w in planned_rx:
                continue
            if dead_mask is not None and dead_mask[w]:
                continue
            if tx_count_near(w, s) == 0:
                out.append(w)
        return out

    order = sorted(
        (int(v) for v in unreached),
        key=lambda v: (min((int(first_rx[u]) for u in nbr_sets[v]
                            if first_rx[u] >= 0), default=1 << 30), v))

    for v in order:
        if v in planned_rx or first_rx[v] >= 0:
            continue
        best: Optional[Tuple[int, int, int, str]] = None  # score,-s,-u,kind
        for u in sorted(nbr_sets[v]):
            if first_rx[u] < 0:
                continue
            if dead_mask is not None and dead_mask[u]:
                continue
            is_new_relay = u not in ever_tx and u not in added_nodes
            kind = "completion" if is_new_relay else "repair"
            if kind == "completion" and not allow_completion:
                continue
            if kind == "repair" and not allow_repair:
                continue
            s = feasible_slot(u, int(first_rx[u]) + 1)
            if s < 0:
                continue
            covered = coverage(u, s)
            if v not in covered:
                continue
            key = (len(covered), -s, -u)
            if best is None or key > best[:3]:
                best = (len(covered), -s, -u, kind)
        if best is None:
            continue
        score, neg_s, neg_u, kind = best
        u, s = -neg_u, -neg_s
        covered = coverage(u, s)
        additions.append((u, s, kind))
        added_at.setdefault(s, set()).add(u)
        added_nodes.add(u)
        for w in covered:
            planned_rx[w] = s
        planned_rx.setdefault(v, s)
    return additions
