"""The Section 3.1 ablation: avoid collisions by *delaying* instead of
letting them happen and retransmitting.

The paper weighs two ways to handle the 2D-4 wave/column collision and
argues for retransmission: "if we delay the transmissions of nodes
(i+3k, j-1), (i+3k, j+1), ... to avoid collisions, it will cause an extra
time slot delay and nodes ... will receive duplicated messages and thus
consume more power.  Therefore, we do not try to avoid collisions".

This protocol implements the rejected alternative — the first node of each
relay column (the ``(i+3k, j±1)`` that would otherwise collide with the
X-axis wave) waits one extra slot, and no designated retransmitters are
used — so the trade-off can be measured instead of argued.
"""

from __future__ import annotations

from ...topology.base import Topology
from ...topology.mesh2d import Mesh2D4
from ..base import RelayPlan
from ..mesh2d4 import Mesh2D4Protocol


class DelayedMesh2D4Protocol(Mesh2D4Protocol):
    """2D-4 broadcast that delays column starts instead of retransmitting."""

    name = "2D-4"

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not isinstance(topology, Mesh2D4):
            raise TypeError(f"expected Mesh2D4, got {type(topology).__name__}")
        plan = super().relay_plan(topology, source)
        i, j = source
        # Drop the designated retransmitters...
        plan.repeat_offsets = {}
        # ...and delay each relay column's first off-row hop by one slot.
        for x in plan.notes["columns"]:
            for y in (j - 1, j + 1):
                if topology.contains((x, y)):
                    plan.extra_delay[topology.index((x, y))] = 1
        plan.notes["variant"] = "delay-to-avoid-collisions"
        return plan
