"""Generic ETR-greedy broadcast protocol.

The paper's stated selection principle — "we will choose the node which
has a higher ETR as the relay node" — applied with *no* topology-specific
structure at all: the relay plan starts empty and the schedule compiler's
completion phase grows the relay set greedily, always promoting the
informed node whose transmission covers the most still-uninformed
neighbours.

This is both

* a **baseline for the ablation** "how much do the hand-crafted Section 3
  rules buy over pure greedy selection?" (benchmarked in
  ``benchmarks/test_ablation_greedy_vs_designed.py``), and
* a **fallback protocol for lattices the paper does not cover** (the
  hexagonal 2D-6 mesh, random-disk deployments, faulty topologies).

It inherits the compiler's guarantees: the result is collision-checked
and reaches 100 % of the (connected) network.
"""

from __future__ import annotations

from ...topology.base import Topology
from ..base import BroadcastProtocol, CompiledBroadcast, RelayPlan


class GreedyETRProtocol(BroadcastProtocol):
    """Relay selection by pure ETR-greedy completion (no lattice rules)."""

    name = "greedy-etr"

    def supports(self, topology: Topology) -> bool:
        return True  # works on any topology

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not topology.contains(source):
            raise ValueError(f"source {source} not in {topology!r}")
        plan = RelayPlan.empty(topology.num_nodes)
        plan.notes = {"source": tuple(source), "strategy": "greedy-etr"}
        return plan

    def compile(self, topology: Topology, source, *,
                completion: bool = True, repair: bool = True
                ) -> CompiledBroadcast:
        if not completion:
            raise ValueError(
                "GreedyETRProtocol is built on the completion phase; "
                "completion=False would broadcast nothing")
        return super().compile(topology, source, completion=True,
                               repair=repair)
