"""Probabilistic (gossip) flooding baseline.

Each node relays with probability ``p`` — the classic randomised
counterpart to the paper's deterministic relay selection.  Gossip trades
reachability for transmissions: at low ``p`` it saves energy but leaves
nodes uninformed; the paper's protocols dominate it on regular lattices
because they exploit the known geometry.

Deterministic given the seed, so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from ...topology.base import Topology
from ..base import BroadcastProtocol, RelayPlan


class GossipProtocol(BroadcastProtocol):
    """Relay with probability *p* (seeded, reproducible)."""

    name = "gossip"

    def __init__(self, p: float = 0.7, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def supports(self, topology: Topology) -> bool:
        return True

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not topology.contains(source):
            raise ValueError(f"source {source} not in {topology!r}")
        n = topology.num_nodes
        rng = np.random.default_rng(self.seed)
        plan = RelayPlan.empty(n)
        plan.relay_mask = rng.random(n) < self.p
        # The source always originates; flagging it keeps the mask honest
        # for relay-count accounting.
        plan.relay_mask[topology.index(source)] = True
        plan.notes = {"source": tuple(source), "p": self.p,
                      "seed": self.seed}
        return plan
