"""Baseline and ablation protocols."""

from .delayed import DelayedMesh2D4Protocol
from .flooding import FloodingProtocol, StaggeredFloodingProtocol
from .gossip import GossipProtocol
from .greedy import GreedyETRProtocol

__all__ = [
    "FloodingProtocol",
    "StaggeredFloodingProtocol",
    "GossipProtocol",
    "GreedyETRProtocol",
    "DelayedMesh2D4Protocol",
]
