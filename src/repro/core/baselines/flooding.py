"""Blind-flooding baseline.

"In traditional broadcasting protocols, almost all the nodes need to
forward the data and thus cause severe collisions" (Section 3).  Blind
flooding makes *every* node a relay: each transmits exactly once, one slot
after its first successful reception.

Under the collision model this is both wasteful (every interior node
transmits, most receptions are duplicates) and unreliable (synchronised
neighbour transmissions collide and can starve nodes permanently).  Run it
with ``compile(..., completion=False, repair=False)`` to measure the raw
behaviour, or with repairs enabled to see the price of making flooding
reliable.
"""

from __future__ import annotations

import numpy as np

from ...topology.base import Topology
from ..base import BroadcastProtocol, RelayPlan


class FloodingProtocol(BroadcastProtocol):
    """Every node relays once (classic blind flooding)."""

    name = "flooding"

    def supports(self, topology: Topology) -> bool:
        return True  # flooding runs on anything

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not topology.contains(source):
            raise ValueError(f"source {source} not in {topology!r}")
        plan = RelayPlan.empty(topology.num_nodes)
        plan.relay_mask[:] = True
        plan.notes = {"source": tuple(source)}
        return plan


class StaggeredFloodingProtocol(BroadcastProtocol):
    """Flooding with a deterministic per-node slot stagger.

    Each node delays its (single) relay transmission by ``hash mod phases``
    extra slots, a common practical collision-mitigation for flooding.
    Fewer collisions than blind flooding, at the cost of delay — a useful
    midpoint between blind flooding and the paper's compiled schedules.
    """

    name = "staggered-flooding"

    def __init__(self, phases: int = 3) -> None:
        if phases < 1:
            raise ValueError("phases must be >= 1")
        self.phases = int(phases)

    def supports(self, topology: Topology) -> bool:
        return True

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not topology.contains(source):
            raise ValueError(f"source {source} not in {topology!r}")
        n = topology.num_nodes
        plan = RelayPlan.empty(n)
        plan.relay_mask[:] = True
        # Deterministic stagger from the node index; index-hashing is
        # reproducible across runs (no randomness).
        plan.extra_delay = (np.arange(n, dtype=np.int64) * 2654435761
                            % self.phases)
        plan.notes = {"source": tuple(source), "phases": self.phases}
        return plan
