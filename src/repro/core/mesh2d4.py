"""Broadcasting protocol for the 2D mesh with 4 neighbours (Section 3.1).

Relay structure (source ``(i, j)``):

* the source first scatters along its **X axis**: every node of row ``j``
  relays, so the message sweeps left and right one hop per slot;
* every third column — ``x = i + 3k`` — relays along its **Y axis**; each
  column's transmissions cover columns ``x-1, x, x+1``, so spacing 3 tiles
  the mesh with most relays at the optimal ETR of 3/4;
* **border rule**: if the outermost relay column leaves column 1 (or m)
  uncovered (i.e. column 2 / m-1 is not a relay column), column 1 (or m)
  becomes a relay column itself;
* **designated retransmitters**: the simultaneous start of column
  ``i + 3k`` and the X-axis wave collides at ``(i+1+3k, j±1)`` (and the
  mirrored nodes on the left).  Rather than delaying anyone, the paper
  lets the collision happen and has the X-axis nodes ``(i+1+3k, j)`` and
  ``(i-1-3k, j)`` retransmit in the next slot.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..topology.mesh2d import Mesh2D4
from ..topology.base import Topology
from .base import BroadcastProtocol, RelayPlan


def relay_columns(m: int, i: int) -> List[int]:
    """The relay columns for a width-*m* mesh with source column *i*:
    ``x ≡ i (mod 3)`` plus the paper's border completion."""
    cols = [x for x in range(1, m + 1) if (x - i) % 3 == 0]
    # Border rule: node (1, y) becomes a relay iff (2, y) is not one.
    if 1 not in cols and 2 not in cols:
        cols.insert(0, 1)
    # Mirrored rule on the right border.
    if m not in cols and m - 1 not in cols:
        cols.append(m)
    return cols


def retransmitter_columns(m: int, i: int) -> List[int]:
    """X-axis nodes designated to retransmit: ``x = i+1+3k`` to the right
    and ``x = i-1-3k`` to the left (k >= 0)."""
    right = [x for x in range(i + 1, m + 1) if (x - i) % 3 == 1]
    left = [x for x in range(1, i) if (i - x) % 3 == 1]
    return sorted(left + right)


class Mesh2D4Protocol(BroadcastProtocol):
    """The paper's 2D-4 broadcast protocol."""

    name = "2D-4"

    def source_class_key(self, topology: Topology, source):
        """Symmetry class of *source*: column residue mod 3 (the relay
        column period) plus per-axis border distances clamped at the
        border rules' reach — the x border rule inspects columns
        ``{1, 2, m-1, m}`` (radius 2); the y axis has no border rule, so
        only at-border vs interior matters (radius 1)."""
        if not isinstance(topology, Mesh2D4) \
                or not topology.contains(tuple(source)):
            return None
        i, j = source
        m, n = topology.m, topology.n
        return ("2D-4", i % 3,
                min(i - 1, 2), min(m - i, 2),
                min(j - 1, 1), min(n - j, 1))

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not isinstance(topology, Mesh2D4):
            raise TypeError(f"expected Mesh2D4, got {type(topology).__name__}")
        i, j = source
        if not topology.contains((i, j)):
            raise ValueError(f"source {source} not in {topology!r}")
        m, n = topology.m, topology.n

        plan = RelayPlan.empty(topology.num_nodes)
        # Row-major (y, x) view of the flat mask: whole-row / whole-column
        # rules become slice assignments instead of per-node index() calls.
        mask2d = plan.relay_mask.reshape(n, m)

        # X-axis: the whole source row relays.
        mask2d[j - 1, :] = True

        # Y-axis relay columns every 3, with the border rule.
        cols = relay_columns(m, i)
        mask2d[:, [x - 1 for x in cols]] = True

        # Designated retransmitters on the X axis.
        retrans = retransmitter_columns(m, i)
        row_base = (j - 1) * m
        repeats: Dict[int, Tuple[int, ...]] = {
            row_base + (x - 1): (1,) for x in retrans}
        plan.repeat_offsets = repeats
        plan.notes = {
            "source": (i, j),
            "row": j,
            "columns": cols,
            "retransmitter_columns": retrans,
        }
        return plan
