"""Region partition for the 2D-3 broadcasting protocol (Section 3.3, Fig 8).

The 2D-3 protocol divides the mesh into three regions around the source
``(i, j)``:

1. Two *base nodes* ``a`` and ``b`` are picked on the source's column:
   if ``(i, j-1)`` is the source's (vertical) neighbour then
   ``a = (i, j-2)`` and ``b = (i, j+1)``, otherwise ``a = (i, j-1)`` and
   ``b = (i, j+2)``.
2. Region 2 is the downward cone under ``a``:
   ``x + y <= i_a + j_a`` and ``x - y >= i_a - j_a``.
3. Region 3 is the upward cone above ``b``:
   ``x + y >= i_b + j_b`` and ``x - y <= i_b - j_b``.
4. Region 1 is everything else.

Relay staircases seeded on the source row sweep diagonally; the regions
decide which staircase family (B1 or B2) continues through the cones so the
two families never fight over the same territory (rules R1-R4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..topology.coords import Coord2D
from ..topology.mesh2d import Mesh2D3


@dataclass(frozen=True)
class RegionPartition:
    """The base nodes and region predicates for a 2D-3 source."""

    source: Coord2D
    base_a: Coord2D
    base_b: Coord2D

    def region_of(self, coord: Coord2D) -> int:
        """Region number (1, 2 or 3) of *coord*.

        Region 2 is checked first, then region 3, mirroring the paper's
        "Otherwise, if ... Otherwise region 1" phrasing.
        """
        x, y = coord
        ia, ja = self.base_a
        ib, jb = self.base_b
        if x + y <= ia + ja and x - y >= ia - ja:
            return 2
        if x + y >= ib + jb and x - y <= ib - jb:
            return 3
        return 1


def base_nodes(mesh: Mesh2D3, source: Coord2D) -> Tuple[Coord2D, Coord2D]:
    """Compute the two base nodes ``(a, b)`` for *source* per Section 3.3.

    Note the paper uses the *lattice* notion of neighbour here (whether the
    node below is the source's vertical neighbour), which we evaluate on
    the unbounded brick lattice so that border sources still get a
    well-defined partition.
    """
    i, j = source
    down_is_neighbor = not mesh.has_up_neighbor(source)
    if down_is_neighbor:
        return ((i, j - 2), (i, j + 1))
    return ((i, j - 1), (i, j + 2))


def partition(mesh: Mesh2D3, source: Coord2D) -> RegionPartition:
    """Build the :class:`RegionPartition` for *source*."""
    if not mesh.contains(source):
        raise ValueError(f"source {source} not in {mesh!r}")
    a, b = base_nodes(mesh, source)
    return RegionPartition(source=tuple(source), base_a=a, base_b=b)
