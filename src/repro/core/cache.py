"""Compiled-schedule cache (LRU-bounded memory tier + sharded disk store).

Compilation is deterministic — the same ``(topology, source, protocol,
options)`` always produces the same schedule — so sweeps that revisit the
same sources (Tables 3, 4 and 5 all derive from one full source sweep per
topology) can reuse one compilation instead of redoing the rule ->
completion -> repair fixpoint each time.

The cache key is a SHA-256 over the topology *fingerprint* (a digest of
its CSR adjacency — see :attr:`repro.topology.base.Topology.fingerprint`),
the 0-based source index, the protocol name, and the compile options.
Keying on the adjacency digest rather than the topology label means two
differently-built but identical graphs share entries, while any structural
change (shape, spacing, wrap-around...) invalidates them.

Two tiers:

* **in-memory** — per-:class:`ScheduleCache` LRU holding the full
  :class:`~repro.core.base.CompiledBroadcast` objects; hits are free.
  ``max_entries`` bounds it so a long-lived process (``repro serve``)
  does not grow without bound; evictions are counted.
* **on-disk** (optional ``path=`` / ``store=``) — the fingerprint-sharded
  :class:`~repro.core.store.ArtifactStore`: entries grouped into
  per-(topology, protocol) shard files, schedules in a binary
  memory-mapped layout, and precomputed broadcast *counts* persisted with
  every entry.  A warm metrics query (:meth:`cached_metrics`) is answered
  straight from the stored counts — no replay, no fixpoint; rebuilding a
  full :class:`CompiledBroadcast` (when a caller needs the trace) replays
  the stored schedule, which for a valid compiled schedule reproduces the
  authoritative trace exactly and doubles as the differential
  verification path for the stored counts.

Worker processes of a parallel sweep share one store directory: whichever
worker compiles a source first publishes it (atomic single-writer shard
updates), and later runs — the "warm" path of ``benchmarks/perf_sweep.py``
— skip compilation *and* replay entirely.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..sim.engine import replay
from ..sim.metrics import BroadcastMetrics, compute_metrics
from ..topology.base import Topology
from .base import BroadcastProtocol, CompiledBroadcast
from .store import ArtifactStore, class_profile_hash, trace_counts

#: Kept for backward compatibility: the sharded store's format version.
from .store import STORE_FORMAT_VERSION as DISK_FORMAT_VERSION  # noqa: F401


def schedule_cache_key(topology: Topology, protocol_name: str,
                       source_index: int, *,
                       completion: bool = True,
                       repair: bool = True) -> str:
    """Deterministic cache key for one compilation."""
    h = hashlib.sha256()
    h.update(topology.fingerprint.encode("ascii"))
    h.update(f"|{protocol_name}|{source_index}"
             f"|c{int(completion)}|r{int(repair)}".encode("ascii"))
    return h.hexdigest()


def class_profile_key(topology: Topology, protocol_name: str,
                      class_key: Tuple, *,
                      completion: bool = True,
                      repair: bool = True) -> str:
    """Deterministic cache key for one source-equivalence-class profile."""
    return class_profile_hash(topology.fingerprint, protocol_name,
                              class_key, completion=completion,
                              repair=repair)


class ScheduleCache:
    """Two-tier cache of compiled broadcast schedules.

    Parameters
    ----------
    path:
        Optional directory for the persistent tier (a sharded
        :class:`~repro.core.store.ArtifactStore`); created on first write.
    store:
        Alternatively, an already-open :class:`ArtifactStore` to share.
    max_entries:
        Optional cap on the in-memory tier; least-recently-used entries
        are evicted once the cap is exceeded (``None`` = unbounded, the
        right choice for one-shot sweeps; long-lived services pass a cap).

    Attributes
    ----------
    hits / misses / evictions:
        Counters over this instance's lookups (memory and disk hits both
        count as hits; ``disk_hits`` counts the subset served from the
        store).

    Besides per-source compilations, the cache holds a *class-keyed tier*
    of compile profiles for symmetry-reduced sweeps
    (:mod:`repro.core.symmetry`): one tiny record per source-equivalence
    class (did the class representative need completion/repair fixes, and
    how many rounds) that lets a warm sweep pick the batched execution
    mode for a whole class without compiling its representative first.
    Profiles are predictions, never answers — every class member's result
    is still produced (and verified reached) by the engine, so a stale or
    wrong profile costs a fallback, not correctness.

    Thread safety: the async service runtime serves per-class query
    groups concurrently on executor threads, all sharing one cache, so
    every public method guards the LRU dicts, counters and store calls
    with an internal re-entrant lock.  The slow fixpoint compile in
    :meth:`get_or_compile` deliberately runs *outside* the lock — that is
    the whole point of concurrent groups.  Two threads racing to compile
    the same key would simply both compile and last-write-wins, which is
    harmless because compilation is deterministic (in the service this
    cannot even happen: concurrent groups never share a query).
    """

    def __init__(self, path: Optional[os.PathLike] = None, *,
                 store: Optional[ArtifactStore] = None,
                 max_entries: Optional[int] = None) -> None:
        if path is not None and store is not None:
            raise ValueError("pass either path= or store=, not both")
        self.store: Optional[ArtifactStore] = (
            store if store is not None
            else ArtifactStore(path) if path is not None else None)
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._mem: "OrderedDict[str, CompiledBroadcast]" = OrderedDict()
        self._class_mem: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        #: Store operations that raised and were degraded to a miss
        #: (reads) or a skipped publish (writes).  A flaky or torn disk
        #: tier costs warmth, never answers: compilation is
        #: deterministic, so everything the store would have served can
        #: be recomputed.
        self.store_errors = 0

    @property
    def path(self):
        """Store directory (``None`` for a memory-only cache)."""
        return None if self.store is None else self.store.path

    # -- public API -------------------------------------------------------

    def get_or_compile(self, protocol: BroadcastProtocol,
                       topology: Topology, source, *,
                       completion: bool = True,
                       repair: bool = True) -> CompiledBroadcast:
        """Return the cached compilation, or compile and cache it."""
        source_index = topology.index(source)
        key = schedule_cache_key(
            topology, protocol.name, source_index,
            completion=completion, repair=repair)

        with self._lock:
            cached = self._mem.get(key)
            if cached is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return cached

            if self.store is not None:
                cached = self._store_call(
                    self._load_store, protocol, topology, source,
                    source_index, completion, repair)
                if cached is not None:
                    self._remember(key, cached)
                    self.hits += 1
                    self.disk_hits += 1
                    return cached

            self.misses += 1
        # Plain compile (no cache=) — get_or_compile is the only caching
        # layer, so the delegation cannot recurse.  Runs unlocked so
        # concurrent service groups compile in parallel.
        compiled = protocol.compile(
            topology, source, completion=completion, repair=repair)
        with self._lock:
            self._remember(key, compiled)
            if self.store is not None:
                self._store_call(
                    self.store.put,
                    topology, protocol.name, source_index,
                    completion=completion, repair=repair,
                    schedule=compiled.schedule,
                    counts=trace_counts(compiled.trace),
                    completions=compiled.completions,
                    repairs=compiled.repairs, rounds=compiled.rounds)
        return compiled

    def cached_metrics(self, protocol: BroadcastProtocol,
                       topology: Topology, source, *,
                       model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                       packet_bits: int = PAPER_PACKET_BITS,
                       completion: bool = True,
                       repair: bool = True) -> Optional[BroadcastMetrics]:
        """Warm-hit metrics, or ``None`` when the source isn't cached.

        This is the no-replay fast path: a memory hit reduces the cached
        trace, a store hit rebuilds the metrics from the persisted counts
        without touching the simulation engine at all.  Misses are *not*
        counted here — the caller falls through to
        :meth:`get_or_compile`, which counts them.
        """
        source_index = topology.index(source)
        key = schedule_cache_key(
            topology, protocol.name, source_index,
            completion=completion, repair=repair)
        with self._lock:
            cached = self._mem.get(key)
            if cached is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return compute_metrics(cached.trace, topology, model,
                                       packet_bits)
            if self.store is None:
                return None
            entry = self._store_call(
                self.store.get, topology, protocol.name, source_index,
                completion=completion, repair=repair)
            if entry is None:
                return None
            metrics = entry.metrics(topology, model, packet_bits)
            if metrics is None:  # legacy import without counts
                return None
            self.hits += 1
            self.disk_hits += 1
            return metrics

    def admit_member(self, protocol: BroadcastProtocol,
                     topology: Topology, member, *,
                     completion: bool = True,
                     repair: bool = True) -> None:
        """Persist one symmetry-class member result without a compile.

        Members carrying a full :class:`CompiledBroadcast` (class
        representatives, fixpoint/translated/fallback members) publish
        schedule + counts; summary-mode members publish counts only —
        enough to answer every metrics query warm.  *completion* /
        *repair* must be the options the class was compiled with — they
        pick the shard, so a member admitted under the wrong options
        would never be found by its own warm lookups.  No-op without a
        store.
        """
        if self.store is None:
            return
        from .store import summary_counts
        with self._lock:
            if member.compiled is not None:
                compiled = member.compiled
                self._store_call(
                    self.store.put,
                    topology, protocol.name, compiled.source,
                    completion=completion, repair=repair,
                    schedule=compiled.schedule,
                    counts=trace_counts(compiled.trace),
                    completions=compiled.completions,
                    repairs=compiled.repairs, rounds=compiled.rounds)
            elif member.first_rx is not None:
                self._store_call(
                    self.store.put,
                    topology, protocol.name, member.source_index,
                    completion=completion, repair=repair,
                    counts=summary_counts(member.first_rx, member.tx_count,
                                          member.rx_count,
                                          member.collisions))

    def class_profile(self, topology: Topology, protocol_name: str,
                      class_key: Tuple, *,
                      completion: bool = True,
                      repair: bool = True) -> Optional[dict]:
        """Cached compile profile of one source class, or ``None``."""
        key = class_profile_key(topology, protocol_name, class_key,
                                completion=completion, repair=repair)
        with self._lock:
            profile = self._class_mem.get(key)
            if profile is not None:
                return profile
            if self.store is None:
                return None
            profile = self._store_call(
                self.store.class_profile, topology, protocol_name, key,
                completion=completion, repair=repair)
            if profile is not None:
                self._class_mem[key] = profile
            return profile

    def store_class_profile(self, topology: Topology, protocol_name: str,
                            class_key: Tuple, profile: dict, *,
                            completion: bool = True,
                            repair: bool = True) -> None:
        """Record the compile profile of one source class."""
        key = class_profile_key(topology, protocol_name, class_key,
                                completion=completion, repair=repair)
        with self._lock:
            self._class_mem[key] = dict(profile)
            if self.store is not None:
                self._store_call(
                    self.store.store_class_profile,
                    topology, protocol_name, key, profile,
                    completion=completion, repair=repair)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``--cache-stats`` style reporting."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "memory_entries": len(self._mem),
                "max_entries": self.max_entries,
                "store_errors": self.store_errors,
            }

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        with self._lock:
            self._mem.clear()
            self._class_mem.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    # -- internals --------------------------------------------------------

    def _store_call(self, op, *args, **kwargs):
        """One disk-tier operation, failures degraded to ``None``.

        The persistent tier is an optimisation; a raising store (torn
        write, yanked filesystem, corrupt index) must cost a recompile,
        not the query.  Failed reads report a miss, failed writes skip
        the publish; both bump :attr:`store_errors` so operators can see
        the disk tier misbehaving in ``stats()``/``health``.
        """
        try:
            return op(*args, **kwargs)
        except Exception:
            self.store_errors += 1
            return None

    def _remember(self, key: str, compiled: CompiledBroadcast) -> None:
        self._mem[key] = compiled
        self._mem.move_to_end(key)
        if self.max_entries is not None:
            while len(self._mem) > self.max_entries:
                self._mem.popitem(last=False)
                self.evictions += 1

    def _load_store(self, protocol: BroadcastProtocol, topology: Topology,
                    source, source_index: int, completion: bool,
                    repair: bool) -> Optional[CompiledBroadcast]:
        entry = self.store.get(topology, protocol.name, source_index,
                               completion=completion, repair=repair)
        if entry is None or not entry.has_schedule:
            return None
        schedule = entry.schedule()
        # Replaying the stored schedule reproduces the authoritative
        # trace: identical transmitter sets per slot under the
        # deterministic collision model yield identical events and first
        # receptions.  This is also the verification path for the stored
        # counts (differentially tested in tests/test_store.py).
        trace = replay(topology, schedule, source_index)
        plan = protocol.relay_plan(topology, source)
        return CompiledBroadcast(
            topology_name=topology.name,
            source=source_index,
            schedule=schedule,
            trace=trace,
            plan=plan,
            completions=list(entry.completions),
            repairs=list(entry.repairs),
            rounds=entry.rounds,
        )
