"""Compiled-schedule cache (in-memory + optional on-disk).

Compilation is deterministic — the same ``(topology, source, protocol,
options)`` always produces the same schedule — so sweeps that revisit the
same sources (Tables 3, 4 and 5 all derive from one full source sweep per
topology) can reuse one compilation instead of redoing the rule ->
completion -> repair fixpoint each time.

The cache key is a SHA-256 over the topology *fingerprint* (a digest of
its CSR adjacency — see :attr:`repro.topology.base.Topology.fingerprint`),
the 0-based source index, the protocol name, and the compile options.
Keying on the adjacency digest rather than the topology label means two
differently-built but identical graphs share entries, while any structural
change (shape, spacing, wrap-around...) invalidates them.

Two tiers:

* **in-memory** — per-:class:`ScheduleCache` dict holding the full
  :class:`~repro.core.base.CompiledBroadcast` objects; hits are free.
* **on-disk** (optional ``path=``) — one JSON file per entry under the
  cache directory, written atomically (temp file + ``os.replace``).  Disk
  entries store only the *schedule* plus compile metadata; on a hit the
  trace is reconstructed by replaying the schedule through the simulation
  engine, which for a valid compiled schedule reproduces the authoritative
  trace exactly (replay executes the same transmitter sets in the same
  slots under the same deterministic collision model).

Worker processes of a parallel sweep can therefore share one disk cache:
whichever worker compiles a source first persists it, and later runs (the
"warm" path of ``benchmarks/perf_sweep.py``) skip compilation entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..sim.engine import replay
from ..sim.schedule import BroadcastSchedule
from ..topology.base import Topology
from .base import BroadcastProtocol, CompiledBroadcast

#: Bumped whenever the on-disk entry layout changes; stale-version files
#: are ignored (treated as misses) rather than mis-parsed.
DISK_FORMAT_VERSION = 1


def schedule_cache_key(topology: Topology, protocol_name: str,
                       source_index: int, *,
                       completion: bool = True,
                       repair: bool = True) -> str:
    """Deterministic cache key for one compilation."""
    h = hashlib.sha256()
    h.update(topology.fingerprint.encode("ascii"))
    h.update(f"|{protocol_name}|{source_index}"
             f"|c{int(completion)}|r{int(repair)}".encode("ascii"))
    return h.hexdigest()


def class_profile_key(topology: Topology, protocol_name: str,
                      class_key: Tuple, *,
                      completion: bool = True,
                      repair: bool = True) -> str:
    """Deterministic cache key for one source-equivalence-class profile."""
    h = hashlib.sha256()
    h.update(topology.fingerprint.encode("ascii"))
    h.update(f"|{protocol_name}|class|{class_key!r}"
             f"|c{int(completion)}|r{int(repair)}".encode("ascii"))
    return h.hexdigest()


class ScheduleCache:
    """Two-tier cache of compiled broadcast schedules.

    Parameters
    ----------
    path:
        Optional directory for the persistent tier.  Created on first
        write; entries are one JSON file per key.

    Attributes
    ----------
    hits / misses:
        Counters over this instance's :meth:`get_or_compile` calls
        (memory and disk hits both count as hits).

    Besides per-source compilations, the cache holds a *class-keyed tier*
    of compile profiles for symmetry-reduced sweeps
    (:mod:`repro.core.symmetry`): one tiny record per source-equivalence
    class (did the class representative need completion/repair fixes, and
    how many rounds) that lets a warm sweep pick the batched execution
    mode for a whole class without compiling its representative first.
    Profiles are predictions, never answers — every class member's result
    is still produced (and verified reached) by the engine, so a stale or
    wrong profile costs a fallback, not correctness.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path: Optional[Path] = Path(path) if path is not None else None
        if self.path is not None and self.path.exists() \
                and not self.path.is_dir():
            raise ValueError(
                f"schedule cache path {self.path} exists and is not a "
                f"directory")
        self._mem: Dict[str, CompiledBroadcast] = {}
        self._class_mem: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    # -- public API -------------------------------------------------------

    def get_or_compile(self, protocol: BroadcastProtocol,
                       topology: Topology, source, *,
                       completion: bool = True,
                       repair: bool = True) -> CompiledBroadcast:
        """Return the cached compilation, or compile and cache it."""
        source_index = topology.index(source)
        key = schedule_cache_key(
            topology, protocol.name, source_index,
            completion=completion, repair=repair)

        cached = self._mem.get(key)
        if cached is not None:
            self.hits += 1
            return cached

        if self.path is not None:
            cached = self._load_disk(key, protocol, topology, source)
            if cached is not None:
                self._mem[key] = cached
                self.hits += 1
                return cached

        self.misses += 1
        # Plain compile (no cache=) — get_or_compile is the only caching
        # layer, so the delegation cannot recurse.
        compiled = protocol.compile(
            topology, source, completion=completion, repair=repair)
        self._mem[key] = compiled
        if self.path is not None:
            self._store_disk(key, topology, protocol.name, source_index,
                             completion, repair, compiled)
        return compiled

    def class_profile(self, topology: Topology, protocol_name: str,
                      class_key: Tuple, *,
                      completion: bool = True,
                      repair: bool = True) -> Optional[dict]:
        """Cached compile profile of one source class, or ``None``."""
        key = class_profile_key(topology, protocol_name, class_key,
                                completion=completion, repair=repair)
        profile = self._class_mem.get(key)
        if profile is not None:
            return profile
        if self.path is None:
            return None
        try:
            with open(self.path / f"class-{key}.json", "r",
                      encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if (payload.get("version") != DISK_FORMAT_VERSION
                or payload.get("key") != key):
            return None
        profile = payload["profile"]
        self._class_mem[key] = profile
        return profile

    def store_class_profile(self, topology: Topology, protocol_name: str,
                            class_key: Tuple, profile: dict, *,
                            completion: bool = True,
                            repair: bool = True) -> None:
        """Record the compile profile of one source class."""
        key = class_profile_key(topology, protocol_name, class_key,
                                completion=completion, repair=repair)
        self._class_mem[key] = dict(profile)
        if self.path is None:
            return
        payload = {
            "version": DISK_FORMAT_VERSION,
            "key": key,
            "protocol": protocol_name,
            "class_key": repr(class_key),
            "profile": dict(profile),
        }
        self.path.mkdir(parents=True, exist_ok=True)
        target = self.path / f"class-{key}.json"
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path), prefix=f".class-{key[:16]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        self._mem.clear()
        self._class_mem.clear()

    def __len__(self) -> int:
        return len(self._mem)

    # -- disk tier --------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.json"

    def _store_disk(self, key: str, topology: Topology, protocol_name: str,
                    source_index: int, completion: bool, repair: bool,
                    compiled: CompiledBroadcast) -> None:
        payload = {
            "version": DISK_FORMAT_VERSION,
            "key": key,
            "topology": topology.name,
            "fingerprint": topology.fingerprint,
            "protocol": protocol_name,
            "source_index": source_index,
            "completion": completion,
            "repair": repair,
            "rounds": compiled.rounds,
            "completions": [list(e) for e in compiled.completions],
            "repairs": [list(e) for e in compiled.repairs],
            "schedule": {
                str(slot): sorted(compiled.schedule.transmitters(slot))
                for slot in compiled.schedule.active_slots()
            },
        }
        self.path.mkdir(parents=True, exist_ok=True)
        target = self._entry_path(key)
        # Atomic publish: concurrent writers (parallel sweep workers) race
        # benignly — both write identical content, os.replace is atomic.
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path), prefix=f".{key[:16]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_disk(self, key: str, protocol: BroadcastProtocol,
                   topology: Topology, source) -> Optional[CompiledBroadcast]:
        target = self._entry_path(key)
        try:
            with open(target, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if (payload.get("version") != DISK_FORMAT_VERSION
                or payload.get("key") != key
                or payload.get("fingerprint") != topology.fingerprint):
            return None

        schedule = BroadcastSchedule()
        for slot_str, nodes in payload["schedule"].items():
            slot = int(slot_str)
            for v in nodes:
                schedule.add(slot, int(v))
        source_index = int(payload["source_index"])
        # Replaying the stored schedule reproduces the authoritative trace:
        # identical transmitter sets per slot under the deterministic
        # collision model yield identical events and first receptions.
        trace = replay(topology, schedule, source_index)
        plan = protocol.relay_plan(topology, source)
        return CompiledBroadcast(
            topology_name=payload["topology"],
            source=source_index,
            schedule=schedule,
            trace=trace,
            plan=plan,
            completions=[_pair(e) for e in payload["completions"]],
            repairs=[_pair(e) for e in payload["repairs"]],
            rounds=int(payload["rounds"]),
        )


def _pair(entry: List[int]) -> Tuple[int, int]:
    node, slot = entry
    return (int(node), int(slot))
