"""Broadcasting protocol for the 2D mesh with 8 neighbours (Section 3.2).

In the 2D-8 mesh a *diagonal* hop is worth more than an axis hop: relaying
a message just received from a diagonal neighbour reaches 5 new nodes
(ETR 5/8) versus 3 (ETR 3/8) for an axis hop — the Fig. 6 argument.  The
protocol therefore builds its relay structure entirely out of diagonals:

* the two diagonals through the source, ``S1(i+j)`` and ``S2(i-j)``, are
  the basic relays;
* every fifth main diagonal, ``S2(i-j+5k)``, also relays.  A relaying S2
  diagonal covers the five diagonals ``c-2 .. c+2`` (its line sweep plus
  the diagonally adjacent nodes two diagonals away), so spacing 5 tiles
  the mesh exactly — which is why the paper picked 5;
* the S1 diagonal crosses every S2 diagonal and seeds the relay diagonals
  as its wave passes (no explicit coordination needed — the relays fire
  reactively on first reception);
* **designated retransmitters**: the source's four diagonal neighbours all
  fire in slot 2, colliding at the four axis nodes two hops out
  (``(i±2, j)``, ``(i, j±2)``).  Per the paper, ``(i+1, j-1)`` retransmits
  next slot (covering ``(i+2, j)`` and ``(i, j-2)``); symmetrically we let
  ``(i-1, j+1)`` fix the other two.  Collisions further out resolve
  themselves: the next S1 wavefront covers the collided nodes, exactly as
  the paper's ``(i+3, j-3)/(i+3, j-2)`` example explains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..topology import diagonal
from ..topology.base import Topology
from ..topology.mesh2d import Mesh2D8
from .base import BroadcastProtocol, RelayPlan


def relay_s2_values(mesh: Mesh2D8, i: int, j: int) -> List[int]:
    """S2 constants of the relay diagonals: ``i - j + 5k`` clipped to the
    grid's S2 range (paper: ``-n <= i-j+5k <= m``)."""
    lo, hi = diagonal.s2_range(mesh)
    base = i - j
    start = base - 5 * ((base - lo) // 5)
    return list(range(start, hi + 1, 5))


def border_continuation(mesh: Mesh2D8, i: int, j: int) -> List[tuple]:
    """Border relays that carry the seed wave past the S1 diagonal's ends.

    The S1 diagonal through the source seeds every S2 relay diagonal it
    passes; on elongated grids it is clipped by the border before reaching
    the outermost S2 diagonals (e.g. the paper's own 32x16 mesh with a
    central source).  Continuing the sweep along the border from each S1
    endpoint — the direct analogue of the 2D-4 protocol's border-column
    rule — seeds the rest.  Returns the border relay coordinates.
    """
    m, n = mesh.m, mesh.n
    c = i + j
    out: List[tuple] = []
    # Upper-left end of the in-grid S1 segment.
    x1, y1 = (c - n, n) if c - n >= 1 else (1, c - 1)
    if y1 == n:
        out.extend((x, n) for x in range(1, x1))
    if x1 == 1 and y1 < n:
        out.extend((1, y) for y in range(y1 + 1, n + 1))
    # Lower-right end of the in-grid S1 segment.
    x2, y2 = (c - 1, 1) if c - 1 <= m else (m, c - m)
    if y2 == 1:
        out.extend((x, 1) for x in range(x2 + 1, m + 1))
    if x2 == m and y2 > 1:
        out.extend((m, y) for y in range(1, y2))
    return out


class Mesh2D8Protocol(BroadcastProtocol):
    """The paper's 2D-8 broadcast protocol."""

    name = "2D-8"

    def source_class_key(self, topology: Topology, source):
        """Symmetry class of *source*: the ``S2 = i - j`` anti-diagonal
        residue mod 5 (the relay diagonal period) plus border distances
        clamped at radius 2 (the border-continuation rule and the
        staggered border delays react to the two outermost rows and
        columns)."""
        if not isinstance(topology, Mesh2D8) \
                or not topology.contains(tuple(source)):
            return None
        i, j = source
        m, n = topology.m, topology.n
        return ("2D-8", (i - j) % 5,
                min(i - 1, 2), min(m - i, 2),
                min(j - 1, 2), min(n - j, 2))

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not isinstance(topology, Mesh2D8):
            raise TypeError(f"expected Mesh2D8, got {type(topology).__name__}")
        i, j = source
        if not topology.contains((i, j)):
            raise ValueError(f"source {source} not in {topology!r}")

        plan = RelayPlan.empty(topology.num_nodes)

        # Basic relays: the anti-diagonal through the source.
        for coord in diagonal.s1_set(topology, i + j):
            plan.relay_mask[topology.index(coord)] = True

        # Relay diagonals: every fifth S2 diagonal (includes S2(i-j)).
        s2_values = relay_s2_values(topology, i, j)
        for c in s2_values:
            for coord in diagonal.s2_set(topology, c):
                plan.relay_mask[topology.index(coord)] = True

        # Border continuation of the S1 seed wave.  A continuation node
        # right after a relay-diagonal crossing would fire in the same slot
        # as the diagonal's first hop (both were seeded together) and the
        # two would collide one step further along the border; delaying the
        # continuation node one slot breaks the tie.
        border = border_continuation(topology, i, j)
        s2_set_values = set(s2_values)
        m, n = topology.m, topology.n
        for coord in border:
            idx = topology.index(coord)
            plan.relay_mask[idx] = True
            x, y = coord
            if y == 1 and x > 1:            # bottom sweep moves right
                prev = (x - 1, 1)
            elif y == n and x < m:          # top sweep moves left
                prev = (x + 1, n)
            elif x == 1 and y > 1:          # left sweep moves up
                prev = (1, y - 1)
            elif x == m and y < n:          # right sweep moves down
                prev = (m, y + 1)
            else:
                continue
            if (prev[0] - prev[1]) in s2_set_values:
                plan.extra_delay[idx] = 1

        # Designated retransmitters around the source.
        repeats: Dict[int, Tuple[int, ...]] = {}
        for coord in ((i + 1, j - 1), (i - 1, j + 1)):
            if topology.contains(coord):
                repeats[topology.index(coord)] = (1,)
        plan.repeat_offsets = repeats
        plan.notes = {
            "source": (i, j),
            "s1_value": i + j,
            "s2_values": s2_values,
            "border_continuation": border,
            "retransmitters": [c for c in ((i + 1, j - 1), (i - 1, j + 1))
                               if topology.contains(c)],
        }
        return plan
