"""Schedule auditing: the invariants every compiled broadcast must satisfy.

The paper's headline correctness claim is "our one-to-all broadcast
protocols can achieve 100% reachability".  We audit each compiled schedule
by *replaying it from scratch* (independently of the compiler's reactive
runs) and checking:

* **reachability** — every node decodes the message at least once;
* **causality** — no node transmits before the slot after its first
  successful reception (the source is exempt: it originates the message);
* **single-tx-per-slot** — guaranteed by the schedule container, rechecked;
* **accounting** — Tx/Rx/collision counts are internally consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..sim.engine import replay
from ..sim.schedule import BroadcastSchedule
from ..sim.trace import BroadcastTrace
from ..topology.base import Topology


class ScheduleError(AssertionError):
    """A compiled schedule violated a broadcast invariant."""


@dataclass
class ValidationReport:
    """Outcome of auditing one schedule."""

    ok: bool
    issues: List[str] = field(default_factory=list)
    trace: BroadcastTrace | None = None

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ScheduleError("; ".join(self.issues))


def validate_broadcast(topology: Topology, schedule: BroadcastSchedule,
                       source: int, *, expect_full_reach: bool = True
                       ) -> ValidationReport:
    """Replay *schedule* and audit the broadcast invariants."""
    issues: List[str] = []
    trace = replay(topology, schedule, source)

    # causality: a transmission in slot s requires first_rx < s.
    for slot, node in trace.tx_events:
        if node == source:
            continue
        fr = int(trace.first_rx[node])
        if fr < 0:
            issues.append(
                f"node {topology.coord(node)} transmits in slot {slot} "
                f"but never receives the message")
        elif fr >= slot:
            issues.append(
                f"node {topology.coord(node)} transmits in slot {slot} "
                f"before its first reception in slot {fr}")

    if expect_full_reach and not trace.all_reached:
        missing = [topology.coord(int(v)) for v in trace.unreached_nodes()]
        shown = ", ".join(str(c) for c in missing[:8])
        more = f" (+{len(missing) - 8} more)" if len(missing) > 8 else ""
        issues.append(
            f"{len(missing)} nodes never reached: {shown}{more}")

    if trace.num_tx != schedule.num_transmissions:
        issues.append(
            f"trace records {trace.num_tx} transmissions but the schedule "
            f"contains {schedule.num_transmissions}")

    # every non-source reached node must appear in the delivery tree
    tree = trace.delivery_tree()
    reached = int((trace.first_rx > 0).sum())
    if len(tree) != reached:
        issues.append(
            f"delivery tree has {len(tree)} entries for {reached} informed "
            f"nodes")

    return ValidationReport(ok=not issues, issues=issues, trace=trace)
