"""Symmetry-reduced compilation of source sweeps.

The paper's protocols are lattice-periodic: the 2D-4 relay pattern depends
on the source column only through ``i mod 3``, 2D-8 on the ``i - j mod 5``
anti-diagonal residue, 2D-3 on the mod-4 staircase seeding, 3D-6 on the
``(2, 1)/(-1, 2)`` Lee residue — plus, in every case, *border rules* that
react to how close the source pattern sits to the grid edge.  A full-grid
source sweep therefore contains only ``O(period x border-classes)``
genuinely distinct compile problems, yet ``sweep_sources`` used to run the
full simulate->fix fixpoint once per source.

This module groups sources into equivalence classes via the per-protocol
:meth:`~repro.core.base.BroadcastProtocol.source_class_key` and compiles
each class *once*:

* the **class representative** goes through the ordinary
  :func:`~repro.core.compiler.compile_broadcast` fixpoint (cached via
  :class:`~repro.core.cache.ScheduleCache`, which also stores the class
  *profile* — whether the class needed completion/repair fixes);
* the **members** are derived by the batched multi-source engine
  (:func:`~repro.sim.engine.run_reactive_multi`): a zero-fix class needs
  exactly one reactive wave per member, executed for the whole class in
  one vectorized slot loop (summary mode, no event tuples); a class whose
  representative needed fixes runs the *same* simulate->fix rounds as the
  serial compiler — same :func:`~repro.core.compiler._plan_fixes` planner,
  same pruning, same exit conditions — with each round's reactive waves
  batched across the class.

Exactness does **not** rest on the class key: every member's schedule is
produced by the identical algorithm the direct path runs (the batched
engine is trace-for-trace equal to the serial engine; the differential
suite pins this down), and members that defeat the class's zero-fix
prediction simply fall back to direct compilation.  The key only decides
*grouping* — a too-coarse key costs fallbacks, never wrong results.

Why not translate the representative's schedule to the members, as one
would on an infinite lattice?  Because on a finite grid a full-coverage
broadcast is never translation-equivariant: the border rules re-anchor
relay columns/diagonals at the edges, so two same-residue sources'
schedules differ exactly where the clamped border distances of the class
key say they may.  :func:`~repro.sim.translate.translate_compiled`
implements the exact translation with those soundness guards and is used
here opportunistically for sub-spanning broadcasts; spanning broadcasts
take the batched path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.engine import run_reactive_multi
from ..sim.metrics import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                           BroadcastMetrics, compute_metrics,
                           compute_metrics_from_counts)
from ..sim.translate import TranslationError, translate_compiled
from ..topology.base import Topology
from .base import BroadcastProtocol, CompiledBroadcast, RelayPlan
from .cache import ScheduleCache
from .compiler import (DEFAULT_MAX_ROUNDS, CompilationError, _plan_fixes,
                       _prune_dropped)

#: Upper bound on ``batch x num_nodes`` cells per batched run; classes
#: larger than this advance in sub-batches (bounds the (B, n) arrays).
MAX_BATCH_CELLS = 1 << 22


@dataclass
class ClassMemberResult:
    """Outcome of one source in a symmetry-reduced sweep.

    ``via`` records the execution path: ``"representative"`` (full
    fixpoint compile), ``"summary"`` (zero-fix class member, batched
    reactive wave, counts only), ``"fixpoint"`` (batched simulate->fix
    rounds), ``"translated"`` (exact sub-spanning translation),
    ``"fallback"`` (direct compile after a failed prediction) or
    ``"direct"`` (non-groupable source).  Counts-mode results carry the
    per-node arrays instead of a :class:`CompiledBroadcast`.
    """

    source_index: int
    via: str
    compiled: Optional[CompiledBroadcast] = None
    first_rx: Optional[np.ndarray] = None
    tx_count: Optional[np.ndarray] = None
    rx_count: Optional[np.ndarray] = None
    collisions: int = 0

    def metrics(self, topology: Topology,
                model=PAPER_RADIO_MODEL,
                packet_bits: int = PAPER_PACKET_BITS) -> BroadcastMetrics:
        """Paper metrics of this member (equal to the direct path's)."""
        if self.compiled is not None:
            return compute_metrics(
                self.compiled.trace, topology, model, packet_bits)
        return compute_metrics_from_counts(
            topology, self.source_index, self.first_rx, self.tx_count,
            self.rx_count, self.collisions, model, packet_bits)


def group_sources(topology: Topology, protocol: BroadcastProtocol,
                  sources: Sequence) -> Tuple[Dict[Tuple, List[int]],
                                              List[int]]:
    """Partition sweep positions into equivalence classes.

    Returns ``(groups, direct)``: *groups* maps each class key to the
    positions (indices into *sources*) of its members, in first-seen
    order; *direct* lists positions whose key is ``None`` (irregular
    topology / baseline protocol) — they take the per-source path.
    """
    groups: Dict[Tuple, List[int]] = {}
    direct: List[int] = []
    for pos, src in enumerate(sources):
        key = protocol.source_class_key(topology, src)
        if key is None:
            direct.append(pos)
        else:
            groups.setdefault(key, []).append(pos)
    return groups, direct


def _zero_fix(compiled: CompiledBroadcast) -> bool:
    return (compiled.rounds == 1 and not compiled.completions
            and not compiled.repairs)


def _plans_equal(a: RelayPlan, b: RelayPlan) -> bool:
    return (np.array_equal(a.relay_mask, b.relay_mask)
            and np.array_equal(a.extra_delay, b.extra_delay)
            and a.repeat_offsets == b.repeat_offsets)


def _member_chunks(positions: List[int], num_nodes: int) -> List[List[int]]:
    size = max(1, MAX_BATCH_CELLS // max(1, num_nodes))
    return [positions[i:i + size] for i in range(0, len(positions), size)]


def _finalize(topology: Topology, source_index: int, trace,
              plan: RelayPlan, completions, repairs,
              rounds: int) -> CompiledBroadcast:
    return CompiledBroadcast(
        topology_name=topology.name, source=source_index,
        schedule=trace.as_schedule(), trace=trace, plan=plan,
        completions=completions, repairs=repairs, rounds=rounds)


def _compile_fixpoint_batch(
    topology: Topology,
    source_indices: List[int],
    plans: List[RelayPlan],
    *,
    completion: bool = True,
    repair: bool = True,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> List[CompiledBroadcast]:
    """The serial compiler's simulate->fix loop, batched across sources.

    Member *b*'s sequence of rounds is identical to what
    :func:`~repro.core.compiler.compile_broadcast` runs for it alone:
    each round's reactive wave is trace-for-trace the serial engine's
    (batched across all still-active members), and the fix planner and
    dropped-forced pruning are the very same functions, so the produced
    :class:`CompiledBroadcast` is equal field for field.  Members leave
    the batch as they converge; stall/round-cap guards raise the same
    :class:`CompilationError` the serial path would.
    """
    n = topology.num_nodes
    nbr_sets = topology.neighbor_sets
    batch = len(source_indices)
    forced: List[Dict[int, set]] = [{} for _ in range(batch)]
    completions: List[List[Tuple[int, int]]] = [[] for _ in range(batch)]
    repairs: List[List[Tuple[int, int]]] = [[] for _ in range(batch)]
    prev_informed = [-1] * batch
    stall = [0] * batch
    results: List[Optional[CompiledBroadcast]] = [None] * batch
    active = list(range(batch))

    for round_no in range(1, max_rounds + 1):
        if not active:
            break
        traces = run_reactive_multi(
            topology,
            np.asarray([source_indices[b] for b in active]),
            np.stack([plans[b].relay_mask for b in active]),
            extra_delays=np.stack([plans[b].extra_delay for b in active]),
            repeat_offsets_list=[plans[b].repeat_offsets for b in active],
            forced_tx_list=[forced[b] for b in active])
        still_active = []
        for trace, b in zip(traces, active):
            _prune_dropped(trace, forced[b], completions[b], repairs[b])
            unreached = trace.unreached_nodes()
            if len(unreached) == 0 or (not completion and not repair):
                results[b] = _finalize(
                    topology, source_indices[b], trace, plans[b],
                    completions[b], repairs[b], round_no)
                continue
            informed_now = int((trace.first_rx >= 0).sum())
            if informed_now <= prev_informed[b]:
                stall[b] += 1
                if stall[b] > 24:
                    raise CompilationError(
                        f"no progress after {round_no} rounds on "
                        f"{topology.name} (source "
                        f"{topology.coord(source_indices[b])}): "
                        f"{len(unreached)} nodes unreached")
            else:
                stall[b] = 0
            prev_informed[b] = max(prev_informed[b], informed_now)
            added = _plan_fixes(
                topology, trace, forced[b], nbr_sets, unreached, plans[b],
                allow_completion=completion, allow_repair=repair)
            if not added:
                results[b] = _finalize(
                    topology, source_indices[b], trace, plans[b],
                    completions[b], repairs[b], round_no)
                continue
            for node, slot, kind in added:
                forced[b].setdefault(slot, set()).add(node)
                if kind == "completion":
                    completions[b].append((node, slot))
                else:
                    repairs[b].append((node, slot))
            still_active.append(b)
        active = still_active

    if active:
        raise CompilationError(
            f"schedule compilation exceeded {max_rounds} rounds on "
            f"{topology.name} (source "
            f"{topology.coord(source_indices[active[0]])})")
    return results


def compile_class(
    topology: Topology,
    protocol: BroadcastProtocol,
    class_key: Tuple,
    coords: Sequence,
    *,
    cache: Optional[ScheduleCache] = None,
    completion: bool = True,
    repair: bool = True,
) -> List[ClassMemberResult]:
    """Compile one equivalence class; results align with *coords*.

    The first coordinate acts as the class representative when no cached
    class profile exists; with a warm profile every member (representative
    included) takes the batched path and the class costs zero
    ``compile_broadcast`` calls.  *completion* / *repair* are the compile
    options applied uniformly to the whole class (profiles and cache
    entries are keyed on them, so option families never mix).
    """
    results: List[Optional[ClassMemberResult]] = [None] * len(coords)
    profile = None
    rep_compiled = None
    if cache is not None:
        profile = cache.class_profile(topology, protocol.name, class_key,
                                      completion=completion, repair=repair)
    if profile is None:
        rep_compiled = protocol.compile(topology, coords[0], cache=cache,
                                        completion=completion, repair=repair)
        profile = {"zero_fix": _zero_fix(rep_compiled),
                   "rounds": rep_compiled.rounds}
        if cache is not None:
            cache.store_class_profile(
                topology, protocol.name, class_key, profile,
                completion=completion, repair=repair)
        results[0] = ClassMemberResult(
            source_index=rep_compiled.source, via="representative",
            compiled=rep_compiled)
        members = list(range(1, len(coords)))
    else:
        members = list(range(len(coords)))

    # Opportunistic exact translation: only sub-spanning broadcasts can
    # pass the footprint guard, and the member's own rule-phase plan must
    # agree with the translated plan (border clipping may differ).
    if rep_compiled is not None and not rep_compiled.trace.all_reached:
        rep_coord = tuple(coords[0])
        for pos in list(members):
            delta = topology.coord_delta(rep_coord, tuple(coords[pos]))
            try:
                translated = translate_compiled(
                    topology, rep_compiled, delta)
            except TranslationError:
                continue
            if not _plans_equal(
                    translated.plan,
                    protocol.relay_plan(topology, coords[pos])):
                continue
            results[pos] = ClassMemberResult(
                source_index=translated.source, via="translated",
                compiled=translated)
            members.remove(pos)

    for chunk in _member_chunks(members, topology.num_nodes):
        if not chunk:
            continue
        plans = [protocol.relay_plan(topology, coords[p]) for p in chunk]
        src_idx = [topology.index(coords[p]) for p in chunk]
        if profile.get("zero_fix"):
            summary = run_reactive_multi(
                topology, np.asarray(src_idx),
                np.stack([p.relay_mask for p in plans]),
                extra_delays=np.stack([p.extra_delay for p in plans]),
                repeat_offsets_list=[p.repeat_offsets for p in plans],
                summary=True)
            reached = summary.all_reached
            for row, pos in enumerate(chunk):
                # An unreached member defeats the zero-fix prediction:
                # the serial compiler would enter its fix rounds, so hand
                # the source to the direct path.  With both fix phases
                # disabled the serial compiler finalises after the same
                # single wave, so the summary row *is* the answer.
                if reached[row] or (not completion and not repair):
                    results[pos] = ClassMemberResult(
                        source_index=src_idx[row], via="summary",
                        first_rx=summary.first_rx[row],
                        tx_count=summary.tx_count[row],
                        rx_count=summary.rx_count[row],
                        collisions=int(summary.collisions[row]))
                else:
                    compiled = protocol.compile(
                        topology, coords[pos], cache=cache,
                        completion=completion, repair=repair)
                    results[pos] = ClassMemberResult(
                        source_index=compiled.source, via="fallback",
                        compiled=compiled)
        else:
            for compiled, pos in zip(
                    _compile_fixpoint_batch(topology, src_idx, plans,
                                            completion=completion,
                                            repair=repair),
                    chunk):
                results[pos] = ClassMemberResult(
                    source_index=compiled.source, via="fixpoint",
                    compiled=compiled)
    return results


def sweep_compile(
    topology: Topology,
    protocol: BroadcastProtocol,
    sources: Sequence,
    *,
    cache: Optional[ScheduleCache] = None,
    completion: bool = True,
    repair: bool = True,
    progress=None,
) -> Optional[List[ClassMemberResult]]:
    """Symmetry-reduced compilation of a whole source sweep.

    Returns per-source results in input order, or ``None`` when no source
    is groupable (the caller should run the direct sweep).  Non-groupable
    sources inside an otherwise groupable sweep are compiled directly.
    """
    groups, direct = group_sources(topology, protocol, sources)
    if not groups:
        return None
    results: List[Optional[ClassMemberResult]] = [None] * len(sources)
    done, total = 0, len(sources)
    for class_key, positions in groups.items():
        coords = [sources[p] for p in positions]
        for pos, res in zip(positions,
                            compile_class(topology, protocol, class_key,
                                          coords, cache=cache,
                                          completion=completion,
                                          repair=repair)):
            results[pos] = res
        done += len(positions)
        if progress is not None:
            progress(done, total)
    for pos in direct:
        compiled = protocol.compile(topology, sources[pos], cache=cache,
                                    completion=completion, repair=repair)
        results[pos] = ClassMemberResult(
            source_index=compiled.source, via="direct", compiled=compiled)
        done += 1
        if progress is not None:
            progress(done, total)
    return results
