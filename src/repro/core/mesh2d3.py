"""Broadcasting protocol for the 2D mesh with 3 neighbours (Section 3.3).

The brick-wall mesh is the hardest of the four: with only one vertical
neighbour per node, pure rows/columns cannot tile the plane efficiently.
The protocol uses *staircases* — paired diagonals ``B1 = S1(c) ∪ S1(c-1)``
and ``B2 = S2(c) ∪ S2(c+1)`` (parities per the paper's rule) whose union is
a connected zig-zag path:

* **basic relays**: the whole source row plus the two staircases through
  the source, ``B1(i, j)`` and ``B2(i, j)``;
* staircases are seeded on the source row every 4 columns (``x = i + 4k``)
  — a staircase's transmissions cover a band 4 columns wide, so spacing 4
  tiles the mesh at the optimal ETR of 2/3;
* B1 staircases run up-left/down-right, B2 up-right/down-left; to stop the
  two families from fighting over territory the mesh is partitioned into
  3 regions (see :mod:`repro.core.regions`): region 1 takes B1 arms in the
  upper-right/lower-left quadrants and B2 arms in the upper-left/
  lower-right quadrants (rules R1/R2); the cones above (region 3) and
  below (region 2) the source take exactly one family each, picked by
  which half of the network the source sits in (rules R3/R4).

Two generalisations are needed for grids larger than the paper's figures
(DESIGN.md §2 and §5):

* **extended bands** — the ``i + 4k`` seeding is applied to *virtual*
  seed columns beyond the physical row, so the staircase bands tile the
  whole grid rather than only the part whose bands cross the source row;
* **liveness fallback** — bands that never cross the source row inside
  the grid cannot be seeded by the row sweep ("dead" bands); wherever a
  point's natural family has a dead band, the other family's live band is
  selected instead, so corner-source broadcasts still follow shortest
  paths.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..topology import diagonal
from ..topology.base import Topology
from ..topology.mesh2d import Mesh2D3
from .base import BroadcastProtocol, RelayPlan
from .regions import RegionPartition, partition


def staircase_seeds(m: int, n: int, i: int, j: int) -> List[int]:
    """Seed columns ``x = i + 4k``, including virtual off-grid seeds whose
    staircase bands still intersect the grid."""
    lo = min(3 - j, j - n) - 4
    hi = max(m + n + 1 - j, m + j - 1) + 4
    start = i - 4 * ((i - lo) // 4)
    return list(range(start, hi + 1, 4))


class Mesh2D3Protocol(BroadcastProtocol):
    """The paper's 2D-3 broadcast protocol (rules R1-R4, generalised)."""

    name = "2D-3"

    def source_class_key(self, topology: Topology, source):
        """Symmetry class of *source*: column residue mod 4 (the
        staircase seeding period), the brick-lattice parity ``(i+j) mod
        2`` (it flips every node's up/down neighbour, so plans of
        opposite parity are not translates), the side of the vertical
        region split (the R1-R4 partition is anchored at the source, not
        translation-invariant), and border distances clamped at radius
        2 (B1/B2 arms clip against the two outermost rows/columns)."""
        if not isinstance(topology, Mesh2D3) \
                or not topology.contains(tuple(source)):
            return None
        i, j = source
        m, n = topology.m, topology.n
        return ("2D-3", i % 4, (i + j) % 2,
                min(i - 1, 2), min(m - i, 2),
                min(j - 1, 2), min(n - j, 2))

    def relay_plan(self, topology: Topology, source) -> RelayPlan:
        if not isinstance(topology, Mesh2D3):
            raise TypeError(f"expected Mesh2D3, got {type(topology).__name__}")
        i, j = source
        if not topology.contains((i, j)):
            raise ValueError(f"source {source} not in {topology!r}")
        m, n = topology.m, topology.n

        part: RegionPartition = partition(topology, (i, j))
        seeds = staircase_seeds(m, n, i, j)

        # S1 / S2 constants of every seeded staircase band.  All seeds sit
        # (virtually) on the source row and share vertical parity (period 4
        # preserves the brick parity), so the value pairs are consistent.
        b1_values: Set[int] = set()
        b2_values: Set[int] = set()
        for x0 in seeds:
            b1_values.update(diagonal.b1_values(topology, (x0, j)))
            b2_values.update(diagonal.b2_values(topology, (x0, j)))
        # The source's own staircases are basic relays (selected in full).
        src_b1 = set(diagonal.b1_values(topology, (i, j)))
        src_b2 = set(diagonal.b2_values(topology, (i, j)))

        source_left = i <= m / 2

        # Liveness: a staircase band can only be seeded by the source-row
        # sweep if it crosses row j inside the grid.  When a point's
        # natural family (per rules R1-R4) has a dead band there, we fall
        # back to the other family's live band — the generalisation that
        # keeps corner-source broadcasts on shortest paths (DESIGN.md §2).
        def b1_pair_of(v: int) -> Tuple[int, int]:
            """The B1 pair {c, c-1} whose coverage [c-2, c+1] contains v."""
            anchor = sorted(diagonal.b1_values(topology, (i, j)))[1]
            offset = ((v - anchor + 2) % 4) - 2
            c = v - offset
            return (c, c - 1)

        def b2_pair_of(v: int) -> Tuple[int, int]:
            """The B2 pair {c, c+1} whose coverage [c-1, c+2] contains v."""
            anchor = sorted(diagonal.b2_values(topology, (i, j)))[0]
            offset = ((v - anchor + 1) % 4) - 1
            c = v - offset
            return (c, c + 1)

        def b1_live(v: int) -> bool:
            return any(1 <= c - j <= m for c in b1_pair_of(v))

        def b2_live(v: int) -> bool:
            return any(1 <= c + j <= m for c in b2_pair_of(v))

        plan = RelayPlan.empty(topology.num_nodes)
        for idx in range(topology.num_nodes):
            x, y = topology.coord(idx)
            if y == j:
                plan.relay_mask[idx] = True  # the source row
                continue
            in_b1 = (x + y) in b1_values and b1_live(x + y)
            in_b2 = (x - y) in b2_values and b2_live(x - y)
            if not (in_b1 or in_b2):
                continue
            if ((x + y) in src_b1 and in_b1) or ((x - y) in src_b2
                                                 and in_b2):
                plan.relay_mask[idx] = True  # basic staircases, in full
                continue
            region = part.region_of((x, y))
            if region == 1:
                upper_right = x >= i and y >= j
                lower_left = x <= i and y <= j
                natural_b1 = upper_right or lower_left
            elif region == 3:
                natural_b1 = source_left        # rules R3/R4, upward cone
            else:
                natural_b1 = not source_left    # region 2, downward cone
            if natural_b1:
                if in_b1:                               # rule R1/R3/R4
                    plan.relay_mask[idx] = True
                elif in_b2 and not b1_live(x + y):      # liveness fallback
                    plan.relay_mask[idx] = True
            else:
                if in_b2:                               # rule R2/R3/R4
                    plan.relay_mask[idx] = True
                elif in_b1 and not b2_live(x - y):      # liveness fallback
                    plan.relay_mask[idx] = True

        # Collision staggering: B1 and B2 arms propagate in lockstep from
        # the source row and collide wherever they cross.  Delaying every
        # B2 arm by one slot *at its first step off the row* gives the B2
        # family a constant one-slot offset (it does not accumulate along
        # the arm, so delay stays near-optimal) and breaks the ties — the
        # same staggering device the paper applies to the 3D-6 z-relays.
        for idx in range(topology.num_nodes):
            if not plan.relay_mask[idx]:
                continue
            x, y = topology.coord(idx)
            if abs(y - j) != 1:
                continue
            # only the arm's entry node: its vertical edge goes to the row
            if y + Mesh2D3.vertical_neighbor_offset(x, y) != j:
                continue
            if (x - y) in b2_values and (x + y) not in b1_values:
                plan.extra_delay[idx] = 1

        plan.notes = {
            "source": (i, j),
            "seeds": seeds,
            "b1_values": sorted(b1_values),
            "b2_values": sorted(b2_values),
            "base_a": part.base_a,
            "base_b": part.base_b,
            "source_left": source_left,
        }
        return plan
