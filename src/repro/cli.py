"""Command-line interface.

Examples::

    repro-wsn table 2                 # ideal case (paper Table 2)
    repro-wsn table 3 --stride 8      # best case, subsampled sources
    repro-wsn figure 5                # the Fig. 5 worked example
    repro-wsn broadcast 2D-4 --source 16 8
    repro-wsn sweep 3D-6 --stride 16
    repro-wsn topology 2D-3
    repro-wsn selfcheck
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import analysis, viz
from .core import (diagonal_vs_axis_etr, protocol_for,
                   validate_broadcast)
from .core.etr import OPTIMAL_ETR
from .topology import analyze, make_topology, paper_topologies
from .topology.builder import TOPOLOGY_CLASSES


def _topology_from_args(args) -> object:
    shape = tuple(args.shape) if getattr(args, "shape", None) else None
    return make_topology(args.label, shape=shape)


def _schedule_cache_from_args(args):
    path = getattr(args, "cache", None)
    cap = getattr(args, "cache_max_entries", None)
    if (path is None and cap is None
            and not getattr(args, "cache_stats", False)):
        return None
    from .core import ScheduleCache
    return ScheduleCache(path, max_entries=cap)


def _print_cache_stats(stats: dict) -> None:
    """The ``--cache-stats`` line: one parseable counters row."""
    cap = stats.get("max_entries")
    parts = [f"hits={stats['hits']}", f"misses={stats['misses']}",
             f"disk_hits={stats['disk_hits']}",
             f"evictions={stats['evictions']}",
             f"memory={stats['memory_entries']}"
             + (f"/{cap}" if cap is not None else "")]
    for key in ("queries", "batches", "coalesced", "compile_calls"):
        if key in stats:
            parts.append(f"{key}={stats[key]}")
    print("cache-stats: " + " ".join(parts))


def _warm_fleet(specs):
    """Parse ``--warm LABEL:MxN`` specs into (label, shape) pairs."""
    fleet = []
    for spec in specs or []:
        label, _, dims = spec.partition(":")
        if not dims:
            raise SystemExit(
                f"--warm expects LABEL:MxN[xL], got {spec!r}")
        fleet.append((label, tuple(int(d) for d in dims.split("x"))))
    return fleet


def _print_engine_decision(engine: str, topo, threads=None) -> None:
    """One line naming the tier that will actually run and why — the
    fallback rules are silent by design, so surface the decision."""
    if engine == "serial":
        print("engine: serial (one-trial reference loop)")
        return
    from .sim import resolve_engine
    tier, reason = resolve_engine(engine, topo.num_nodes, explain=True,
                                  threads=threads)
    note = "" if tier == engine else f" (requested {engine})"
    print(f"engine: {tier}{note} — {reason}")


def cmd_topology(args) -> int:
    topo = _topology_from_args(args)
    report = analyze(topo)
    print(analysis.render_kv(report.as_rows(), title=f"topology {topo.name}"))
    return 0


def cmd_table(args) -> int:
    n = args.number
    if n == 1:
        rows = [{"topology": lab, "optimal_ETR": str(f)}
                for lab, f in OPTIMAL_ETR.items()]
        print(analysis.render_table(
            rows, ["topology", "optimal_ETR"],
            title="Table 1: optimal ETRs of the four topologies"))
        return 0
    if n == 2:
        rows = analysis.table2_ideal()
        print(analysis.render_paper_comparison(
            rows, ["tx", "rx", "energy_J"],
            title="Table 2: ideal case (512 nodes)"))
        return 0
    if n in (3, 4, 5):
        schedule_cache = _schedule_cache_from_args(args)
        cache = analysis.SweepCache.compute(
            stride=args.stride, workers=args.workers,
            cache=schedule_cache,
            symmetry=args.symmetry)
        if n == 3:
            rows = analysis.table3_best(cache)
            title = "Table 3: our protocols, best case"
            metrics = ["tx", "rx", "energy_J"]
        elif n == 4:
            rows = analysis.table4_worst(cache)
            title = "Table 4: our protocols, worst case"
            metrics = ["tx", "rx", "energy_J"]
        else:
            rows = analysis.table5_delay(cache)
            title = "Table 5: maximum delay (slots)"
            metrics = ["ideal", "protocol"]
            flat = []
            for row in rows:
                flat.append({
                    "topology": row["topology"],
                    "ideal": row["ideal_max_delay"],
                    "protocol": row["protocol_max_delay"],
                    "paper": row["paper"],
                })
            rows = flat
        print(analysis.render_paper_comparison(rows, metrics, title=title))
        if args.cache_stats and schedule_cache is not None:
            _print_cache_stats(schedule_cache.stats())
        return 0
    print(f"unknown table {n}; the paper has tables 1-5", file=sys.stderr)
    return 2


#: The worked examples of the protocol figures: (topology label, shape,
#: source) as in the paper.
FIGURE_SETUPS = {
    5: ("2D-4", (16, 16), (6, 8)),
    7: ("2D-8", (14, 14), (5, 9)),
    8: ("2D-3", (20, 14), (10, 7)),
    9: ("3D-6", (16, 16, 4), (6, 8, 2)),
}


def cmd_figure(args) -> int:
    n = args.number
    if n == 6:
        diag, axis = diagonal_vs_axis_etr()
        print("Figure 6: ETR of a relay hop in the 2D-8 mesh")
        print(f"  along the diagonal : {diag} (paper: 5/8)")
        print(f"  along the X axis   : {axis} (paper: 3/8)")
        return 0
    if n not in FIGURE_SETUPS:
        print(f"unknown figure {n}; reproducible figures: 5, 6, 7, 8, 9",
              file=sys.stderr)
        return 2
    label, shape, source = FIGURE_SETUPS[n]
    topo = make_topology(label, shape=shape)
    compiled = protocol_for(topo).compile(topo, source)
    print(viz.summary_block(topo, compiled))
    print()
    print(viz.relay_map(topo, compiled))
    if args.svg:
        kwargs = {"label_first_rx": True}
        if label == "3D-6":
            kwargs = {"plane_z": source[2]}
        viz.save_broadcast_svg(args.svg, topo, compiled, **kwargs)
        print(f"\nSVG written to {args.svg}")
    return 0


def _default_center_source(topo):
    return tuple(
        max(1, s // 2) for s in (
            (topo.m, topo.n, topo.l) if topo.dims == 3
            else (topo.m, topo.n)))


def _recovery_from_args(args):
    """Build a RecoveryPolicy from ``--recovery*`` flags (None if off)."""
    if not getattr(args, "recovery", False):
        return None
    from .sim import RecoveryPolicy
    return RecoveryPolicy(
        timeout=args.recovery_timeout,
        max_retries=args.recovery_max_retries,
        backoff=args.recovery_backoff,
        suppression_k=args.recovery_suppression_k,
        election=not args.recovery_no_election)


def _add_recovery_flags(p) -> None:
    p.add_argument("--recovery", action="store_true",
                   help="enable the closed-loop recovery layer "
                        "(overhear-ACKs + timeout/backoff retransmission)")
    p.add_argument("--recovery-timeout", type=int, default=2,
                   help="slots a relay waits before checking coverage")
    p.add_argument("--recovery-max-retries", type=int, default=3,
                   help="retransmission budget per relay")
    p.add_argument("--recovery-backoff", type=int, default=2,
                   help="multiplicative timeout backoff between retries")
    p.add_argument("--recovery-suppression-k", type=int, default=2,
                   help="Trickle counter: cancel a pending retry after "
                        "overhearing k overlapping repairs (0 disables)")
    p.add_argument("--recovery-no-election", action="store_true",
                   help="disable the last-resort repair election")


def cmd_robustness(args) -> int:
    topo = _topology_from_args(args)
    source = (tuple(args.source) if args.source
              else _default_center_source(topo))
    recovery = _recovery_from_args(args)
    _print_engine_decision(args.engine, topo, args.threads)
    rows = []
    for p in analysis.loss_degradation(
            topo, source, args.loss_rates, trials=args.trials,
            harden=args.harden, seed=args.seed, workers=args.workers,
            engine=args.engine, recovery=recovery,
            threads=args.threads):
        rows.append({"impairment": f"loss p={p.parameter}",
                     "mean reach": round(p.mean_reachability, 3),
                     "min reach": round(p.min_reachability, 3),
                     "mean tx": round(p.mean_tx, 1)})
    for p in analysis.failure_degradation(
            topo, source, args.failures, trials=args.trials,
            recompile=args.recompile, seed=args.seed, workers=args.workers,
            cache=_schedule_cache_from_args(args), engine=args.engine,
            recovery=recovery, threads=args.threads):
        mode = "recompiled" if args.recompile else "static"
        rows.append({"impairment": f"{int(p.parameter)} dead ({mode})",
                     "mean reach": round(p.mean_reachability, 3),
                     "min reach": round(p.min_reachability, 3),
                     "mean tx": round(p.mean_tx, 1)})
    print(analysis.render_table(
        rows, ["impairment", "mean reach", "min reach", "mean tx"],
        title=f"robustness of {topo.name} broadcast from {source}"))
    return 0


def cmd_frontier(args) -> int:
    topo = _topology_from_args(args)
    source = (tuple(args.source) if args.source
              else _default_center_source(topo))
    _print_engine_decision(args.engine, topo, args.threads)
    points = analysis.recovery_frontier(
        topo, source, loss_rates=args.loss_rates,
        failure_counts=args.failures, trials=args.trials,
        hardening=args.hardening, seed=args.seed,
        workers=args.workers, engine=args.engine,
        threads=args.threads)
    rows = []
    for p in points:
        rows.append({"strategy": p.strategy,
                     "p": p.loss_rate,
                     "dead": p.failures,
                     "mean reach": round(p.mean_reachability, 3),
                     "p5 reach": round(p.p5_reach, 3),
                     "mean tx": round(p.mean_tx, 1),
                     "energy mJ": round(p.mean_energy_j * 1e3, 3),
                     "pareto": "*" if p.pareto else ""})
    print(analysis.render_table(
        rows, ["strategy", "p", "dead", "mean reach", "p5 reach",
               "mean tx", "energy mJ", "pareto"],
        title=(f"recovery frontier: {topo.name} from {source} "
               f"({args.trials} trials)")))
    return 0


def cmd_lifetime(args) -> int:
    topo = _topology_from_args(args)
    sources = ([tuple(args.source)] if args.source
               else [_default_center_source(topo)])
    if args.rotate:
        sources = sources + [tuple(c)
                             for c in analysis.corner_sources(topo)]
    _print_engine_decision(args.engine, topo, args.threads)
    res = analysis.simulate_lifetime(
        topo, sources, battery_j=args.battery,
        max_rounds=args.max_rounds, workers=args.workers,
        cache=_schedule_cache_from_args(args),
        loss_rate=args.loss, loss_trials=args.trials, seed=args.seed,
        engine=args.engine, threads=args.threads)
    channel = ("perfect" if args.loss is None
               else f"Bernoulli p={args.loss} ({args.trials} trials)")
    print(analysis.render_kv([
        ("topology", topo.name),
        ("sources (cycled)", len(sources)),
        ("channel", channel),
        ("rounds completed", res.rounds_completed),
        ("survived budget", res.survived_all_rounds),
        ("first death", res.first_death_node or "-"),
        ("energy imbalance", round(res.energy_imbalance(), 2)),
        ("mean residual J", f"{float(res.residual_energy_j.mean()):.3e}"),
    ], title=f"lifetime: {topo.name} battery={args.battery} J"))
    return 0


def cmd_scaling(args) -> int:
    from .analysis.scaling import scaling_curve, sizes_for
    sizes = args.sizes or sizes_for(args.label, args.ladder)
    points = scaling_curve(args.label, sizes=sizes,
                           workers=args.workers)
    print(analysis.render_table(
        [p.as_row() for p in points],
        ["topology", "nodes", "shape", "tx", "ideal_tx", "tx/ideal",
         "delay", "ideal_delay", "energy_J", "reach"],
        title=f"scaling study: {args.label}"))
    return 0


def cmd_broadcast(args) -> int:
    topo = _topology_from_args(args)
    source = tuple(args.source)
    compiled = protocol_for(topo).compile(topo, source)
    report = validate_broadcast(topo, compiled.schedule, topo.index(source))
    print(viz.summary_block(topo, compiled))
    print(f"schedule audit: {'OK' if report.ok else report.issues}")
    print()
    print(viz.relay_map(topo, compiled))
    if args.timeline:
        print()
        print(viz.slot_timeline(topo, compiled))
    return 0


def cmd_sweep(args) -> int:
    topo = _topology_from_args(args)
    sources = (None if args.stride == 1
               else analysis.strided_sources(topo, args.stride))
    schedule_cache = _schedule_cache_from_args(args)
    sweep = analysis.sweep_sources(
        topo, sources=sources, workers=args.workers,
        cache=schedule_cache, symmetry=args.symmetry)
    best = sweep.best_by_energy()
    worst = sweep.worst_by_energy()
    print(analysis.render_kv([
        ("topology", topo.name),
        ("sources swept", len(sweep)),
        ("all reached", sweep.all_reached()),
        ("best source", best.source),
        ("best tx/rx/energy",
         f"{best.tx}/{best.rx}/{best.energy_j:.3e}"),
        ("worst source", worst.source),
        ("worst tx/rx/energy",
         f"{worst.tx}/{worst.rx}/{worst.energy_j:.3e}"),
        ("max delay (slots)", sweep.max_delay()),
        ("mean tx", sweep.mean_tx()),
    ], title=f"source sweep: {topo.name}"))
    if args.cache_stats and schedule_cache is not None:
        _print_cache_stats(schedule_cache.stats())
    return 0


def _parse_hostport(value: str):
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _remote_query(args, query) -> int:
    from .service import RetryPolicy, ServiceClient
    host, port = _parse_hostport(args.connect)
    policy = RetryPolicy(attempts=max(1, args.retries))
    with ServiceClient(host, port, retry=policy) as client:
        response = client.query(query)
        if not response.get("ok"):
            print(f"error ({response.get('error_type', 'error')}): "
                  f"{response.get('error')}")
            return 1
        pairs = [("via", response.get("via"))]
        pairs += list(response.get("metrics", {}).items())
        pairs += [("retries", client.retries),
                  ("reconnects", client.reconnects)]
    print(analysis.render_kv(
        pairs, title=f"query: {query.topology} source {query.source} "
                     f"@ {host}:{port}"))
    schedule = response.get("schedule")
    if schedule is not None:
        print(f"schedule ({len(schedule)} transmissions):")
        for slot, node in schedule:
            print(f"  slot {slot:4d}  node {node}")
    return 0


def cmd_query(args) -> int:
    from .service import Query, QueryEngine, SyncRuntime
    query = Query(
        topology=args.label,
        source=tuple(args.source),
        shape=tuple(args.shape) if args.shape else None,
        protocol=args.protocol,
        include_schedule=args.schedule,
        timeout_ms=args.timeout_ms)
    if args.connect:
        return _remote_query(args, query)
    kwargs = {}
    if args.max_entries is not None:
        kwargs["max_entries"] = args.max_entries or None
    engine = QueryEngine(args.store, **kwargs)
    runtime = SyncRuntime(engine)
    result = runtime.query(query)
    row = result.metrics.as_row()
    pairs = [("via", result.via)]
    pairs += [(key, value) for key, value in row.items()]
    print(analysis.render_kv(
        pairs, title=f"query: {query.topology} source {query.source}"))
    if result.schedule is not None:
        print(f"schedule ({len(result.schedule)} transmissions):")
        for slot, node in result.schedule:
            print(f"  slot {slot:4d}  node {node}")
    if args.cache_stats:
        _print_cache_stats(engine.stats())
    return 0


def cmd_serve(args) -> int:
    from .service import QueryEngine
    from .service.server import run_server
    kwargs = {}
    if args.max_entries is not None:
        kwargs["max_entries"] = args.max_entries or None
    engine = QueryEngine(args.store, **kwargs)
    fleet = _warm_fleet(args.warm)
    if fleet:
        if args.store is None:
            raise SystemExit("--warm needs a persistent store (--store DIR)")
        summary = engine.warm(fleet)
        print(f"warmed {summary['entries']} entries across "
              f"{summary['shapes']} shape(s): {summary['classes']} classes, "
              f"{summary['compiles']} compiles")
    print(f"serving NDJSON queries on {args.host}:{args.port} "
          "(SIGTERM/Ctrl-C drains in-flight queries, "
          f"{args.drain_timeout:g} s budget)")
    run_server(engine, args.host, args.port,
               drain_timeout=args.drain_timeout)
    return 0


def cmd_health(args) -> int:
    from .service import ServiceClient
    host, port = _parse_hostport(args.connect)
    with ServiceClient(host, port, timeout=args.timeout) as client:
        health = client.health()
    if not health.get("ok"):
        print(f"error ({health.get('error_type', 'error')}): "
              f"{health.get('error')}")
        return 1
    engine = health.get("engine", {})
    native = health.get("native", {})
    store = health.get("store", {})
    breaker = health.get("breaker", {})
    pairs = [
        ("status", health.get("status")),
        ("queries", engine.get("queries")),
        ("shed", engine.get("shed")),
        ("rejected", engine.get("rejected")),
        ("queued", engine.get("queued")),
        ("compile calls", engine.get("compile_calls")),
        ("store shards", store.get("shards")),
        ("store path", store.get("path") or "(memory only)"),
        ("native available", native.get("available")),
        ("native reason", native.get("reason") or "-"),
    ]
    for tier in sorted(breaker):
        state = breaker[tier]
        label = "open" if state.get("open") else "closed"
        if state.get("open") and state.get("reason"):
            label += f" ({state['reason']})"
        pairs.append((f"breaker[{tier}]", label))
    print(analysis.render_kv(pairs, title=f"health @ {host}:{port}"))
    return 0


def cmd_store(args) -> int:
    from .core.store import ArtifactStore
    if args.action == "gc":
        store = ArtifactStore(args.store)
        stats = store.gc()
        print(analysis.render_kv([
            ("store", str(store.path)),
            ("shards compacted", stats["shards"]),
            ("live entries kept", stats["entries"]),
            ("unreadable entries dropped", stats["dropped"]),
            ("bytes before", stats["bytes_before"]),
            ("bytes after", stats["bytes_after"]),
            ("bytes reclaimed", stats["reclaimed"]),
        ], title="store gc"))
    return 0


def cmd_selfcheck(args) -> int:
    failures = 0
    for label, topo in paper_topologies().items():
        topo.validate()
        src = topo.coord(topo.num_nodes // 2 + 3)
        compiled = protocol_for(topo).compile(topo, src)
        report = validate_broadcast(
            topo, compiled.schedule, topo.index(src))
        status = "OK" if (report.ok and compiled.reached_all) else "FAIL"
        if status == "FAIL":
            failures += 1
        print(f"{label}: topology valid, broadcast from {src}: {status} "
              f"(tx={compiled.trace.num_tx}, "
              f"delay={compiled.trace.delay_slots})")
    print("selfcheck:", "PASS" if failures == 0 else f"{failures} failures")
    return 1 if failures else 0


def _add_cache_stat_flags(p) -> None:
    p.add_argument("--cache-max-entries", type=int, default=None,
                   metavar="N",
                   help="LRU bound on in-memory cached schedules "
                        "(oldest entries evicted beyond it)")
    p.add_argument("--cache-stats", action="store_true",
                   help="print a hit/miss/eviction counters line at the "
                        "end of the run")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description=("Broadcast protocols for regular WSNs "
                     "(ICPP 2003 reproduction)"))
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="structural census of a topology")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("table", help="reproduce a paper table (1-5)")
    p.add_argument("number", type=int)
    p.add_argument("--stride", type=int, default=8,
                   help="source subsampling for tables 3-5 (1 = exhaustive)")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel sweep processes (results identical to "
                        "serial)")
    p.add_argument("--cache", metavar="DIR", default=None,
                   help="schedule-cache directory shared across runs")
    p.add_argument("--symmetry", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force (--symmetry) or disable (--no-symmetry) "
                        "the symmetry-reduced sweep; default auto-enables "
                        "it whenever the protocol can group sources into "
                        "translation classes (identical results either "
                        "way)")
    _add_cache_stat_flags(p)
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("figure", help="reproduce a paper figure (5-9)")
    p.add_argument("number", type=int)
    p.add_argument("--svg", metavar="PATH", default=None,
                   help="also render the figure as an SVG file")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("robustness",
                       help="loss/failure degradation (extension)")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--source", type=int, nargs="+", default=None)
    p.add_argument("--loss-rates", type=float, nargs="+",
                   default=[0.0, 0.05, 0.1])
    p.add_argument("--failures", type=int, nargs="+", default=[0, 10])
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--harden", type=int, default=0)
    p.add_argument("--recompile", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine",
                   choices=["batch", "packed", "compiled", "auto",
                            "serial"],
                   default="batch",
                   help="trial execution: batched Monte-Carlo (default), "
                        "its bit-packed / compiled slot-resolve tiers "
                        "(auto = best available), or the equivalent "
                        "serial per-trial loop — all "
                        "produce identical curves")
    p.add_argument("--workers", type=int, default=None,
                   help="processes: batched engines shard the trial "
                        "dimension of each point, serial fans sweep "
                        "points out (results identical either way)")
    p.add_argument("--threads", type=int, default=None,
                   help="compiled-tier kernel threads per process "
                        "(default: all cores standalone, 1 inside "
                        "--workers shards; results identical at any "
                        "width)")
    p.add_argument("--cache", metavar="DIR", default=None,
                   help="schedule-cache directory shared across runs")
    _add_recovery_flags(p)
    p.set_defaults(func=cmd_robustness)

    p = sub.add_parser("frontier",
                       help="blind hardening vs closed-loop recovery "
                            "Pareto sweep (extension)")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--source", type=int, nargs="+", default=None)
    p.add_argument("--loss-rates", type=float, nargs="+",
                   default=[0.0, 0.1, 0.2])
    p.add_argument("--failures", type=int, nargs="+", default=[0])
    p.add_argument("--trials", type=int, default=32)
    p.add_argument("--hardening", type=int, nargs="+", default=[0, 1, 2, 3],
                   help="blind repetition budgets r to compare against")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine",
                   choices=["batch", "packed", "compiled", "auto",
                            "serial"],
                   default="batch",
                   help="trial execution: batched Monte-Carlo (default), "
                        "its bit-packed / compiled slot-resolve tiers "
                        "(auto = best available), or the equivalent "
                        "serial per-trial loop — all "
                        "produce identical points")
    p.add_argument("--workers", type=int, default=None,
                   help="processes: batched engines shard the trial "
                        "dimension of each cell, serial fans (loss, "
                        "failure) cells out (results identical either "
                        "way)")
    p.add_argument("--threads", type=int, default=None,
                   help="compiled-tier kernel threads per process "
                        "(default: all cores standalone, 1 inside "
                        "--workers shards; results identical at any "
                        "width)")
    p.set_defaults(func=cmd_frontier)

    p = sub.add_parser("lifetime",
                       help="repeated-broadcast lifetime (extension)")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--source", type=int, nargs="+", default=None)
    p.add_argument("--rotate", action="store_true",
                   help="also cycle broadcasts through the corner sources "
                        "(LEACH-style load spreading)")
    p.add_argument("--battery", type=float, default=2e-3,
                   help="per-node energy budget in joules")
    p.add_argument("--max-rounds", type=int, default=100_000)
    p.add_argument("--loss", type=float, default=None,
                   help="Bernoulli loss rate: per-round cost becomes the "
                        "batched Monte-Carlo expectation")
    p.add_argument("--trials", type=int, default=16,
                   help="Monte-Carlo trials per source when --loss is set")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine",
                   choices=["batch", "packed", "compiled", "auto"],
                   default="batch",
                   help="slot-resolve tier of the lossy replay (all "
                        "tiers produce identical expectations)")
    p.add_argument("--workers", type=int, default=None,
                   help="compile distinct sources in parallel processes")
    p.add_argument("--threads", type=int, default=None,
                   help="compiled-tier kernel threads per process "
                        "(default: all cores standalone, 1 inside "
                        "--workers shards; results identical at any "
                        "width)")
    p.add_argument("--cache", metavar="DIR", default=None,
                   help="schedule-cache directory shared across runs")
    p.set_defaults(func=cmd_lifetime)

    p = sub.add_parser("scaling",
                       help="broadcast cost vs network size (extension)")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--sizes", type=int, nargs="+", default=None)
    p.add_argument("--ladder", choices=["paper", "large"], default="paper",
                   help="named size ladder: the paper-scale defaults or "
                        "the 10^4..10^6 large-grid ladder "
                        "(--sizes overrides)")
    p.add_argument("--workers", type=int, default=None,
                   help="compile the sizes in parallel processes")
    p.set_defaults(func=cmd_scaling)

    p = sub.add_parser("broadcast", help="compile and show one broadcast")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--source", type=int, nargs="+", required=True)
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--timeline", action="store_true")
    p.set_defaults(func=cmd_broadcast)

    p = sub.add_parser("sweep", help="sweep source positions")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--stride", type=int, default=8)
    p.add_argument("--workers", type=int, default=None,
                   help="parallel sweep processes (results identical to "
                        "serial)")
    p.add_argument("--cache", metavar="DIR", default=None,
                   help="schedule-cache directory shared across runs")
    p.add_argument("--symmetry", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force (--symmetry) or disable (--no-symmetry) "
                        "the symmetry-reduced sweep; default auto-enables "
                        "it whenever the protocol can group sources into "
                        "translation classes (identical results either "
                        "way)")
    _add_cache_stat_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("query",
                       help="answer one broadcast query through the "
                            "service engine (store-warm hits skip "
                            "compilation)")
    p.add_argument("label", choices=sorted(TOPOLOGY_CLASSES))
    p.add_argument("--source", type=int, nargs="+", required=True)
    p.add_argument("--shape", type=int, nargs="+", default=None)
    p.add_argument("--protocol", default=None,
                   help="protocol name (default: the topology's paper "
                        "protocol)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="artifact-store directory shared with sweeps and "
                        "the server")
    p.add_argument("--max-entries", type=int, default=None,
                   help="memory-tier LRU bound (0 = unbounded; default: "
                        "engine default)")
    p.add_argument("--schedule", action="store_true",
                   help="also print the compiled transmission schedule")
    p.add_argument("--cache-stats", action="store_true",
                   help="print the engine counters line")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="send the query to a running server instead of "
                        "answering locally (retrying NDJSON client)")
    p.add_argument("--timeout-ms", type=float, default=None,
                   help="query deadline in milliseconds; expired queries "
                        "are shed server-side before compiling")
    p.add_argument("--retries", type=int, default=4,
                   help="total --connect attempts incl. the first "
                        "(exponential backoff between them; default 4)")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("serve",
                       help="serve broadcast queries over NDJSON/TCP "
                            "(asyncio, symmetry-coalescing)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--store", metavar="DIR", default=None,
                   help="artifact-store directory (enables warm restarts "
                        "and --warm)")
    p.add_argument("--max-entries", type=int, default=None,
                   help="memory-tier LRU bound (0 = unbounded; default: "
                        "engine default)")
    p.add_argument("--warm", metavar="LABEL:MxN", action="append",
                   default=None,
                   help="precompute a fleet shape into the store before "
                        "serving, e.g. --warm 2D-4:32x16 (repeatable)")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   help="seconds granted to in-flight queries on "
                        "SIGTERM/SIGINT before connections drop "
                        "(default 5)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("health",
                       help="probe a running server's health/stats "
                            "endpoint (never triggers a compile)")
    p.add_argument("--connect", metavar="HOST:PORT", required=True,
                   help="server address, e.g. 127.0.0.1:8765")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="socket timeout in seconds (default 10)")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser("store",
                       help="artifact-store maintenance")
    p.add_argument("action", choices=["gc"],
                   help="gc: compact shards — rewrite live bin records, "
                        "reclaim bytes orphaned by crashed writers and "
                        "shard rebuilds (safe under concurrent readers)")
    p.add_argument("store", metavar="DIR",
                   help="artifact-store directory to compact")
    p.set_defaults(func=cmd_store)

    p = sub.add_parser("selfcheck", help="validate topologies and protocols")
    p.set_defaults(func=cmd_selfcheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
