"""SVG rendering of lattices and broadcasts (publication-style figures).

Self-contained SVG generation (no plotting dependencies): node circles on
the lattice geometry, edges, and the paper's colour code — black relay
nodes, gray retransmitters, white non-relays, the source highlighted —
plus an optional per-node first-reception label, i.e. the content of the
paper's Figs. 5/7/8.  3D meshes render one SVG per plane.
"""

from __future__ import annotations

import html
from typing import List, Optional

from ..core.base import CompiledBroadcast
from ..topology.base import Topology
from ..topology.mesh3d import Mesh3D6

#: Colours follow the paper's figures.
COLOR_SOURCE = "#d62728"
COLOR_RELAY = "#222222"
COLOR_RETRANSMIT = "#999999"
COLOR_PATCH = "#1f77b4"
COLOR_IDLE = "#ffffff"
COLOR_EDGE = "#cccccc"


def _classify(topology: Topology, compiled: CompiledBroadcast
              ) -> List[str]:
    trace = compiled.trace
    tx_counts = trace.tx_count_per_node()
    patched = {v for v, _ in compiled.completions}
    patched |= {v for v, _ in compiled.repairs}
    colors = []
    for idx in range(topology.num_nodes):
        if idx == trace.source:
            colors.append(COLOR_SOURCE)
        elif tx_counts[idx] >= 2:
            colors.append(COLOR_RETRANSMIT)
        elif idx in patched:
            colors.append(COLOR_PATCH)
        elif tx_counts[idx] == 1:
            colors.append(COLOR_RELAY)
        else:
            colors.append(COLOR_IDLE)
    return colors


def _svg_document(body: List[str], width: float, height: float,
                  title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">\n'
        f'<title>{html.escape(title)}</title>\n'
        f'<rect width="100%" height="100%" fill="white"/>\n')
    return head + "\n".join(body) + "\n</svg>\n"


def broadcast_svg(topology: Topology, compiled: CompiledBroadcast,
                  scale: float = 36.0, node_radius: float = 9.0,
                  label_first_rx: bool = False,
                  plane_z: Optional[int] = None) -> str:
    """Render a compiled broadcast as an SVG string.

    For 3D meshes pass *plane_z* to pick the XY plane to draw.
    ``label_first_rx=True`` writes each node's first-reception slot inside
    its circle (the figure's transmission-sequence numbers, per node).
    """
    if isinstance(topology, Mesh3D6):
        if plane_z is None:
            raise ValueError("3D meshes need an explicit plane_z")
        node_indices = [int(i) for i in topology.plane_indices(plane_z)]
    else:
        node_indices = list(range(topology.num_nodes))

    colors = _classify(topology, compiled)
    pos = topology.positions()
    spacing = topology.spacing
    # map metres to pixels; y axis flipped so y grows upward like the paper
    xs = pos[node_indices, 0] / spacing
    ys = pos[node_indices, 1] / spacing
    pad = 1.0
    width = (xs.max() - xs.min() + 2 * pad) * scale
    height = (ys.max() - ys.min() + 2 * pad) * scale

    def px(i: int) -> tuple:
        x = (pos[i, 0] / spacing - xs.min() + pad) * scale
        y = height - (pos[i, 1] / spacing - ys.min() + pad) * scale
        return x, y

    body: List[str] = []
    node_set = set(node_indices)
    drawn = set()
    for i in node_indices:
        for j in (int(v) for v in topology.neighbor_indices(i)):
            if j in node_set and (j, i) not in drawn:
                x1, y1 = px(i)
                x2, y2 = px(j)
                body.append(
                    f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                    f'y2="{y2:.1f}" stroke="{COLOR_EDGE}" '
                    f'stroke-width="1"/>')
                drawn.add((i, j))
    first_rx = compiled.trace.first_rx
    for i in node_indices:
        x, y = px(i)
        body.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_radius:.1f}" '
            f'fill="{colors[i]}" stroke="#444444" stroke-width="1"/>')
        if label_first_rx and first_rx[i] >= 0:
            fill = "#ffffff" if colors[i] in (COLOR_RELAY, COLOR_SOURCE) \
                else "#000000"
            body.append(
                f'<text x="{x:.1f}" y="{y + 3:.1f}" font-size="9" '
                f'font-family="sans-serif" text-anchor="middle" '
                f'fill="{fill}">{int(first_rx[i])}</text>')

    title = (f"{topology.name} broadcast, source "
             f"{compiled.plan.notes.get('source')}")
    if plane_z is not None:
        title += f", plane z={plane_z}"
    return _svg_document(body, width, height, title)


def save_broadcast_svg(path: str, topology: Topology,
                       compiled: CompiledBroadcast, **kwargs) -> str:
    """Render and write an SVG file; returns the path."""
    svg = broadcast_svg(topology, compiled, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    return path
