"""Per-slot transmission timelines.

A textual rendering of the numbers the paper writes beside the edges of
Figs. 5/7/8 ("the transmission sequences"): which nodes transmit in each
slot, how many nodes they inform, and where collisions happen.
"""

from __future__ import annotations

from typing import List

from ..core.base import CompiledBroadcast
from ..topology.base import Topology


def slot_timeline(topology: Topology, compiled: CompiledBroadcast,
                  max_slots: int | None = None,
                  max_nodes_per_slot: int = 8) -> str:
    """Render the broadcast slot by slot.

    Each line: slot number, transmitter coordinates (elided beyond
    *max_nodes_per_slot*), number of fresh receptions, duplicates and
    collisions in that slot.
    """
    trace = compiled.trace
    by_slot_tx: dict[int, List[int]] = {}
    for slot, v in trace.tx_events:
        by_slot_tx.setdefault(slot, []).append(v)
    fresh: dict[int, int] = {}
    dups: dict[int, int] = {}
    for slot, receiver, _ in trace.rx_events:
        if trace.first_rx[receiver] == slot:
            fresh[slot] = fresh.get(slot, 0) + 1
        else:
            dups[slot] = dups.get(slot, 0) + 1
    colls: dict[int, int] = {}
    for slot, _ in trace.collision_events:
        colls[slot] = colls.get(slot, 0) + 1

    lines = [f"slot timeline ({topology.name}, "
             f"source {compiled.plan.notes.get('source')})",
             "slot | tx | fresh dup coll | transmitters"]
    slots = sorted(by_slot_tx)
    if max_slots is not None:
        slots = slots[:max_slots]
    for slot in slots:
        txs = sorted(by_slot_tx[slot])
        names = [str(topology.coord(v)) for v in txs[:max_nodes_per_slot]]
        if len(txs) > max_nodes_per_slot:
            names.append(f"... +{len(txs) - max_nodes_per_slot}")
        lines.append(
            f"{slot:4d} | {len(txs):2d} | {fresh.get(slot, 0):5d} "
            f"{dups.get(slot, 0):3d} {colls.get(slot, 0):4d} | "
            + " ".join(names))
    return "\n".join(lines)


def summary_block(topology: Topology, compiled: CompiledBroadcast) -> str:
    """One-paragraph broadcast summary for CLI / benchmark output."""
    t = compiled.trace
    return (
        f"{topology.name}: {t.num_tx} transmissions, {t.num_rx} receptions "
        f"({t.num_duplicate_rx} duplicates), {t.num_collisions} collision "
        f"events, delay {t.delay_slots} slots, reachability "
        f"{t.reachability:.1%}, {len(t.retransmitting_nodes())} "
        f"retransmitting nodes, {len(compiled.completions)} completion + "
        f"{len(compiled.repairs)} repair transmissions")
