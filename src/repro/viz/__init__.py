"""ASCII visualisation of relay maps and broadcast schedules."""

from .ascii_grid import RELAY_MAP_LEGEND, relay_map, wave_map
from .sequence import slot_timeline, summary_block
from .svg import broadcast_svg, save_broadcast_svg

__all__ = [
    "relay_map",
    "wave_map",
    "slot_timeline",
    "summary_block",
    "RELAY_MAP_LEGEND",
    "broadcast_svg",
    "save_broadcast_svg",
]
