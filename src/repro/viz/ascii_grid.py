"""ASCII rendering of relay maps and broadcast waves.

Regenerates the *content* of the paper's protocol figures (5, 7, 8, 9):
which nodes relay, which retransmit (the paper's gray nodes), and in which
slot each node first receives / transmits.  Renders any 2D mesh directly
and 3D meshes plane by plane.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.base import CompiledBroadcast
from ..topology.base import Topology
from ..topology.mesh3d import Mesh3D6

#: Legend used by :func:`relay_map`.
RELAY_MAP_LEGEND = ("S=source  #=relay  *=retransmitter (>=2 tx)  "
                    "+=repair/completion relay  .=non-relay")


def _cell_symbols(topology: Topology,
                  compiled: CompiledBroadcast) -> List[str]:
    trace = compiled.trace
    tx_counts = trace.tx_count_per_node()
    extra = {node for node, _ in compiled.completions}
    extra |= {node for node, _ in compiled.repairs}
    planned = compiled.plan.relay_mask
    symbols = []
    for idx in range(topology.num_nodes):
        if idx == trace.source:
            symbols.append("S")
        elif tx_counts[idx] >= 2:
            symbols.append("*")
        elif tx_counts[idx] == 1:
            symbols.append("#" if planned[idx] else "+")
        elif idx in extra:
            symbols.append("+")
        else:
            symbols.append(".")
    return symbols


def _render_plane(topology: Topology, symbols: List[str],
                  m: int, n: int, base: int, header: str) -> str:
    lines = [header]
    for y in range(n, 0, -1):
        row = " ".join(
            symbols[base + (x - 1) + (y - 1) * m] for x in range(1, m + 1))
        lines.append(f"{y:3d} {row}")
    ruler = "    " + " ".join(str(x % 10) for x in range(1, m + 1))
    lines.append(ruler)
    return "\n".join(lines)


def relay_map(topology: Topology, compiled: CompiledBroadcast) -> str:
    """Render the relay/retransmitter map of a compiled broadcast.

    For 2D meshes this is the direct analogue of Figs. 5/7/8 (black relay
    nodes -> ``#``, gray retransmitters -> ``*``); 3D meshes are rendered
    plane by plane like Fig. 9.
    """
    symbols = _cell_symbols(topology, compiled)
    if isinstance(topology, Mesh3D6):
        m, n, l = topology.m, topology.n, topology.l
        planes = [
            _render_plane(topology, symbols, m, n, (z - 1) * m * n,
                          f"plane z={z}")
            for z in range(1, l + 1)
        ]
        return "\n\n".join(planes + [RELAY_MAP_LEGEND])
    m, n = topology.m, topology.n  # type: ignore[attr-defined]
    return "\n".join([
        _render_plane(topology, symbols, m, n, 0, f"{topology.name} "
                      f"{m}x{n}, source {compiled.plan.notes.get('source')}"),
        RELAY_MAP_LEGEND,
    ])


def wave_map(topology: Topology, compiled: CompiledBroadcast,
             z: Optional[int] = None, what: str = "rx") -> str:
    """Render per-node first-reception (or first-transmission) slots.

    ``what="rx"`` shows when each node first obtained the message (the
    paper's per-edge transmission sequence numbers, viewed per node);
    ``what="tx"`` shows each relay's first transmission slot.
    """
    trace = compiled.trace
    if what == "rx":
        values = trace.first_rx
    elif what == "tx":
        sched = compiled.schedule
        values = [sched.first_slot_of(v) for v in range(topology.num_nodes)]
    else:
        raise ValueError(f"what must be 'rx' or 'tx', got {what!r}")

    if isinstance(topology, Mesh3D6):
        if z is None:
            raise ValueError("3D wave maps need an explicit plane z")
        m, n = topology.m, topology.n
        base = (z - 1) * m * n
        header = f"first {what} slot, plane z={z}"
    else:
        m, n = topology.m, topology.n  # type: ignore[attr-defined]
        base = 0
        header = f"first {what} slot"

    width = max(2, len(str(max(int(v) for v in values))))
    lines = [header]
    for y in range(n, 0, -1):
        cells = []
        for x in range(1, m + 1):
            v = int(values[base + (x - 1) + (y - 1) * m])
            cells.append("." * width if v < 0 else str(v).rjust(width))
        lines.append(f"{y:3d} " + " ".join(cells))
    return "\n".join(lines)
