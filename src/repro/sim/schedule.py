"""Broadcast transmission schedules.

A :class:`BroadcastSchedule` is the compiled form of a broadcast protocol:
for each time slot, the set of nodes that transmit in that slot.  Protocols
*compile* to a schedule (offline, exploiting the known regular topology —
exactly the paper's stance), and the simulator *executes* schedules.

Slots are 1-based; the source transmits in slot 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

import numpy as np


class BroadcastSchedule:
    """Mapping ``slot -> set of transmitting node indices``.

    Node indices are the topology's 0-based flattened indices.  The class
    is a thin, well-checked container: it guarantees slots are positive and
    that a node transmits at most once per slot.
    """

    def __init__(self) -> None:
        self._slots: Dict[int, Set[int]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Tuple[int, int]]
                    ) -> "BroadcastSchedule":
        """Build from ``(slot, node)`` pairs."""
        sched = cls()
        for slot, node in events:
            sched.add(slot, node)
        return sched

    def add(self, slot: int, node: int) -> None:
        """Schedule *node* to transmit in *slot* (idempotent)."""
        if slot < 1:
            raise ValueError(f"slots are 1-based, got {slot}")
        if node < 0:
            raise ValueError(f"node index must be >= 0, got {node}")
        self._slots.setdefault(int(slot), set()).add(int(node))

    def remove(self, slot: int, node: int) -> None:
        """Remove a scheduled transmission; raises if absent."""
        self._slots[slot].remove(node)
        if not self._slots[slot]:
            del self._slots[slot]

    def merge(self, other: "BroadcastSchedule") -> "BroadcastSchedule":
        """New schedule containing the transmissions of both."""
        merged = BroadcastSchedule()
        for slot, nodes in self._slots.items():
            for v in nodes:
                merged.add(slot, v)
        for slot, nodes in other._slots.items():
            for v in nodes:
                merged.add(slot, v)
        return merged

    def copy(self) -> "BroadcastSchedule":
        """Deep copy."""
        dup = BroadcastSchedule()
        for slot, nodes in self._slots.items():
            dup._slots[slot] = set(nodes)
        return dup

    # -- queries ----------------------------------------------------------

    def transmitters(self, slot: int) -> Set[int]:
        """Set of nodes transmitting in *slot* (empty set if none)."""
        return set(self._slots.get(slot, ()))

    def transmitter_mask(self, slot: int, num_nodes: int) -> np.ndarray:
        """Boolean transmit mask for *slot* (vectorised engine input)."""
        mask = np.zeros(num_nodes, dtype=bool)
        nodes = self._slots.get(slot)
        if nodes:
            mask[list(nodes)] = True
        return mask

    def slots_of(self, node: int) -> List[int]:
        """Sorted slots in which *node* transmits."""
        return sorted(s for s, nodes in self._slots.items() if node in nodes)

    def first_slot_of(self, node: int) -> int:
        """First slot in which *node* transmits, or -1 if it never does."""
        slots = self.slots_of(node)
        return slots[0] if slots else -1

    def transmitting_nodes(self) -> Set[int]:
        """Every node that transmits at least once."""
        out: Set[int] = set()
        for nodes in self._slots.values():
            out |= nodes
        return out

    @property
    def num_transmissions(self) -> int:
        """Total transmission count (the paper's ``T_x``)."""
        return sum(len(nodes) for nodes in self._slots.values())

    @property
    def max_slot(self) -> int:
        """Largest occupied slot (0 for an empty schedule)."""
        return max(self._slots, default=0)

    def active_slots(self) -> List[int]:
        """Sorted list of slots with at least one transmission."""
        return sorted(self._slots)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(slot, node)`` in deterministic order."""
        for slot in sorted(self._slots):
            for node in sorted(self._slots[slot]):
                yield (slot, node)

    def __len__(self) -> int:
        return self.num_transmissions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BroadcastSchedule):
            return NotImplemented
        return self._slots == other._slots

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(slots, nodes)`` int arrays in deterministic order."""
        pairs = list(self)
        if not pairs:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        arr = np.asarray(pairs, dtype=np.int64)
        return arr[:, 0], arr[:, 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BroadcastSchedule tx={self.num_transmissions} "
                f"slots=1..{self.max_slot}>")
