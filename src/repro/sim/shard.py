"""Trial-dimension sharding of the batched Monte-Carlo entry points.

A batch of B trials has no cross-trial coupling anywhere in the engine
— pending transmissions, loss draws, failure masks and recovery state
are all per-trial rows — so the batch splits into contiguous trial
slices that run in separate processes and merge back with
:func:`~repro.sim.summary.merge_summaries` (summaries) or plain list
concatenation (traces).

Bit-identity of the sharded run rests on two properties the lower
layers provide:

* the counter RNG keys every draw on the trial's **seed value**
  (:func:`~repro.radio.impairments.counter_slot_keys`), never on its
  row index, so :meth:`~repro.radio.impairments.BatchLoss.slice_trials`
  yields exactly the rows the unsharded run would have drawn;
* the shared ``max_slots`` horizon default depends only on the plan,
  not the batch size, so every shard simulates the same slot window.

The shard-invariance property test pins down that ``workers=1`` and
``workers=k`` produce identical results.

The tiered recovery states (packed word bitsets, native C update)
ride trial shards for free: each shard's backend builds its own
recovery state sized to the shard's trial slice, and because every
piece of recovery state is a per-trial row keyed by the trial's seed
value, the sliced runs reproduce the unsharded run bit for bit at
every worker count and on every engine tier.

Workers are plain ``ProcessPoolExecutor`` processes (the same
fan-out machinery as the analysis layers); callers pick the count —
the analysis layers pass it through
:func:`~repro.analysis.sweep.effective_workers`, which degrades to
serial on single-CPU hosts and caps at the trial count.

Threads × processes composition: when a batch actually fans out, the
shard jobs default the compiled tier's kernel pool to ``threads=1`` —
process sharding already claims the cores, and k processes × k
threads would oversubscribe k-fold.  An explicit ``threads=`` is
passed through untouched (and the single-range path keeps the
caller's value, including the all-cores ``None`` default), so callers
who want k × m can say so.  Kernel pools re-arm after ``fork`` inside
the extension, so the composition is safe in either order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Tuple, Union

import numpy as np

from .. import faults
from .engine import replay_batch, run_reactive_batch
from .summary import TraceSummary, merge_summaries
from .trace import BroadcastTrace

__all__ = ["MAX_SHARD_ATTEMPTS", "ShardFailure", "replay_batch_sharded",
           "run_reactive_batch_sharded", "shard_ranges"]

#: Per-shard submit attempts before :class:`ShardFailure`; the first
#: attempt plus two pool rebuilds.
MAX_SHARD_ATTEMPTS = 3


class ShardFailure(RuntimeError):
    """A shard's worker process kept dying after every retry."""


def shard_ranges(trials: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` trial ranges splitting *trials* as evenly
    as possible over at most *shards* non-empty parts."""
    shards = max(1, min(int(shards), int(trials)))
    bounds = np.linspace(0, trials, shards + 1).astype(int)
    return [(int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def _slice_kwargs(kwargs: dict, lo: int, hi: int) -> dict:
    """The keyword set of the shard covering trial rows ``lo:hi``."""
    kw = dict(kwargs)
    kw["trials"] = hi - lo
    dead = kw.get("dead_masks")
    if dead is not None:
        kw["dead_masks"] = dead[lo:hi]
    loss = kw.get("loss")
    if loss is not None:
        kw["loss"] = loss.slice_trials(lo, hi)
    return kw


def _reactive_worker(args):
    topology, source, relay_mask, kw = args
    if kw.pop("_fault_kill", False):  # injected worker murder
        os._exit(113)
    return run_reactive_batch(topology, source, relay_mask, **kw)


def _replay_worker(args):
    topology, schedule, source, kw = args
    if kw.pop("_fault_kill", False):  # injected worker murder
        os._exit(113)
    return replay_batch(topology, schedule, source, **kw)


def _armed_job(job, index: int, attempt: int):
    """Tag the job when the fault plan kills this (shard, attempt)."""
    if not faults.fires(faults.SHARD_KILL, key=(index, attempt)):
        return job
    kw = dict(job[-1])
    kw["_fault_kill"] = True
    return job[:-1] + (kw,)


def _fan_out(worker, jobs, workers: int):
    """Run every job, resubmitting only the shards whose worker died.

    A worker that dies (``os._exit``, OOM kill, segfault) breaks the
    whole ``ProcessPoolExecutor``: its own job and every job still
    pending there fail with ``BrokenProcessPool``, while jobs that
    already returned keep their results.  Shards are therefore
    submitted individually; the survivors' results are kept, the pool
    is rebuilt, and **only the dead shards** are resubmitted — cheap,
    and bit-identical, because the job's trial slice (and through it
    every counter-RNG draw) is a pure function of the shard bounds,
    not of which attempt ran it.  Worker exceptions that are *not*
    pool breakage (a bad argument, say) propagate immediately: retry
    is for dead processes, not for bugs.
    """
    results: List[object] = [None] * len(jobs)
    remaining = list(range(len(jobs)))
    for attempt in range(MAX_SHARD_ATTEMPTS):
        failed: List[int] = []
        with ProcessPoolExecutor(
                max_workers=min(workers, len(remaining))) as pool:
            futures = [(i, pool.submit(worker,
                                       _armed_job(jobs[i], i, attempt)))
                       for i in remaining]
            for i, future in futures:
                try:
                    results[i] = future.result()
                except BrokenProcessPool:
                    failed.append(i)
        if not failed:
            return results
        remaining = failed
    raise ShardFailure(
        f"shards {remaining} lost their worker process in "
        f"{MAX_SHARD_ATTEMPTS} consecutive attempts")


def _merge(parts) -> Union[TraceSummary, List[BroadcastTrace]]:
    if isinstance(parts[0], TraceSummary):
        return merge_summaries(parts)
    out: List[BroadcastTrace] = []
    for p in parts:
        out.extend(p)
    return out


def _resolve_batch_size(kwargs: dict) -> int:
    trials = kwargs.get("trials")
    if trials is not None:
        return int(trials)
    loss = kwargs.get("loss")
    if loss is not None:
        return loss.trials
    dead = kwargs.get("dead_masks")
    if dead is not None:
        return int(np.asarray(dead).shape[0])
    raise ValueError("cannot infer the batch size: pass trials=, "
                     "loss= or dead_masks=")


def run_reactive_batch_sharded(
    topology, source: int, relay_mask, *, workers: Optional[int] = None,
    **kwargs) -> Union[TraceSummary, List[BroadcastTrace]]:
    """:func:`~repro.sim.engine.run_reactive_batch` with the trial
    dimension split over *workers* processes.

    Accepts every keyword of the unsharded entry point and returns a
    bit-identical result for any *workers* value; ``workers=None`` or
    ``1`` (or a single-trial batch) runs in-process.
    """
    batch = _resolve_batch_size(kwargs)
    ranges = shard_ranges(batch, workers or 1)
    if len(ranges) <= 1:
        return run_reactive_batch(topology, source, relay_mask, **kwargs)
    if kwargs.get("threads") is None:  # shards own the cores
        kwargs["threads"] = 1
    jobs = [(topology, source, relay_mask, _slice_kwargs(kwargs, lo, hi))
            for lo, hi in ranges]
    return _merge(_fan_out(_reactive_worker, jobs, len(ranges)))


def replay_batch_sharded(
    topology, schedule, source: int, *, workers: Optional[int] = None,
    **kwargs) -> Union[TraceSummary, List[BroadcastTrace]]:
    """:func:`~repro.sim.engine.replay_batch` with the trial dimension
    split over *workers* processes; see
    :func:`run_reactive_batch_sharded`."""
    batch = _resolve_batch_size(kwargs)
    ranges = shard_ranges(batch, workers or 1)
    if len(ranges) <= 1:
        return replay_batch(topology, schedule, source, **kwargs)
    if kwargs.get("threads") is None:  # shards own the cores
        kwargs["threads"] = 1
    jobs = [(topology, schedule, source, _slice_kwargs(kwargs, lo, hi))
            for lo, hi in ranges]
    return _merge(_fan_out(_replay_worker, jobs, len(ranges)))
