"""Pure-python reference simulator for differential testing.

The vectorised engine in :mod:`repro.sim.engine` is the production path.
This module re-implements schedule replay with explicit per-node state
machine objects and no numpy in the decision logic.  The test-suite runs
both on the same schedules and asserts identical traces — a defence against
vectorisation bugs, per the "make it work reliably before making it fast"
workflow of the HPC guides.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..topology.base import Topology
from .schedule import BroadcastSchedule
from .trace import BroadcastTrace


class ReferenceNode:
    """Explicit state machine for one sensor node.

    States: ``idle`` (never received), ``informed`` (holds the message).
    The node also tracks its per-slot radio activity for the trace.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.informed = False
        self.first_rx_slot = -1

    def mark_source(self) -> None:
        """The source owns the message from the start (slot 0)."""
        self.informed = True
        self.first_rx_slot = 0

    def hear(self, slot: int, transmitters: List[int]) -> str:
        """Process the air interface for one slot.

        Returns one of ``"silence"``, ``"received"``, ``"collision"``.
        """
        if len(transmitters) == 0:
            return "silence"
        if len(transmitters) > 1:
            return "collision"
        if not self.informed:
            self.informed = True
            self.first_rx_slot = slot
        return "received"


class ReferenceSimulator:
    """Object-oriented schedule replay (slow, obviously-correct)."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # Plain python neighbour lists; no numpy in the core logic.
        self._nbrs: Dict[int, List[int]] = {
            i: [topology.index(c) for c in topology.neighbors(
                topology.coord(i))]
            for i in range(topology.num_nodes)
        }

    def replay(self, schedule: BroadcastSchedule,
               source: int) -> BroadcastTrace:
        """Execute *schedule* and return a trace identical in content to
        :func:`repro.sim.engine.replay`."""
        n = self.topology.num_nodes
        nodes = [ReferenceNode(i) for i in range(n)]
        nodes[source].mark_source()
        trace = BroadcastTrace(
            num_nodes=n, source=source,
            first_rx=np.full(n, -1, dtype=np.int64))
        trace.first_rx[source] = 0

        for slot in schedule.active_slots():
            txs = sorted(schedule.transmitters(slot))
            for v in txs:
                trace.tx_events.append((slot, v))
            tx_set = set(txs)
            for v in range(n):
                if v in tx_set:
                    continue  # half-duplex: transmitters hear nothing
                heard = [u for u in self._nbrs[v] if u in tx_set]
                outcome = nodes[v].hear(slot, heard)
                if outcome == "received":
                    trace.rx_events.append((slot, v, heard[0]))
                    if trace.first_rx[v] < 0:
                        trace.first_rx[v] = slot
                elif outcome == "collision":
                    trace.collision_events.append((slot, v))
        return trace
