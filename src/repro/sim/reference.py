"""Pure-python reference simulator for differential testing.

The vectorised engine in :mod:`repro.sim.engine` is the production path.
This module re-implements both execution modes — schedule replay *and*
the reactive relay wave — with explicit per-node state machine objects
and no numpy in the decision logic.  The test-suite runs both on the same
inputs and asserts identical traces — a defence against vectorisation
bugs, per the "make it work reliably before making it fast" workflow of
the HPC guides.

The only numpy the reference touches is at the channel boundary: a
:class:`~repro.radio.impairments.LossProcess` draws its per-slot erasures
from a boolean array, so the reference builds that array and calls the
same ``apply`` the engine calls — both implementations must see the
identical channel, otherwise the differential test would compare two
different experiments rather than two implementations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..topology.base import Topology
from .schedule import BroadcastSchedule
from .trace import BroadcastTrace


class ReferenceNode:
    """Explicit state machine for one sensor node.

    States: ``idle`` (never received), ``informed`` (holds the message).
    The node also tracks its per-slot radio activity for the trace.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.informed = False
        self.first_rx_slot = -1

    def mark_source(self) -> None:
        """The source owns the message from the start (slot 0)."""
        self.informed = True
        self.first_rx_slot = 0

    def hear(self, slot: int, transmitters: List[int]) -> str:
        """Process the air interface for one slot.

        Returns one of ``"silence"``, ``"received"``, ``"collision"``.
        """
        if len(transmitters) == 0:
            return "silence"
        if len(transmitters) > 1:
            return "collision"
        if not self.informed:
            self.informed = True
            self.first_rx_slot = slot
        return "received"


class ReferenceSimulator:
    """Object-oriented slot simulation (slow, obviously-correct)."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # Plain python neighbour lists; no numpy in the core logic.
        self._nbrs: Dict[int, List[int]] = {
            i: [topology.index(c) for c in topology.neighbors(
                topology.coord(i))]
            for i in range(topology.num_nodes)
        }

    # ------------------------------------------------------------------
    # Shared slot machinery
    # ------------------------------------------------------------------

    def _run_slot(self, slot: int, tx_set: Set[int], nodes, trace,
                  dead, loss) -> List[int]:
        """Execute the air interface for one slot and update the trace.

        Returns the (ascending) list of nodes that decoded the packet this
        slot — informed or not — after fault filtering.
        """
        n = self.topology.num_nodes
        for v in sorted(tx_set):
            trace.tx_events.append((slot, v))

        # First pass: classify every idle node's slot without committing
        # state, because a loss process may still erase the decode.
        candidates: List[int] = []
        sender_of: Dict[int, int] = {}
        for v in range(n):
            if v in tx_set:
                continue  # half-duplex: transmitters hear nothing
            if dead is not None and dead[v]:
                continue  # a failed radio neither decodes nor collides
            heard = [u for u in self._nbrs[v] if u in tx_set]
            if len(heard) > 1:
                trace.collision_events.append((slot, v))
            elif len(heard) == 1:
                candidates.append(v)
                sender_of[v] = heard[0]

        if loss is not None and candidates:
            survives = np.zeros(n, dtype=bool)
            for v in candidates:
                survives[v] = True
            survives = loss.apply(slot, survives)
            candidates = [v for v in candidates if survives[v]]

        for v in candidates:
            outcome = nodes[v].hear(slot, [sender_of[v]])
            assert outcome == "received"
            trace.rx_events.append((slot, v, sender_of[v]))
            if trace.first_rx[v] < 0:
                trace.first_rx[v] = slot
        return candidates

    @staticmethod
    def _fresh_trace(n: int, source: int, nodes) -> BroadcastTrace:
        nodes[source].mark_source()
        trace = BroadcastTrace(
            num_nodes=n, source=source,
            first_rx=np.full(n, -1, dtype=np.int64))
        trace.first_rx[source] = 0
        return trace

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------

    def replay(self, schedule: BroadcastSchedule, source: int,
               dead_mask=None, loss=None) -> BroadcastTrace:
        """Execute *schedule* and return a trace identical in content to
        :func:`repro.sim.engine.replay` (including fault injection)."""
        n = self.topology.num_nodes
        nodes = [ReferenceNode(i) for i in range(n)]
        trace = self._fresh_trace(n, source, nodes)
        dead = (None if dead_mask is None
                else [bool(b) for b in dead_mask])
        faulty = dead is not None or loss is not None

        for slot in schedule.active_slots():
            tx_set = set(schedule.transmitters(slot))
            if dead is not None:
                tx_set = {v for v in tx_set if not dead[v]}
            if faulty:
                # a node that never received cannot forward
                tx_set = {v for v in tx_set
                          if v == source or 0 <= trace.first_rx[v] < slot}
            if not tx_set:
                continue
            self._run_slot(slot, tx_set, nodes, trace, dead, loss)
        return trace

    def run_reactive(self, source: int, relay_mask, *,
                     extra_delay=None, repeat_offsets=None,
                     forced_tx=None, max_slots: Optional[int] = None,
                     dead_mask=None, loss=None) -> BroadcastTrace:
        """Reactive relay wave, mirroring
        :func:`repro.sim.engine.run_reactive` slot for slot."""
        n = self.topology.num_nodes
        relay = [bool(b) for b in relay_mask]
        delay = ([0] * n if extra_delay is None
                 else [int(d) for d in extra_delay])
        repeats = {int(v): tuple(int(o) for o in offs)
                   for v, offs in (repeat_offsets or {}).items()}
        forced: Dict[int, Set[int]] = {}
        for slot, vs in (forced_tx or {}).items():
            forced[int(slot)] = {int(v) for v in vs}
        dead = (None if dead_mask is None
                else [bool(b) for b in dead_mask])
        if max_slots is None:
            max_slots = max(4 * n + 16, max(forced, default=0) + 2)

        nodes = [ReferenceNode(i) for i in range(n)]
        trace = self._fresh_trace(n, source, nodes)

        pending: Dict[int, Set[int]] = {}

        def schedule(v: int, base_slot: int) -> None:
            pending.setdefault(base_slot, set()).add(v)
            for off in repeats.get(v, ()):
                pending.setdefault(base_slot + off, set()).add(v)

        schedule(source, 1 + delay[source])

        t = 0
        while t < max_slots:
            if not (any(s > t for s in pending)
                    or any(s > t for s in forced)):
                break
            t += 1
            tx_set = pending.pop(t, set())
            for v in sorted(forced.pop(t, set())):
                if 0 <= trace.first_rx[v] < t:
                    tx_set.add(v)
                else:
                    trace.dropped_forced.append((t, v))
            if dead is not None:
                tx_set = {v for v in tx_set if not dead[v]}
            if not tx_set:
                continue
            already = {v for v in range(n) if nodes[v].informed}
            decoded = self._run_slot(t, tx_set, nodes, trace, dead, loss)
            for v in decoded:
                if v not in already and relay[v]:
                    schedule(v, t + 1 + delay[v])
        return trace
