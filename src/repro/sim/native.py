"""Optional compiled slot kernel (C via cffi), ``engine="compiled"``.

The bit-packed numpy tier (:mod:`repro.radio.bitpack`) removes the
dense per-slot arrays but still pays one python-level numpy call per
carry-save layer and per extraction step.  This module compiles the
same word-space algorithm to a small C kernel that fuses the whole slot
— accumulate, half-duplex, alive mask, counter-RNG loss, sparse
extraction, sender attribution — into one pass over the packed words,
drawing Bernoulli erasures with the identical splitmix64 stream and the
integer threshold of
:func:`~repro.radio.impairments.bernoulli_threshold`, so its output is
bit-identical to the numpy tiers (the differential suite runs the full
``reference == serial == batch == packed == compiled`` chain).

The dependency handling is deliberately soft:

* nothing here is imported at package import time except by the engine
  dispatcher, which calls :func:`native_kernel` inside a fallback;
* the C source is compiled **lazily, at first use**, with :mod:`cffi`
  and the system C compiler; the build directory lives inside the
  repository (``.native_build/``, git-ignored) and the module name
  embeds a source hash, so rebuilds happen only when the kernel
  changes;
* any failure — cffi missing, no compiler, unwritable build dir —
  is recorded as :func:`native_reason` and the engine silently falls
  back to the pure-numpy tiers; the environment variable
  ``REPRO_NO_NATIVE=1`` forces that path (the test suite uses it to
  cover dependency-absent hosts).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["native_available", "native_kernel", "native_reason"]

_CDEF = """
void resolve_slot(
    int64_t n, int64_t words,
    const int64_t *indptr, const int64_t *indices,
    const uint64_t *nbr_words,
    const int64_t *tx_tr, const int64_t *tx_nd, int64_t npairs,
    const uint64_t *alive_words,
    int loss_kind, const uint64_t *loss_keys, uint64_t loss_threshold,
    const uint8_t *slot_survive,
    int need_senders, int need_coll_pairs,
    uint64_t *ones, uint64_t *twos, uint64_t *txw,
    int64_t *rx_tr, int64_t *rx_nd, int64_t *rx_sv, int64_t *rx_ep,
    int64_t *coll_tr, int64_t *coll_nd, int64_t *coll_counts,
    int64_t *out_counts);
void recovery_post_slot(
    int64_t nrx, const int64_t *rt, const int64_t *rn,
    const int64_t *epos, const int64_t *rev_edge,
    int64_t n, int64_t words_e,
    uint64_t *known, int64_t *heard_total);
void recovery_checks(
    int64_t t, int64_t k,
    const int64_t *bt, const int64_t *vt,
    int64_t n, int64_t words_e, const int64_t *indptr,
    const uint64_t *known,
    int64_t *chk_slot, int64_t *chk_base,
    int64_t *retries_used, const int64_t *heard_total,
    int64_t timeout, int64_t max_retries, int64_t backoff,
    int64_t suppression_k,
    int64_t *fire_b, int64_t *fire_v,
    int64_t *res_b, int64_t *res_v, int64_t *res_slot,
    int64_t *out_counts);
"""

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* splitmix64 finalizer -- must match repro.radio.impairments exactly */
static inline uint64_t sm64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/* One collision slot over bit-packed trial state.
 *
 * Pairs (tx_tr[i], tx_nd[i]) are sorted by (trial, node) and unique.
 * ones/twos/txw are (B, words) caller-owned scratch; the rows of the
 * trials active in THIS call are zeroed here before use, so stale rows
 * of other trials are never read.  Loss kinds: 0 none, 1 Bernoulli
 * (survive iff (sm64(key ^ node) >> 11) >= threshold), 2 whole-slot
 * blackout where slot_survive[b] == 0.  Extraction order is (trial,
 * node) ascending: pairs group trials in ascending order, words ascend
 * within a row, and bits are pulled lowest-first.
 */
void resolve_slot(
    int64_t n, int64_t words,
    const int64_t *indptr, const int64_t *indices,
    const uint64_t *nbr_words,
    const int64_t *tx_tr, const int64_t *tx_nd, int64_t npairs,
    const uint64_t *alive_words,
    int loss_kind, const uint64_t *loss_keys, uint64_t loss_threshold,
    const uint8_t *slot_survive,
    int need_senders, int need_coll_pairs,
    uint64_t *ones, uint64_t *twos, uint64_t *txw,
    int64_t *rx_tr, int64_t *rx_nd, int64_t *rx_sv, int64_t *rx_ep,
    int64_t *coll_tr, int64_t *coll_nd, int64_t *coll_counts,
    int64_t *out_counts)
{
    int64_t n_rx = 0, n_coll = 0;
    size_t row_bytes = (size_t)words * sizeof(uint64_t);

    for (int64_t i = 0; i < npairs; i++) {
        int64_t b = tx_tr[i];
        uint64_t *o = ones + b * words;
        uint64_t *t2 = twos + b * words;
        uint64_t *tx = txw + b * words;
        if (i == 0 || tx_tr[i - 1] != b) {
            memset(o, 0, row_bytes);
            memset(t2, 0, row_bytes);
            memset(tx, 0, row_bytes);
        }
        const uint64_t *row = nbr_words + tx_nd[i] * words;
        for (int64_t w = 0; w < words; w++) {
            t2[w] |= o[w] & row[w];
            o[w] |= row[w];
        }
        tx[tx_nd[i] >> 6] |= 1ULL << (tx_nd[i] & 63);
    }

    for (int64_t i = 0; i < npairs; i++) {
        int64_t b = tx_tr[i];
        if (i > 0 && tx_tr[i - 1] == b)
            continue;                       /* one pass per active trial */
        const uint64_t *o = ones + b * words;
        const uint64_t *t2 = twos + b * words;
        const uint64_t *tx = txw + b * words;
        const uint64_t *alive =
            alive_words ? alive_words + b * words : 0;
        uint64_t key = loss_keys ? loss_keys[b] : 0;
        int blackout = (loss_kind == 2 && !slot_survive[b]);
        for (int64_t w = 0; w < words; w++) {
            uint64_t quiet = ~tx[w];
            uint64_t rx = o[w] & ~t2[w] & quiet;
            uint64_t cl = t2[w] & quiet;
            if (alive) {
                rx &= alive[w];
                cl &= alive[w];
            }
            if (rx) {
                if (blackout) {
                    rx = 0;
                } else if (loss_kind == 1 && loss_threshold) {
                    uint64_t m = rx;
                    while (m) {
                        int j = __builtin_ctzll(m);
                        m &= m - 1;
                        uint64_t node = (uint64_t)(w << 6) + j;
                        if ((sm64(key ^ node) >> 11) < loss_threshold)
                            rx &= ~(1ULL << j);
                    }
                }
            }
            uint64_t m = rx;
            while (m) {
                int j = __builtin_ctzll(m);
                m &= m - 1;
                int64_t node = (w << 6) + j;
                rx_tr[n_rx] = b;
                rx_nd[n_rx] = node;
                if (need_senders) {
                    int64_t sv = -1, ep = -1;
                    for (int64_t e = indptr[node];
                         e < indptr[node + 1]; e++) {
                        int64_t u = indices[e];
                        if (tx[u >> 6] & (1ULL << (u & 63))) {
                            sv = u;
                            ep = e;
                            break;          /* heard == 1: unique hit */
                        }
                    }
                    rx_sv[n_rx] = sv;
                    if (rx_ep)
                        rx_ep[n_rx] = ep;   /* CSR pos of (node -> sv) */
                }
                n_rx++;
            }
            if (need_coll_pairs) {
                m = cl;
                while (m) {
                    int j = __builtin_ctzll(m);
                    m &= m - 1;
                    coll_tr[n_coll] = b;
                    coll_nd[n_coll] = (w << 6) + j;
                    n_coll++;
                }
            } else {
                coll_counts[b] += __builtin_popcountll(cl);
            }
        }
    }
    out_counts[0] = n_rx;
    out_counts[1] = n_coll;
}

/* Recovery post-slot: per clean decode (trial rt[i], receiver rn[i])
 * bump the heard counter and set both known-edge bits -- the overhear
 * (receiver -> sender, CSR position epos[i]) and the ACK (sender ->
 * receiver, its precomputed reverse position).  known is (B, words_e)
 * uint64 over CSR edge positions: bit e & 63 of word e >> 6.
 */
void recovery_post_slot(
    int64_t nrx, const int64_t *rt, const int64_t *rn,
    const int64_t *epos, const int64_t *rev_edge,
    int64_t n, int64_t words_e,
    uint64_t *known, int64_t *heard_total)
{
    for (int64_t i = 0; i < nrx; i++) {
        int64_t b = rt[i];
        int64_t e = epos[i];
        int64_t r = rev_edge[e];
        uint64_t *row = known + b * words_e;
        heard_total[b * n + rn[i]]++;
        row[e >> 6] |= 1ULL << (e & 63);    /* overhear */
        row[r >> 6] |= 1ULL << (r & 63);    /* ACK */
    }
}

/* Recovery guardian checks due at slot t for pairs (bt[i], vt[i])
 * whose chk_slot equals t (caller pre-filters staleness).  Mirrors
 * BatchRecoveryState.pre_slot's check branch exactly: a covered node
 * (every bit of its CSR row range [indptr[v], indptr[v+1]) set in
 * known) clears its check without consuming a retry; otherwise the
 * check consumes one retry, fires unless >= suppression_k decodes were
 * overheard since the previous check, and reschedules at
 * t + timeout * backoff^used while budget remains.  Outputs: firing
 * pairs, rescheduled pairs + their slots (for the caller's due
 * buckets), out_counts = {n_fire, n_res, max rescheduled slot}.
 */
void recovery_checks(
    int64_t t, int64_t k,
    const int64_t *bt, const int64_t *vt,
    int64_t n, int64_t words_e, const int64_t *indptr,
    const uint64_t *known,
    int64_t *chk_slot, int64_t *chk_base,
    int64_t *retries_used, const int64_t *heard_total,
    int64_t timeout, int64_t max_retries, int64_t backoff,
    int64_t suppression_k,
    int64_t *fire_b, int64_t *fire_v,
    int64_t *res_b, int64_t *res_v, int64_t *res_slot,
    int64_t *out_counts)
{
    int64_t n_fire = 0, n_res = 0, max_slot = 0;
    for (int64_t i = 0; i < k; i++) {
        int64_t b = bt[i], v = vt[i];
        const uint64_t *row = known + b * words_e;
        int64_t s = indptr[v], e = indptr[v + 1];
        int covered = 1;
        for (int64_t w = s >> 6; covered && s < e && w <= (e - 1) >> 6;
             w++) {
            int64_t lo = s > (w << 6) ? s : (w << 6);
            int64_t hi = e < ((w + 1) << 6) ? e : ((w + 1) << 6);
            int64_t len = hi - lo;
            uint64_t mask = (len >= 64 ? ~0ULL
                             : ((1ULL << len) - 1)) << (lo & 63);
            if ((row[w] & mask) != mask)
                covered = 0;
        }
        if (covered) {
            chk_slot[b * n + v] = 0;        /* episode done, no retry */
            continue;
        }
        int64_t heard = heard_total[b * n + v];
        if (suppression_k <= 0
            || heard - chk_base[b * n + v] < suppression_k) {
            fire_b[n_fire] = b;
            fire_v[n_fire] = v;
            n_fire++;
        }
        int64_t used = retries_used[b * n + v] + 1;
        retries_used[b * n + v] = used;
        chk_base[b * n + v] = heard;
        if (used < max_retries) {
            int64_t step = timeout;
            for (int64_t j = 0; j < used; j++)
                step *= backoff;
            int64_t nxt = t + step;
            chk_slot[b * n + v] = nxt;
            res_b[n_res] = b;
            res_v[n_res] = v;
            res_slot[n_res] = nxt;
            n_res++;
            if (nxt > max_slot)
                max_slot = nxt;
        } else {
            chk_slot[b * n + v] = 0;
        }
    }
    out_counts[0] = n_fire;
    out_counts[1] = n_res;
    out_counts[2] = max_slot;
}
"""

_state: Optional[Tuple[Optional[object], Optional[str]]] = None


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def _build() -> object:
    import cffi

    digest = hashlib.sha1((_CDEF + _SOURCE).encode()).hexdigest()[:12]
    modname = f"_repro_native_{digest}"
    build_dir = _repo_root() / ".native_build"
    build_dir.mkdir(exist_ok=True)
    existing = sorted(build_dir.glob(f"{modname}*.so"))
    if not existing:
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        ffi.set_source(modname, _SOURCE,
                       extra_compile_args=["-O3"])
        ffi.compile(tmpdir=str(build_dir))
        existing = sorted(build_dir.glob(f"{modname}*.so"))
    if not existing:
        raise RuntimeError("cffi compile produced no extension module")
    spec = importlib.util.spec_from_file_location(modname, existing[0])
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def native_kernel():
    """The compiled kernel module (``.lib`` / ``.ffi``), or ``None``.

    The first call builds (or reloads) the extension; the outcome —
    including any failure reason — is cached for the process lifetime.
    """
    global _state
    if _state is None:
        if os.environ.get("REPRO_NO_NATIVE"):
            _state = (None, "disabled via REPRO_NO_NATIVE")
        else:
            try:
                _state = (_build(), None)
            except Exception as exc:  # soft dependency: never hard-fail
                _state = (None, f"{type(exc).__name__}: {exc}")
    return _state[0]


def native_available() -> bool:
    """True when the compiled tier can run on this host."""
    return native_kernel() is not None


def native_reason() -> Optional[str]:
    """Why the compiled tier is unavailable (``None`` when it is)."""
    native_kernel()
    return _state[1]
