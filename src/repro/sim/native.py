"""Optional compiled slot kernel (C via cffi), ``engine="compiled"``.

The bit-packed numpy tier (:mod:`repro.radio.bitpack`) removes the
dense per-slot arrays but still pays one python-level numpy call per
carry-save layer and per extraction step.  This module compiles the
same word-space algorithm to a small C kernel that fuses the whole slot
— accumulate, half-duplex, alive mask, counter-RNG loss, sparse
extraction, sender attribution — into one pass over the packed words,
drawing Bernoulli erasures with the identical splitmix64 stream and the
integer threshold of
:func:`~repro.radio.impairments.bernoulli_threshold`, so its output is
bit-identical to the numpy tiers (the differential suite runs the full
``reference == serial == batch == packed == compiled`` chain).

**Intra-process parallelism.**  The three hot entry points
(``resolve_slot``, ``recovery_post_slot``, ``recovery_checks``) take a
leading ``nthreads`` argument and fan their (trial, word) cell space
out over a persistent pthread pool (created lazily inside the
extension, capped at :data:`MAX_NATIVE_THREADS`, reset on ``fork`` so
trial-sharded worker processes respawn their own).  The partitioning
is *static and trial-aligned*: every thread derives its contiguous
span of the (trial, node)-sorted input with the same integer formula,
computes exactly what the serial kernel would compute for those
trials, and writes its sparse outputs at a disjoint precomputed offset
(``span_start * max_degree``); the caller's thread then compacts the
per-thread runs in ascending thread order.  Because spans never split
a trial and compaction preserves span order, the merged output is the
serial (trial, node)-ascending order bit for bit — no atomics, no
reductions, no thread-count-dependent results.  cffi calls release the
GIL, so Python-side thread pools overlap with the kernel too (kernel
jobs themselves serialise on one internal job lock).

Thread-count resolution (:func:`resolve_native_threads`): an explicit
``threads=`` wins; otherwise the ``REPRO_NATIVE_THREADS`` environment
variable; otherwise the scheduler affinity mask size (the honest core
count under cgroup/taskset pinning), falling back to ``os.cpu_count``.

The dependency handling is deliberately soft:

* nothing here is imported at package import time except by the engine
  dispatcher, which calls :func:`native_kernel` inside a fallback;
* the C source is compiled **lazily, at first use**, with :mod:`cffi`
  and the system C compiler; the build directory lives inside the
  repository (``.native_build/``, git-ignored) and the module name
  embeds a source hash, so rebuilds happen only when the kernel
  changes;
* any failure — cffi missing, no compiler, unwritable build dir —
  is recorded as :func:`native_reason` and the engine silently falls
  back to the pure-numpy tiers; the environment variable
  ``REPRO_NO_NATIVE=1`` forces that path (the test suite uses it to
  cover dependency-absent hosts).

``REPRO_NATIVE_DEBUG=1`` selects a ThreadSanitizer build
(``-fsanitize=thread -g -O1``, its own hashed module name so it never
shadows the release build); where the toolchain lacks tsan the build
fails and the ordinary fallback chain degrades to the numpy tiers,
exactly as for any other build failure.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["MAX_NATIVE_THREADS", "default_native_threads",
           "native_available", "native_kernel", "native_reason",
           "native_state", "resolve_native_threads"]

#: Hard cap on kernel pool width; mirrors ``KERNEL_MAX_THREADS`` in the
#: C source (the pool's static bookkeeping is sized to it).
MAX_NATIVE_THREADS = 64

_CDEF = """
int64_t kernel_max_threads(void);
void resolve_slot(
    int64_t nthreads,
    int64_t n, int64_t words, int64_t max_degree,
    const int64_t *indptr, const int64_t *indices,
    const uint64_t *nbr_words,
    const int64_t *tx_tr, const int64_t *tx_nd, int64_t npairs,
    const uint64_t *alive_words,
    int loss_kind, const uint64_t *loss_keys, uint64_t loss_threshold,
    const uint8_t *slot_survive,
    int need_senders, int need_coll_pairs,
    uint64_t *ones, uint64_t *twos, uint64_t *txw,
    int64_t *rx_tr, int64_t *rx_nd, int64_t *rx_sv, int64_t *rx_ep,
    int64_t *coll_tr, int64_t *coll_nd, int64_t *coll_counts,
    int64_t *out_counts);
void recovery_post_slot(
    int64_t nthreads,
    int64_t nrx, const int64_t *rt, const int64_t *rn,
    const int64_t *epos, const int64_t *rev_edge,
    int64_t n, int64_t words_e,
    uint64_t *known, int64_t *heard_total);
void recovery_checks(
    int64_t nthreads,
    int64_t t, int64_t k,
    const int64_t *bt, const int64_t *vt,
    int64_t n, int64_t words_e, const int64_t *indptr,
    const uint64_t *known,
    int64_t *chk_slot, int64_t *chk_base,
    int64_t *retries_used, const int64_t *heard_total,
    int64_t timeout, int64_t max_retries, int64_t backoff,
    int64_t suppression_k,
    int64_t *fire_b, int64_t *fire_v,
    int64_t *res_b, int64_t *res_v, int64_t *res_slot,
    int64_t *out_counts);
"""

_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <pthread.h>

#define KERNEL_MAX_THREADS 64

int64_t kernel_max_threads(void) { return KERNEL_MAX_THREADS; }

/* ---------------------------------------------------------------------
 * Portable bit ops: __builtin fast paths on GCC/Clang, pure-C fallback
 * elsewhere.  The fallbacks are exact (same results, just slower), so
 * tier bit-identity never depends on the compiler.
 * ------------------------------------------------------------------- */
#if defined(__GNUC__) || defined(__clang__)
#  define CTZ64(x)    __builtin_ctzll(x)
#  define POPCNT64(x) __builtin_popcountll(x)
#else
static int kernel_ctz64(uint64_t x)
{
    int c = 0;
    while (!(x & 1ULL)) { x >>= 1; c++; }
    return c;
}
static int kernel_pop64(uint64_t x)
{
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return (int)((x * 0x0101010101010101ULL) >> 56);
}
#  define CTZ64(x)    kernel_ctz64(x)
#  define POPCNT64(x) kernel_pop64(x)
#endif

/* splitmix64 finalizer -- must match repro.radio.impairments exactly */
static inline uint64_t sm64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/* Carry-save accumulate of one neighbour row, 4-way unrolled so -O3
 * turns the independent OR/AND lanes into vector ops on any target
 * with 128/256-bit integer SIMD; the tail loop keeps it exact for any
 * word count. */
static inline void accum_words(uint64_t *o, uint64_t *t2,
                               const uint64_t *row, int64_t words)
{
    int64_t w = 0;
    for (; w + 4 <= words; w += 4) {
        uint64_t r0 = row[w],     r1 = row[w + 1];
        uint64_t r2 = row[w + 2], r3 = row[w + 3];
        t2[w]     |= o[w]     & r0;  o[w]     |= r0;
        t2[w + 1] |= o[w + 1] & r1;  o[w + 1] |= r1;
        t2[w + 2] |= o[w + 2] & r2;  o[w + 2] |= r2;
        t2[w + 3] |= o[w + 3] & r3;  o[w + 3] |= r3;
    }
    for (; w < words; w++) {
        t2[w] |= o[w] & row[w];
        o[w]  |= row[w];
    }
}

/* ---------------------------------------------------------------------
 * Persistent worker pool.
 *
 * One pool per process, created lazily on the first call that asks for
 * width > 1 and kept for the process lifetime.  A job is a plain
 * fn(ctx, tid, width) broadcast: the calling thread participates as
 * tid 0, workers pick up 1..width-1, and every worker wakes per job
 * (those with tid >= width just acknowledge).  Jobs are serialised on
 * job_mu, so concurrent callers (Python thread pools: cffi releases
 * the GIL) queue instead of corrupting the shared descriptor.
 *
 * Determinism does not depend on the pool at all -- partitioning is a
 * pure function of (input, width) and output slots are disjoint -- so
 * the pool needs no ordering guarantees beyond start/finish.
 *
 * fork() safety: a forked child inherits this bookkeeping but none of
 * the worker threads, so an atfork handler resets the pool (and
 * re-arms the mutexes) -- the child's first threaded call respawns
 * its own workers.  Trial-sharded runs default to threads=1 in the
 * shards precisely to avoid oversubscription, but the reset keeps
 * explicit threads x processes compositions correct too.
 * ------------------------------------------------------------------- */
typedef void (*job_fn)(void *ctx, int64_t tid, int64_t width);

static pthread_mutex_t job_mu  = PTHREAD_MUTEX_INITIALIZER;
static pthread_mutex_t pool_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t  pool_go   = PTHREAD_COND_INITIALIZER;
static pthread_cond_t  pool_done = PTHREAD_COND_INITIALIZER;
static pthread_once_t  pool_once = PTHREAD_ONCE_INIT;
static int      pool_size = 0;       /* spawned workers (ids 1..size) */
static uint64_t pool_seq = 0;        /* job generation counter */
static int      pool_pending = 0;    /* workers yet to ack this job */
static job_fn   pool_fn = 0;
static void    *pool_ctx = 0;
static int64_t  pool_width = 0;

static void pool_reset_after_fork(void)
{
    pthread_mutex_init(&job_mu, NULL);
    pthread_mutex_init(&pool_mu, NULL);
    pthread_cond_init(&pool_go, NULL);
    pthread_cond_init(&pool_done, NULL);
    pool_size = 0;
    pool_seq = 0;
    pool_pending = 0;
}

static void pool_register_atfork(void)
{
    pthread_atfork(NULL, NULL, pool_reset_after_fork);
}

static void *pool_worker(void *arg)
{
    int64_t tid = (int64_t)(intptr_t)arg;
    uint64_t seen = 0;
    pthread_mutex_lock(&pool_mu);
    for (;;) {
        while (pool_seq == seen)
            pthread_cond_wait(&pool_go, &pool_mu);
        seen = pool_seq;
        {
            job_fn  fn = pool_fn;
            void   *ctx = pool_ctx;
            int64_t width = pool_width;
            pthread_mutex_unlock(&pool_mu);
            if (tid < width)
                fn(ctx, tid, width);
            pthread_mutex_lock(&pool_mu);
        }
        if (--pool_pending == 0)
            pthread_cond_signal(&pool_done);
    }
    return 0;
}

/* Run fn over `width` logical threads; returns the width actually
 * used (narrowed when thread creation fails -- never an error). */
static int64_t pool_run(job_fn fn, void *ctx, int64_t width)
{
    if (width > KERNEL_MAX_THREADS)
        width = KERNEL_MAX_THREADS;
    if (width <= 1) {
        fn(ctx, 0, 1);
        return 1;
    }
    pthread_once(&pool_once, pool_register_atfork);
    pthread_mutex_lock(&job_mu);
    pthread_mutex_lock(&pool_mu);
    while (pool_size < width - 1) {
        pthread_t th;
        if (pthread_create(&th, NULL, pool_worker,
                           (void *)(intptr_t)(pool_size + 1)) != 0)
            break;
        pthread_detach(th);
        pool_size++;
    }
    if (width > pool_size + 1)
        width = pool_size + 1;
    if (width <= 1) {
        pthread_mutex_unlock(&pool_mu);
        pthread_mutex_unlock(&job_mu);
        fn(ctx, 0, 1);
        return 1;
    }
    pool_fn = fn;
    pool_ctx = ctx;
    pool_width = width;
    pool_pending = pool_size;
    pool_seq++;
    pthread_cond_broadcast(&pool_go);
    pthread_mutex_unlock(&pool_mu);
    fn(ctx, 0, width);
    pthread_mutex_lock(&pool_mu);
    while (pool_pending)
        pthread_cond_wait(&pool_done, &pool_mu);
    pthread_mutex_unlock(&pool_mu);
    pthread_mutex_unlock(&job_mu);
    return width;
}

/* Static trial-aligned split of a (trial, ...)-sorted array: thread
 * `tid` of `width` owns [span(tid), span(tid+1)).  Pure function of
 * (tr, len, tid, width): every participant computes the same bounds,
 * and a span never starts mid-trial, so per-trial state is written by
 * exactly one thread. */
static int64_t trial_span(const int64_t *tr, int64_t len,
                          int64_t tid, int64_t width)
{
    int64_t lo;
    if (tid >= width)
        return len;
    lo = tid * len / width;
    while (lo > 0 && lo < len && tr[lo] == tr[lo - 1])
        lo++;
    return lo;
}

/* ---------------------------------------------------------------------
 * Slot resolve.
 *
 * Pairs (tx_tr[i], tx_nd[i]) are sorted by (trial, node) and unique.
 * ones/twos/txw are (B, words) caller-owned scratch; the rows of the
 * trials active in THIS call are zeroed here before use, so stale rows
 * of other trials are never read.  Loss kinds: 0 none, 1 Bernoulli
 * (survive iff (sm64(key ^ node) >> 11) >= threshold), 2 whole-slot
 * blackout where slot_survive[b] == 0.  Extraction order is (trial,
 * node) ascending: pairs group trials in ascending order, words ascend
 * within a row, and bits are pulled lowest-first.
 *
 * Threaded runs split the pair array at trial boundaries; a span
 * covering pairs [lo, hi) writes its sparse outputs at offset
 * lo * max_degree (every rx/collision is a neighbour of some
 * transmitter, so a span emits at most (hi - lo) * max_degree entries
 * per stream -- the offsets are disjoint by construction).  The caller
 * thread then compacts the spans in ascending order, which *is* the
 * serial emission order because spans are trial-ascending.
 * ------------------------------------------------------------------- */
typedef struct {
    int64_t n, words, max_degree;
    const int64_t *indptr, *indices;
    const uint64_t *nbr_words;
    const int64_t *tx_tr, *tx_nd;
    int64_t npairs;
    const uint64_t *alive_words;
    int loss_kind;
    const uint64_t *loss_keys;
    uint64_t loss_threshold;
    const uint8_t *slot_survive;
    int need_senders, need_coll_pairs;
    uint64_t *ones, *twos, *txw;
    int64_t *rx_tr, *rx_nd, *rx_sv, *rx_ep;
    int64_t *coll_tr, *coll_nd, *coll_counts;
    int64_t span_rx[KERNEL_MAX_THREADS];
    int64_t span_coll[KERNEL_MAX_THREADS];
} resolve_ctx;

static void resolve_span(resolve_ctx *c, int64_t lo, int64_t hi,
                         int64_t base, int64_t *rx_out, int64_t *coll_out)
{
    int64_t words = c->words;
    size_t row_bytes = (size_t)words * sizeof(uint64_t);
    int64_t *rx_tr = c->rx_tr + base;
    int64_t *rx_nd = c->rx_nd + base;
    int64_t *rx_sv = c->rx_sv ? c->rx_sv + base : 0;
    int64_t *rx_ep = c->rx_ep ? c->rx_ep + base : 0;
    int64_t *coll_tr = c->coll_tr ? c->coll_tr + base : 0;
    int64_t *coll_nd = c->coll_nd ? c->coll_nd + base : 0;
    int64_t n_rx = 0, n_coll = 0;
    int64_t i;

    for (i = lo; i < hi; i++) {
        int64_t b = c->tx_tr[i];
        uint64_t *o = c->ones + b * words;
        uint64_t *t2 = c->twos + b * words;
        uint64_t *tx = c->txw + b * words;
        if (i == lo || c->tx_tr[i - 1] != b) {
            memset(o, 0, row_bytes);
            memset(t2, 0, row_bytes);
            memset(tx, 0, row_bytes);
        }
        accum_words(o, t2, c->nbr_words + c->tx_nd[i] * words, words);
        tx[c->tx_nd[i] >> 6] |= 1ULL << (c->tx_nd[i] & 63);
    }

    for (i = lo; i < hi; i++) {
        int64_t b = c->tx_tr[i];
        const uint64_t *o, *t2, *tx, *alive;
        uint64_t key;
        int blackout;
        int64_t w;
        if (i > lo && c->tx_tr[i - 1] == b)
            continue;                       /* one pass per active trial */
        o = c->ones + b * words;
        t2 = c->twos + b * words;
        tx = c->txw + b * words;
        alive = c->alive_words ? c->alive_words + b * words : 0;
        key = c->loss_keys ? c->loss_keys[b] : 0;
        blackout = (c->loss_kind == 2 && !c->slot_survive[b]);
        for (w = 0; w < words; w++) {
            uint64_t quiet = ~tx[w];
            uint64_t rx = o[w] & ~t2[w] & quiet;
            uint64_t cl = t2[w] & quiet;
            uint64_t m;
            if (alive) {
                rx &= alive[w];
                cl &= alive[w];
            }
            if (rx) {
                if (blackout) {
                    rx = 0;
                } else if (c->loss_kind == 1 && c->loss_threshold) {
                    m = rx;
                    while (m) {
                        int j = CTZ64(m);
                        m &= m - 1;
                        uint64_t node = (uint64_t)(w << 6) + j;
                        if ((sm64(key ^ node) >> 11) < c->loss_threshold)
                            rx &= ~(1ULL << j);
                    }
                }
            }
            m = rx;
            while (m) {
                int j = CTZ64(m);
                m &= m - 1;
                int64_t node = (w << 6) + j;
                rx_tr[n_rx] = b;
                rx_nd[n_rx] = node;
                if (c->need_senders) {
                    int64_t sv = -1, ep = -1;
                    int64_t e;
                    for (e = c->indptr[node];
                         e < c->indptr[node + 1]; e++) {
                        int64_t u = c->indices[e];
                        if (tx[u >> 6] & (1ULL << (u & 63))) {
                            sv = u;
                            ep = e;
                            break;          /* heard == 1: unique hit */
                        }
                    }
                    rx_sv[n_rx] = sv;
                    if (rx_ep)
                        rx_ep[n_rx] = ep;   /* CSR pos of (node -> sv) */
                }
                n_rx++;
            }
            if (c->need_coll_pairs) {
                m = cl;
                while (m) {
                    int j = CTZ64(m);
                    m &= m - 1;
                    coll_tr[n_coll] = b;
                    coll_nd[n_coll] = (w << 6) + j;
                    n_coll++;
                }
            } else {
                c->coll_counts[b] += POPCNT64(cl);
            }
        }
    }
    *rx_out = n_rx;
    *coll_out = n_coll;
}

static void resolve_job(void *arg, int64_t tid, int64_t width)
{
    resolve_ctx *c = (resolve_ctx *)arg;
    int64_t lo = trial_span(c->tx_tr, c->npairs, tid, width);
    int64_t hi = trial_span(c->tx_tr, c->npairs, tid + 1, width);
    c->span_rx[tid] = 0;
    c->span_coll[tid] = 0;
    if (lo < hi)
        resolve_span(c, lo, hi, lo * c->max_degree,
                     &c->span_rx[tid], &c->span_coll[tid]);
}

void resolve_slot(
    int64_t nthreads,
    int64_t n, int64_t words, int64_t max_degree,
    const int64_t *indptr, const int64_t *indices,
    const uint64_t *nbr_words,
    const int64_t *tx_tr, const int64_t *tx_nd, int64_t npairs,
    const uint64_t *alive_words,
    int loss_kind, const uint64_t *loss_keys, uint64_t loss_threshold,
    const uint8_t *slot_survive,
    int need_senders, int need_coll_pairs,
    uint64_t *ones, uint64_t *twos, uint64_t *txw,
    int64_t *rx_tr, int64_t *rx_nd, int64_t *rx_sv, int64_t *rx_ep,
    int64_t *coll_tr, int64_t *coll_nd, int64_t *coll_counts,
    int64_t *out_counts)
{
    resolve_ctx c;
    int64_t used, t, n_rx = 0, n_coll = 0;
    c.n = n; c.words = words; c.max_degree = max_degree;
    c.indptr = indptr; c.indices = indices; c.nbr_words = nbr_words;
    c.tx_tr = tx_tr; c.tx_nd = tx_nd; c.npairs = npairs;
    c.alive_words = alive_words;
    c.loss_kind = loss_kind; c.loss_keys = loss_keys;
    c.loss_threshold = loss_threshold; c.slot_survive = slot_survive;
    c.need_senders = need_senders; c.need_coll_pairs = need_coll_pairs;
    c.ones = ones; c.twos = twos; c.txw = txw;
    c.rx_tr = rx_tr; c.rx_nd = rx_nd; c.rx_sv = rx_sv; c.rx_ep = rx_ep;
    c.coll_tr = coll_tr; c.coll_nd = coll_nd;
    c.coll_counts = coll_counts;

    used = pool_run(resolve_job, &c, nthreads);
    /* Compact the per-span runs in span order: dest <= src always
     * (earlier spans emit at most their offset), so memmove suffices
     * and the result is the serial emission order. */
    for (t = 0; t < used; t++) {
        int64_t lo = trial_span(tx_tr, npairs, t, used);
        int64_t base = lo * max_degree;
        int64_t cr = c.span_rx[t], cc = c.span_coll[t];
        if (cr && n_rx != base) {
            memmove(rx_tr + n_rx, rx_tr + base, cr * sizeof(int64_t));
            memmove(rx_nd + n_rx, rx_nd + base, cr * sizeof(int64_t));
            if (need_senders) {
                memmove(rx_sv + n_rx, rx_sv + base, cr * sizeof(int64_t));
                if (rx_ep)
                    memmove(rx_ep + n_rx, rx_ep + base,
                            cr * sizeof(int64_t));
            }
        }
        if (cc && n_coll != base) {
            memmove(coll_tr + n_coll, coll_tr + base,
                    cc * sizeof(int64_t));
            memmove(coll_nd + n_coll, coll_nd + base,
                    cc * sizeof(int64_t));
        }
        n_rx += cr;
        n_coll += cc;
    }
    out_counts[0] = n_rx;
    out_counts[1] = n_coll;
}

/* ---------------------------------------------------------------------
 * Recovery post-slot: per clean decode (trial rt[i], receiver rn[i])
 * bump the heard counter and set both known-edge bits -- the overhear
 * (receiver -> sender, CSR position epos[i]) and the ACK (sender ->
 * receiver, its precomputed reverse position).  known is (B, words_e)
 * uint64 over CSR edge positions: bit e & 63 of word e >> 6.
 *
 * Decodes arrive (trial, node)-sorted, so the trial-aligned split
 * gives every thread exclusive ownership of its trials' known/heard
 * rows -- pure per-row accumulation, no shared writes, and the final
 * state is independent of the split (hence of the thread count).
 * ------------------------------------------------------------------- */
typedef struct {
    int64_t nrx;
    const int64_t *rt, *rn, *epos, *rev_edge;
    int64_t n, words_e;
    uint64_t *known;
    int64_t *heard_total;
} post_ctx;

static void post_span(const post_ctx *c, int64_t lo, int64_t hi)
{
    int64_t i;
    for (i = lo; i < hi; i++) {
        int64_t b = c->rt[i];
        int64_t e = c->epos[i];
        int64_t r = c->rev_edge[e];
        uint64_t *row = c->known + b * c->words_e;
        c->heard_total[b * c->n + c->rn[i]]++;
        row[e >> 6] |= 1ULL << (e & 63);    /* overhear */
        row[r >> 6] |= 1ULL << (r & 63);    /* ACK */
    }
}

static void post_job(void *arg, int64_t tid, int64_t width)
{
    post_ctx *c = (post_ctx *)arg;
    int64_t lo = trial_span(c->rt, c->nrx, tid, width);
    int64_t hi = trial_span(c->rt, c->nrx, tid + 1, width);
    if (lo < hi)
        post_span(c, lo, hi);
}

void recovery_post_slot(
    int64_t nthreads,
    int64_t nrx, const int64_t *rt, const int64_t *rn,
    const int64_t *epos, const int64_t *rev_edge,
    int64_t n, int64_t words_e,
    uint64_t *known, int64_t *heard_total)
{
    post_ctx c;
    c.nrx = nrx; c.rt = rt; c.rn = rn;
    c.epos = epos; c.rev_edge = rev_edge;
    c.n = n; c.words_e = words_e;
    c.known = known; c.heard_total = heard_total;
    pool_run(post_job, &c, nthreads);
}

/* ---------------------------------------------------------------------
 * Recovery guardian checks due at slot t for pairs (bt[i], vt[i])
 * whose chk_slot equals t (caller pre-filters staleness).  Mirrors
 * BatchRecoveryState.pre_slot's check branch exactly: a covered node
 * (every bit of its CSR row range [indptr[v], indptr[v+1]) set in
 * known) clears its check without consuming a retry; otherwise the
 * check consumes one retry, fires unless >= suppression_k decodes were
 * overheard since the previous check, and reschedules at
 * t + timeout * backoff^used while budget remains.  Outputs: firing
 * pairs, rescheduled pairs + their slots (for the caller's due
 * buckets), out_counts = {n_fire, n_res, max rescheduled slot}.
 *
 * Due pairs are unique, so any contiguous split gives disjoint state
 * writes; a span over [lo, hi) emits at most (hi - lo) entries per
 * output stream and writes them at offset lo, and span-order
 * compaction reproduces the serial emission order.  max_slot is a max
 * over per-span maxima -- order-free.
 * ------------------------------------------------------------------- */
typedef struct {
    int64_t t, k;
    const int64_t *bt, *vt;
    int64_t n, words_e;
    const int64_t *indptr;
    const uint64_t *known;
    int64_t *chk_slot, *chk_base, *retries_used;
    const int64_t *heard_total;
    int64_t timeout, max_retries, backoff, suppression_k;
    int64_t *fire_b, *fire_v;
    int64_t *res_b, *res_v, *res_slot;
    int64_t span_fire[KERNEL_MAX_THREADS];
    int64_t span_res[KERNEL_MAX_THREADS];
    int64_t span_max[KERNEL_MAX_THREADS];
} checks_ctx;

static void checks_job(void *arg, int64_t tid, int64_t width)
{
    checks_ctx *c = (checks_ctx *)arg;
    int64_t lo = tid * c->k / width;
    int64_t hi = (tid + 1) * c->k / width;
    c->span_fire[tid] = 0;
    c->span_res[tid] = 0;
    c->span_max[tid] = 0;
    if (lo < hi) {
        int64_t *fire_b = c->fire_b + lo, *fire_v = c->fire_v + lo;
        int64_t *res_b = c->res_b + lo, *res_v = c->res_v + lo;
        int64_t *res_slot = c->res_slot + lo;
        int64_t n_fire = 0, n_res = 0, max_slot = 0;
        int64_t i;
        for (i = lo; i < hi; i++) {
            int64_t b = c->bt[i], v = c->vt[i];
            const uint64_t *row = c->known + b * c->words_e;
            int64_t s = c->indptr[v], e = c->indptr[v + 1];
            int covered = 1;
            int64_t w, heard, used;
            for (w = s >> 6; covered && s < e && w <= (e - 1) >> 6; w++) {
                int64_t wlo = s > (w << 6) ? s : (w << 6);
                int64_t whi = e < ((w + 1) << 6) ? e : ((w + 1) << 6);
                int64_t len = whi - wlo;
                uint64_t mask = (len >= 64 ? ~0ULL
                                 : ((1ULL << len) - 1)) << (wlo & 63);
                if ((row[w] & mask) != mask)
                    covered = 0;
            }
            if (covered) {
                c->chk_slot[b * c->n + v] = 0;
                continue;
            }
            heard = c->heard_total[b * c->n + v];
            if (c->suppression_k <= 0
                || heard - c->chk_base[b * c->n + v]
                   < c->suppression_k) {
                fire_b[n_fire] = b;
                fire_v[n_fire] = v;
                n_fire++;
            }
            used = c->retries_used[b * c->n + v] + 1;
            c->retries_used[b * c->n + v] = used;
            c->chk_base[b * c->n + v] = heard;
            if (used < c->max_retries) {
                int64_t step = c->timeout, j, nxt;
                for (j = 0; j < used; j++)
                    step *= c->backoff;
                nxt = c->t + step;
                c->chk_slot[b * c->n + v] = nxt;
                res_b[n_res] = b;
                res_v[n_res] = v;
                res_slot[n_res] = nxt;
                n_res++;
                if (nxt > max_slot)
                    max_slot = nxt;
            } else {
                c->chk_slot[b * c->n + v] = 0;
            }
        }
        c->span_fire[tid] = n_fire;
        c->span_res[tid] = n_res;
        c->span_max[tid] = max_slot;
    }
}

void recovery_checks(
    int64_t nthreads,
    int64_t t, int64_t k,
    const int64_t *bt, const int64_t *vt,
    int64_t n, int64_t words_e, const int64_t *indptr,
    const uint64_t *known,
    int64_t *chk_slot, int64_t *chk_base,
    int64_t *retries_used, const int64_t *heard_total,
    int64_t timeout, int64_t max_retries, int64_t backoff,
    int64_t suppression_k,
    int64_t *fire_b, int64_t *fire_v,
    int64_t *res_b, int64_t *res_v, int64_t *res_slot,
    int64_t *out_counts)
{
    checks_ctx c;
    int64_t used, i, n_fire = 0, n_res = 0, max_slot = 0;
    c.t = t; c.k = k; c.bt = bt; c.vt = vt;
    c.n = n; c.words_e = words_e; c.indptr = indptr; c.known = known;
    c.chk_slot = chk_slot; c.chk_base = chk_base;
    c.retries_used = retries_used; c.heard_total = heard_total;
    c.timeout = timeout; c.max_retries = max_retries;
    c.backoff = backoff; c.suppression_k = suppression_k;
    c.fire_b = fire_b; c.fire_v = fire_v;
    c.res_b = res_b; c.res_v = res_v; c.res_slot = res_slot;

    used = pool_run(checks_job, &c, nthreads);
    for (i = 0; i < used; i++) {
        int64_t lo = i * k / used;
        int64_t cf = c.span_fire[i], cr = c.span_res[i];
        if (cf && n_fire != lo) {
            memmove(fire_b + n_fire, fire_b + lo, cf * sizeof(int64_t));
            memmove(fire_v + n_fire, fire_v + lo, cf * sizeof(int64_t));
        }
        if (cr && n_res != lo) {
            memmove(res_b + n_res, res_b + lo, cr * sizeof(int64_t));
            memmove(res_v + n_res, res_v + lo, cr * sizeof(int64_t));
            memmove(res_slot + n_res, res_slot + lo,
                    cr * sizeof(int64_t));
        }
        n_fire += cf;
        n_res += cr;
        if (c.span_max[i] > max_slot)
            max_slot = c.span_max[i];
    }
    out_counts[0] = n_fire;
    out_counts[1] = n_res;
    out_counts[2] = max_slot;
}
"""

_state: Optional[Tuple[Optional[object], Optional[str]]] = None


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def _build_flags() -> Tuple[str, list, list]:
    """(mode tag, compile args, link args) for the requested build.

    ``REPRO_NATIVE_DEBUG=1`` selects the ThreadSanitizer build; the tag
    feeds the module-name digest so debug and release extensions keep
    separate caches and never shadow each other.
    """
    if os.environ.get("REPRO_NATIVE_DEBUG"):
        return ("debug-tsan",
                ["-O1", "-g", "-fsanitize=thread", "-pthread"],
                ["-fsanitize=thread", "-pthread"])
    return ("release", ["-O3", "-pthread"], ["-pthread"])


def _build() -> object:
    import cffi

    mode, compile_args, link_args = _build_flags()
    digest = hashlib.sha1(
        (_CDEF + _SOURCE + mode).encode()).hexdigest()[:12]
    modname = f"_repro_native_{digest}"
    build_dir = _repo_root() / ".native_build"
    build_dir.mkdir(exist_ok=True)
    existing = sorted(build_dir.glob(f"{modname}*.so"))
    if not existing:
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        ffi.set_source(modname, _SOURCE,
                       extra_compile_args=compile_args,
                       extra_link_args=link_args)
        ffi.compile(tmpdir=str(build_dir))
        existing = sorted(build_dir.glob(f"{modname}*.so"))
    if not existing:
        raise RuntimeError("cffi compile produced no extension module")
    spec = importlib.util.spec_from_file_location(modname, existing[0])
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def native_kernel():
    """The compiled kernel module (``.lib`` / ``.ffi``), or ``None``.

    The first call builds (or reloads) the extension; the outcome —
    including any failure reason — is cached for the process lifetime.
    """
    global _state
    if _state is None:
        if os.environ.get("REPRO_NO_NATIVE"):
            _state = (None, "disabled via REPRO_NO_NATIVE")
        else:
            try:
                _state = (_build(), None)
            except Exception as exc:  # soft dependency: never hard-fail
                _state = (None, f"{type(exc).__name__}: {exc}")
    return _state[0]


def native_available() -> bool:
    """True when the compiled tier can run on this host."""
    return native_kernel() is not None


def native_reason() -> Optional[str]:
    """Why the compiled tier is unavailable (``None`` when it is)."""
    native_kernel()
    return _state[1]


def native_state() -> Tuple[Optional[bool], Optional[str]]:
    """(available?, reason) without forcing the lazy build.

    The health endpoint's view of the compiled tier: ``(None, ...)``
    before the first build attempt (probing would trigger a C compile —
    exactly what a cheap liveness probe must not do), then the cached
    verdict of :func:`native_kernel`.
    """
    if _state is None:
        return None, "not yet probed (build is lazy)"
    return _state[0] is not None, _state[1]


def default_native_threads() -> int:
    """Kernel thread count used when the caller passes ``threads=None``.

    ``REPRO_NATIVE_THREADS`` (clamped to ``[1, MAX_NATIVE_THREADS]``)
    overrides; otherwise the scheduler affinity mask size — the honest
    CPU budget under cgroup/taskset pinning — with ``os.cpu_count`` as
    the non-POSIX fallback.  Read on every call so tests and long-lived
    processes can retune it.
    """
    raw = os.environ.get("REPRO_NATIVE_THREADS")
    if raw:
        try:
            return max(1, min(int(raw), MAX_NATIVE_THREADS))
        except ValueError:
            pass
    try:
        cpus = len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, MAX_NATIVE_THREADS))


def resolve_native_threads(threads: Optional[int]) -> int:
    """The kernel pool width a ``threads=`` request actually gets."""
    if threads is None:
        return default_native_threads()
    return max(1, min(int(threads), MAX_NATIVE_THREADS))
